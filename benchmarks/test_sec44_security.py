"""E7 -- section 4.4: security validation with the micro-kernel.

Two full-system runs (kernel + L process + H process) differing only in
the high process's data: the low-observable output trace and the total
cycle count must be identical (timing-sensitive noninterference), while
the high results differ.
"""

from conftest import save_artifact

from repro.eval.figures import sec44_security_validation


def test_sec44_kernel_noninterference(benchmark, artifact_dir):
    result = benchmark.pedantic(sec44_security_validation, rounds=1, iterations=1)
    lines = [f"{k}: {v}" for k, v in result.items()]
    save_artifact("sec44_security.txt", "\n".join(lines))
    assert result["halted"]
    assert result["low_traces_equal"]
    assert result["timing_equal"]
    assert result["l_results_equal"]
    assert result["h_results_differ"]

"""E3 -- Figure 7: the complete processor ISA.

Regenerates the instruction table and verifies the toolchain coverage:
every listed instruction encodes, decodes, and round-trips through the
assembler.
"""

from conftest import save_artifact

from repro.eval import fig7_isa_table, format_table
from repro.mips.isa import FIGURE7_INSTRUCTIONS, Instruction, decode, encode


def test_fig7_isa_table(benchmark, artifact_dir):
    def roundtrip_all():
        count = 0
        for names in FIGURE7_INSTRUCTIONS.values():
            for name in names:
                inst = Instruction(name, rs=1, rt=2, rd=3, imm=4, target=5)
                back = decode(encode(inst))
                assert back is not None and back.name == name
                count += 1
        return count

    total = benchmark(roundtrip_all)
    rows = [[group, ", ".join(names)] for group, names in fig7_isa_table()]
    table = format_table(["Instruction Type", "Instruction List"], rows)
    save_artifact("fig7_isa.txt", table + f"\n\nTotal instructions: {total}")
    assert total == sum(len(v) for v in FIGURE7_INSTRUCTIONS.values())

"""E4 -- Figure 8: lines of Sapper code per processor component.

The paper's hand-written processor totalled 5397 LOC (3981 in
Execute+ALU+FPU); ours is generator-emitted and more compact, but the
component split and the dominance of the execute stage are preserved.
"""

from conftest import save_artifact

from repro.eval import fig8_loc_table, format_table
from repro.proc.design import generate_design


def test_fig8_loc(benchmark, artifact_dir):
    rows = benchmark(fig8_loc_table)
    table = format_table(["Module Name", "LOC"], [[n, str(c)] for n, c in rows])
    total_src = len([l for l in generate_design().splitlines() if l.strip()])
    save_artifact("fig8_loc.txt", table + f"\n\nGenerated design source lines: {total_src}")
    by_name = dict(rows)
    assert by_name["Total"] > 500
    # the execute stage dominates, as in the paper
    others = [c for n, c in rows if n not in ("Total", "Execute + ALU + FPU")]
    assert by_name["Execute + ALU + FPU"] > max(others) * 0.8

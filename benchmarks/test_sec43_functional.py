"""E6 -- section 4.3: functional validation.

Every workload runs on the secure processor and on the reference
machine; outputs must agree with the golden model exactly (the paper's
cross-comparison against a real machine).
"""

import pytest
from conftest import save_artifact

from repro.eval import format_table
from repro.eval.figures import sec43_functional_validation
from repro.mips.assembler import assemble
from repro.proc.machine import SapperMachine
from repro.workloads import ALL_WORKLOADS


@pytest.fixture(scope="module")
def validation():
    return sec43_functional_validation(run_hw=True)


def test_sec43_all_workloads(benchmark, validation, artifact_dir):
    # benchmark the fastest workload end-to-end on the hardware simulator
    wl = ALL_WORKLOADS["specrand"]
    exe = assemble(wl.source)

    def run_hw():
        machine = SapperMachine()
        machine.load(exe)
        return machine.run(wl.max_cycles)

    benchmark.pedantic(run_hw, rounds=2, iterations=1)

    rows = []
    for entry in validation:
        rows.append(
            [
                entry["workload"],
                str(entry["iss_instructions"]),
                str(entry["hw_cycles"]),
                "yes" if entry["iss_matches"] else "NO",
                "yes" if entry["hw_matches"] else "NO",
                str(entry["hw_violations"]),
            ]
        )
    table = format_table(
        ["Workload", "Instructions", "HW cycles", "ISS == golden", "HW == golden", "Violations"],
        rows,
    )
    save_artifact("sec43_functional.txt", table)
    assert all(e["iss_matches"] for e in validation)
    assert all(e["hw_matches"] for e in validation)
    assert all(e["hw_violations"] == 0 for e in validation)

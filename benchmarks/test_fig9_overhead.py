"""E5 -- Figure 9: hardware overhead of Base vs GLIFT vs Caisson vs Sapper.

Regenerates the paper's headline comparison from one Sapper source put
through all four flows.  We do not expect the paper's absolute numbers
(different processor size, different synthesis stack), but the *shape*
must hold: GLIFT >> Caisson > Sapper ~ 1x in area and power, no Sapper
delay overhead, and memory overheads of 2x / 2x / ~3%.
"""

import pytest
from conftest import save_artifact

from repro.eval.figures import fig9_overhead, format_fig9
from repro.hdl import synthesize
from repro.lattice import two_level
from repro.proc.machine import compile_processor


@pytest.fixture(scope="module")
def overhead_rows():
    return fig9_overhead(two_level())


def test_fig9_overhead_table(benchmark, overhead_rows, artifact_dir):
    # benchmark the synthesis step on the secure design (the heavy part)
    design = compile_processor(two_level(), secure=True)
    benchmark.pedantic(synthesize, args=(design.module,), rounds=2, iterations=1)
    save_artifact("fig9_overhead.txt", format_fig9(overhead_rows))

    base = overhead_rows["Base Processor"]
    glift = overhead_rows["GLIFT"].normalized(base)
    caisson = overhead_rows["Caisson"].normalized(base)
    sapper = overhead_rows["Sapper"].normalized(base)

    # area ordering and magnitudes (paper: 7.6x / 2x / 1.04x)
    assert glift["area"] > 3.0
    assert 1.5 < caisson["area"] < 3.0
    assert sapper["area"] < 1.5
    assert glift["area"] > caisson["area"] > sapper["area"]
    # delay: Sapper and Caisson incur no clock penalty; GLIFT does
    assert sapper["delay"] < 1.05
    assert caisson["delay"] < 1.10
    assert glift["delay"] > 1.5
    # power follows area
    assert glift["power"] > caisson["power"] > sapper["power"]
    # memory: duplication vs tag store (paper: 2x / 2x / ~3%)
    assert glift["memory"] == 2.0
    assert caisson["memory"] == 2.0
    assert 1.0 < sapper["memory"] < 1.05

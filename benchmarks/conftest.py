"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, printing
it and writing it under ``benchmarks/out/`` so the artifacts survive
pytest's capture.
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_artifact(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text)
    print(f"\n==== {name} ====\n{text}\n")

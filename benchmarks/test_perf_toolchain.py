"""Toolchain performance benchmarks (not a paper figure).

Tracks the speed of the pieces a user iterates on: the Sapper compiler,
the HDL optimization pipeline, the HDL simulator (cycles/second on the
full processor, raw and optimized), the lane-batched simulator
(aggregate lane-cycles/second vs N scalar runs, SWAR vs two-tier
engine, the NumPy vector tier vs SWAR at wide lane counts plus the
engine lane-scaling ladder, and lane compaction + majority-cohort
dispatch on a skewed workload suite), the reference interpreter, the
assembler, and GLIFT
netlist augmentation -- plus a gate-count regression gate asserting the
optimizer never inflates the secure processor's cell census.

``benchmarks/check_regression.py`` compares a ``--benchmark-json`` dump
of this module against the committed ``benchmarks/baseline.json``; the
machine-independent metrics (gate counts, speedup ratios) are attached
to the JSON as ``extra_info`` here.
"""

import os
import time

import pytest

from repro.hdl import HAVE_NUMPY, BatchSimulator, Simulator, VectorSimulator, synthesize
from repro.hdl.netlist import bit_blast
from repro.hdl.passes import run_pipeline
from repro.glift import glift_transform
from repro.lattice import two_level
from repro.mips.assembler import assemble
from repro.proc.design import generate_design
from repro.proc.machine import compile_processor
from repro.sapper import samples
from repro.sapper.analysis import analyze
from repro.sapper.compiler import compile_program
from repro.sapper.parser import parse_program
from repro.sapper.semantics import Interpreter
from repro.workloads import ALL_WORKLOADS


def test_compile_tdma(benchmark):
    lat = two_level()
    benchmark(lambda: compile_program(samples.TDMA, lat, name="tdma"))


def test_parse_processor_source(benchmark):
    src = generate_design()
    benchmark(lambda: parse_program(src, "proc"))


def test_compile_processor_full(benchmark):
    src = generate_design()
    lat = two_level()
    info = analyze(parse_program(src, "proc"), lat)
    benchmark.pedantic(
        lambda: compile_program(info, lat, name="proc"), rounds=2, iterations=1
    )


def test_hdl_simulation_speed(benchmark):
    # the headline number: optimized-pipeline throughput on the full
    # secure processor (Simulator optimizes by default)
    design = compile_processor(two_level(), secure=True)
    sim = Simulator(design.module)

    def run_500():
        for _ in range(500):
            sim.step({})
        return sim.cycles

    benchmark.pedantic(run_500, rounds=3, iterations=1)


def test_hdl_simulation_speed_raw(benchmark):
    # unoptimized baseline for the same module (what the seed measured)
    design = compile_processor(two_level(), secure=True)
    sim = Simulator(design.module, optimize=False)

    def run_500():
        for _ in range(500):
            sim.step({})
        return sim.cycles

    benchmark.pedantic(run_500, rounds=3, iterations=1)


def test_optimize_pipeline_speed(benchmark):
    # full pass pipeline (unmemoized) over the secure processor module
    design = compile_processor(two_level(), secure=True)
    benchmark.pedantic(
        lambda: run_pipeline(design.module), rounds=2, iterations=1
    )


def test_optimized_vs_raw_throughput():
    """Optimized simulation must beat raw by a real margin (>= 10%).

    Noise-robust: compares the best of several interleaved samples per
    engine (the min is the stable estimator for CPU-bound loops), with
    a bound far below the ~2x ratio seen on quiet machines, so a busy
    CI runner cannot flip the verdict.
    """
    import time

    design = compile_processor(two_level(), secure=True)
    raw = Simulator(design.module, optimize=False)
    opt = Simulator(design.module)

    def sample(sim, cycles=250):
        t0 = time.perf_counter()
        for _ in range(cycles):
            sim.step({})
        return time.perf_counter() - t0

    sample(raw, 50), sample(opt, 50)  # warm up caches and branch history
    raw_samples, opt_samples = [], []
    for _ in range(5):  # interleaved so drift hits both engines alike
        raw_samples.append(sample(raw))
        opt_samples.append(sample(opt))
    raw_t, opt_t = min(raw_samples), min(opt_samples)
    assert opt_t < raw_t * 0.9, f"optimized {opt_t:.3f}s vs raw {raw_t:.3f}s"


def test_gate_count_regression(benchmark):
    """The optimized secure processor synthesizes to no more cells than
    the seed's (raw) census -- and strictly fewer in practice.  The
    census lands in the benchmark JSON for the CI regression gate."""
    design = compile_processor(two_level(), secure=True)
    raw = synthesize(design.module, optimize=False)
    opt = synthesize(design.module)
    benchmark.extra_info["gates_raw"] = raw.counts.total_gates()
    benchmark.extra_info["gates_optimized"] = opt.counts.total_gates()
    benchmark.extra_info["dff_optimized"] = opt.counts.dff
    benchmark.extra_info["levels_optimized"] = opt.levels
    benchmark.pedantic(lambda: opt.counts.total_gates(), rounds=1, iterations=1)
    assert opt.counts.total_gates() <= raw.counts.total_gates()
    assert opt.counts.dff <= raw.counts.dff
    assert opt.levels <= raw.levels
    # the tag-join/mux dedup is worth a double-digit percentage
    assert opt.counts.total_gates() < 0.9 * raw.counts.total_gates()


BATCH_LANES = 32
BATCH_CYCLES = 500


def _batch_setup():
    """The optimized secure processor plus per-lane workload programs."""
    from repro.toolchain import get_toolchain

    design = compile_processor(two_level(), secure=True)
    module = get_toolchain().optimize(design)
    programs = [assemble(wl.source).as_memory() for wl in ALL_WORKLOADS.values()]
    return module, programs


def _fresh_batch(module, programs, swar=True, lanes=BATCH_LANES):
    batch = BatchSimulator(module, lanes, optimize=False, swar=swar)
    for lane in range(lanes):
        batch.load_array(lane, "memory", dict(programs[lane % len(programs)]))
    return batch


def _fresh_vector(module, programs, lanes):
    batch = VectorSimulator(module, lanes, optimize=False)
    for lane in range(lanes):
        batch.load_array(lane, "memory", dict(programs[lane % len(programs)]))
    return batch


def _fresh_scalars(module, programs):
    sims = []
    for lane in range(BATCH_LANES):
        sim = Simulator(module, optimize=False)
        sim.load_array("memory", dict(programs[lane % len(programs)]))
        sims.append(sim)
    return sims


def test_batch_simulation_speed(benchmark):
    # aggregate lane-cycles/second: 32 workloads from reset on one
    # batched machine (the bulk-suite scenario the batched engine serves)
    module, programs = _batch_setup()
    _fresh_batch(module, programs).run(BATCH_CYCLES)  # warm compiled bodies

    def run_batch():
        batch = _fresh_batch(module, programs)
        batch.run(BATCH_CYCLES)
        return batch.cycles * BATCH_LANES

    benchmark.pedantic(run_batch, rounds=3, iterations=1)


def test_batch_vs_scalar_throughput(benchmark):
    """The batched engine must beat N scalar runs >= 3x at N=32 lanes,
    with bit-identical per-lane architectural and shadow-tag state.

    Interleaved min-of-rounds sampling keeps the ratio stable on noisy
    machines; the measured ratio lands in the benchmark JSON as
    ``extra_info['batch_speedup']`` for the regression gate.
    """
    module, programs = _batch_setup()
    _fresh_batch(module, programs).run(BATCH_CYCLES)  # warm compiled bodies

    batch = sims = None
    speedup = 0.0
    # up to two measurement attempts: min-of-interleaved-rounds is robust,
    # but a noisy shared runner can still poison one whole attempt
    for _attempt in range(2):
        batch_times, scalar_times = [], []
        for _ in range(3):
            batch = _fresh_batch(module, programs)
            t0 = time.perf_counter()
            batch.run(BATCH_CYCLES)
            batch_times.append(time.perf_counter() - t0)
            sims = _fresh_scalars(module, programs)
            t0 = time.perf_counter()
            for _ in range(BATCH_CYCLES):
                for sim in sims:
                    sim.step({})
            scalar_times.append(time.perf_counter() - t0)
        speedup = max(speedup, min(scalar_times) / min(batch_times))
        if speedup >= 3.0:
            break
    benchmark.extra_info["batch_speedup"] = round(speedup, 3)
    benchmark.extra_info["batch_lane_cycles_per_sec"] = round(
        BATCH_LANES * BATCH_CYCLES / min(batch_times)
    )
    benchmark.pedantic(lambda: speedup, rounds=1, iterations=1)

    # bit-identical per-lane state: every register (architectural and
    # __tag shadows) and every array (memory and __tags shadow stores)
    for lane in range(BATCH_LANES):
        for name in module.regs:
            assert sims[lane].regs[name] == batch.get_reg(lane, name), (
                f"lane {lane} reg {name} diverged"
            )
        for name, arr in module.arrays.items():
            scalar_arr, lane_arr = sims[lane].arrays[name], batch.arrays[name][lane]
            for idx in set(scalar_arr) | set(lane_arr):
                assert scalar_arr.get(idx, arr.default) == lane_arr.get(idx, arr.default), (
                    f"lane {lane} {name}[{idx}] diverged"
                )

    assert speedup >= 3.0, (
        f"batched simulation only {speedup:.2f}x over {BATCH_LANES} scalar runs"
    )


def test_swar_vs_batch_throughput(benchmark):
    """The SWAR (wide-word lane-packed) engine must beat the two-tier
    packed/per-lane engine >= 1.5x at 32 lanes on the secure processor,
    with bit-identical per-lane state between the two engines.

    Interleaved min-of-rounds sampling with a retry attempt keeps the
    ratio stable on noisy machines; the measured ratio lands in the
    benchmark JSON as ``extra_info['swar_speedup']`` for the regression
    gate.
    """
    module, programs = _batch_setup()
    _fresh_batch(module, programs).run(BATCH_CYCLES)        # warm bodies
    _fresh_batch(module, programs, swar=False).run(BATCH_CYCLES)

    swar_b = plain = None
    speedup = 0.0
    best_swar_time = float("inf")
    # up to five measurement attempts (the margin over the 1.5x gate is
    # real but modest, so give a loaded shared runner extra chances --
    # attempts stop at the first pass, so the happy path stays cheap)
    for _attempt in range(5):
        swar_times, plain_times = [], []
        for _ in range(3):
            swar_b = _fresh_batch(module, programs)
            t0 = time.perf_counter()
            swar_b.run(BATCH_CYCLES)
            swar_times.append(time.perf_counter() - t0)
            plain = _fresh_batch(module, programs, swar=False)
            t0 = time.perf_counter()
            plain.run(BATCH_CYCLES)
            plain_times.append(time.perf_counter() - t0)
        best_swar_time = min(best_swar_time, min(swar_times))
        speedup = max(speedup, min(plain_times) / min(swar_times))
        if speedup >= 1.5:
            break
    benchmark.extra_info["swar_speedup"] = round(speedup, 3)
    benchmark.extra_info["swar_lane_cycles_per_sec"] = round(
        BATCH_LANES * BATCH_CYCLES / best_swar_time
    )
    benchmark.pedantic(lambda: speedup, rounds=1, iterations=1)

    # the SWAR tier must actually carry the datapath (no silent fallback)
    tiers = swar_b.signal_tiers
    counts = {k: sum(1 for t in tiers.values() if t == k) for k in "pws"}
    assert counts["w"] > 4 * counts["s"], f"SWAR tier underused: {counts}"

    # both engines end bit-identical, register for register, cell for cell
    for lane in range(BATCH_LANES):
        for name in module.regs:
            assert swar_b.get_reg(lane, name) == plain.get_reg(lane, name), (
                f"lane {lane} reg {name} diverged between engines"
            )
        for name, arr in module.arrays.items():
            sa, pa = swar_b.arrays[name][lane], plain.arrays[name][lane]
            for idx in set(sa) | set(pa):
                assert sa.get(idx, arr.default) == pa.get(idx, arr.default), (
                    f"lane {lane} {name}[{idx}] diverged between engines"
                )

    assert speedup >= 1.5, (
        f"SWAR engine only {speedup:.2f}x over the two-tier batched engine"
    )


VECTOR_LANES = 256


@pytest.mark.skipif(not HAVE_NUMPY, reason="the vector engine needs NumPy")
def test_vector_vs_swar_throughput(benchmark):
    """The NumPy vector engine must beat the SWAR engine >= 2.5x at 256
    lanes on the secure processor, with bit-identical per-lane state
    between the two engines.

    256 lanes is where ufunc amortization dominates: the SWAR big-int
    words grow with lane count while the vector tier's per-op overhead
    stays constant.  Interleaved min-of-rounds sampling with a retry
    attempt keeps the ratio stable on noisy machines; the measured
    ratio lands in the benchmark JSON as
    ``extra_info['vector_speedup']`` for the regression gate.
    """
    module, programs = _batch_setup()
    # warm compiled step functions and state-folded bodies of both engines
    _fresh_vector(module, programs, VECTOR_LANES).run(BATCH_CYCLES)
    _fresh_batch(module, programs, lanes=VECTOR_LANES).run(BATCH_CYCLES)

    vec_b = swar_b = None
    speedup = 0.0
    best_vec_time = float("inf")
    # up to two measurement attempts: min-of-interleaved-rounds is robust,
    # but a noisy shared runner can still poison one whole attempt
    for _attempt in range(2):
        vec_times, swar_times = [], []
        for _ in range(3):
            vec_b = _fresh_vector(module, programs, VECTOR_LANES)
            t0 = time.perf_counter()
            vec_b.run(BATCH_CYCLES)
            vec_times.append(time.perf_counter() - t0)
            swar_b = _fresh_batch(module, programs, lanes=VECTOR_LANES)
            t0 = time.perf_counter()
            swar_b.run(BATCH_CYCLES)
            swar_times.append(time.perf_counter() - t0)
        best_vec_time = min(best_vec_time, min(vec_times))
        speedup = max(speedup, min(swar_times) / min(vec_times))
        if speedup >= 2.5:
            break
    benchmark.extra_info["vector_speedup"] = round(speedup, 3)
    benchmark.extra_info["vector_lane_cycles_per_sec"] = round(
        VECTOR_LANES * BATCH_CYCLES / best_vec_time
    )
    benchmark.pedantic(lambda: speedup, rounds=1, iterations=1)

    # the vector tier must actually carry the datapath (no silent fallback)
    tiers = vec_b.signal_tiers
    counts = {k: sum(1 for t in tiers.values() if t == k) for k in "pvs"}
    assert counts["v"] > 4 * counts["s"], f"vector tier underused: {counts}"

    # both engines end bit-identical, register for register, cell for cell
    for lane in range(VECTOR_LANES):
        for name in module.regs:
            assert vec_b.get_reg(lane, name) == swar_b.get_reg(lane, name), (
                f"lane {lane} reg {name} diverged between engines"
            )
        for name, arr in module.arrays.items():
            va, sa = vec_b.arrays[name][lane], swar_b.arrays[name][lane]
            for idx in set(va) | set(sa):
                assert va.get(idx, arr.default) == sa.get(idx, arr.default), (
                    f"lane {lane} {name}[{idx}] diverged between engines"
                )

    assert speedup >= 2.5, (
        f"vector engine only {speedup:.2f}x over SWAR at {VECTOR_LANES} lanes"
    )


SCALING_LANES = (32, 128, 512)
SCALING_CYCLES = 300


@pytest.mark.skipif(not HAVE_NUMPY, reason="the vector engine needs NumPy")
def test_engine_lane_scaling(benchmark):
    """Aggregate lane-cycles/second per engine across the lane-count
    ladder 32/128/512 -- the curve that justifies the CLI's auto
    threshold (SWAR wins small batches, the vector tier overtakes it
    between 32 and 128 lanes).  Pure telemetry: the per-point throughput
    numbers land in ``extra_info`` (machine-dependent, so not gated),
    but the crossover ordering itself is asserted."""
    module, programs = _batch_setup()
    engines = {
        "batch": lambda lanes: _fresh_batch(module, programs, swar=False, lanes=lanes),
        "swar": lambda lanes: _fresh_batch(module, programs, lanes=lanes),
        "vector": lambda lanes: _fresh_vector(module, programs, lanes),
    }
    lcps: dict[str, dict[int, float]] = {name: {} for name in engines}
    for lanes in SCALING_LANES:
        for name, fresh in engines.items():
            fresh(lanes).run(SCALING_CYCLES)  # warm compiled bodies
            best = min(
                _timed_run(fresh(lanes), SCALING_CYCLES) for _ in range(2)
            )
            lcps[name][lanes] = lanes * SCALING_CYCLES / best
            benchmark.extra_info[f"{name}_lcps_{lanes}"] = round(lcps[name][lanes])
    benchmark.pedantic(lambda: lcps, rounds=1, iterations=1)
    # the measured crossover: SWAR ahead at 32 lanes, vector ahead at 512
    assert lcps["swar"][32] > lcps["vector"][32] * 0.5, lcps
    assert lcps["vector"][512] > lcps["swar"][512], lcps
    # every engine must scale: 512-lane throughput beats its own 32-lane
    for name in engines:
        assert lcps[name][512] > 0 and lcps[name][32] > 0


def _timed_run(batch, cycles):
    t0 = time.perf_counter()
    batch.run(cycles)
    return time.perf_counter() - t0


SKEW_LANES = 32
SKEW_PHASE = 192


def _skewed_programs():
    """Loop-then-halt MIPS programs whose run lengths follow a geometric
    ladder (~4 cycles per iteration after a shared ~280-cycle boot):
    half the suite halts early while a long tail runs several times
    longer -- the skewed-suite shape that leaves a fixed-width batch
    mostly idle."""
    programs = []
    for lane in range(SKEW_LANES):
        iters = int(3 * 1.16 ** lane) + 1
        programs.append(assemble(f"""
.org 0x400
    li   $s0, {iters}
loop:
    addiu $s0, $s0, -1
    bgt  $s0, $zero, loop
    li   $t9, 0x40000004
    sw   $zero, 0($t9)
""").as_memory())
    return programs


def _lane_snapshot(batch, pos, module):
    return (
        batch.lane_regs(pos),
        {name: dict(batch.arrays[name][pos]) for name in module.arrays},
    )


def _run_skewed(module, programs, compact, majority):
    """Run the skewed suite to completion, checking for halted lanes at
    every phase boundary (SKEW_PHASE cycles).  Each lane's full state is
    snapshotted at the boundary where it is first seen halted -- the
    same instant in every engine configuration -- and, with *compact*,
    the halted lanes are then retired from the batch."""
    batch = BatchSimulator(module, SKEW_LANES, optimize=False, majority=majority)
    for lane, prog in enumerate(programs):
        batch.load_array(lane, "memory", dict(prog))
    snaps = {}
    cycle = 0
    while True:
        batch.step()
        cycle += 1
        if cycle % SKEW_PHASE:
            continue
        halted = [pos for pos in range(batch.lanes) if batch.get_reg(pos, "halted_r")]
        for pos in halted:
            orig = batch.active_lanes[pos]
            if orig not in snaps:
                snaps[orig] = _lane_snapshot(batch, pos, module)
        if len(halted) == batch.lanes:
            return batch, snaps, cycle
        if compact and halted:
            batch.compact(halted)


def test_compaction_skewed_throughput(benchmark):
    """Lane compaction (+ majority-cohort dispatch) must beat the PR-3
    fixed-width engine >= 1.2x on a skewed (geometric run-length)
    workload suite, with bit-identical per-lane state at every
    retirement boundary.

    The measured ratio lands in the benchmark JSON as
    ``extra_info['compaction_speedup']`` for the regression gate,
    alongside the mean batch ``occupancy`` and the share of steps
    dispatched through the cohort split (``cohort_split_ratio``).
    """
    module, _ = _batch_setup()
    programs = _skewed_programs()
    # warm the compiled step functions and state-folded bodies of both
    # engine configurations (compaction re-enters per-width caches)
    _run_skewed(module, programs, compact=True, majority=True)
    _run_skewed(module, programs, compact=False, majority=False)

    # bit-identity: every lane's complete state (architectural and
    # shadow-tag registers, memory and shadow-tag stores) at the
    # boundary it retired on, old engine vs compacted engine
    new_b, new_snaps, new_cycles = _run_skewed(module, programs, True, True)
    _old_b, old_snaps, old_cycles = _run_skewed(module, programs, False, False)
    assert new_cycles == old_cycles, "engines disagree on suite length"
    assert new_snaps.keys() == old_snaps.keys()
    for lane in sorted(new_snaps):
        new_regs, new_arrays = new_snaps[lane]
        old_regs, old_arrays = old_snaps[lane]
        assert new_regs == old_regs, f"lane {lane}: registers diverged"
        assert new_arrays == old_arrays, f"lane {lane}: arrays diverged"
    assert new_b.compactions > 0, "skewed suite never compacted"

    speedup = 0.0
    # up to four measurement attempts on noisy shared runners;
    # interleaved min-of-rounds, stopping at the first passing attempt
    for _attempt in range(4):
        old_times, new_times = [], []
        for _ in range(3):
            t0 = time.perf_counter()
            _run_skewed(module, programs, compact=False, majority=False)
            old_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            _run_skewed(module, programs, compact=True, majority=True)
            new_times.append(time.perf_counter() - t0)
        speedup = max(speedup, min(old_times) / min(new_times))
        if speedup >= 1.2:
            break
    occupancy = new_b.lane_cycles / (SKEW_LANES * new_cycles)
    benchmark.extra_info["compaction_speedup"] = round(speedup, 3)
    benchmark.extra_info["occupancy"] = round(occupancy, 3)
    benchmark.extra_info["cohort_split_ratio"] = round(
        new_b.split_steps / new_b.cycles, 4
    )
    benchmark.pedantic(lambda: speedup, rounds=1, iterations=1)

    assert occupancy < 0.7, f"suite not skewed enough (occupancy {occupancy:.2f})"
    assert speedup >= 1.2, (
        f"compacted engine only {speedup:.2f}x over the fixed-width engine"
    )


def test_tag_prune_counters(benchmark):
    """Static tag-cone pruning: the taint certificate must drop shadow
    words on every batched tier without perturbing a single bit.

    The secure processor (a closed design whose secrets arrive through
    the preloaded ``__tags`` stores) must report nonzero
    statically-clean prune counts on the batch, SWAR, and vector tiers,
    with lane state bit-identical to a tracker-less run.  The TDMA
    controller's prune ratio -- the fraction of shadow state the
    certificate removes for the paper's Figure 4 design -- lands in the
    benchmark JSON as ``extra_info['tag_prune_ratio']`` for the
    regression gate (machine-independent: it is a property of the
    analysis, not of the host).
    """
    from repro.analyze import compute_taint, default_taint_sources
    from repro.toolchain import get_toolchain

    module, programs = _batch_setup()
    sources = tuple(a for a in module.arrays if a.endswith("__tags"))
    lanes, cycles = 8, 100
    ref = _fresh_batch(module, programs, swar=True, lanes=lanes)
    ref.run(cycles)
    sims = [
        ("batch", _fresh_batch(module, programs, swar=False, lanes=lanes)),
        ("swar", _fresh_batch(module, programs, swar=True, lanes=lanes)),
    ]
    if HAVE_NUMPY:
        sims.append(("vector", _fresh_vector(module, programs, lanes)))
    for tier, sim in sims:
        tracker = sim.attach_taint(sources=sources)
        sim.run(cycles)
        stats = tracker.stats
        assert stats["pruned_signals"] > 0, f"{tier}: nothing statically clean"
        assert stats["tainted_signals"] > 0, f"{tier}: empty taint cone"
        assert stats["tracked_words"] < stats["signals"] + len(module.regs) + len(
            module.arrays
        ), f"{tier}: tracker holds a word for every node; pruning is off"
        for lane in range(lanes):
            assert sim.lane_regs(lane) == ref.lane_regs(lane), (
                f"{tier}: taint tracking perturbed lane {lane}"
            )

    tdma = get_toolchain().compile(samples.TDMA, two_level(), name="tdma")
    cert = compute_taint(tdma.module, default_taint_sources(tdma))
    ratio = cert.stats["prune_ratio"]
    assert ratio > 0.5, f"TDMA shadow state mostly tainted ({ratio:.2f} pruned)"
    benchmark.extra_info["tag_prune_ratio"] = round(ratio, 4)
    benchmark.extra_info["proc_pruned_signals"] = sims[0][1].taint.stats[
        "pruned_signals"
    ]
    benchmark.pedantic(lambda: ratio, rounds=1, iterations=1)


def test_warm_start_speedup(benchmark, tmp_path):
    """A fresh toolchain over a populated artifact store must rebuild
    the secure processor >= 5x faster than a cold compile.

    Cold is the full front end plus the pass pipeline (parse ->
    analyze -> compile -> optimize); warm is a fresh ``Toolchain`` and a
    fresh ``ArtifactStore`` over the same directory (the in-process
    stand-in for a new process), which must come entirely from the
    persistent tier -- asserted via the ``store_hit`` counters, so a
    silent fallback to recompute cannot masquerade as a pass.
    Interleaved min-of-rounds sampling with retry attempts keeps the
    ratio stable on noisy machines; the measured ratio lands in the
    benchmark JSON as ``extra_info['warm_start_speedup']`` for the
    regression gate.
    """
    from repro.store import ArtifactStore
    from repro.toolchain import Toolchain

    src = generate_design()
    lat = two_level()
    store_dir = tmp_path / "store"
    seed_tc = Toolchain(store=ArtifactStore(store_dir))
    seed_module = seed_tc.optimize(seed_tc.compile(src, lat, name="proc"))

    def cold():
        tc = Toolchain()
        return tc.optimize(tc.compile(src, lat, name="proc"))

    def warm():
        tc = Toolchain(store=ArtifactStore(store_dir))
        module = tc.optimize(tc.compile(src, lat, name="proc"))
        counters = tc.counter_snapshot()
        assert counters.get("store_hit:compile") == 1, counters
        assert counters.get("store_hit:optimize") == 1, counters
        return module

    # the reloaded module must be the same hardware, not just fast:
    # 20 lockstep cycles from reset against the seed's module
    reloaded = warm()
    ref_sim = Simulator(seed_module, optimize=False)
    warm_sim = Simulator(reloaded, optimize=False)
    for cycle in range(20):
        assert ref_sim.step({}) == warm_sim.step({}), f"cycle {cycle} diverged"

    speedup = 0.0
    best_warm_time = float("inf")
    # up to three measurement attempts: min-of-interleaved-rounds is
    # robust, but a noisy shared runner can still poison one attempt
    for _attempt in range(3):
        cold_times, warm_times = [], []
        for _ in range(3):
            t0 = time.perf_counter()
            cold()
            cold_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            warm()
            warm_times.append(time.perf_counter() - t0)
        best_warm_time = min(best_warm_time, min(warm_times))
        speedup = max(speedup, min(cold_times) / min(warm_times))
        if speedup >= 5.0:
            break
    benchmark.extra_info["warm_start_speedup"] = round(speedup, 3)
    benchmark.extra_info["warm_start_ms"] = round(best_warm_time * 1000, 1)
    benchmark.pedantic(lambda: speedup, rounds=1, iterations=1)

    assert speedup >= 5.0, (
        f"warm start only {speedup:.2f}x over a cold processor compile"
    )


FLEET_WORKLOADS = 1024
FLEET_LANES_PER_WORKER = 256
FLEET_BUDGET = 600


def _fleet_suite():
    """~1000 uniform loop-then-halt workloads (distinct output values
    for the bit-identity check).  Uniform run lengths retire whole
    waves at once, so every fleet wave is exactly
    ``FLEET_LANES_PER_WORKER`` lanes wide and one warm-up pass visits
    every compiled batch width the measured runs will use."""
    distinct = [
        assemble(f"""
.org 0x400
    li   $s0, 20
loop:
    addiu $s0, $s0, -1
    bgt  $s0, $zero, loop
    li   $t9, 0x40000000
    li   $t1, {k}
    sw   $t1, 0($t9)
    li   $t9, 0x40000004
    sw   $zero, 0($t9)
""")
        for k in range(16)
    ]
    return [distinct[i % 16] for i in range(FLEET_WORKLOADS)]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="the fleet speedup gate needs >= 2 CPUs (CI runners have 4)",
)
def test_fleet_speedup(benchmark, tmp_path):
    """The multiprocess fleet must push a ~1000-workload sweep through
    >= 2x faster (aggregate lane-cycles/second) than the single-process
    batched engine, with bit-identical results.

    Both sides run warm: the single-process comparator reuses the
    process-global toolchain caches, and the fleet is one persistent
    ``FleetRunner`` whose workers pay their store warm-start and batch
    codegen during the warm-up pass.  Interleaved min-of-rounds
    sampling with retry attempts keeps the ratio stable on noisy
    machines; the measured ratio lands in the benchmark JSON as
    ``extra_info['fleet_speedup']`` for the regression gate.
    """
    from repro.fleet import FleetRunner
    from repro.proc.machine import run_workloads
    from repro.store import ArtifactStore

    shards = min(4, os.cpu_count() or 1)
    exes = _fleet_suite()
    single = run_workloads(exes, max_cycles=FLEET_BUDGET)  # warms in-process
    suite_lane_cycles = sum(r.cycles for r in single)

    with FleetRunner(
        shards=shards,
        lanes_per_worker=FLEET_LANES_PER_WORKER,
        store=ArtifactStore(tmp_path / "store"),
    ) as fleet:
        fleet_results = fleet.run(exes, max_cycles=FLEET_BUDGET)  # warms workers
        assert [
            (r.outputs, r.cycles, r.violations, r.halted) for r in fleet_results
        ] == [(r.outputs, r.cycles, r.violations, r.halted) for r in single]

        speedup = 0.0
        best_fleet_time = float("inf")
        # up to three measurement attempts: min-of-interleaved-rounds
        # is robust, but a noisy runner can still poison one attempt
        for _attempt in range(3):
            single_times, fleet_times = [], []
            for _ in range(2):
                t0 = time.perf_counter()
                run_workloads(exes, max_cycles=FLEET_BUDGET)
                single_times.append(time.perf_counter() - t0)
                t0 = time.perf_counter()
                fleet.run(exes, max_cycles=FLEET_BUDGET)
                fleet_times.append(time.perf_counter() - t0)
            best_fleet_time = min(best_fleet_time, min(fleet_times))
            speedup = max(speedup, min(single_times) / min(fleet_times))
            if speedup >= 2.0:
                break
        merged = fleet.stats.merged()

    benchmark.extra_info["fleet_speedup"] = round(speedup, 3)
    benchmark.extra_info["fleet_lane_cycles_per_sec"] = round(
        suite_lane_cycles / best_fleet_time
    )
    benchmark.extra_info["fleet_occupancy"] = merged["occupancy"]
    benchmark.pedantic(lambda: speedup, rounds=1, iterations=1)

    assert not merged["degraded"], fleet.errors
    assert merged["requeues"] == 0 and merged["deaths"] == 0
    # every worker warm-started from the shared store, never recompiled
    assert merged["toolchain"].get("store_hit:compile", 0) >= shards
    assert speedup >= 2.0, (
        f"fleet only {speedup:.2f}x over single-process at {shards} shards"
    )


def test_interpreter_speed_tdma(benchmark):
    lat = two_level()
    info = analyze(parse_program(samples.TDMA, "tdma"), lat)

    def run_interp():
        it = Interpreter(info, lat)
        it.run(200)
        return it.delta

    benchmark(run_interp)


def test_assembler_speed(benchmark):
    src = ALL_WORKLOADS["sha"].source
    benchmark(lambda: assemble(src))


def test_glift_augmentation_speed(benchmark):
    lat = two_level()
    design = compile_program(samples.ADDER_TRACK, lat, secure=False, name="adder")
    netlist = bit_blast(design.module)
    benchmark(lambda: glift_transform(netlist))


def test_synthesis_speed_tdma(benchmark):
    lat = two_level()
    design = compile_program(samples.TDMA, lat, name="tdma")
    benchmark(lambda: synthesize(design.module))

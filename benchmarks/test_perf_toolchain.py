"""Toolchain performance benchmarks (not a paper figure).

Tracks the speed of the pieces a user iterates on: the Sapper compiler,
the HDL simulator (cycles/second on the full processor), the reference
interpreter, the assembler, and GLIFT netlist augmentation.
"""

import pytest

from repro.hdl import Simulator, synthesize
from repro.hdl.netlist import bit_blast
from repro.glift import glift_transform
from repro.lattice import two_level
from repro.mips.assembler import assemble
from repro.proc.design import generate_design
from repro.proc.machine import compile_processor
from repro.sapper import samples
from repro.sapper.analysis import analyze
from repro.sapper.compiler import compile_program
from repro.sapper.parser import parse_program
from repro.sapper.semantics import Interpreter
from repro.workloads import ALL_WORKLOADS


def test_compile_tdma(benchmark):
    lat = two_level()
    benchmark(lambda: compile_program(samples.TDMA, lat, name="tdma"))


def test_parse_processor_source(benchmark):
    src = generate_design()
    benchmark(lambda: parse_program(src, "proc"))


def test_compile_processor_full(benchmark):
    src = generate_design()
    lat = two_level()
    info = analyze(parse_program(src, "proc"), lat)
    benchmark.pedantic(
        lambda: compile_program(info, lat, name="proc"), rounds=2, iterations=1
    )


def test_hdl_simulation_speed(benchmark):
    design = compile_processor(two_level(), secure=True)
    sim = Simulator(design.module)

    def run_500():
        for _ in range(500):
            sim.step({})
        return sim.cycles

    benchmark.pedantic(run_500, rounds=3, iterations=1)


def test_interpreter_speed_tdma(benchmark):
    lat = two_level()
    info = analyze(parse_program(samples.TDMA, "tdma"), lat)

    def run_interp():
        it = Interpreter(info, lat)
        it.run(200)
        return it.delta

    benchmark(run_interp)


def test_assembler_speed(benchmark):
    src = ALL_WORKLOADS["sha"].source
    benchmark(lambda: assemble(src))


def test_glift_augmentation_speed(benchmark):
    lat = two_level()
    design = compile_program(samples.ADDER_TRACK, lat, secure=False, name="adder")
    netlist = bit_blast(design.module)
    benchmark(lambda: glift_transform(netlist))


def test_synthesis_speed_tdma(benchmark):
    lat = two_level()
    design = compile_program(samples.TDMA, lat, name="tdma")
    benchmark(lambda: synthesize(design.module))

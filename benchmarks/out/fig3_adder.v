// ---- CHECK variant ----
module adder_check(clk, in_b, in_b__tag, in_c, in_c__tag, out, out__tag, violation);
  input clk;
  input [7:0] in_b;
  input in_b__tag;
  input [7:0] in_c;
  input in_c__tag;
  output [7:0] out;
  output out__tag;
  output violation;
  reg [7:0] a;
  reg [7:0] b;
  reg b__tag;
  reg [7:0] c;
  reg c__tag;

  wire [7:0] v_a_4 = ((in_b__tag | in_c__tag) ? a : (in_b & in_c));
  wire vio_5 = (in_b__tag | in_c__tag);
  wire ot_out_21 = 1'd0;

  always @(posedge clk) begin
    a <= v_a_4;
    b <= in_b;
    c <= in_c;
    b__tag <= in_b__tag;
    c__tag <= in_c__tag;
  end

  assign out = v_a_4;
  assign out__tag = ot_out_21;
  assign violation = vio_5;
endmodule

// ---- TRACK variant ----
module adder_track(clk, in_b, in_b__tag, in_c, in_c__tag, out, out__tag, violation);
  input clk;
  input [7:0] in_b;
  input in_b__tag;
  input [7:0] in_c;
  input in_c__tag;
  output [7:0] out;
  output out__tag;
  output violation;
  reg [7:0] a;
  reg a__tag;
  reg [7:0] b;
  reg b__tag;
  reg [7:0] c;
  reg c__tag;
  reg stag__main;

  wire tg_2 = (in_b__tag | stag__main);
  wire tg_3 = (in_c__tag | stag__main);
  wire [7:0] v_a_4 = (in_b & in_c);
  wire tg_5 = ((tg_2 | tg_3) | stag__main);
  wire tg_6 = (tg_5 | stag__main);
  wire vio_9 = (stag__main & (~stag__main));

  always @(posedge clk) begin
    a <= v_a_4;
    b <= in_b;
    c <= in_c;
    a__tag <= tg_5;
    b__tag <= tg_2;
    c__tag <= tg_3;
    stag__main <= stag__main;
  end

  assign out = v_a_4;
  assign out__tag = tg_6;
  assign violation = vio_9;
endmodule
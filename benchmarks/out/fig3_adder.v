// ---- CHECK variant ----
module adder_check(clk, in_b, in_b__tag, in_c, in_c__tag, out, out__tag, violation);
  input clk;
  input [7:0] in_b;
  input in_b__tag;
  input [7:0] in_c;
  input in_c__tag;
  output [7:0] out;
  output out__tag;
  output violation;
  reg [7:0] a;
  reg [7:0] b;
  reg b__tag;
  reg [7:0] c;
  reg c__tag;

  wire fok_1 = ((1'd0 & (~1'd0)) == 1'd0);
  wire act_main_2 = (1'd1 && (1'd1 && fok_1));
  wire chk_3 = (((in_b__tag | in_c__tag) & (~1'd0)) == 1'd0);
  wire [7:0] v_a_4 = (chk_3 ? (in_b & in_c) : a);
  wire vio_5 = (1'd0 || (act_main_2 && (!chk_3)));
  wire chk_6 = ((1'd0 & (~1'd0)) == 1'd0);
  wire [7:0] v_out_7 = (chk_6 ? v_a_4 : 8'd0);
  wire vio_8 = (vio_5 || (act_main_2 && (!chk_6)));
  wire gok_9 = (((1'd0 & (~1'd0)) == 1'd0) && ((1'd0 & (~1'd0)) == 1'd0));
  wire gtk_10 = (act_main_2 && gok_9);
  wire vio_11 = (vio_8 || (act_main_2 && (!gok_9)));
  wire [7:0] f_main_12 = (act_main_2 ? v_a_4 : a);
  wire [7:0] f_main_13 = (act_main_2 ? in_b : b);
  wire f_main_14 = (act_main_2 ? in_b__tag : b__tag);
  wire [7:0] f_main_15 = (act_main_2 ? in_c : c);
  wire f_main_16 = (act_main_2 ? in_c__tag : c__tag);
  wire [7:0] f_main_17 = (act_main_2 ? v_out_7 : 8'd0);
  wire f_main_18 = (act_main_2 ? vio_11 : 1'd0);
  wire fall_ok_19 = (1'd0 || (1'd1 && fok_1));
  wire vio_20 = (f_main_18 || (1'd1 && (!fall_ok_19)));
  wire ot_out_21 = 1'd0;

  always @(posedge clk) begin
    a <= f_main_12;
    b <= f_main_13;
    c <= f_main_15;
    b__tag <= f_main_14;
    c__tag <= f_main_16;
  end

  assign out = f_main_17;
  assign out__tag = ot_out_21;
  assign violation = vio_20;
endmodule

// ---- TRACK variant ----
module adder_track(clk, in_b, in_b__tag, in_c, in_c__tag, out, out__tag, violation);
  input clk;
  input [7:0] in_b;
  input in_b__tag;
  input [7:0] in_c;
  input in_c__tag;
  output [7:0] out;
  output out__tag;
  output violation;
  reg [7:0] a;
  reg a__tag;
  reg [7:0] b;
  reg b__tag;
  reg [7:0] c;
  reg c__tag;
  reg stag__main;

  wire act_main_1 = (1'd1 && (1'd1 && 1'd1));
  wire tg_2 = (in_b__tag | stag__main);
  wire tg_3 = (in_c__tag | stag__main);
  wire [7:0] v_a_4 = (in_b & in_c);
  wire tg_5 = ((tg_2 | tg_3) | stag__main);
  wire tg_6 = (tg_5 | stag__main);
  wire gok_7 = ((stag__main & (~stag__main)) == 1'd0);
  wire gtk_8 = (act_main_1 && gok_7);
  wire vio_9 = (1'd0 || (act_main_1 && (!gok_7)));
  wire [7:0] f_main_10 = (act_main_1 ? v_a_4 : a);
  wire f_main_11 = (act_main_1 ? tg_5 : a__tag);
  wire [7:0] f_main_12 = (act_main_1 ? in_b : b);
  wire f_main_13 = (act_main_1 ? tg_2 : b__tag);
  wire [7:0] f_main_14 = (act_main_1 ? in_c : c);
  wire f_main_15 = (act_main_1 ? tg_3 : c__tag);
  wire [7:0] f_main_16 = (act_main_1 ? v_a_4 : 8'd0);
  wire f_main_17 = (act_main_1 ? tg_6 : 1'd0);
  wire f_main_18 = (act_main_1 ? vio_9 : 1'd0);
  wire fall_ok_19 = (1'd0 || (1'd1 && 1'd1));
  wire vio_20 = (f_main_18 || (1'd1 && (!fall_ok_19)));

  always @(posedge clk) begin
    a <= f_main_10;
    b <= f_main_12;
    c <= f_main_14;
    a__tag <= f_main_11;
    b__tag <= f_main_13;
    c__tag <= f_main_15;
    stag__main <= stag__main;
  end

  assign out = f_main_16;
  assign out__tag = f_main_17;
  assign violation = vio_20;
endmodule
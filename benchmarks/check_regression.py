"""Benchmark-regression gate for CI.

Compares a pytest-benchmark ``--benchmark-json`` dump of
``benchmarks/test_perf_toolchain.py`` against the committed
``benchmarks/baseline.json``::

    python benchmarks/check_regression.py BENCH.json            # check
    python benchmarks/check_regression.py BENCH.json --update   # rebaseline

Three metric classes, with different strictness:

* **gates** -- synthesized cell census of the secure processor
  (machine-independent): fail if any count grows more than
  ``--tolerance`` (default 20%) over baseline.
* **ratios** -- machine-relative speedups measured on the same host in
  the same run (batched vs scalar simulation): fail if any ratio drops
  more than ``--tolerance`` below baseline.
* **mean seconds** -- absolute per-benchmark timings.  These vary with
  the runner's machine class, so by default they only fail beyond
  ``--throughput-tolerance`` (default 3x, catching catastrophic
  regressions such as a lost compilation cache); pass ``--strict`` to
  gate them at ``--tolerance`` too, e.g. on a dedicated perf host.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

BASELINE = pathlib.Path(__file__).parent / "baseline.json"

#: Absolute slack on threshold comparisons so a metric *exactly at* the
#: limit passes despite binary-float rounding (0.8 * 1.5 != 1.2).
EPS = 1e-9

#: extra_info keys treated as machine-independent gate counts
GATE_KEYS = ("gates_raw", "gates_optimized", "dff_optimized", "levels_optimized")
#: extra_info keys treated as machine-relative ratios (bigger is better)
RATIO_KEYS = ("batch_speedup", "swar_speedup", "compaction_speedup",
              "vector_speedup", "warm_start_speedup", "fleet_speedup",
              "tag_prune_ratio")


def collect(bench_json: dict) -> dict:
    """Flatten a pytest-benchmark JSON dump into the baseline schema."""
    gates: dict[str, int] = {}
    ratios: dict[str, float] = {}
    means: dict[str, float] = {}
    names: list[str] = []
    for bench in bench_json.get("benchmarks", []):
        name = bench["name"]
        names.append(name)
        mean = bench["stats"]["mean"]
        # tests that benchmark a stub lambda only to attach extra_info
        # carry no meaningful timing; keep them out of the timing gate
        if mean >= 1e-5:
            means[name] = mean
        for key, value in (bench.get("extra_info") or {}).items():
            if key in GATE_KEYS:
                gates[key] = value
            elif key in RATIO_KEYS:
                ratios[key] = value
    return {"gates": gates, "ratios": ratios, "mean_seconds": means, "names": names}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", default=str(BASELINE))
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="relative tolerance for gates and ratios (default 0.20)")
    parser.add_argument("--throughput-tolerance", type=float, default=3.0,
                        help="absolute-timing slowdown factor that fails the "
                             "gate on shared runners (default 3.0)")
    parser.add_argument("--strict", action="store_true",
                        help="gate absolute timings at --tolerance as well")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run and exit")
    args = parser.parse_args(argv)

    current = collect(json.loads(pathlib.Path(args.bench_json).read_text()))
    baseline_path = pathlib.Path(args.baseline)

    if args.update:
        snapshot = {k: v for k, v in current.items() if k != "names"}
        baseline_path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"baseline rewritten: {baseline_path}")
        return 0

    baseline = json.loads(baseline_path.read_text())
    failures: list[str] = []
    checked = 0

    for key, base in baseline.get("gates", {}).items():
        cur = current["gates"].get(key)
        if cur is None:
            failures.append(f"gates: {key} missing from run")
            continue
        checked += 1
        limit = base * (1 + args.tolerance)
        status = "FAIL" if cur > limit + EPS else "ok"
        print(f"[{status}] gates/{key}: {cur} vs baseline {base} (limit {limit:.0f})")
        if cur > limit + EPS:
            failures.append(f"gates/{key}: {cur} > {limit:.0f}")

    for key, base in baseline.get("ratios", {}).items():
        cur = current["ratios"].get(key)
        if cur is None:
            failures.append(f"ratios: {key} missing from run")
            continue
        checked += 1
        floor = base * (1 - args.tolerance)
        status = "FAIL" if cur < floor - EPS else "ok"
        print(f"[{status}] ratios/{key}: {cur:.2f} vs baseline {base:.2f} (floor {floor:.2f})")
        if cur < floor - EPS:
            failures.append(f"ratios/{key}: {cur:.2f} < {floor:.2f}")

    factor = (1 + args.tolerance) if args.strict else args.throughput_tolerance
    for name, base in baseline.get("mean_seconds", {}).items():
        cur = current["mean_seconds"].get(name)
        if cur is None:
            if name in current.get("names", ()):
                # the benchmark still runs but now finishes below the
                # stub-filter threshold: an improvement, not a regression
                print(f"[ok] time/{name}: below measurable threshold "
                      f"(baseline {base * 1e3:.2f} ms)")
                checked += 1
            else:
                failures.append(f"timing: {name} missing from run")
            continue
        checked += 1
        limit = base * factor
        status = "FAIL" if cur > limit + EPS else "ok"
        print(f"[{status}] time/{name}: {cur * 1e3:.2f} ms vs baseline "
              f"{base * 1e3:.2f} ms (limit {limit * 1e3:.2f} ms)")
        if cur > limit + EPS:
            failures.append(f"time/{name}: {cur * 1e3:.2f} ms > {limit * 1e3:.2f} ms")

    if failures:
        print(f"\n{len(failures)} regression(s):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"\nall {checked} metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E8 -- section 4.6: the diamond lattice.

Supporting the four-point diamond costs Sapper only a few percent more
than the two-level lattice (one extra tag bit), while Caisson must
duplicate all resources into four pieces.
"""

from conftest import save_artifact

from repro.eval.figures import sec46_diamond_overhead


def test_sec46_diamond(benchmark, artifact_dir):
    result = benchmark.pedantic(sec46_diamond_overhead, rounds=1, iterations=1)
    lines = [f"{k}: {v:.4f}" if isinstance(v, float) else f"{k}: {v}" for k, v in result.items()]
    save_artifact("sec46_diamond.txt", "\n".join(lines))

    assert result["two_level_tag_bits"] == 1
    assert result["diamond_tag_bits"] == 2          # "one more bit for each tag"
    # a few percent extra area (paper: ~3% more)
    assert 0.0 < result["extra_overhead"] < 0.15
    # memory tag store: 1/32 -> 2/32
    assert abs(result["two_level_memory_ratio"] - 1.03125) < 1e-6
    assert abs(result["diamond_memory_ratio"] - 1.0625) < 1e-6
    # Caisson needs ~4 copies for the diamond
    assert result["caisson_diamond_area_ratio"] > 3.0

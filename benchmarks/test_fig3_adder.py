"""E1 -- Figure 3: the compiler's generated Verilog for the 8-bit design.

Regenerates both the CHECK (enforced) and TRACK (dynamic) variants and
benchmarks the full compile-to-Verilog path.
"""

from conftest import save_artifact

from repro.lattice import two_level
from repro.sapper import samples
from repro.sapper.compiler import compile_program
from repro.hdl import emit_verilog


def test_fig3_generated_verilog(benchmark, artifact_dir):
    lat = two_level()

    def compile_both():
        check = compile_program(samples.ADDER_CHECK, lat, name="adder_check")
        track = compile_program(samples.ADDER_TRACK, lat, name="adder_track")
        return emit_verilog(check.module), emit_verilog(track.module)

    check_v, track_v = benchmark(compile_both)
    # CHECK variant carries an enforcement guard; TRACK only tag joins.
    assert "a__tag" not in check_v      # enforced reg w/o setTag -> constant tag
    assert "a__tag" in track_v          # dynamic reg gets a tag flop
    assert "violation" in check_v
    save_artifact(
        "fig3_adder.v",
        "// ---- CHECK variant ----\n" + check_v + "\n\n// ---- TRACK variant ----\n" + track_v,
    )

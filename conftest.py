"""Repository-wide pytest configuration: hypothesis profiles.

Two registered profiles:

* ``dev`` (default) -- the interactive profile: random seeds, no
  deadline (compiled-module cache misses dwarf any single example).
* ``ci`` -- deterministic and more thorough: ``derandomize=True`` so
  the tier-1 matrix cannot flake on a fresh unlucky seed, with a higher
  example budget for the property suites that do not pin their own.

Select with ``HYPOTHESIS_PROFILE=ci pytest ...`` (the CI workflow does).
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

"""The TDMA secure controller of the paper's Figure 4.

A trusted (L) timer in the Master/Slave states controls how long the
untrusted Pipeline child may run; when the timer expires, control
returns to Master no matter what the child was doing.  We run the
design twice with different HIGH inputs and show that everything a
low observer can see -- including the schedule itself -- is identical.

Run:  python examples/tdma_controller.py
"""

from repro.lattice import two_level
from repro.sapper import samples
from repro.sapper.analysis import analyze
from repro.sapper.noninterference import configs_equivalent
from repro.sapper.parser import parse_program
from repro.sapper.semantics import Interpreter

lattice = two_level()
info = analyze(parse_program(samples.TDMA, "tdma"), lattice)

print(samples.TDMA)


def run(hi_value: int) -> Interpreter:
    it = Interpreter(info, lattice)
    for _ in range(230):
        it.run_cycle({"hi_in": (hi_value, "H"), "lo_in": (3, "L")})
    return it


run_a = run(hi_value=5)
run_b = run(hi_value=90210)

print("=== two runs, different HIGH inputs ===")
print(f"run A: acc={run_a.sigma['acc']:>8} tag={run_a.theta_reg['acc']}   "
      f"lo_acc={run_a.sigma['lo_acc']} tag={run_a.theta_reg['lo_acc']}")
print(f"run B: acc={run_b.sigma['acc']:>8} tag={run_b.theta_reg['acc']}   "
      f"lo_acc={run_b.sigma['lo_acc']} tag={run_b.theta_reg['lo_acc']}")
print(f"schedule position (rho): A={run_a.rho['_root']}  B={run_b.rho['_root']}")

report = configs_equivalent(run_a, run_b, observer="L")
print(f"\nL-equivalent after 230 cycles: {bool(report)}")
assert report, report.mismatches
assert run_a.sigma["acc"] != run_b.sigma["acc"]          # high state differs...
assert run_a.sigma["lo_acc"] == run_b.sigma["lo_acc"]    # ...low state does not
print("The high accumulator differs; everything low-observable is identical.")

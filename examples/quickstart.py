"""Quickstart: compile and run the 8-bit design of the paper's Figure 3.

Shows the whole Sapper flow in ~40 lines: write a design with an
enforced register, compile it (the compiler inserts the dynamic check),
look at the generated Verilog, and watch the check fire at run time.

Run:  python examples/quickstart.py
"""

from repro.hdl import Simulator, emit_verilog
from repro.lattice import two_level
from repro.sapper import samples
from repro.sapper.compiler import compile_program

lattice = two_level()

# Figure 3, CHECK variant: register `a` is enforced tagged at L, so the
# assignment `a := b & c` is guarded by a noninterference check.
design = compile_program(samples.ADDER_CHECK, lattice, name="adder_check")

print("=== generated Verilog (excerpt) ===")
verilog = emit_verilog(design.module)
print("\n".join(verilog.splitlines()[:12]), "\n...\n")

sim = Simulator(design.module)

# Drive the dynamic inputs with tags: 0 encodes L, 1 encodes H.
print("=== execution ===")
low = sim.step({"in_b": 0xF0, "in_b__tag": 0, "in_c": 0x3C, "in_c__tag": 0})
print(f"low inputs : a := b & c executes,  out={low['out']:#04x}, violation={low['violation']}")

high = sim.step({"in_b": 0xFF, "in_b__tag": 1, "in_c": 0x3C, "in_c__tag": 0})
print(f"high input : check fails, write suppressed, violation={high['violation']}")
print(f"             register a still holds {sim.regs['a']:#04x} (the last legal value)")

assert low["violation"] == 0 and high["violation"] == 1
print("\nThe compiler inserted the CHECK of Figure 3 automatically.")

# Batched lanes: the same design as 4 independent machines advanced by
# ONE vectorized step call -- bit-identical to 4 scalar simulators.
# (CLI equivalent:  python -m repro simulate design.sapper --lanes 4)
from repro.hdl import BatchSimulator

batch = BatchSimulator(design.module, lanes=4)
stimuli = [
    {"in_b": 0xF0, "in_b__tag": 0, "in_c": 0x3C, "in_c__tag": 0},  # legal
    {"in_b": 0xFF, "in_b__tag": 1, "in_c": 0x3C, "in_c__tag": 0},  # high b
    {"in_b": 0x0F, "in_b__tag": 0, "in_c": 0x33, "in_c__tag": 1},  # high c
    {"in_b": 0x55, "in_b__tag": 0, "in_c": 0xAA, "in_c__tag": 0},  # legal
]
outs = batch.step(stimuli)
print("\n=== batched execution (4 lanes, one step call) ===")
for lane, out in enumerate(outs):
    print(f"lane {lane}: out={out['out']:#04x} violation={out['violation']}")
assert [o["violation"] for o in outs] == [0, 1, 1, 0]

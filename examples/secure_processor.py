"""Run a real program on the Sapper-compiled MIPS processor.

Assembles a SHA-1 computation, runs it on (a) the golden reference
machine and (b) the secure pipelined processor compiled from Sapper
source, and cross-compares the outputs -- the functional validation of
the paper's section 4.3.  Then demonstrates enforcement: the same
processor blocks a high process from contaminating low memory.

Run:  python examples/secure_processor.py      (~10 s: full RTL simulation)
"""

from repro.mips.assembler import assemble
from repro.proc.machine import SapperMachine, run_on_iss
from repro.workloads import ALL_WORKLOADS

wl = ALL_WORKLOADS["sha"]
print(f"workload: {wl.description}")

exe = assemble(wl.source)
iss = run_on_iss(exe)
print(f"reference machine: {iss.instret} instructions, digest words:")
print("  " + " ".join(f"{w:08x}" for w in iss.outputs))

machine = SapperMachine()
machine.load(assemble(wl.source))
result = machine.run(wl.max_cycles)
print(f"sapper processor : {result.cycles} cycles, {result.violations} violations")
print("  " + " ".join(f"{w:08x}" for w in result.outputs))
assert tuple(result.outputs) == tuple(iss.outputs) == wl.expected
print("outputs identical -- and hashlib agrees.\n")

print("=== enforcement demo: high code attacks low memory ===")
attack = """
.org 0x400
    la   $t0, hcode
    jr   $t0
.org 0x2000
hcode:                       # this region is tagged H below
    li   $t1, 0x10000        # low-tagged memory
    li   $t2, 0xBAD
    sw   $t2, 0($t1)         # blocked by the inserted check
spin:
    b    spin
"""
m2 = SapperMachine()
m2.load(assemble(attack))
m2.tag_region(0x2000, 0x2100, "H")
for _ in range(2500):
    m2.step()
print(f"low word after attack: {m2.read_word(0x10000):#x} (unchanged)")
print(f"dynamic checks fired : {m2.violations}")
assert m2.read_word(0x10000) == 0 and m2.violations > 0
print("the hardware itself refused the flow -- no kernel involved.")

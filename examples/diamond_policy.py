"""A four-level "diamond" policy (paper, section 4.6).

The diamond lattice L < {M1, M2} < H expresses secrecy and integrity in
one system: M1 and M2 are incomparable, so data may never flow between
them directly -- only up to H.  Sapper supports it by changing nothing
but the lattice: tags grow to two bits and the checks compare four
levels.

Run:  python examples/diamond_policy.py
"""

from repro.lattice import diamond, encode
from repro.sapper.analysis import analyze
from repro.sapper.parser import parse_program
from repro.sapper.semantics import Interpreter

lattice = diamond()
enc = encode(lattice)
print(f"lattice: {lattice.elements}, encoded in {enc.width} bits "
      f"({', '.join(f'{e}={enc.encode(e):02b}' for e in lattice.elements)})")

SRC = """
reg[15:0] vault_m1 : M1;       // department 1's secret
reg[15:0] vault_m2 : M2;       // department 2's secret
reg[15:0] shared;              // dynamic: takes the level of its contents
reg[15:0] audit : H;           // top-level sink may read everything
input[15:0] x1 : M1;
input[15:0] x2 : M2;
output[15:0] bulletin : L;     // public output

state main : L = {
    vault_m1 := x1;
    vault_m2 := x2;
    shared := vault_m1 + vault_m2;      // join(M1, M2) = H
    audit := shared;                    // ok: H may receive H
    vault_m1 := vault_m2 otherwise skip;   // blocked: M2 not <= M1
    bulletin := shared otherwise bulletin := 0;  // blocked: H not <= L
    goto main;
}
"""

info = analyze(parse_program(SRC, "diamond"), lattice)
it = Interpreter(info, lattice)
out = it.run_cycle({"x1": (1000, "M1"), "x2": (337, "M2")})

print(f"\nvault_m1 = {it.sigma['vault_m1']} (tag {it.theta_reg['vault_m1']})")
print(f"vault_m2 = {it.sigma['vault_m2']} (tag {it.theta_reg['vault_m2']})")
print(f"shared   = {it.sigma['shared']} (tag {it.theta_reg['shared']}  <- join of M1 and M2)")
print(f"audit    = {it.sigma['audit']} (tag {it.theta_reg['audit']})")
print(f"bulletin = {out['bulletin']}  (the H sum was refused at the L port)")
print(f"violations recorded: {[v.kind for v in it.violations]}")

assert it.theta_reg["shared"] == "H"
assert it.sigma["audit"] == 1337
assert it.sigma["vault_m1"] == 1000          # cross-department move blocked
assert out["bulletin"] == (0, "L")
print("\nM1 and M2 stay isolated; only H sees their combination.")

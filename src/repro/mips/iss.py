"""Golden instruction-set simulator: the "real machine" of section 4.3.

Executes assembled programs sequentially (no pipeline, no cache) with
the same architectural semantics as the Sapper processor: little-endian
byte order, no branch delay slots, the softfloat FP model, MMIO output
at :data:`MMIO_OUT` and halt at :data:`MMIO_HALT`, ``HI``/``LO`` for
mult/div, and the two security instructions treated as no-ops (they
only affect tags, which the reference machine does not model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mips import softfloat as sf
from repro.mips.assembler import Executable
from repro.mips.isa import Instruction, decode

MMIO_OUT = 0x40000000
MMIO_HALT = 0x40000004

MASK32 = 0xFFFFFFFF


def _s32(x: int) -> int:
    return x - 0x100000000 if x & 0x80000000 else x


@dataclass
class Iss:
    """Sequential MIPS interpreter over a sparse word-addressed memory."""

    memory: dict[int, int] = field(default_factory=dict)   # word addr -> word
    pc: int = 0x400
    regs: list[int] = field(default_factory=lambda: [0] * 32)
    fregs: list[int] = field(default_factory=lambda: [0] * 32)
    hi: int = 0
    lo: int = 0
    fcc: int = 0
    halted: bool = False
    instret: int = 0
    outputs: list[int] = field(default_factory=list)
    #: tag side-effects requested via setrtag (captured for tests)
    tag_requests: list[tuple[int, int]] = field(default_factory=list)
    timer_requests: list[int] = field(default_factory=list)

    @classmethod
    def load(cls, exe: Executable, entry: int | None = None) -> Iss:
        return cls(memory=exe.as_memory(), pc=entry if entry is not None else exe.entry)

    # -- memory helpers -----------------------------------------------------------

    def read_word(self, addr: int) -> int:
        return self.memory.get(addr >> 2 & (MASK32 >> 2), 0)

    def write_word(self, addr: int, value: int) -> None:
        if addr & MASK32 == MMIO_OUT:
            self.outputs.append(value & MASK32)
            return
        if addr & MASK32 == MMIO_HALT:
            self.halted = True
            return
        self.memory[addr >> 2 & (MASK32 >> 2)] = value & MASK32

    def read_byte(self, addr: int) -> int:
        return self.read_word(addr) >> ((addr & 3) * 8) & 0xFF

    def write_byte(self, addr: int, value: int) -> None:
        if addr & MASK32 in (MMIO_OUT, MMIO_HALT):
            self.write_word(addr, value)
            return
        shift = (addr & 3) * 8
        word = self.read_word(addr)
        self.write_word(addr, (word & ~(0xFF << shift)) | ((value & 0xFF) << shift))

    def read_half(self, addr: int) -> int:
        return self.read_byte(addr) | (self.read_byte(addr + 1) << 8)

    def write_half(self, addr: int, value: int) -> None:
        self.write_byte(addr, value & 0xFF)
        self.write_byte(addr + 1, value >> 8 & 0xFF)

    # -- execution -------------------------------------------------------------------

    def step(self) -> None:
        if self.halted:
            return
        word = self.read_word(self.pc)
        inst = decode(word)
        self.instret += 1
        next_pc = (self.pc + 4) & MASK32
        if inst is None:  # unknown encodings behave as nops
            self.pc = next_pc
            return
        self.pc = self._execute(inst, next_pc)
        self.regs[0] = 0

    def run(self, max_steps: int = 10_000_000) -> int:
        steps = 0
        while not self.halted and steps < max_steps:
            self.step()
            steps += 1
        if not self.halted:
            raise RuntimeError(f"ISS did not halt within {max_steps} steps (pc={self.pc:#x})")
        return steps

    # -- the ALU ------------------------------------------------------------------------

    def _execute(self, i: Instruction, next_pc: int) -> int:
        r, f = self.regs, self.fregs
        name = i.name
        branch = next_pc

        def wr(idx: int, value: int) -> None:
            if idx:
                r[idx] = value & MASK32

        if name in ("add", "addu"):
            wr(i.rd, r[i.rs] + r[i.rt])
        elif name == "addiu":
            wr(i.rt, r[i.rs] + i.simm)
        elif name in ("sub", "subu"):
            wr(i.rd, r[i.rs] - r[i.rt])
        elif name == "and":
            wr(i.rd, r[i.rs] & r[i.rt])
        elif name == "andi":
            wr(i.rt, r[i.rs] & i.imm)
        elif name == "or":
            wr(i.rd, r[i.rs] | r[i.rt])
        elif name == "ori":
            wr(i.rt, r[i.rs] | i.imm)
        elif name == "xor":
            wr(i.rd, r[i.rs] ^ r[i.rt])
        elif name == "xori":
            wr(i.rt, r[i.rs] ^ i.imm)
        elif name == "nor":
            wr(i.rd, ~(r[i.rs] | r[i.rt]))
        elif name == "sll":
            wr(i.rd, r[i.rt] << i.shamt)
        elif name == "srl":
            wr(i.rd, r[i.rt] >> i.shamt)
        elif name == "sra":
            wr(i.rd, _s32(r[i.rt]) >> i.shamt)
        elif name == "sllv":
            wr(i.rd, r[i.rt] << (r[i.rs] & 31))
        elif name == "srlv":
            wr(i.rd, r[i.rt] >> (r[i.rs] & 31))
        elif name == "srav":
            wr(i.rd, _s32(r[i.rt]) >> (r[i.rs] & 31))
        elif name == "mult":
            product = _s32(r[i.rs]) * _s32(r[i.rt])
            self.lo = product & MASK32
            self.hi = product >> 32 & MASK32
        elif name == "multu":
            product = r[i.rs] * r[i.rt]
            self.lo = product & MASK32
            self.hi = product >> 32 & MASK32
        elif name == "div":
            a, b = _s32(r[i.rs]), _s32(r[i.rt])
            if b == 0:
                self.lo, self.hi = MASK32, r[i.rs]
            else:
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                self.lo = q & MASK32
                self.hi = (a - q * b) & MASK32
        elif name == "mflo":
            wr(i.rd, self.lo)
        elif name == "mfhi":
            wr(i.rd, self.hi)
        elif name == "slt":
            wr(i.rd, int(_s32(r[i.rs]) < _s32(r[i.rt])))
        elif name == "sltu":
            wr(i.rd, int(r[i.rs] < r[i.rt]))
        elif name == "slti":
            wr(i.rt, int(_s32(r[i.rs]) < i.simm))
        elif name == "sltiu":
            wr(i.rt, int(r[i.rs] < (i.simm & MASK32)))
        elif name == "lui":
            wr(i.rt, i.imm << 16)
        # branches (no delay slots in this reproduction)
        elif name in ("beq", "beql"):
            if r[i.rs] == r[i.rt]:
                branch = (next_pc + (i.simm << 2)) & MASK32
        elif name in ("bne", "bnel"):
            if r[i.rs] != r[i.rt]:
                branch = (next_pc + (i.simm << 2)) & MASK32
        elif name == "bgt":
            if _s32(r[i.rs]) > _s32(r[i.rt]):
                branch = (next_pc + (i.simm << 2)) & MASK32
        elif name in ("ble", "blel"):
            if _s32(r[i.rs]) <= _s32(r[i.rt]):
                branch = (next_pc + (i.simm << 2)) & MASK32
        elif name in ("bltz", "bltzl"):
            if _s32(r[i.rs]) < 0:
                branch = (next_pc + (i.simm << 2)) & MASK32
        elif name == "bgez":
            if _s32(r[i.rs]) >= 0:
                branch = (next_pc + (i.simm << 2)) & MASK32
        elif name == "bc1t":
            if self.fcc:
                branch = (next_pc + (i.simm << 2)) & MASK32
        elif name == "bc1f":
            if not self.fcc:
                branch = (next_pc + (i.simm << 2)) & MASK32
        elif name == "j":
            branch = (next_pc & 0xF0000000) | (i.target << 2)
        elif name == "jal":
            wr(31, next_pc)
            branch = (next_pc & 0xF0000000) | (i.target << 2)
        elif name == "jr":
            branch = r[i.rs]
        elif name == "jalr":
            wr(i.rd if i.rd else 31, next_pc)
            branch = r[i.rs]
        # memory
        elif name == "lw":
            wr(i.rt, self.read_word(r[i.rs] + i.simm))
        elif name == "lb":
            byte = self.read_byte(r[i.rs] + i.simm)
            wr(i.rt, byte - 0x100 if byte & 0x80 else byte)
        elif name == "lbu":
            wr(i.rt, self.read_byte(r[i.rs] + i.simm))
        elif name == "lhu":
            wr(i.rt, self.read_half(r[i.rs] + i.simm))
        elif name == "sw":
            self.write_word(r[i.rs] + i.simm, r[i.rt])
        elif name == "sb":
            self.write_byte(r[i.rs] + i.simm, r[i.rt])
        elif name == "sh":
            self.write_half(r[i.rs] + i.simm, r[i.rt])
        elif name in ("lwl", "lwr", "swl", "swr"):
            self._unaligned(name, i)
        elif name == "lwc1":
            f[i.rt] = self.read_word(r[i.rs] + i.simm)
        elif name == "swc1":
            self.write_word(r[i.rs] + i.simm, f[i.rt])
        # FPU
        elif name == "add.s":
            f[i.rd] = sf.fadd(f[i.rs], f[i.rt])
        elif name == "sub.s":
            f[i.rd] = sf.fsub(f[i.rs], f[i.rt])
        elif name == "mul.s":
            f[i.rd] = sf.fmul(f[i.rs], f[i.rt])
        elif name == "div.s":
            f[i.rd] = sf.fdiv(f[i.rs], f[i.rt])
        elif name == "neg.s":
            f[i.rd] = sf.fneg(f[i.rs])
        elif name == "abs.s":
            f[i.rd] = sf.fabs_(f[i.rs])
        elif name == "mov.s":
            f[i.rd] = f[i.rs]
        elif name == "cvt.s.w":
            f[i.rd] = sf.cvt_s_w(f[i.rs])
        elif name == "cvt.w.s":
            f[i.rd] = sf.cvt_w_s(f[i.rs])
        elif name == "lt.s":
            self.fcc = sf.flt(f[i.rs], f[i.rt])
        elif name == "le.s":
            self.fcc = sf.fle(f[i.rs], f[i.rt])
        elif name == "gt.s":
            self.fcc = sf.fgt(f[i.rs], f[i.rt])
        elif name == "ge.s":
            self.fcc = sf.fge(f[i.rs], f[i.rt])
        elif name == "mtc1":
            f[i.rs] = r[i.rt]
        elif name == "mfc1":
            wr(i.rt, f[i.rs])
        # security instructions: architectural no-ops on the reference
        # machine (tags are not modeled here), recorded for tests
        elif name == "setrtag":
            self.tag_requests.append((r[i.rs] & MASK32, r[i.rt] & MASK32))
        elif name == "setrtimer":
            self.timer_requests.append(r[i.rs] & MASK32)
        return branch

    def _unaligned(self, name: str, i: Instruction) -> None:
        """lwl/lwr/swl/swr per MIPS little-endian semantics."""
        r = self.regs
        addr = (r[i.rs] + i.simm) & MASK32
        word = self.read_word(addr)
        offset = addr & 3
        if name == "lwl":
            shift = (3 - offset) * 8
            mask = (MASK32 << shift) & MASK32
            if i.rt:
                r[i.rt] = ((word << shift) & mask) | (r[i.rt] & ~mask & MASK32)
        elif name == "lwr":
            shift = offset * 8
            mask = MASK32 >> shift
            if i.rt:
                r[i.rt] = ((word >> shift) & mask) | (r[i.rt] & ~mask & MASK32)
        elif name == "swl":
            shift = (3 - offset) * 8
            mask = MASK32 >> shift
            new = (word & ~mask & MASK32) | (r[i.rt] >> shift)
            self.write_word(addr, new)
        else:  # swr
            shift = offset * 8
            mask = (MASK32 << shift) & MASK32
            new = (word & ~mask & MASK32) | ((r[i.rt] << shift) & MASK32)
            self.write_word(addr, new)

"""Bit-exact FP32 arithmetic shared by the ISS and the Sapper FPU.

This is the *architectural definition* of the processor's floating
point: round-toward-zero (truncation), flush-to-zero for subnormals,
infinities saturate, NaNs are treated as infinity.  The Sapper processor
implements exactly these algorithms in hardware and the ISS executes
them here, so the two agree bit-for-bit; results differ from IEEE-754
round-to-nearest only in the last bits, which the FFT validation
(section 4.3) checks against NumPy within tolerance.

All values are 32-bit unsigned integers holding the bit pattern.
"""

from __future__ import annotations

INF_EXP = 255
MANT_BITS = 23
IMPLICIT = 1 << MANT_BITS


def unpack(x: int) -> tuple[int, int, int]:
    """Return ``(sign, exponent, mantissa-with-implicit-bit)``.

    Subnormals flush to zero (mantissa 0); exponent 255 means infinity
    (mantissa ignored).
    """
    s = x >> 31 & 1
    e = x >> 23 & 0xFF
    m = x & 0x7FFFFF
    if e == 0:
        return s, 0, 0
    if e == INF_EXP:
        return s, INF_EXP, 0
    return s, e, m | IMPLICIT


def pack(s: int, e: int, m23: int) -> int:
    return (s << 31) | (e << 23) | (m23 & 0x7FFFFF)


def zero(s: int = 0) -> int:
    return s << 31


def inf(s: int) -> int:
    return pack(s, INF_EXP, 0)


def is_zero(x: int) -> bool:
    return x & 0x7FFFFFFF == 0 or (x >> 23 & 0xFF) == 0


def fadd(a: int, b: int) -> int:
    sa, ea, ma = unpack(a)
    sb, eb, mb = unpack(b)
    if ea == INF_EXP:
        return inf(sa)
    if eb == INF_EXP:
        return inf(sb)
    if ma == 0:
        return b if mb else zero(sa & sb)
    if mb == 0:
        return a
    # order so that |a| >= |b|
    if ea < eb or (ea == eb and ma < mb):
        sa, ea, ma, sb, eb, mb = sb, eb, mb, sa, ea, ma
    d = ea - eb
    big = ma << 2                      # two guard bits
    small = (mb << 2) >> d if d < 27 else 0
    if sa == sb:
        total = big + small
    else:
        total = big - small
    if total == 0:
        return zero(0)
    e = ea
    if total >= 1 << 26:               # carry out (add case): at most one step
        total >>= 1
        e += 1
    else:
        while total < 1 << 25:         # cancellation (sub case)
            total <<= 1
            e -= 1
    if e >= INF_EXP:
        return inf(sa)
    if e <= 0:
        return zero(sa)
    return pack(sa, e, total >> 2)


def fsub(a: int, b: int) -> int:
    return fadd(a, b ^ 0x80000000)


def fmul(a: int, b: int) -> int:
    sa, ea, ma = unpack(a)
    sb, eb, mb = unpack(b)
    s = sa ^ sb
    if ea == INF_EXP or eb == INF_EXP:
        return inf(s)
    if ma == 0 or mb == 0:
        return zero(s)
    product = ma * mb                  # 48 bits, in [2^46, 2^48)
    e = ea + eb - 127
    if product >= 1 << 47:
        m = product >> 24
        e += 1
    else:
        m = product >> 23
    if e >= INF_EXP:
        return inf(s)
    if e <= 0:
        return zero(s)
    return pack(s, e, m)


def fdiv(a: int, b: int) -> int:
    sa, ea, ma = unpack(a)
    sb, eb, mb = unpack(b)
    s = sa ^ sb
    if ea == INF_EXP:
        return inf(s)                  # inf / y -> inf (also inf/inf)
    if eb == INF_EXP:
        return zero(s)                 # x / inf -> 0
    if mb == 0:
        return inf(s)                  # x / 0 -> signed infinity (also 0/0)
    if ma == 0:
        return zero(s)
    q = (ma << 24) // mb               # in (2^23, 2^25)
    if q >= 1 << 24:
        e = ea - eb + 127
        m = q >> 1
    else:
        e = ea - eb + 126
        m = q
    if e >= INF_EXP:
        return inf(s)
    if e <= 0:
        return zero(s)
    return pack(s, e, m)


def fneg(a: int) -> int:
    return a ^ 0x80000000


def fabs_(a: int) -> int:
    return a & 0x7FFFFFFF


def cvt_s_w(x: int) -> int:
    """Signed 32-bit integer -> float (truncating)."""
    if x == 0:
        return 0
    s = x >> 31 & 1
    mag = ((~x + 1) if s else x) & 0xFFFFFFFF
    p = mag.bit_length() - 1           # position of the leading one
    e = 127 + p
    if p >= MANT_BITS:
        m = mag >> (p - MANT_BITS)
    else:
        m = mag << (MANT_BITS - p)
    return pack(s, e, m)


def cvt_w_s(x: int) -> int:
    """Float -> signed 32-bit integer, truncating; saturates on overflow."""
    s, e, m = unpack(x)
    if e == INF_EXP:
        return 0x7FFFFFFF if s == 0 else 0x80000000
    if m == 0:
        return 0
    shift = e - 127 - MANT_BITS
    if shift >= 8:                     # |value| >= 2^31
        return 0x7FFFFFFF if s == 0 else 0x80000000
    mag = m << shift if shift >= 0 else (m >> -shift if -shift < 48 else 0)
    if mag > 0x7FFFFFFF:
        return 0x7FFFFFFF if s == 0 else 0x80000000
    return (-mag) & 0xFFFFFFFF if s else mag


def _order_key(x: int) -> int:
    """Monotone unsigned key for comparisons (note: -0 sorts below +0)."""
    s, e, m = unpack(x)
    if e != INF_EXP and m == 0:
        x = s << 31                    # canonicalize flushed subnormals
    mag = x & 0x7FFFFFFF
    return 0x80000000 - mag if x >> 31 else 0x80000000 + mag


def flt(a: int, b: int) -> int:
    return int(_order_key(a) < _order_key(b))


def fle(a: int, b: int) -> int:
    return int(_order_key(a) <= _order_key(b))


def fgt(a: int, b: int) -> int:
    return int(_order_key(a) > _order_key(b))


def fge(a: int, b: int) -> int:
    return int(_order_key(a) >= _order_key(b))


def from_python(value: float) -> int:
    """Python float -> nearest FP32 bit pattern (for building test data)."""
    import struct

    return struct.unpack("<I", struct.pack("<f", value))[0]


def to_python(bits: int) -> float:
    import struct

    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]

"""MIPS instruction encodings for the ISA of Figure 7.

Standard MIPS32 encodings are used wherever the instruction is standard
MIPS.  The paper's ISA treats ``bgt``/``ble`` (two-register compare
branches) as real instructions, so they get the spare opcodes 0x1C/0x1D;
the two security instructions get opcodes 0x3A (``setrtag``) and 0x3B
(``setrtimer``).  There are no architectural branch delay slots in this
reproduction (both the pipeline and the ISS flush on taken branches);
see DESIGN.md section 3.

Formats::

    R-type:  op(6) rs(5) rt(5) rd(5) shamt(5) funct(6)
    I-type:  op(6) rs(5) rt(5) imm(16)
    J-type:  op(6) target(26)
    FP R:    op=0x11(COP1) fmt(5) ft(5) fs(5) fd(5) funct(6)
"""

from __future__ import annotations

from dataclasses import dataclass

OP_SPECIAL = 0x00
OP_REGIMM = 0x01
OP_COP1 = 0x11
FMT_S = 0x10
FMT_W = 0x14
FMT_BC = 0x08

#: name -> (format, opcode, funct/rt-code)
#: format in {"R", "I", "J", "RI" (regimm), "F" (cop1.s), "FW" (cop1.w),
#: "FB" (bc1), "MV" (mtc1/mfc1), "SEC"}
ENCODINGS: dict[str, tuple[str, int, int]] = {
    # additive arithmetic
    "add": ("R", OP_SPECIAL, 0x20), "addu": ("R", OP_SPECIAL, 0x21),
    "addiu": ("I", 0x09, 0), "sub": ("R", OP_SPECIAL, 0x22), "subu": ("R", OP_SPECIAL, 0x23),
    # binary arithmetic
    "and": ("R", OP_SPECIAL, 0x24), "andi": ("I", 0x0C, 0),
    "or": ("R", OP_SPECIAL, 0x25), "ori": ("I", 0x0D, 0),
    "xor": ("R", OP_SPECIAL, 0x26), "xori": ("I", 0x0E, 0),
    "nor": ("R", OP_SPECIAL, 0x27),
    "sll": ("R", OP_SPECIAL, 0x00), "sllv": ("R", OP_SPECIAL, 0x04),
    "sra": ("R", OP_SPECIAL, 0x03), "srav": ("R", OP_SPECIAL, 0x07),
    "srl": ("R", OP_SPECIAL, 0x02), "srlv": ("R", OP_SPECIAL, 0x06),
    # multiplicative arithmetic
    "mult": ("R", OP_SPECIAL, 0x18), "multu": ("R", OP_SPECIAL, 0x19),
    "div": ("R", OP_SPECIAL, 0x1A),
    # FPU (single precision)
    "add.s": ("F", OP_COP1, 0x00), "sub.s": ("F", OP_COP1, 0x01),
    "mul.s": ("F", OP_COP1, 0x02), "div.s": ("F", OP_COP1, 0x03),
    "abs.s": ("F", OP_COP1, 0x05), "mov.s": ("F", OP_COP1, 0x06),
    "neg.s": ("F", OP_COP1, 0x07),
    "cvt.s.w": ("FW", OP_COP1, 0x20), "cvt.w.s": ("F", OP_COP1, 0x24),
    "le.s": ("F", OP_COP1, 0x3E), "lt.s": ("F", OP_COP1, 0x3C),
    "ge.s": ("F", OP_COP1, 0x3F), "gt.s": ("F", OP_COP1, 0x3D),
    # branches
    "beq": ("I", 0x04, 0), "bne": ("I", 0x05, 0),
    "bgt": ("I", 0x1C, 0), "ble": ("I", 0x1D, 0),
    "bltz": ("RI", OP_REGIMM, 0x00), "bgez": ("RI", OP_REGIMM, 0x01),
    "beql": ("I", 0x14, 0), "bnel": ("I", 0x15, 0),
    "blel": ("I", 0x16, 0), "bltzl": ("RI", OP_REGIMM, 0x02),
    "bc1t": ("FB", OP_COP1, 0x01), "bc1f": ("FB", OP_COP1, 0x00),
    # jumps
    "j": ("J", 0x02, 0), "jal": ("J", 0x03, 0),
    "jr": ("R", OP_SPECIAL, 0x08), "jalr": ("R", OP_SPECIAL, 0x09),
    # memory
    "lb": ("I", 0x20, 0), "lbu": ("I", 0x24, 0), "lhu": ("I", 0x25, 0),
    "lw": ("I", 0x23, 0), "sb": ("I", 0x28, 0), "sh": ("I", 0x29, 0),
    "sw": ("I", 0x2B, 0),
    "lwl": ("I", 0x22, 0), "lwr": ("I", 0x26, 0),
    "swl": ("I", 0x2A, 0), "swr": ("I", 0x2E, 0),
    "lwc1": ("I", 0x31, 0), "swc1": ("I", 0x39, 0),
    # others
    "slti": ("I", 0x0A, 0), "sltiu": ("I", 0x0B, 0), "lui": ("I", 0x0F, 0),
    "slt": ("R", OP_SPECIAL, 0x2A), "sltu": ("R", OP_SPECIAL, 0x2B),
    "mflo": ("R", OP_SPECIAL, 0x12), "mfhi": ("R", OP_SPECIAL, 0x10),
    "mtc1": ("MV", OP_COP1, 0x04), "mfc1": ("MV", OP_COP1, 0x00),
    # security instructions (section 4.2)
    "setrtag": ("SEC", 0x3A, 0), "setrtimer": ("SEC", 0x3B, 0),
}

#: Exactly the instruction list of Figure 7 (classification included),
#: used by the E3 coverage experiment.
FIGURE7_INSTRUCTIONS: dict[str, tuple[str, ...]] = {
    "Additive Arithmetic": ("add", "addu", "addiu", "sub", "subu"),
    "Binary Arithmetic": (
        "and", "andi", "or", "ori", "xor", "xori", "nor",
        "sll", "sllv", "sra", "srav", "srl", "srlv",
    ),
    "Multiplicative Arithmetic": ("mult", "multu", "div"),
    "FPU instructions": (
        "add.s", "sub.s", "mul.s", "div.s", "neg.s", "abs.s", "mov.s",
        "cvt.s.w", "cvt.w.s", "le.s", "lt.s", "ge.s", "gt.s",
    ),
    "Branch": (
        "beq", "bgt", "ble", "bne", "bltz", "bgez",
        "beql", "bnel", "blel", "bltzl", "bc1t",
    ),
    "Jump": ("j", "jr", "jal", "jalr"),
    "Memory Operation": (
        "lb", "lbu", "lhu", "lw", "sb", "sh", "sw",
        "lwl", "lwr", "swl", "swr", "swc1", "lwc1",
    ),
    "Others": ("slti", "sltiu", "lui", "mflo", "mfhi", "mtc1", "mfc1"),
    "Security Related": ("setrtag", "setrtimer"),
}

OPCODES = ENCODINGS  # public alias


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction (fields valid per format)."""

    name: str
    rs: int = 0
    rt: int = 0
    rd: int = 0
    shamt: int = 0
    imm: int = 0        # 16-bit immediate, unsigned representation
    target: int = 0     # 26-bit jump target

    @property
    def simm(self) -> int:
        """Sign-extended immediate."""
        return self.imm - 0x10000 if self.imm & 0x8000 else self.imm


def encode(inst: Instruction) -> int:
    fmt, op, sub = ENCODINGS[inst.name]
    if fmt == "R":
        return (
            (op << 26)
            | (inst.rs << 21)
            | (inst.rt << 16)
            | (inst.rd << 11)
            | (inst.shamt << 6)
            | sub
        )
    if fmt == "I":
        return (op << 26) | (inst.rs << 21) | (inst.rt << 16) | (inst.imm & 0xFFFF)
    if fmt == "J":
        return (op << 26) | (inst.target & 0x3FFFFFF)
    if fmt == "RI":
        return (op << 26) | (inst.rs << 21) | (sub << 16) | (inst.imm & 0xFFFF)
    if fmt == "F":  # fmt=S: ft=rt, fs=rs, fd=rd
        return (op << 26) | (FMT_S << 21) | (inst.rt << 16) | (inst.rs << 11) | (inst.rd << 6) | sub
    if fmt == "FW":  # fmt=W
        return (op << 26) | (FMT_W << 21) | (inst.rt << 16) | (inst.rs << 11) | (inst.rd << 6) | sub
    if fmt == "FB":  # bc1t/bc1f: fmt=BC, nd/tf bit in rt field
        return (op << 26) | (FMT_BC << 21) | (sub << 16) | (inst.imm & 0xFFFF)
    if fmt == "MV":  # mtc1/mfc1: sub in rs-position fmt field
        return (op << 26) | (sub << 21) | (inst.rt << 16) | (inst.rs << 11)
    if fmt == "SEC":
        return (op << 26) | (inst.rs << 21) | (inst.rt << 16)
    raise ValueError(f"bad format {fmt!r}")


_BY_KEY: dict[tuple, str] = {}
for _name, (_fmt, _op, _sub) in ENCODINGS.items():
    if _fmt in ("R",):
        _BY_KEY[("R", _op, _sub)] = _name
    elif _fmt == "RI":
        _BY_KEY[("RI", _op, _sub)] = _name
    elif _fmt in ("F", "FW"):
        _BY_KEY[("F", _op, FMT_S if _fmt == "F" else FMT_W, _sub)] = _name
    elif _fmt == "FB":
        _BY_KEY[("FB", _op, _sub)] = _name
    elif _fmt == "MV":
        _BY_KEY[("MV", _op, _sub)] = _name
    else:
        _BY_KEY[("O", _op)] = _name


def decode(word: int) -> Instruction | None:
    """Decode a 32-bit word; returns None for unknown encodings."""
    op = word >> 26 & 0x3F
    rs = word >> 21 & 0x1F
    rt = word >> 16 & 0x1F
    rd = word >> 11 & 0x1F
    shamt = word >> 6 & 0x1F
    funct = word & 0x3F
    imm = word & 0xFFFF
    target = word & 0x3FFFFFF
    if op == OP_SPECIAL:
        name = _BY_KEY.get(("R", op, funct))
        if name is None:
            return None
        return Instruction(name, rs=rs, rt=rt, rd=rd, shamt=shamt)
    if op == OP_REGIMM:
        name = _BY_KEY.get(("RI", op, rt))
        if name is None:
            return None
        return Instruction(name, rs=rs, imm=imm)
    if op == OP_COP1:
        fmt_field = rs
        if fmt_field == FMT_BC:
            name = _BY_KEY.get(("FB", op, rt & 1))
            if name is None:
                return None
            return Instruction(name, imm=imm)
        if fmt_field in (0x00, 0x04):
            name = _BY_KEY.get(("MV", op, fmt_field))
            if name is None:
                return None
            return Instruction(name, rs=rd, rt=rt)  # fs=rd field, rt=gpr
        name = _BY_KEY.get(("F", op, fmt_field, funct))
        if name is None:
            return None
        return Instruction(name, rs=rd, rt=rt, rd=shamt)  # fs, ft, fd
    name = _BY_KEY.get(("O", op))
    if name is None:
        return None
    fmt = ENCODINGS[name][0]
    if fmt == "J":
        return Instruction(name, target=target)
    if fmt == "SEC":
        return Instruction(name, rs=rs, rt=rt)
    return Instruction(name, rs=rs, rt=rt, imm=imm)

"""Two-pass MIPS assembler.

Supports the full ISA of Figure 7 plus:

* labels, ``.text`` / ``.data`` / ``.org`` / ``.word`` / ``.byte`` /
  ``.half`` / ``.float`` / ``.space`` / ``.align`` / ``.asciiz``;
* register names (``$zero``, ``$t0``, ``$f12``, numeric ``$5``);
* pseudo-instructions: ``li``, ``la``, ``move``, ``nop``, ``b``,
  ``blt``, ``bge`` (via ``slt`` + branch with ``$at``), ``not``,
  ``subi`` and 32-bit ``li`` expansion via ``lui``/``ori``.

The output :class:`Executable` maps word addresses to memory words plus
the symbol table -- loadable into both the ISS and the Sapper processor.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.mips import softfloat
from repro.mips.isa import ENCODINGS, Instruction, encode

GPR_NAMES = {
    "zero": 0, "at": 1, "v0": 2, "v1": 3,
    "a0": 4, "a1": 5, "a2": 6, "a3": 7,
    "t0": 8, "t1": 9, "t2": 10, "t3": 11, "t4": 12, "t5": 13, "t6": 14, "t7": 15,
    "s0": 16, "s1": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
    "t8": 24, "t9": 25, "k0": 26, "k1": 27,
    "gp": 28, "sp": 29, "fp": 30, "s8": 30, "ra": 31,
}


class AsmError(ValueError):
    """Assembly failure with source-line context."""


@dataclass
class Executable:
    """Assembled program image."""

    words: dict[int, int]                 # word address -> 32-bit value
    symbols: dict[str, int]               # label -> byte address
    entry: int = 0

    def word_at(self, byte_addr: int) -> int:
        return self.words.get(byte_addr >> 2, 0)

    def as_memory(self) -> dict[int, int]:
        """Copy of the image keyed by word address (for simulators)."""
        return dict(self.words)


def parse_reg(token: str, line: str) -> int:
    token = token.strip()
    if not token.startswith("$"):
        raise AsmError(f"expected register, got {token!r} in: {line}")
    name = token[1:]
    if name.isdigit():
        n = int(name)
        if n > 31:
            raise AsmError(f"bad register {token!r} in: {line}")
        return n
    if name in GPR_NAMES:
        return GPR_NAMES[name]
    raise AsmError(f"unknown register {token!r} in: {line}")


def parse_freg(token: str, line: str) -> int:
    token = token.strip()
    match = re.fullmatch(r"\$f(\d+)", token)
    if not match or int(match.group(1)) > 31:
        raise AsmError(f"expected FP register, got {token!r} in: {line}")
    return int(match.group(1))


class _Assembler:
    def __init__(self, source: str, origin: int):
        self.source = source
        self.origin = origin
        self.symbols: dict[str, int] = {}
        self.words: dict[int, int] = {}

    # -- helpers --------------------------------------------------------------

    def value(self, token: str, line: str, pc: int = 0) -> int:
        token = token.strip()
        try:
            if token.startswith("%hi(") and token.endswith(")"):
                return self.value(token[4:-1], line) >> 16 & 0xFFFF
            if token.startswith("%lo(") and token.endswith(")"):
                return self.value(token[4:-1], line) & 0xFFFF
            if re.fullmatch(r"-?0[xX][0-9a-fA-F]+|-?\d+", token):
                return int(token, 0)
            if token in self.symbols:
                return self.symbols[token]
        except AsmError:
            raise
        raise AsmError(f"cannot resolve {token!r} in: {line}")

    # -- pass 1: layout ---------------------------------------------------------

    def _clean_lines(self) -> list[tuple[str, str]]:
        """Return (label-stripped statement, original line) pairs with
        labels recorded lazily in pass 1 via sentinels."""
        out = []
        for raw in self.source.splitlines():
            line = raw.split("#")[0].split("//")[0].strip()
            if not line:
                continue
            while ":" in line.split('"')[0]:
                label, _, rest = line.partition(":")
                out.append((f"LABEL {label.strip()}", raw))
                line = rest.strip()
                if not line:
                    break
            if line:
                out.append((line, raw))
        return out

    def _statement_size(self, stmt: str, addr: int) -> int:
        """Size in bytes that *stmt* occupies at *addr* (pass 1)."""
        op, _, rest = stmt.partition(" ")
        op = op.lower()
        args = [a.strip() for a in rest.split(",")] if rest.strip() else []
        if op == ".org" or op == "label" or op == ".text" or op == ".data":
            return 0
        if op == ".word" or op == ".float":
            return 4 * len(args)
        if op == ".half":
            return ((2 * len(args)) + 3) & ~3
        if op == ".byte":
            return (len(args) + 3) & ~3
        if op == ".space":
            return (int(args[0], 0) + 3) & ~3
        if op == ".align":
            k = 1 << int(args[0], 0)
            return (-addr) % k
        if op == ".asciiz":
            text = stmt.partition(" ")[2].strip()
            body = text[1:-1].encode().decode("unicode_escape")
            return (len(body) + 1 + 3) & ~3
        # instructions (pseudo expansion sizes)
        if op == "li":
            return 8  # conservatively lui+ori (kept fixed for layout)
        if op == "la":
            return 8
        if op in ("blt", "bge", "bgtu", "bltu"):
            return 8
        return 4

    def assemble(self) -> Executable:
        lines = self._clean_lines()
        # pass 1: addresses
        addr = self.origin
        for stmt, _raw in lines:
            if stmt.startswith("LABEL "):
                self.symbols[stmt[6:]] = addr
                continue
            if stmt.split()[0] == ".org":
                addr = int(stmt.split()[1], 0)
                continue
            addr += self._statement_size(stmt, addr)
        # pass 2: encode
        addr = self.origin
        for stmt, raw in lines:
            if stmt.startswith("LABEL "):
                continue
            head = stmt.split()[0]
            if head == ".org":
                addr = int(stmt.split()[1], 0)
                continue
            addr = self._emit(stmt, raw, addr)
        return Executable(self.words, dict(self.symbols), entry=self.origin)

    # -- pass 2: emission ---------------------------------------------------------

    def _store_word(self, addr: int, value: int) -> None:
        self.words[addr >> 2] = value & 0xFFFFFFFF

    def _store_bytes(self, addr: int, data: bytes) -> int:
        for i, byte in enumerate(data):
            a = addr + i
            word = self.words.get(a >> 2, 0)
            shift = (a & 3) * 8  # little-endian byte order
            word = (word & ~(0xFF << shift)) | (byte << shift)
            self.words[a >> 2] = word
        return (addr + len(data) + 3) & ~3

    def _emit(self, stmt: str, raw: str, addr: int) -> int:
        op, _, rest = stmt.partition(" ")
        op_l = op.lower()
        args = [a.strip() for a in rest.split(",")] if rest.strip() else []
        if op_l in (".text", ".data"):
            return addr
        if op_l == ".word":
            for a in args:
                self._store_word(addr, self.value(a, raw))
                addr += 4
            return addr
        if op_l == ".float":
            for a in args:
                self._store_word(addr, softfloat.from_python(float(a)))
                addr += 4
            return addr
        if op_l == ".half":
            data = b"".join(
                (self.value(a, raw) & 0xFFFF).to_bytes(2, "little") for a in args
            )
            return self._store_bytes(addr, data)
        if op_l == ".byte":
            data = bytes(self.value(a, raw) & 0xFF for a in args)
            return self._store_bytes(addr, data)
        if op_l == ".space":
            return addr + ((int(args[0], 0) + 3) & ~3)
        if op_l == ".align":
            k = 1 << int(args[0], 0)
            return addr + ((-addr) % k)
        if op_l == ".asciiz":
            text = stmt.partition(" ")[2].strip()
            body = text[1:-1].encode().decode("unicode_escape").encode() + b"\x00"
            return self._store_bytes(addr, body)
        for word in self._encode_instruction(op_l, args, raw, addr):
            self._store_word(addr, word)
            addr += 4
        return addr

    def _branch_off(self, target: str, raw: str, addr: int) -> int:
        dest = self.value(target, raw)
        off = (dest - (addr + 4)) >> 2
        if not -32768 <= off <= 32767:
            raise AsmError(f"branch out of range in: {raw}")
        return off & 0xFFFF

    def _encode_instruction(self, op: str, args: list[str], raw: str, addr: int) -> list[int]:
        enc = encode
        ins = Instruction
        # pseudo-instructions first
        if op == "nop":
            return [0]
        if op == "li":
            rt = parse_reg(args[0], raw)
            value = self.value(args[1], raw) & 0xFFFFFFFF
            return [
                enc(ins("lui", rt=rt, imm=value >> 16)),
                enc(ins("ori", rs=rt, rt=rt, imm=value & 0xFFFF)),
            ]
        if op == "la":
            rt = parse_reg(args[0], raw)
            value = self.value(args[1], raw) & 0xFFFFFFFF
            return [
                enc(ins("lui", rt=rt, imm=value >> 16)),
                enc(ins("ori", rs=rt, rt=rt, imm=value & 0xFFFF)),
            ]
        if op == "move":
            return [enc(ins("addu", rs=parse_reg(args[1], raw), rt=0, rd=parse_reg(args[0], raw)))]
        if op == "not":
            return [enc(ins("nor", rs=parse_reg(args[1], raw), rt=0, rd=parse_reg(args[0], raw)))]
        if op == "b":
            return [enc(ins("beq", rs=0, rt=0, imm=self._branch_off(args[0], raw, addr)))]
        if op == "blt":  # blt rs, rt, label == slt $at, rs, rt; bne $at, $0
            rs, rt = parse_reg(args[0], raw), parse_reg(args[1], raw)
            return [
                enc(ins("slt", rs=rs, rt=rt, rd=1)),
                enc(ins("bne", rs=1, rt=0, imm=self._branch_off(args[2], raw, addr + 4))),
            ]
        if op == "bge":
            rs, rt = parse_reg(args[0], raw), parse_reg(args[1], raw)
            return [
                enc(ins("slt", rs=rs, rt=rt, rd=1)),
                enc(ins("beq", rs=1, rt=0, imm=self._branch_off(args[2], raw, addr + 4))),
            ]
        if op not in ENCODINGS:
            raise AsmError(f"unknown instruction {op!r} in: {raw}")
        fmt = ENCODINGS[op][0]
        if fmt == "R":
            if op in ("sll", "srl", "sra"):
                return [enc(ins(op, rt=parse_reg(args[1], raw), rd=parse_reg(args[0], raw),
                                shamt=self.value(args[2], raw) & 31))]
            if op in ("sllv", "srlv", "srav"):
                return [enc(ins(op, rd=parse_reg(args[0], raw), rt=parse_reg(args[1], raw),
                                rs=parse_reg(args[2], raw)))]
            if op in ("mult", "multu", "div"):
                return [enc(ins(op, rs=parse_reg(args[0], raw), rt=parse_reg(args[1], raw)))]
            if op == "jr":
                return [enc(ins(op, rs=parse_reg(args[0], raw)))]
            if op == "jalr":
                if len(args) == 1:
                    return [enc(ins(op, rs=parse_reg(args[0], raw), rd=31))]
                return [enc(ins(op, rd=parse_reg(args[0], raw), rs=parse_reg(args[1], raw)))]
            if op in ("mflo", "mfhi"):
                return [enc(ins(op, rd=parse_reg(args[0], raw)))]
            return [enc(ins(op, rd=parse_reg(args[0], raw), rs=parse_reg(args[1], raw),
                            rt=parse_reg(args[2], raw)))]
        if fmt == "I":
            if op in ("beq", "bne", "bgt", "ble", "beql", "bnel", "blel"):
                return [enc(ins(op, rs=parse_reg(args[0], raw), rt=parse_reg(args[1], raw),
                                imm=self._branch_off(args[2], raw, addr)))]
            if op in ("lb", "lbu", "lhu", "lw", "sb", "sh", "sw", "lwl", "lwr", "swl", "swr"):
                rt = parse_reg(args[0], raw)
                offset, base = self._mem_operand(args[1], raw)
                return [enc(ins(op, rs=base, rt=rt, imm=offset & 0xFFFF))]
            if op in ("lwc1", "swc1"):
                ft = parse_freg(args[0], raw)
                offset, base = self._mem_operand(args[1], raw)
                return [enc(ins(op, rs=base, rt=ft, imm=offset & 0xFFFF))]
            if op == "lui":
                rt = parse_reg(args[0], raw)
                return [enc(ins(op, rt=rt, imm=self.value(args[1], raw) & 0xFFFF))]
            return [enc(ins(op, rt=parse_reg(args[0], raw), rs=parse_reg(args[1], raw),
                            imm=self.value(args[2], raw) & 0xFFFF))]
        if fmt == "RI":
            rs = parse_reg(args[0], raw)
            return [enc(ins(op, rs=rs, imm=self._branch_off(args[1], raw, addr)))]
        if fmt == "J":
            return [enc(ins(op, target=(self.value(args[0], raw) >> 2) & 0x3FFFFFF))]
        if fmt in ("F", "FW"):
            fregs = [parse_freg(a, raw) for a in args]
            if op in ("le.s", "lt.s", "ge.s", "gt.s"):
                return [enc(ins(op, rs=fregs[0], rt=fregs[1]))]
            if op in ("abs.s", "mov.s", "neg.s", "cvt.s.w", "cvt.w.s"):
                return [enc(ins(op, rd=fregs[0], rs=fregs[1]))]
            return [enc(ins(op, rd=fregs[0], rs=fregs[1], rt=fregs[2]))]
        if fmt == "FB":
            return [enc(ins(op, imm=self._branch_off(args[0], raw, addr)))]
        if fmt == "MV":
            return [enc(ins(op, rt=parse_reg(args[0], raw), rs=parse_freg(args[1], raw)))]
        if fmt == "SEC":
            if op == "setrtimer":
                return [enc(ins(op, rs=parse_reg(args[0], raw)))]
            return [enc(ins(op, rs=parse_reg(args[0], raw), rt=parse_reg(args[1], raw)))]
        raise AsmError(f"unhandled format for {op!r} in: {raw}")

    def _mem_operand(self, token: str, raw: str) -> tuple[int, int]:
        match = re.fullmatch(r"(.*)\((\$\w+)\)", token.strip())
        if not match:
            raise AsmError(f"bad memory operand {token!r} in: {raw}")
        offset = self.value(match.group(1), raw) if match.group(1).strip() else 0
        return offset, parse_reg(match.group(2), raw)


def assemble(source: str, origin: int = 0x400) -> Executable:
    """Assemble *source* starting at byte address *origin*."""
    return _Assembler(source, origin).assemble()

"""MIPS toolchain: the ISA of Figure 7, an assembler, and a golden ISS.

* :mod:`repro.mips.isa` -- instruction encodings/decodings for every
  instruction in the paper's Figure 7 (plus the two security
  instructions ``setrtag`` and ``setrtimer``).
* :mod:`repro.mips.softfloat` -- the FP32 arithmetic model shared
  bit-for-bit by the ISS and the Sapper processor's FPU (round toward
  zero, flush-to-zero; see module docstring).
* :mod:`repro.mips.assembler` -- two-pass assembler with labels,
  ``.data`` directives and the usual pseudo-instructions.
* :mod:`repro.mips.iss` -- instruction-set simulator: the "real
  machine" reference of section 4.3 against which processor outputs are
  cross-compared.
"""

from repro.mips.isa import Instruction, decode, OPCODES, FIGURE7_INSTRUCTIONS
from repro.mips.assembler import assemble, AsmError, Executable
from repro.mips.iss import Iss, MMIO_OUT, MMIO_HALT

__all__ = [
    "Instruction",
    "decode",
    "OPCODES",
    "FIGURE7_INSTRUCTIONS",
    "assemble",
    "AsmError",
    "Executable",
    "Iss",
    "MMIO_OUT",
    "MMIO_HALT",
]

"""Loadable machine wrappers around the Sapper processor and the ISS.

:class:`SapperMachine` compiles the generated processor once per
(lattice, security) configuration (modules are cached), loads an
assembled executable plus per-word memory security tags, and runs the
hardware simulator until the MMIO halt fires -- collecting the output
port trace, the cycle count, and the number of dynamic-check violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional

from repro.hdl import Simulator
from repro.lattice import Lattice, encode, two_level
from repro.mips.assembler import Executable, assemble
from repro.mips.iss import Iss
from repro.proc.design import ProcParams, generate_design
from repro.sapper.compiler import CompiledDesign, compile_program


@lru_cache(maxsize=8)
def _compiled(elements: tuple, pairs: tuple, secure: bool, mem_words: int, kvec: int) -> CompiledDesign:
    from repro.lattice import from_order

    lattice = from_order(list(elements), list(pairs))
    params = ProcParams(mem_words=mem_words, kernel_vector=kvec)
    source = generate_design(lattice, params)
    return compile_program(source, lattice, secure=secure, name="sapper_mips")


def compile_processor(
    lattice: Optional[Lattice] = None,
    secure: bool = True,
    mem_words: int = 1 << 24,
    kernel_vector: int = 0x400,
) -> CompiledDesign:
    """Compile (and cache) the processor for *lattice*."""
    lattice = lattice or two_level()
    pairs = tuple(
        sorted(
            (a, b)
            for a in lattice.elements
            for b in lattice.elements
            if lattice.leq(a, b) and a != b
        )
    )
    return _compiled(lattice.elements, pairs, secure, mem_words, kernel_vector)


@dataclass
class RunResult:
    outputs: list[int]
    cycles: int
    violations: int
    halted: bool


class SapperMachine:
    """The compiled secure processor, ready to load and run programs."""

    def __init__(
        self,
        lattice: Optional[Lattice] = None,
        secure: bool = True,
        mem_words: int = 1 << 24,
        kernel_vector: int = 0x400,
    ):
        self.lattice = lattice or two_level()
        self.design = compile_processor(self.lattice, secure, mem_words, kernel_vector)
        self.encoding = encode(self.lattice)
        self.secure = secure
        self.sim = Simulator(self.design.module)
        self.outputs: list[int] = []
        self.violations = 0

    # -- loading ------------------------------------------------------------

    def load(self, exe: Executable) -> None:
        self.sim.arrays["memory"] = dict(exe.as_memory())

    def set_word_tag(self, byte_addr: int, label: str) -> None:
        """Pre-set the security tag of one memory word (the harness-side
        equivalent of a kernel ``set-tag`` loop; tests use both paths)."""
        if not self.secure:
            return
        bits = self.encoding.encode(self.lattice.check(label))
        self.sim.arrays["memory__tags"][byte_addr >> 2] = bits

    def tag_region(self, start: int, end: int, label: str) -> None:
        """Tag every word in ``[start, end)`` (byte addresses)."""
        for addr in range(start & ~3, end, 4):
            self.set_word_tag(addr, label)

    def word_tag(self, byte_addr: int) -> str:
        bits = self.sim.arrays["memory__tags"].get(byte_addr >> 2, 0)
        return self.encoding.decode(bits)

    def read_word(self, byte_addr: int) -> int:
        return self.sim.arrays["memory"].get(byte_addr >> 2, 0)

    @property
    def halted(self) -> bool:
        return bool(self.sim.regs["halted_r"])

    def gpr(self, index: int) -> int:
        return 0 if index == 0 else self.sim.regs[f"r{index}"]

    # -- running --------------------------------------------------------------

    def step(self) -> dict[str, int]:
        out = self.sim.step({})
        if out.get("out_valid"):
            self.outputs.append(out["out_port"])
        if out.get("violation"):
            self.violations += 1
        return out

    def run(self, max_cycles: int = 2_000_000) -> RunResult:
        start = self.sim.cycles
        for _ in range(max_cycles):
            self.step()
            if self.halted:
                break
        return RunResult(
            outputs=list(self.outputs),
            cycles=self.sim.cycles - start,
            violations=self.violations,
            halted=self.halted,
        )


def run_on_iss(exe: Executable, max_steps: int = 10_000_000) -> Iss:
    """Run *exe* to halt on the golden reference machine."""
    iss = Iss.load(exe)
    iss.run(max_steps)
    return iss


def run_program(source: str, lattice: Optional[Lattice] = None, max_cycles: int = 2_000_000) -> RunResult:
    """Assemble and run *source* on the secure processor."""
    machine = SapperMachine(lattice)
    machine.load(assemble(source))
    return machine.run(max_cycles)

"""Loadable machine wrappers around the Sapper processor and the ISS.

:class:`SapperMachine` compiles the generated processor once per
(lattice, security) configuration through the shared
:class:`~repro.toolchain.Toolchain` (source text, compiled design,
optimized module, and simulator step function are all cached by key),
loads an assembled executable plus per-word memory security tags, and
runs the hardware simulator until the MMIO halt fires -- collecting the
output port trace, the cycle count, and the number of dynamic-check
violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lattice import Lattice, encode, two_level
from repro.mips.assembler import Executable, assemble
from repro.mips.iss import Iss
from repro.proc.design import ProcParams, generate_design
from repro.sapper.compiler import CompiledDesign
from repro.toolchain import get_toolchain, lattice_key


def compile_processor(
    lattice: Optional[Lattice] = None,
    secure: bool = True,
    mem_words: int = 1 << 24,
    kernel_vector: int = 0x400,
) -> CompiledDesign:
    """Compile (and cache) the processor for *lattice*."""
    lattice = lattice or two_level()
    params = ProcParams(mem_words=mem_words, kernel_vector=kernel_vector)
    tc = get_toolchain()
    key = ("proc-design", lattice_key(lattice), secure, mem_words, kernel_vector)
    return tc.cached(
        key,
        lambda: tc.compile(
            generate_design(lattice, params), lattice, secure=secure, name="sapper_mips"
        ),
    )


@dataclass
class RunResult:
    outputs: list[int]
    cycles: int
    violations: int
    halted: bool


class SapperMachine:
    """The compiled secure processor, ready to load and run programs."""

    def __init__(
        self,
        lattice: Optional[Lattice] = None,
        secure: bool = True,
        mem_words: int = 1 << 24,
        kernel_vector: int = 0x400,
    ):
        self.lattice = lattice or two_level()
        self.design = compile_processor(self.lattice, secure, mem_words, kernel_vector)
        self.encoding = encode(self.lattice)
        self.secure = secure
        self.sim = get_toolchain().simulator(self.design)
        self.outputs: list[int] = []
        self.violations = 0

    # -- loading ------------------------------------------------------------

    def load(self, exe: Executable) -> None:
        self.sim.arrays["memory"] = dict(exe.as_memory())

    def set_word_tag(self, byte_addr: int, label: str) -> None:
        """Pre-set the security tag of one memory word (the harness-side
        equivalent of a kernel ``set-tag`` loop; tests use both paths)."""
        if not self.secure:
            return
        bits = self.encoding.encode(self.lattice.check(label))
        self.sim.arrays["memory__tags"][byte_addr >> 2] = bits

    def tag_region(self, start: int, end: int, label: str) -> None:
        """Tag every word in ``[start, end)`` (byte addresses)."""
        for addr in range(start & ~3, end, 4):
            self.set_word_tag(addr, label)

    def word_tag(self, byte_addr: int) -> str:
        bits = self.sim.arrays["memory__tags"].get(byte_addr >> 2, 0)
        return self.encoding.decode(bits)

    def read_word(self, byte_addr: int) -> int:
        return self.sim.arrays["memory"].get(byte_addr >> 2, 0)

    @property
    def halted(self) -> bool:
        return bool(self.sim.regs["halted_r"])

    def gpr(self, index: int) -> int:
        return 0 if index == 0 else self.sim.regs[f"r{index}"]

    # -- running --------------------------------------------------------------

    def step(self) -> dict[str, int]:
        out = self.sim.step({})
        if out.get("out_valid"):
            self.outputs.append(out["out_port"])
        if out.get("violation"):
            self.violations += 1
        return out

    def run(self, max_cycles: int = 2_000_000) -> RunResult:
        start = self.sim.cycles
        for _ in range(max_cycles):
            self.step()
            if self.halted:
                break
        return RunResult(
            outputs=list(self.outputs),
            cycles=self.sim.cycles - start,
            violations=self.violations,
            halted=self.halted,
        )


def run_on_iss(exe: Executable, max_steps: int = 10_000_000) -> Iss:
    """Run *exe* to halt on the golden reference machine."""
    iss = Iss.load(exe)
    iss.run(max_steps)
    return iss


def run_program(source: str, lattice: Optional[Lattice] = None, max_cycles: int = 2_000_000) -> RunResult:
    """Assemble and run *source* on the secure processor."""
    machine = SapperMachine(lattice)
    machine.load(assemble(source))
    return machine.run(max_cycles)

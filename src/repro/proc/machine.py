"""Loadable machine wrappers around the Sapper processor and the ISS.

:class:`SapperMachine` compiles the generated processor once per
(lattice, security) configuration through the shared
:class:`~repro.toolchain.Toolchain` (source text, compiled design,
optimized module, and simulator step function are all cached by key),
loads an assembled executable plus per-word memory security tags, and
runs the hardware simulator until the MMIO halt fires -- collecting the
output port trace, the cycle count, and the number of dynamic-check
violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.lattice import Lattice, encode, two_level
from repro.mips.assembler import Executable, assemble
from repro.mips.iss import Iss
from repro.proc.design import ProcParams, generate_design
from repro.sapper.compiler import CompiledDesign
from repro.toolchain import get_toolchain, lattice_key


def compile_processor(
    lattice: Lattice | None = None,
    secure: bool = True,
    mem_words: int = 1 << 24,
    kernel_vector: int = 0x400,
    toolchain=None,
) -> CompiledDesign:
    """Compile (and cache) the processor for *lattice*.

    *toolchain* overrides the process-wide default -- fleet workers pass
    their own store-backed :class:`~repro.toolchain.Toolchain` here so
    the compiled design is read through the shared artifact store
    instead of recompiled per process.
    """
    lattice = lattice or two_level()
    params = ProcParams(mem_words=mem_words, kernel_vector=kernel_vector)
    tc = toolchain or get_toolchain()
    key = ("proc-design", lattice_key(lattice), secure, mem_words, kernel_vector)
    return tc.cached(
        key,
        lambda: tc.compile(
            generate_design(lattice, params), lattice, secure=secure, name="sapper_mips"
        ),
    )


def check_budgets(max_cycles: int | Sequence[int], count: int) -> list[int]:
    """Expand *max_cycles* into one cycle budget per workload lane.

    A single int replicates to every lane.  A sequence must name
    exactly one budget per executable: a short or long sequence used to
    be silently zipped (dropping workloads or budgets); now it raises
    ``ValueError`` naming the lane indices that would have been
    mispaired.
    """
    if isinstance(max_cycles, int):
        return [max_cycles] * count
    budgets = list(max_cycles)
    if len(budgets) == count:
        return budgets
    if len(budgets) < count:
        orphans = range(len(budgets), count)
        detail = f"lanes {orphans.start}..{orphans.stop - 1} have no budget"
    else:
        extra = range(count, len(budgets))
        detail = f"budget indices {extra.start}..{extra.stop - 1} name no lane"
    raise ValueError(
        f"max_cycles sequence has {len(budgets)} entries for {count} "
        f"executable(s): {detail}"
    )


@dataclass
class RunResult:
    outputs: list[int]
    cycles: int
    violations: int
    halted: bool


class SapperMachine:
    """The compiled secure processor, ready to load and run programs."""

    def __init__(
        self,
        lattice: Lattice | None = None,
        secure: bool = True,
        mem_words: int = 1 << 24,
        kernel_vector: int = 0x400,
    ):
        self.lattice = lattice or two_level()
        self.design = compile_processor(self.lattice, secure, mem_words, kernel_vector)
        self.encoding = encode(self.lattice)
        self.secure = secure
        self.sim = get_toolchain().simulator(self.design)
        self.outputs: list[int] = []
        self.violations = 0

    # -- loading ------------------------------------------------------------

    def load(self, exe: Executable) -> None:
        self.sim.arrays["memory"] = dict(exe.as_memory())

    def set_word_tag(self, byte_addr: int, label: str) -> None:
        """Pre-set the security tag of one memory word (the harness-side
        equivalent of a kernel ``set-tag`` loop; tests use both paths)."""
        if not self.secure:
            return
        bits = self.encoding.encode(self.lattice.check(label))
        self.sim.arrays["memory__tags"][byte_addr >> 2] = bits

    def tag_region(self, start: int, end: int, label: str) -> None:
        """Tag every word in ``[start, end)`` (byte addresses)."""
        for addr in range(start & ~3, end, 4):
            self.set_word_tag(addr, label)

    def word_tag(self, byte_addr: int) -> str:
        bits = self.sim.arrays["memory__tags"].get(byte_addr >> 2, 0)
        return self.encoding.decode(bits)

    def read_word(self, byte_addr: int) -> int:
        return self.sim.arrays["memory"].get(byte_addr >> 2, 0)

    @property
    def halted(self) -> bool:
        return bool(self.sim.regs["halted_r"])

    def gpr(self, index: int) -> int:
        return 0 if index == 0 else self.sim.regs[f"r{index}"]

    # -- running --------------------------------------------------------------

    def step(self) -> dict[str, int]:
        out = self.sim.step({})
        if out.get("out_valid"):
            self.outputs.append(out["out_port"])
        if out.get("violation"):
            self.violations += 1
        return out

    def run(self, max_cycles: int = 2_000_000) -> RunResult:
        start = self.sim.cycles
        for _ in range(max_cycles):
            self.step()
            if self.halted:
                break
        return RunResult(
            outputs=list(self.outputs),
            cycles=self.sim.cycles - start,
            violations=self.violations,
            halted=self.halted,
        )


class BatchedMachines:
    """N programs on the secure processor as lanes of one batched machine.

    One :class:`~repro.hdl.batch.BatchSimulator` advances every loaded
    executable together; per-lane output traces, violation counts, and
    halt flags are tracked exactly as :class:`SapperMachine` does for a
    single program.  Batching pays once enough lanes are active (the
    packed tag cone is evaluated once per cycle regardless of lane
    count); below :attr:`MIN_LANES` callers are usually better off with
    scalar machines -- :func:`run_workloads` picks automatically.

    With *compact* (the default), lanes are retired from the batch as
    soon as they halt or exhaust their cycle budget: the simulator
    repacks its state down to the surviving lanes, so a skewed suite
    (one long program among many short ones) keeps full occupancy
    instead of paying full-width steps until the slowest lane finishes.
    Results are indexed by the *original* lane order either way.
    """

    #: lane count at which the batched engine overtakes scalar machines
    #: on the full processor (see benchmarks/test_perf_toolchain.py)
    MIN_LANES = 16

    def __init__(
        self,
        executables: list[Executable],
        lattice: Lattice | None = None,
        secure: bool = True,
        compact: bool = True,
        engine: str | None = None,
    ):
        self.lattice = lattice or two_level()
        self.design = compile_processor(self.lattice, secure)
        self.sim = get_toolchain().batch_simulator(
            self.design, len(executables), engine=engine or "auto"
        )
        self.lanes = len(executables)
        self.compact = compact
        for lane, exe in enumerate(executables):
            self.sim.load_array(lane, "memory", exe.as_memory())
        self.outputs: list[list[int]] = [[] for _ in range(self.lanes)]
        self.violations = [0] * self.lanes
        self.halted_at: list[int | None] = [None] * self.lanes

    def run(self, max_cycles: int | Sequence[int] = 2_000_000) -> list[RunResult]:
        """Advance all lanes until every lane halts or exhausts its budget.

        *max_cycles* may be one budget for all lanes or a per-lane
        sequence (each workload keeps its own cycle budget, exactly as a
        scalar :meth:`SapperMachine.run` per program would).
        """
        sim = self.sim
        halted_reg = "halted_r"
        budgets = check_budgets(max_cycles, self.lanes)
        spent = [0] * self.lanes
        for cycle in range(1, max(budgets, default=0) + 1):
            outs = sim.step()
            live = False
            retire: list[int] = []
            for pos, out in enumerate(outs):
                lane = sim.active_lanes[pos]
                if self.halted_at[lane] is not None or cycle > budgets[lane]:
                    continue
                spent[lane] = cycle
                if out.get("out_valid"):
                    self.outputs[lane].append(out["out_port"])
                if out.get("violation"):
                    self.violations[lane] += 1
                if sim.get_reg(pos, halted_reg):
                    self.halted_at[lane] = cycle
                    retire.append(pos)
                elif cycle >= budgets[lane]:
                    retire.append(pos)
                else:
                    live = True
            if not live:
                break
            if self.compact and retire:
                sim.compact(retire)
        return [
            RunResult(
                outputs=list(self.outputs[lane]),
                cycles=self.halted_at[lane] or spent[lane],
                violations=self.violations[lane],
                halted=self.halted_at[lane] is not None,
            )
            for lane in range(self.lanes)
        ]


def run_workloads(
    executables: list[Executable],
    lattice: Lattice | None = None,
    max_cycles: int | Sequence[int] = 2_000_000,
    batched: bool | None = None,
    compact: bool = True,
    engine: str | None = None,
    shards: int | None = None,
    store=None,
) -> list[RunResult]:
    """Run many programs on the secure processor, one result per program.

    *max_cycles* is one budget or a per-program sequence (a mismatched
    sequence length raises ``ValueError``).  ``batched=None`` picks the
    engine automatically: the lane-batched simulator once
    ``len(executables) >= BatchedMachines.MIN_LANES``, scalar machines
    below that (a batched step costs roughly the same as
    ~ :attr:`~BatchedMachines.MIN_LANES` scalar steps on this design, so
    small suites with skewed run lengths are faster scalar).  *compact*
    lets the batched engine retire finished lanes mid-run (lane
    compaction); results are identical either way.  *engine* pins the
    batched generation (``batch``/``swar``/``vector``; default
    automatic per lane count).

    ``shards=N`` (N >= 2) runs the suite on the multiprocess fleet
    scheduler instead: N worker processes, each batching a shard of the
    suite over the shared artifact store *store* (see
    :class:`repro.fleet.FleetRunner`).  Results are bit-identical and
    in the same order; workers are spawned and torn down per call, so
    repeated suites are cheaper through a persistent ``FleetRunner``.
    """
    budgets = check_budgets(max_cycles, len(executables))
    if shards is not None and shards > 1:
        from repro.fleet import FleetRunner

        with FleetRunner(
            shards=shards, lattice=lattice, store=store, engine=engine
        ) as fleet:
            return fleet.run(executables, max_cycles=budgets)
    if batched is None:
        batched = len(executables) >= BatchedMachines.MIN_LANES
    if batched:
        return BatchedMachines(
            executables, lattice, compact=compact, engine=engine
        ).run(budgets)
    results = []
    for exe, budget in zip(executables, budgets):
        machine = SapperMachine(lattice)
        machine.load(exe)
        results.append(machine.run(budget))
    return results


def run_on_iss(exe: Executable, max_steps: int = 10_000_000) -> Iss:
    """Run *exe* to halt on the golden reference machine."""
    iss = Iss.load(exe)
    iss.run(max_steps)
    return iss


def run_program(
    source: str, lattice: Lattice | None = None, max_cycles: int = 2_000_000
) -> RunResult:
    """Assemble and run *source* on the secure processor."""
    machine = SapperMachine(lattice)
    machine.load(assemble(source))
    return machine.run(max_cycles)

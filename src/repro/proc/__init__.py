"""The paper's evaluation vehicle: a secure pipelined MIPS processor.

* :mod:`repro.proc.design` generates the processor's Sapper source,
  parametrized by security lattice (two-level or the diamond of section
  4.6), with the component split of Figure 8 preserved for LOC
  accounting.
* :mod:`repro.proc.machine` wraps compilation + simulation into a
  loadable machine: assemble a program, set memory tags, run to halt,
  collect the output port trace and violation count.
"""

from repro.proc.design import generate_design, design_sections, ProcParams
from repro.proc.machine import SapperMachine, run_on_iss

__all__ = [
    "generate_design",
    "design_sections",
    "ProcParams",
    "SapperMachine",
    "run_on_iss",
]

"""Generator for the secure MIPS processor's Sapper source.

The processor is a 5-stage pipeline (fetch, decode+regfile, execute with
ALU + mult/div + FPU, memory+cache, write-back) with forwarding, a
security-partitioned direct-mapped L1 shared cache, a 64 MB tagged main
memory, MMIO output/halt ports, and the two security instructions of
section 4.2 (``set-tag``, ``set-timer``).

State machine (mirrors Figure 4's TDMA pattern):

* ``Boot`` (enforced L): walks the cache tag stores once, labelling each
  partition of the cache with its security level.
* ``Master`` (enforced L): trusted dispatcher.  On entry (boot or timer
  expiry) it captures ``epc`` (pc of the oldest instruction that has not
  yet reached MEM -- everything younger is killed and re-executed, so no
  side effect is lost or duplicated), flushes the young latches, lowers
  the dynamic states' tags with ``setTag``, and redirects fetch to the
  kernel vector.
* ``Slave`` (enforced L): decrements the trusted timer every cycle and
  falls into the current child; when the timer expires control always
  returns to Master -- closing the timing channel no matter what the
  child is doing (the set-timer story of section 4.2).
* ``Pipeline`` (dynamic): one full pipeline cycle per execution.  Stages
  evaluate in reverse order (WB, register read, MEM, EX, ID, IF) so the
  blocking semantics hand every stage its previous-cycle latch, and a
  single distance-1 forwarding path (from the value MEM just produced)
  plus post-WB register reads give full forwarding with no stalls.
* ``Refill`` (dynamic): four-cycle line fill from memory into the cache
  partition selected by the *requester's* security level
  (``tag(Refill)``); instruction and data halves are split statically so
  a unified direct-mapped cache cannot livelock on I/D conflicts.

The architectural contract (ISA semantics, FP model, MMIO map, no branch
delay slots) is shared exactly with :mod:`repro.mips.iss`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lattice import Lattice, encode, two_level

MMIO_OUT = 0x40000000
MMIO_HALT = 0x40000004
MMIO_EPC = 0x40000008


@dataclass(frozen=True)
class ProcParams:
    """Geometry of the generated processor."""

    mem_words: int = 1 << 24      # 64 MB, as in the paper
    cache_lines: int = 64         # total lines, split across partitions and I/D
    words_per_line: int = 4
    kernel_vector: int = 0x400    # fetch target on Master entry

    @property
    def cache_words(self) -> int:
        return self.cache_lines * self.words_per_line


def _setbits(params: ProcParams, lattice: Lattice) -> int:
    tw = encode(lattice).width
    total = max(1, (params.cache_lines - 1).bit_length())
    setbits = total - tw - 1   # line index = {partition(tw), isdata(1), set}
    if setbits < 1:
        raise ValueError("cache too small for this lattice: increase cache_lines")
    return setbits


def _indent(text: str, n: int) -> str:
    pad = " " * n
    return "".join(pad + line + "\n" if line.strip() else "\n" for line in text.splitlines())


# -- register file ports -------------------------------------------------------


def _gpr_read(out: str, idx: str) -> str:
    arms = "\n".join(f"        {i}: {{ {out} := r{i}; }}" for i in range(1, 32))
    return f"""    {out} := 0;
    case ({idx}) {{
{arms}
    }}
"""


def _fpr_read(out: str, idx: str) -> str:
    arms = "\n".join(f"        {i}: {{ {out} := f{i}; }}" for i in range(32))
    return f"""    {out} := 0;
    case ({idx}) {{
{arms}
    }}
"""


def _gpr_write(cond: str, idx: str, val: str) -> str:
    arms = "\n".join(f"            {i}: {{ r{i} := {val}; }}" for i in range(1, 32))
    return f"""    if ({cond}) {{
        case ({idx}) {{
{arms}
        }}
    }}
"""


def _fpr_write(cond: str, idx: str, val: str) -> str:
    arms = "\n".join(f"            {i}: {{ f{i} := {val}; }}" for i in range(32))
    return f"""    if ({cond}) {{
        case ({idx}) {{
{arms}
        }}
    }}
"""


# -- instruction decode ---------------------------------------------------------


def _decode_wires(prefix: str, ir: str) -> str:
    p = prefix
    return f"""    {p}op := {ir}[31:26];
    {p}rs := {ir}[25:21];
    {p}rt := {ir}[20:16];
    {p}rd := {ir}[15:11];
    {p}shamt := {ir}[10:6];
    {p}funct := {ir}[5:0];
    {p}imm := {ir}[15:0];
    {p}simm := sext({ir}[15:0], 32);
    {p}fs := {ir}[15:11];
    {p}ft := {ir}[20:16];
    {p}fd := {ir}[10:6];
    {p}fmt := {ir}[25:21];
    {p}is_cop1 := {p}op == 17;
    {p}is_load := ({p}op == 35) || ({p}op == 32) || ({p}op == 36) || ({p}op == 37) || ({p}op == 34) || ({p}op == 38) || ({p}op == 49);
    {p}is_store := ({p}op == 43) || ({p}op == 40) || ({p}op == 41) || ({p}op == 42) || ({p}op == 46) || ({p}op == 57);
    {p}is_setrtag := {p}op == 58;
    {p}is_jal := {p}op == 3;
    {p}is_mfc1 := {p}is_cop1 && ({p}fmt == 0);
    {p}is_mtc1 := {p}is_cop1 && ({p}fmt == 4);
    {p}is_fpalu := {p}is_cop1 && (({p}fmt == 16) || ({p}fmt == 20));
    {p}writes_gpr := (({p}op == 0) && ({p}funct != 8) && ({p}funct != 24) && ({p}funct != 25) && ({p}funct != 26))
        || ({p}op == 9) || ({p}op == 12) || ({p}op == 13) || ({p}op == 14)
        || ({p}op == 10) || ({p}op == 11) || ({p}op == 15)
        || ({p}is_load && ({p}op != 49)) || {p}is_jal || {p}is_mfc1;
    {p}gpr_dest := {p}is_jal ? 31 : (({p}op == 0) ? {p}rd : {p}rt);
    {p}writes_fpr := ({p}op == 49) || {p}is_mtc1
        || ({p}is_fpalu && ({p}funct != 60) && ({p}funct != 61) && ({p}funct != 62) && ({p}funct != 63));
    {p}fpr_dest := ({p}op == 49) ? {p}ft : ({p}is_mtc1 ? {p}fs : {p}fd);
"""


# -- the FPU -----------------------------------------------------------------------


def _fpu_unpack(res: str, src: str) -> str:
    return f"""    {res}_s := {src}[31:31];
    {res}_e := {src}[30:23];
    {res}_m := ({res}_e == 0) ? 0 : (({res}_e == 255) ? 0 : ({src}[22:0] | 0x800000));
"""


def _fpu_block() -> str:
    """Single-precision FPU, bit-exact with :mod:`repro.mips.softfloat`."""
    add = """    // ---- add/sub: align, add or subtract, binary-search normalize ----
    fswap := (fa_e < fb_e) || ((fa_e == fb_e) && (fa_m < fb_m));
    fx_s := fswap ? fb_s : fa_s;  fx_e := fswap ? fb_e : fa_e;  fx_m := fswap ? fb_m : fa_m;
    fy_s := fswap ? fa_s : fb_s;  fy_e := fswap ? fa_e : fb_e;  fy_m := fswap ? fa_m : fb_m;
    fd_sh := fx_e - fy_e;
    fbig := zext(fx_m, 28) << 2;
    fsmall := (fd_sh < 27) ? ((zext(fy_m, 28) << 2) >> fd_sh[4:0]) : 0;
    ftot := (fx_s == fy_s) ? (zext(fbig, 29) + zext(fsmall, 29)) : (zext(fbig, 29) - zext(fsmall, 29));
    fat0 := (ftot >= 0x4000000) ? (ftot >> 1) : ftot;
    fae0 := (ftot >= 0x4000000) ? (zext(fx_e, 10) + 1) : zext(fx_e, 10);
    fat1 := (fat0 < 0x400) ? (fat0 << 16) : fat0;
    fae1 := (fat0 < 0x400) ? (fae0 - 16) : fae0;
    fat2 := (fat1 < 0x40000) ? (fat1 << 8) : fat1;
    fae2 := (fat1 < 0x40000) ? (fae1 - 8) : fae1;
    fat3 := (fat2 < 0x400000) ? (fat2 << 4) : fat2;
    fae3 := (fat2 < 0x400000) ? (fae2 - 4) : fae2;
    fat4 := (fat3 < 0x1000000) ? (fat3 << 2) : fat3;
    fae4 := (fat3 < 0x1000000) ? (fae3 - 2) : fae3;
    fat5 := (fat4 < 0x2000000) ? (fat4 << 1) : fat4;
    fae5 := (fat4 < 0x2000000) ? (fae4 - 1) : fae4;
    fadd_over := (fae5[9:9] == 0) && (fae5 >= 255);
    fadd_under := (fae5[9:9] == 1) || (fae5 == 0);
    fadd_pack := cat(fx_s, fae5[7:0], fat5[24:2]);
    fadd_r := (fa_e == 255) ? cat(fa_s, 255, zext(0, 23)) :
              ((fb_e == 255) ? cat(fb_s, 255, zext(0, 23)) :
              ((fa_m == 0) ? ((fb_m == 0) ? (zext(fa_s & fb_s, 32) << 31) : fpb) :
              ((fb_m == 0) ? fpa :
              ((ftot == 0) ? 0 :
              (fadd_over ? cat(fx_s, 255, zext(0, 23)) :
              (fadd_under ? (zext(fx_s, 32) << 31) : fadd_pack))))));
"""
    mul = """    // ---- multiply ----
    fm_s := fa_s ^ fb_s;
    fm_p := zext(fa_m, 24) * zext(fb_m, 24);
    fm_hi := (fm_p >= 0x800000000000) ? 1 : 0;
    fm_m := (fm_hi == 1) ? fm_p[47:24] : fm_p[46:23];
    fm_e := (zext(fa_e, 10) + zext(fb_e, 10) - 127) + zext(fm_hi, 10);
    fm_over := (fm_e[9:9] == 0) && (fm_e >= 255);
    fm_under := (fm_e[9:9] == 1) || (fm_e == 0);
    fmul_r := ((fa_e == 255) || (fb_e == 255)) ? cat(fm_s, 255, zext(0, 23)) :
              (((fa_m == 0) || (fb_m == 0)) ? (zext(fm_s, 32) << 31) :
              (fm_over ? cat(fm_s, 255, zext(0, 23)) :
              (fm_under ? (zext(fm_s, 32) << 31) : cat(fm_s, fm_e[7:0], fm_m[22:0]))));
"""
    div = """    // ---- divide (restoring array divider in hardware) ----
    fq := (zext(fa_m, 48) << 24) / zext(fb_m, 48);
    fq_hi := (fq >= 0x1000000) ? 1 : 0;
    fd_e := (zext(fa_e, 10) - zext(fb_e, 10)) + ((fq_hi == 1) ? 127 : 126);
    fd_m := (fq_hi == 1) ? fq[23:1] : fq[22:0];
    fd_over := (fd_e[9:9] == 0) && (fd_e >= 255);
    fd_under := (fd_e[9:9] == 1) || (fd_e == 0);
    fdiv_r := (fa_e == 255) ? cat(fm_s, 255, zext(0, 23)) :
              ((fb_e == 255) ? (zext(fm_s, 32) << 31) :
              ((fb_m == 0) ? cat(fm_s, 255, zext(0, 23)) :
              ((fa_m == 0) ? (zext(fm_s, 32) << 31) :
              (fd_over ? cat(fm_s, 255, zext(0, 23)) :
              (fd_under ? (zext(fm_s, 32) << 31) : cat(fm_s, fd_e[7:0], fd_m[22:0]))))));
"""
    cvt = """    // ---- cvt.s.w: normalize the magnitude with a binary search ----
    fc_s := fpa[31:31];
    fc_mag := (fc_s == 1) ? (0 - fpa) : fpa;
    fcp4 := (fc_mag >= 0x10000) ? 16 : 0;
    fcm4 := (fc_mag >= 0x10000) ? (fc_mag >> 16) : fc_mag;
    fcp3 := (fcm4 >= 0x100) ? (fcp4 + 8) : fcp4;
    fcm3 := (fcm4 >= 0x100) ? (fcm4 >> 8) : fcm4;
    fcp2 := (fcm3 >= 0x10) ? (fcp3 + 4) : fcp3;
    fcm2 := (fcm3 >= 0x10) ? (fcm3 >> 4) : fcm3;
    fcp1 := (fcm2 >= 4) ? (fcp2 + 2) : fcp2;
    fcm1 := (fcm2 >= 4) ? (fcm2 >> 2) : fcm2;
    fcp0 := (fcm1 >= 2) ? (fcp1 + 1) : fcp1;
    fc_m23 := (fcp0 >= 23) ? (fc_mag >> (fcp0 - 23)) : (fc_mag << (23 - fcp0));
    fcvtsw_r := (fpa == 0) ? 0 : cat(fc_s, (127 + zext(fcp0, 8))[7:0], fc_m23[22:0]);
    // ---- cvt.w.s: truncate toward zero, saturate on overflow ----
    fw_sh := zext(fa_e, 10) - 150;
    fw_neg := 0 - fw_sh;
    fw_pos := (fw_sh[9:9] == 0) ? 1 : 0;
    fw_mag := (fw_pos == 1) ? ((fw_sh >= 8) ? 0x80000000 : (zext(fa_m, 32) << fw_sh[4:0]))
                            : ((fw_neg < 48) ? (zext(fa_m, 32) >> fw_neg[5:0]) : 0);
    fw_sat := (fa_e == 255) || ((fw_pos == 1) && (fw_sh >= 8)) || (fw_mag > 0x7FFFFFFF);
    fcvtws_r := ((fa_m == 0) && (fa_e != 255)) ? 0 :
                (fw_sat ? ((fa_s == 1) ? 0x80000000 : 0x7FFFFFFF) :
                ((fa_s == 1) ? (0 - fw_mag) : fw_mag));
"""
    cmp = """    // ---- compares via a monotone unsigned order key ----
    fka_c := ((fa_e != 255) && (fa_m == 0)) ? (zext(fa_s, 32) << 31) : fpa;
    fkb_c := ((fb_e != 255) && (fb_m == 0)) ? (zext(fb_s, 32) << 31) : fpb;
    fka := (fka_c[31:31] == 1) ? (0x80000000 - (fka_c & 0x7FFFFFFF)) : (0x80000000 + zext(fka_c & 0x7FFFFFFF, 32));
    fkb := (fkb_c[31:31] == 1) ? (0x80000000 - (fkb_c & 0x7FFFFFFF)) : (0x80000000 + zext(fkb_c & 0x7FFFFFFF, 32));
"""
    return _fpu_unpack("fa", "fpa") + _fpu_unpack("fb", "fpb") + add + mul + div + cvt + cmp


# -- declarations --------------------------------------------------------------------


def _declarations(params: ProcParams, lattice: Lattice) -> str:
    gprs = "\n".join(f"reg[31:0] r{i};" for i in range(1, 32))
    fprs = "\n".join(f"reg[31:0] f{i};" for i in range(32))
    wires = []
    for p in ("ed_", "md_", "wd_"):
        wires.append(
            f"wire[5:0] {p}op, {p}funct;\n"
            f"wire[4:0] {p}rs, {p}rt, {p}rd, {p}shamt, {p}fs, {p}ft, {p}fd, {p}fmt;\n"
            f"wire[15:0] {p}imm;\n"
            f"wire[31:0] {p}simm;\n"
            f"wire {p}is_cop1, {p}is_load, {p}is_store, {p}is_setrtag, {p}is_jal;\n"
            f"wire {p}is_mfc1, {p}is_mtc1, {p}is_fpalu, {p}writes_gpr, {p}writes_fpr;\n"
            f"wire[4:0] {p}gpr_dest, {p}fpr_dest;"
        )
    return f"""// ==== architectural state ====
reg[31:0] pc;
reg[31:0] epc;
reg[31:0] hi_r, lo_r;
reg fcc;
{gprs}
{fprs}
reg[31:0] timer : L;
reg halted_r : L;
reg[8:0] bootcnt : L;
// ==== pipeline latches ====
reg[31:0] d_ir, d_pc;
reg d_v;
reg[31:0] e_ir, e_pc;
reg e_v;
reg[31:0] m_ir, m_pc, m_alu, m_b;
reg m_v;
reg[31:0] w_ir, w_val;
reg w_v;
// ==== refill engine ====
reg[31:0] ref_addr;
reg[2:0] ref_cnt;
reg ref_isd;
// ==== memories ====
mem[31:0] memory[{params.mem_words}] : L;
mem[31:0] cdata[{params.cache_words}] : L;
mem[31:0] ctag[{params.cache_lines}] : L;
mem[0:0] cvalid[{params.cache_lines}] : L;
// ==== ports ====
output[31:0] out_port : L;
output out_valid : L;
output halted : L;
// ==== decode / datapath wires ====
{chr(10).join(wires)}
wire[31:0] rv_a, rv_b, fv_a, fv_b, mrt_v;
wire[31:0] fpa, fpb;
wire fa_s, fb_s, fswap, fx_s, fy_s, fm_hi, fq_hi, fm_s, fc_s, fw_pos, fw_sat;
wire[7:0] fa_e, fb_e, fx_e, fy_e, fd_sh;
wire[23:0] fa_m, fb_m, fx_m, fy_m, fm_m, fd_m;
wire[27:0] fbig, fsmall;
wire[28:0] ftot, fat0, fat1, fat2, fat3, fat4, fat5;
wire[9:0] fae0, fae1, fae2, fae3, fae4, fae5, fm_e, fd_e, fw_sh, fw_neg;
wire fadd_over, fadd_under, fm_over, fm_under, fd_over, fd_under;
wire[31:0] fadd_pack, fadd_r, fmul_r, fdiv_r, fcvtsw_r, fcvtws_r;
wire[47:0] fm_p, fq;
wire[31:0] fc_mag, fc_m23, fw_mag, fka, fkb, fka_c, fkb_c;
wire[5:0] fcp4, fcp3, fcp2, fcp1, fcp0;
wire[31:0] fcm4, fcm3, fcm2, fcm1;
wire[31:0] alu_r, br_target, jmp_target, store_data;
wire redir;
wire[31:0] redir_pc;
wire[31:0] abs_a, abs_b, div_q, div_r;
wire[63:0] mul_ss, mul_uu;
wire take_branch;
wire[31:0] iword, lw_word, lw_ext, merged, old_word;
wire[15:0] iidx_w, didx_w;
wire[31:0] maddr;
wire mneed, dhit, ihit, dmiss, imiss, m_mmio;
wire[1:0] moff;
wire[31:0] ex_a, ex_b;
"""


# -- pipeline stages -------------------------------------------------------------------


def _lookup_section(params: ProcParams, setbits: int) -> str:
    ls = 4  # line shift: 2 byte-offset bits + 2 word-in-line bits
    return f"""    // ---- cache lookups (I and D halves of the level partition) ----
    iidx_w := cat(tag(Pipeline), zext(0, 1), (pc >> {ls})[{setbits - 1}:0]);
    ihit := (cvalid[iidx_w] == 1) && (ctag[iidx_w] == (pc >> {ls + setbits}));
    iword := cdata[cat(iidx_w, (pc >> 2)[1:0])];
    maddr := m_alu;
    m_mmio := (maddr[30:30] == 1) ? 1 : 0;
    mneed := (m_v == 1) && md_is_load && (m_mmio == 0);
    didx_w := cat(tag(Pipeline), zext(1, 1), (maddr >> {ls})[{setbits - 1}:0]);
    dhit := (cvalid[didx_w] == 1) && (ctag[didx_w] == (maddr >> {ls + setbits}));
    moff := maddr[1:0];
    dmiss := mneed && (dhit == 0);
    imiss := (ihit == 0) && (dmiss == 0);
"""


def _writeback_section() -> str:
    return (
        "    // ---- WB: retire the oldest instruction into the register files ----\n"
        + _gpr_write("(w_v == 1) && wd_writes_gpr", "wd_gpr_dest", "w_val")
        + _fpr_write("(w_v == 1) && wd_writes_fpr", "wd_fpr_dest", "w_val")
    )


def _regread_section() -> str:
    return (
        "    // ---- register read ports (post-WB, so distance >= 2 is current) ----\n"
        + _gpr_read("rv_a", "ed_rs")
        + _gpr_read("rv_b", "ed_rt")
        + _fpr_read("fv_a", "ed_fs")
        + _fpr_read("fv_b", "ed_ft")
        + _gpr_read("mrt_v", "md_rt")
    )


def _memory_section(params: ProcParams, setbits: int) -> str:
    return f"""    // ---- MEM: data access for the instruction in the m latch ----
    if (m_v == 1) {{
        w_ir := m_ir;
        w_val := m_alu;
        w_v := 1;
        if (md_is_load) {{
            if (m_mmio) {{
                if (maddr == {MMIO_EPC}) {{ w_val := epc; }} else {{ w_val := 0; }}
            }} else {{
                lw_word := cdata[cat(didx_w, (maddr >> 2)[1:0])];
                case (md_op) {{
                    35: {{ lw_ext := lw_word; }}
                    49: {{ lw_ext := lw_word; }}
                    32: {{ lw_ext := sext((lw_word >> (zext(moff, 5) << 3))[7:0], 32); }}
                    36: {{ lw_ext := zext((lw_word >> (zext(moff, 5) << 3))[7:0], 32); }}
                    37: {{ lw_ext := zext((lw_word >> (zext(moff, 5) << 3))[15:0], 32); }}
                    34: {{ lw_ext := ((lw_word << ((3 - zext(moff, 5)) << 3)) & (0xFFFFFFFF << ((3 - zext(moff, 5)) << 3)))
                                     | (mrt_v & ~(0xFFFFFFFF << ((3 - zext(moff, 5)) << 3))); }}
                    38: {{ lw_ext := ((lw_word >> (zext(moff, 5) << 3)) & (0xFFFFFFFF >> (zext(moff, 5) << 3)))
                                     | (mrt_v & ~(0xFFFFFFFF >> (zext(moff, 5) << 3))); }}
                }}
                w_val := lw_ext;
            }}
        }}
        if (md_is_store) {{
            if (m_mmio) {{
                if (maddr == {MMIO_OUT}) {{
                    out_port := m_b;
                    out_valid := 1;
                }}
                if (maddr == {MMIO_HALT}) {{
                    halted_r := 1;
                }}
            }} else {{
                old_word := memory[maddr >> 2];
                case (md_op) {{
                    43: {{ merged := m_b; }}
                    57: {{ merged := m_b; }}
                    40: {{ merged := (old_word & ~(zext(0xFF, 32) << (zext(moff, 5) << 3)))
                                     | ((m_b & 0xFF) << (zext(moff, 5) << 3)); }}
                    41: {{ merged := (old_word & ~(zext(0xFFFF, 32) << (zext(moff, 5) << 3)))
                                     | ((m_b & 0xFFFF) << (zext(moff, 5) << 3)); }}
                    42: {{ merged := (old_word & ~(0xFFFFFFFF >> ((3 - zext(moff, 5)) << 3)))
                                     | (m_b >> ((3 - zext(moff, 5)) << 3)); }}
                    46: {{ merged := (old_word & ~(0xFFFFFFFF << (zext(moff, 5) << 3)))
                                     | ((m_b << (zext(moff, 5) << 3)) & 0xFFFFFFFF); }}
                }}
                memory[maddr >> 2] := merged otherwise skip;
                if (dhit) {{
                    cdata[cat(didx_w, (maddr >> 2)[1:0])] := merged otherwise skip;
                }}
            }}
        }}
        if (md_is_setrtag) {{
            setTag(memory[m_alu >> 2], tagbits(m_b)) otherwise skip;
        }}
    }} else {{
        w_v := 0;
    }}
"""


def _execute_section() -> str:
    return f"""    // ---- EX: forwarding, ALU, mult/div unit, FPU, control flow ----
    redir := 0;
    redir_pc := 0;
    // forward the value MEM produced this cycle (distance 1); written as
    // if/else rather than muxes so the compiler's per-path tag merge
    // keeps the forwarded operand's tag precise (a mux would join the
    // stale register-file tag into fresh data -- label creep)
    ex_a := rv_a;
    if ((m_v == 1) && md_writes_gpr && (md_gpr_dest == ed_rs) && (ed_rs != 0)) {{ ex_a := w_val; }}
    ex_b := rv_b;
    if ((m_v == 1) && md_writes_gpr && (md_gpr_dest == ed_rt) && (ed_rt != 0)) {{ ex_b := w_val; }}
    fpa := fv_a;
    if ((m_v == 1) && md_writes_fpr && (md_fpr_dest == ed_fs)) {{ fpa := w_val; }}
    fpb := fv_b;
    if ((m_v == 1) && md_writes_fpr && (md_fpr_dest == ed_ft)) {{ fpb := w_val; }}
    if (ed_is_fpalu && (ed_funct == 1)) {{ fpb := fpb ^ 0x80000000; }}   // sub.s = add.s(-b)
{_fpu_block()}
    if (e_v == 1) {{
        alu_r := 0;
        take_branch := 0;
        br_target := e_pc + 4 + (ed_simm << 2);
        jmp_target := ((e_pc + 4) & 0xF0000000) | (zext(e_ir[25:0], 32) << 2);
        if (ed_op == 0) {{
            case (ed_funct) {{
                32: {{ alu_r := ex_a + ex_b; }}
                33: {{ alu_r := ex_a + ex_b; }}
                34: {{ alu_r := ex_a - ex_b; }}
                35: {{ alu_r := ex_a - ex_b; }}
                36: {{ alu_r := ex_a & ex_b; }}
                37: {{ alu_r := ex_a | ex_b; }}
                38: {{ alu_r := ex_a ^ ex_b; }}
                39: {{ alu_r := ~(ex_a | ex_b); }}
                0:  {{ alu_r := ex_b << zext(ed_shamt, 5); }}
                2:  {{ alu_r := ex_b >> zext(ed_shamt, 5); }}
                3:  {{ alu_r := asr(ex_b, zext(ed_shamt, 5)); }}
                4:  {{ alu_r := ex_b << ex_a[4:0]; }}
                6:  {{ alu_r := ex_b >> ex_a[4:0]; }}
                7:  {{ alu_r := asr(ex_b, ex_a[4:0]); }}
                42: {{ alu_r := lts(ex_a, ex_b) ? 1 : 0; }}
                43: {{ alu_r := (ex_a < ex_b) ? 1 : 0; }}
                8:  {{ redir := 1; redir_pc := ex_a; }}
                9:  {{ redir := 1; redir_pc := ex_a; alu_r := e_pc + 4; }}
                16: {{ alu_r := hi_r; }}
                18: {{ alu_r := lo_r; }}
                24: {{ mul_ss := sext(ex_a, 64) * sext(ex_b, 64);
                       lo_r := mul_ss[31:0]; hi_r := mul_ss[63:32]; }}
                25: {{ mul_uu := zext(ex_a, 64) * zext(ex_b, 64);
                       lo_r := mul_uu[31:0]; hi_r := mul_uu[63:32]; }}
                26: {{ if (ex_b == 0) {{
                           lo_r := 0xFFFFFFFF; hi_r := ex_a;
                       }} else {{
                           abs_a := (ex_a[31:31] == 1) ? (0 - ex_a) : ex_a;
                           abs_b := (ex_b[31:31] == 1) ? (0 - ex_b) : ex_b;
                           div_q := abs_a / abs_b;
                           div_r := abs_a % abs_b;
                           lo_r := (ex_a[31:31] != ex_b[31:31]) ? (0 - div_q) : div_q;
                           hi_r := (ex_a[31:31] == 1) ? (0 - div_r) : div_r;
                       }} }}
            }}
        }}
        case (ed_op) {{
            9:  {{ alu_r := ex_a + ed_simm; }}
            12: {{ alu_r := ex_a & zext(ed_imm, 32); }}
            13: {{ alu_r := ex_a | zext(ed_imm, 32); }}
            14: {{ alu_r := ex_a ^ zext(ed_imm, 32); }}
            10: {{ alu_r := lts(ex_a, ed_simm) ? 1 : 0; }}
            11: {{ alu_r := (ex_a < ed_simm) ? 1 : 0; }}
            15: {{ alu_r := zext(ed_imm, 32) << 16; }}
            4:  {{ take_branch := (ex_a == ex_b) ? 1 : 0; }}
            20: {{ take_branch := (ex_a == ex_b) ? 1 : 0; }}
            5:  {{ take_branch := (ex_a != ex_b) ? 1 : 0; }}
            21: {{ take_branch := (ex_a != ex_b) ? 1 : 0; }}
            28: {{ take_branch := gts(ex_a, ex_b) ? 1 : 0; }}
            29: {{ take_branch := les(ex_a, ex_b) ? 1 : 0; }}
            22: {{ take_branch := les(ex_a, ex_b) ? 1 : 0; }}
            1:  {{ case (ed_rt) {{
                      0: {{ take_branch := (ex_a[31:31] == 1) ? 1 : 0; }}
                      1: {{ take_branch := (ex_a[31:31] == 0) ? 1 : 0; }}
                      2: {{ take_branch := (ex_a[31:31] == 1) ? 1 : 0; }}
                   }} }}
            2:  {{ redir := 1; redir_pc := jmp_target; }}
            3:  {{ redir := 1; redir_pc := jmp_target; alu_r := e_pc + 4; }}
            59: {{ timer := ex_a otherwise skip; }}
        }}
        if (ed_is_load || ed_is_store) {{
            alu_r := ex_a + ed_simm;
        }}
        if (ed_is_setrtag) {{
            alu_r := ex_a;
        }}
        if (ed_is_cop1) {{
            if (ed_is_mtc1) {{ alu_r := ex_b; }}
            if (ed_is_mfc1) {{ alu_r := fpa; }}
            if (ed_fmt == 8) {{
                take_branch := (ed_rt[0:0] == 1) ? fcc : ((fcc == 0) ? 1 : 0);
            }}
            if (ed_fmt == 16) {{
                case (ed_funct) {{
                    0:  {{ alu_r := fadd_r; }}
                    1:  {{ alu_r := fadd_r; }}
                    2:  {{ alu_r := fmul_r; }}
                    3:  {{ alu_r := fdiv_r; }}
                    5:  {{ alu_r := fpa & 0x7FFFFFFF; }}
                    6:  {{ alu_r := fpa; }}
                    7:  {{ alu_r := fpa ^ 0x80000000; }}
                    36: {{ alu_r := fcvtws_r; }}
                    60: {{ fcc := (fka < fkb) ? 1 : 0; }}
                    61: {{ fcc := (fka > fkb) ? 1 : 0; }}
                    62: {{ fcc := (fka <= fkb) ? 1 : 0; }}
                    63: {{ fcc := (fka >= fkb) ? 1 : 0; }}
                }}
            }}
            if (ed_fmt == 20) {{
                if (ed_funct == 32) {{ alu_r := fcvtsw_r; }}
            }}
        }}
        if (take_branch == 1) {{
            redir := 1;
            redir_pc := br_target;
        }}
        if (redir == 1) {{
            d_v := 0;      // kill the sequential successor sitting in ID
        }}
        store_data := ex_b;
        if (ed_op == 57) {{ store_data := fpb; }}
        m_ir := e_ir; m_pc := e_pc; m_alu := alu_r; m_b := store_data;
        m_v := 1;
    }} else {{
        m_v := 0;
    }}
"""


def _decode_section() -> str:
    return """    // ---- ID: advance the instruction into EX ----
    e_ir := d_ir;
    e_pc := d_pc;
    e_v := d_v;
"""


def _fetch_section() -> str:
    return """    // ---- IF: latch the fetched instruction or follow a redirect ----
    if (redir == 1) {
        pc := redir_pc;
        d_v := 0;
    } else {
        d_ir := iword;
        d_pc := pc;
        d_v := 1;
        pc := pc + 4;
    }
"""


# -- control states ----------------------------------------------------------------------


def _boot_section(params: ProcParams, lattice: Lattice) -> str:
    tw = encode(lattice).width
    word_shift = max(1, (params.cache_words - 1).bit_length() - tw)
    line_shift_bits = max(1, (params.cache_lines - 1).bit_length() - tw)
    return f"""state Boot : L = {{
    // label each cache partition with its security level, once
    if (bootcnt < {params.cache_words}) {{
        setTag(cdata[bootcnt], tagbits(bootcnt >> {word_shift}));
        if (bootcnt < {params.cache_lines}) {{
            setTag(ctag[bootcnt], tagbits(bootcnt >> {line_shift_bits}));
            setTag(cvalid[bootcnt], tagbits(bootcnt >> {line_shift_bits}));
        }}
        bootcnt := bootcnt + 1;
        goto Boot;
    }} else {{
        goto Master;
    }}
}}
"""


def _master_section(params: ProcParams) -> str:
    return f"""state Master : L = {{
    // trusted dispatcher: capture the oldest un-executed pc, flush the
    // young latches, lower the dynamic states, enter the kernel
    epc := (m_v == 1) ? m_pc : ((e_v == 1) ? e_pc : ((d_v == 1) ? d_pc : pc));
    pc := {params.kernel_vector};
    d_v := 0; e_v := 0; m_v := 0;
    d_ir := 0; e_ir := 0; m_ir := 0; m_alu := 0; m_b := 0;
    timer := 0;
    ref_cnt := 4;
    setTag(Pipeline, L);
    setTag(Refill, L);
    goto Slave;
}}
"""


def _refill_section(params: ProcParams, setbits: int) -> str:
    ls = 4
    return f"""            if (ref_cnt >= 4) {{
                goto Pipeline;
            }} else {{
                // adopt the memory word's tag (joined with the requester
                // level) so lines of any level can be cached -- the
                // set-tag memory-sharing mechanism of section 3.5
                setTag(cdata[cat(tag(Refill), ref_isd, (ref_addr >> {ls})[{setbits - 1}:0], ref_cnt[1:0])],
                       tag(memory[cat((ref_addr >> {ls}), ref_cnt[1:0])]) | tag(Refill)) otherwise skip;
                cdata[cat(tag(Refill), ref_isd, (ref_addr >> {ls})[{setbits - 1}:0], ref_cnt[1:0])]
                    := memory[cat((ref_addr >> {ls}), ref_cnt[1:0])] otherwise skip;
                if (ref_cnt == 3) {{
                    ctag[cat(tag(Refill), ref_isd, (ref_addr >> {ls})[{setbits - 1}:0])]
                        := ref_addr >> {ls + setbits} otherwise skip;
                    cvalid[cat(tag(Refill), ref_isd, (ref_addr >> {ls})[{setbits - 1}:0])]
                        := 1 otherwise skip;
                    ref_cnt := 4;
                    goto Pipeline;
                }} else {{
                    ref_cnt := ref_cnt + 1;
                    goto Refill;
                }}
            }}
"""


def _pipeline_body(params: ProcParams, setbits: int) -> str:
    decode = (
        _decode_wires("ed_", "e_ir")
        + _decode_wires("md_", "m_ir")
        + _decode_wires("wd_", "w_ir")
    )
    stages = (
        _indent(_writeback_section(), 4)
        + _indent(_regread_section(), 4)
        + _indent(_memory_section(params, setbits), 4)
        + _indent(_execute_section(), 4)
        + _indent(_decode_section(), 4)
        + _indent(_fetch_section(), 4)
    )
    return (
        decode
        + _lookup_section(params, setbits)
        + """    if (halted_r == 1) {
        goto Pipeline;
    } else {
    if (dmiss || imiss) {
        ref_addr := dmiss ? maddr : pc;
        ref_isd := dmiss ? 1 : 0;
        ref_cnt := 0;
        goto Refill;
    } else {
"""
        + stages
        + """        goto Pipeline;
    }
    }
"""
    )


def _slave_section(params: ProcParams, setbits: int) -> str:
    return (
        """state Slave : L = {
    let state Pipeline = {
"""
        + _indent(_pipeline_body(params, setbits), 8)
        + """    } in
    let state Refill = {
"""
        + _refill_section(params, setbits)
        + """    } in
    // the trusted timer: when it expires, control always returns to
    // Master no matter what the child is doing (section 4.2)
    if (timer == 1) {
        timer := 0;
        goto Master;
    } else {
        if (timer > 1) {
            timer := timer - 1;
        }
        halted := halted_r;
        fall;
    }
}
"""
    )


# -- public API -------------------------------------------------------------------------------


def design_sections(
    lattice: Lattice | None = None, params: ProcParams | None = None
) -> dict[str, str]:
    """The processor source split by component (the Figure 8 accounting).

    The concatenation of the full design equals ``generate_design``; the
    per-section texts here are the same helper outputs, grouped by the
    paper's component names for LOC counting.
    """
    lattice = lattice or two_level()
    params = params or ProcParams()
    setbits = _setbits(params, lattice)
    return {
        "Fetch": _fetch_section() + _lookup_section(params, setbits),
        "Decode + Register File": (
            _decode_wires("ed_", "e_ir")
            + _decode_wires("md_", "m_ir")
            + _decode_wires("wd_", "w_ir")
            + _regread_section()
            + _decode_section()
        ),
        "Execute + ALU + FPU": _execute_section(),
        "Memory + Cache": _memory_section(params, setbits) + _refill_section(params, setbits),
        "Write Back": _writeback_section(),
        "Control Logic + Forwarding + Stalling": (
            _declarations(params, lattice)
            + _boot_section(params, lattice)
            + _master_section(params)
            + (_slave_section(params, setbits).split("let state Pipeline")[0])
        ),
    }


def _generate(lattice: Lattice, params: ProcParams) -> str:
    setbits = _setbits(params, lattice)
    return (
        _declarations(params, lattice)
        + _boot_section(params, lattice)
        + _master_section(params)
        + _slave_section(params, setbits)
    )


def generate_design(lattice: Lattice | None = None, params: ProcParams | None = None) -> str:
    """Full Sapper source of the processor for *lattice* (default 2-level).

    The text is produced once per configuration and held in the default
    toolchain's artifact cache.
    """
    from repro.toolchain import get_toolchain, lattice_key

    lattice = lattice or two_level()
    params = params or ProcParams()
    key = (
        "proc-source",
        lattice_key(lattice),
        params.mem_words,
        params.cache_lines,
        params.words_per_line,
        params.kernel_vector,
    )
    return get_toolchain().cached(key, lambda: _generate(lattice, params))

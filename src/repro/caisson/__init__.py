"""Caisson baseline: static partitioning by duplication (Li et al., PLDI'11).

Caisson enforces noninterference with a purely static type system: no
labels exist at run time, so every stateful resource must be physically
partitioned per security level and selected by the current security
context.  The paper (section 2.2) summarizes the consequence: "all
registers must be duplicated for different security levels and
multiplexers are used to choose the corresponding register" -- a 2x area
overhead on the evaluated processor, and "supporting [the diamond]
lattice in Caisson would require duplicating all resources into four
pieces" (section 4.6).

:func:`caisson_transform` reproduces exactly that cost mechanism as an
HDL-to-HDL transform on the insecure base design: K copies of all
state and logic, a context input selecting the active partition, write
gating per partition, and context-muxed outputs.  The result is a real,
simulatable module put through the same synthesis flow as the others.
"""

from repro.caisson.transform import caisson_transform

__all__ = ["caisson_transform"]

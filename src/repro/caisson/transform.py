"""The Caisson duplication transform (see package docstring)."""

from __future__ import annotations

from repro.hdl.ir import HConst, HExpr, HOp, HRef, Module
from repro.lattice import Lattice


def _suffix(name: str, k: int) -> str:
    return f"{name}__p{k}"


class _Renamer:
    """Rewrite an expression for partition *k*: every register, wire and
    array reference moves to that partition's copy; inputs stay shared."""

    def __init__(self, module: Module, k: int):
        self.module = module
        self.k = k

    def expr(self, e: HExpr) -> HExpr:
        if isinstance(e, HConst):
            return e
        if isinstance(e, HRef):
            if e.name in self.module.inputs:
                return e
            return HRef(_suffix(e.name, self.k), e.width)
        assert isinstance(e, HOp)
        args = tuple(self.expr(a) for a in e.args)
        array = _suffix(e.array, self.k) if e.op == "read" else e.array
        return HOp(e.op, args, e.width, hi=e.hi, lo=e.lo, array=array)


def caisson_transform(base: Module, lattice: Lattice, name: str | None = None) -> Module:
    """Partition *base* into one copy per lattice level.

    A new ``ctx`` input (the current security context, supplied by the
    environment exactly as a Caisson design's typed context is) selects
    which partition's registers advance and which partition drives the
    outputs.  Inactive partitions hold their state -- the hard
    partitioning that lets a purely static type system work.
    """
    levels = len(lattice)
    ctx_width = max(1, (levels - 1).bit_length())
    out = Module(name or base.name + "_caisson")
    ctx = out.add_input("ctx", ctx_width)
    for port, width in base.inputs.items():
        out.add_input(port, width)

    for k in range(levels):
        for reg in base.regs.values():
            out.add_reg(_suffix(reg.name, k), reg.width, reg.init)
        for arr in base.arrays.values():
            out.add_array(_suffix(arr.name, k), arr.width, arr.size, arr.default)

    for k in range(levels):
        renamer = _Renamer(base, k)
        active = out.fresh(HOp("eq", (ctx, HConst(k, ctx_width)), 1), f"act{k}")
        for sig, expr in base.comb:
            out.assign(_suffix(sig, k), renamer.expr(expr))
        for reg, sig in base.reg_next.items():
            copy = _suffix(reg, k)
            nxt = out.fresh(
                HOp(
                    "mux",
                    (active, HRef(_suffix(sig, k), out.width_of(_suffix(sig, k))),
                     HRef(copy, base.regs[reg].width)),
                    base.regs[reg].width,
                ),
                f"nx_{copy}",
            )
            out.set_reg_next(copy, nxt)
        for wr in base.array_writes:
            enable = out.fresh(HOp("land", (renamer.expr(wr.enable), active), 1), f"we{k}")
            out.write_array(
                _suffix(wr.array, k), renamer.expr(wr.addr), renamer.expr(wr.data), enable
            )

    # context-muxed outputs: "multiplexers ... choose the corresponding
    # register based on the current security context"
    for port, sig in base.outputs.items():
        width = base.width_of(sig)
        value: HExpr = HRef(_suffix(sig, 0), width)
        for k in range(1, levels):
            sel = HOp("eq", (ctx, HConst(k, ctx_width)), 1)
            value = HOp("mux", (sel, HRef(_suffix(sig, k), width), value), width)
        out.set_output(port, out.fresh(value, f"o_{port}"))

    out.validate()
    return out

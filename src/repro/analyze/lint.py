"""Design-lint rules over the signal graph (the ``repro check`` engine).

Each rule yields :class:`AnalysisFinding` records with a stable rule id,
a severity, and a location; :class:`AnalysisReport` aggregates them with
the module's :class:`~repro.analyze.taint.TaintCertificate` and renders
as text or JSON.  Severity ``error`` marks IR that a backend would
miscompile or hang on (``repro check`` exits nonzero); ``warning`` and
``info`` mark dead or unused structure that costs area and audit effort
but simulates fine.

:func:`analyze_module` runs the IR-level rules on any module;
:func:`analyze_design` adds the Sapper-level rules (unreachable FSM
states against the :class:`~repro.sapper.analysis.ProgramInfo` state
tree, unused and unproducible lattice levels against the design's
:class:`~repro.lattice.Lattice`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.analyze.graph import SignalGraph, build_graph
from repro.analyze.taint import TaintCertificate, compute_taint, default_taint_sources
from repro.hdl.ir import HOp, Module, op_width_issue

if TYPE_CHECKING:
    from repro.sapper.compiler import CompiledDesign

SEVERITIES = ("error", "warning", "info")

#: Bump when rules or report/certificate shapes change: persisted
#: analysis artifacts key on this, so stale store entries never resurface.
ANALYSIS_VERSION = 1


@dataclass(frozen=True)
class AnalysisFinding:
    """One lint diagnostic: ``[severity] rule @ location: message``."""

    rule: str
    severity: str
    location: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def render(self) -> str:
        return f"[{self.severity}] {self.rule} @ {self.location}: {self.message}"


@dataclass
class AnalysisReport:
    """All findings for one module, plus its taint certificate."""

    module_name: str
    findings: list[AnalysisFinding] = field(default_factory=list)
    certificate: TaintCertificate | None = None

    @property
    def errors(self) -> list[AnalysisFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding is present."""
        return not self.errors

    def counts(self) -> dict[str, int]:
        out = dict.fromkeys(SEVERITIES, 0)
        for f in self.findings:
            out[f.severity] += 1
        return out

    def to_json(self) -> dict:
        out: dict = {
            "module": self.module_name,
            "ok": self.ok,
            "counts": self.counts(),
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity,
                    "location": f.location,
                    "message": f.message,
                }
                for f in self.findings
            ],
        }
        if self.certificate is not None:
            out["taint"] = {
                "sources": list(self.certificate.sources),
                **self.certificate.stats,
            }
        return out

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        counts = self.counts()
        summary = (
            f"{self.module_name}: {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info"
        )
        if self.certificate is not None:
            stats = self.certificate.stats
            summary += (
                f"; taint: {stats['tainted_signals']}/{stats['signals']} signals "
                f"statically tainted ({stats['prune_ratio']:.0%} of shadow state prunable)"
            )
        lines.append(summary)
        return "\n".join(lines)


# -- IR-level rules ------------------------------------------------------------


def _rule_comb_loops(graph: SignalGraph) -> Iterable[AnalysisFinding]:
    for cycle in graph.comb_cycles():
        path = " -> ".join([*cycle, cycle[0]])
        yield AnalysisFinding(
            "comb-loop",
            "error",
            cycle[0],
            f"combinational cycle of {len(cycle)} signal(s): {path}",
        )


def _rule_driven(module: Module, graph: SignalGraph) -> Iterable[AnalysisFinding]:
    undefined = sorted(n for n, k in graph.kinds.items() if k == "undefined")
    for name in undefined:
        readers = sorted({dst for dst, _ in graph.succs.get(name, ())})
        yield AnalysisFinding(
            "undriven-signal",
            "error",
            name,
            f"referenced by {', '.join(readers)} but never driven",
        )
    defined = set(module.inputs) | set(module.regs) | {n for n, _ in module.comb}
    for port, sig in module.outputs.items():
        if sig not in defined:
            yield AnalysisFinding(
                "undriven-signal", "error", port, f"output driven by undefined {sig!r}"
            )
    for reg, sig in module.reg_next.items():
        if sig not in defined:
            yield AnalysisFinding(
                "undriven-signal", "error", reg, f"register loads undefined {sig!r}"
            )
    for reg in module.regs:
        if reg not in module.reg_next:
            yield AnalysisFinding(
                "undriven-signal", "error", reg, "register has no next-value signal"
            )

    seen = set(module.inputs) | set(module.regs)
    for name, _ in module.comb:
        if name in seen:
            kind = (
                "an input" if name in module.inputs
                else "a register" if name in module.regs
                else "an earlier assignment"
            )
            yield AnalysisFinding(
                "multiply-driven", "error", name, f"combinational signal shadows {kind}"
            )
        seen.add(name)


def _rule_dead_inputs(module: Module, graph: SignalGraph) -> Iterable[AnalysisFinding]:
    driven_ports = set(module.outputs.values()) | set(module.reg_next.values())
    for name in module.inputs:
        if not graph.succs.get(name) and name not in driven_ports:
            yield AnalysisFinding(
                "dead-input", "warning", name, "input port is never read"
            )


def _rule_widths(module: Module) -> Iterable[AnalysisFinding]:
    def check(owner: str, expr) -> Iterable[AnalysisFinding]:
        for node in expr.walk():
            if isinstance(node, HOp):
                issue = op_width_issue(node, module.arrays)
                if issue:
                    yield AnalysisFinding("width", "error", owner, issue)

    for name, expr in module.comb:
        yield from check(name, expr)
    for wr in module.array_writes:
        owner = f"write:{wr.array}"
        for expr in (wr.addr, wr.data, wr.enable):
            yield from check(owner, expr)
        arr = module.arrays.get(wr.array)
        if arr is not None and wr.data.width > arr.width:
            yield AnalysisFinding(
                "width",
                "error",
                owner,
                f"stores {wr.data.width}-bit data into {arr.width}-bit words",
            )


def analyze_module(
    module: Module, sources: Iterable[str] = ()
) -> AnalysisReport:
    """Run every IR-level lint rule plus the taint fixpoint on *module*.

    Unlike :meth:`Module.validate` this never raises on broken IR --
    each defect becomes an error-severity finding, and *all* of them
    are reported, not just the first.
    """
    graph = build_graph(module)
    report = AnalysisReport(module_name=module.name)
    report.findings.extend(_rule_comb_loops(graph))
    report.findings.extend(_rule_driven(module, graph))
    report.findings.extend(_rule_dead_inputs(module, graph))
    report.findings.extend(_rule_widths(module))
    report.certificate = compute_taint(module, sources)
    return report


# -- Sapper design-level rules -------------------------------------------------


def _rule_unreachable_states(design: CompiledDesign) -> Iterable[AnalysisFinding]:
    """States the FSM can never enter.

    Reachability fixpoint over the state tree: the implicit root is
    reachable; a reachable state that ``fall``s schedules its default
    child; every ``goto`` inside a reachable state schedules its target
    (gotos also retarget the parent's fall map, but only to states that
    are goto-reachable anyway, so this closure is exact).
    """
    from repro.sapper import ast

    info = design.info
    reachable = {ast.ROOT}
    frontier = [ast.ROOT]
    while frontier:
        state = frontier.pop()
        body = info.states[state].body
        targets = set()
        for cmd in body.walk():
            if isinstance(cmd, ast.Fall):
                child = info.default_child.get(state)
                if child is not None:
                    targets.add(child)
            elif isinstance(cmd, ast.Goto):
                targets.add(cmd.target)
        for target in targets:
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    for name in sorted(info.states):
        if name not in reachable:
            yield AnalysisFinding(
                "unreachable-state",
                "warning",
                name,
                "state is neither the initial fall target nor any goto target",
            )


def _has_tag_from_bits(te) -> bool:
    from repro.sapper import ast

    if isinstance(te, ast.TagFromBits):
        return True
    if isinstance(te, ast.TagJoin):
        return _has_tag_from_bits(te.left) or _has_tag_from_bits(te.right)
    return False


def _rule_lattice_levels(design: CompiledDesign) -> Iterable[AnalysisFinding]:
    """Lattice levels the design never mentions or can never produce.

    A level outside the join closure of the levels the design can
    introduce can never appear as a dynamic tag, so every flow rule
    involving it never fires -- the policy is wider than the design.
    Designs with a dynamic tag input port (``name__tag``) or a
    bits-to-tag conversion can be handed *any* level from outside, so
    every level counts as producible there.
    """
    from repro.sapper import ast

    lattice = design.lattice
    used = design.info.labels_used() & set(lattice.elements)
    for level in lattice.elements:
        if level not in used and level != lattice.bottom:
            yield AnalysisFinding(
                "unused-level",
                "warning",
                level,
                "lattice level is never mentioned by the design",
            )
    open_world = any(name.endswith("__tag") for name in design.module.inputs) or any(
        isinstance(cmd, ast.SetTag) and _has_tag_from_bits(cmd.tag)
        for state in design.info.states.values()
        for cmd in state.body.walk()
    )
    producible = set(lattice.elements) if open_world else set(used) | {lattice.bottom}
    changed = True
    while changed:
        changed = False
        for a in tuple(producible):
            for b in tuple(producible):
                j = lattice.join(a, b)
                if j not in producible:
                    producible.add(j)
                    changed = True
    for level in lattice.elements:
        if level not in producible:
            yield AnalysisFinding(
                "unreachable-level",
                "info",
                level,
                "no tag computation can produce this level; "
                "flow rules involving it never fire",
            )


def analyze_design(
    design: CompiledDesign, sources: Iterable[str] | None = None
) -> AnalysisReport:
    """IR rules plus the Sapper-level rules on a compiled design.

    Taint sources default to
    :func:`~repro.analyze.taint.default_taint_sources` (the design's
    dynamic tag ports and its above-bottom-labelled inputs).
    """
    if sources is None:
        sources = default_taint_sources(design)
    report = analyze_module(design.module, sources)
    report.findings.extend(_rule_unreachable_states(design))
    report.findings.extend(_rule_lattice_levels(design))
    return report

"""Static analysis over the HDL IR (and the Sapper designs built on it).

The package implements the compile-time half of the Sapper story: the
paper derives enforcement logic statically from design + policy, and
this layer proves facts about the *result* before anything simulates.

* :mod:`repro.analyze.graph` -- the signal-level dataflow graph
  (combinational edges, register next-state edges, array read/write
  ports) shared by every analysis.
* :mod:`repro.analyze.taint` -- may-carry-taint reachability from the
  tagged inputs: a :class:`TaintCertificate` classifying every signal
  as statically tainted (with a witness path) or statically clean, plus
  the :class:`PackedTaintTracker` the batched tiers attach to track
  dynamic taint only over the statically tainted cone.
* :mod:`repro.analyze.shadow` -- a deliberately independent shadow-tag
  reference interpreter used to pin the soundness contract: any signal
  that ever becomes dynamically tainted must be statically tainted.
* :mod:`repro.analyze.lint` -- the design-lint rule framework behind
  ``python -m repro check`` (:class:`AnalysisFinding`,
  :class:`AnalysisReport`).
"""

from repro.analyze.graph import SignalGraph, array_node, build_graph
from repro.analyze.lint import (
    ANALYSIS_VERSION,
    AnalysisFinding,
    AnalysisReport,
    analyze_design,
    analyze_module,
)
from repro.analyze.shadow import ShadowSimulator
from repro.analyze.taint import (
    PackedTaintTracker,
    TaintCertificate,
    compute_taint,
    default_taint_sources,
)

__all__ = [
    "ANALYSIS_VERSION",
    "SignalGraph",
    "array_node",
    "build_graph",
    "TaintCertificate",
    "compute_taint",
    "default_taint_sources",
    "PackedTaintTracker",
    "ShadowSimulator",
    "AnalysisFinding",
    "AnalysisReport",
    "analyze_design",
    "analyze_module",
]

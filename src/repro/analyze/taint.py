"""Static may-carry-taint analysis and the packed dynamic tracker.

:func:`compute_taint` runs a worklist fixpoint over the
:class:`~repro.analyze.graph.SignalGraph`: starting from the designated
source inputs (by default the design's ``__tag`` ports and every input
whose declared label sits above the lattice bottom), taint flows along
every edge kind -- same-cycle through combinational reads, across the
clock edge through register loads and array write ports.  The result is
a :class:`TaintCertificate`: every signal is either *statically tainted*
(with a concrete witness path back to a source) or *statically clean*.

Clean is a proof, never a guess -- the soundness contract, pinned by the
Hypothesis differential suite against :mod:`repro.analyze.shadow`, is
that no signal can ever become dynamically tainted unless the
certificate marked it tainted.  That proof is what lets the batched
simulation tiers prune: :class:`PackedTaintTracker` allocates a
lane-packed shadow word *only* for statically tainted signals, so the
clean part of the design (the entire design, for an insecure
compilation) carries no shadow state at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.analyze.graph import array_node, build_graph, is_array_node
from repro.hdl.ir import Module
from repro.hdl.passes.base import WeakIdMemo

if TYPE_CHECKING:
    from repro.sapper.compiler import CompiledDesign


@dataclass(frozen=True)
class TaintCertificate:
    """Per-signal static taint classification of one module.

    Node names follow the :mod:`~repro.analyze.graph` convention:
    signals by name, arrays as ``array:NAME``.  The certificate is a
    plain picklable value so the toolchain can persist it in the
    artifact store beside the other compile artifacts.
    """

    module_name: str
    sources: tuple[str, ...]
    tainted: frozenset[str]
    #: tainted node -> (predecessor it was first reached from, edge kind)
    witness_parent: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: census over the module: {kind: (total, tainted)} for
    #: kind in {"signals", "regs", "arrays", "inputs"}
    census: dict[str, tuple[int, int]] = field(default_factory=dict)

    def is_tainted(self, node: str) -> bool:
        return node in self.tainted

    def is_clean(self, node: str) -> bool:
        return node not in self.tainted

    def witness(self, node: str) -> tuple[str, ...]:
        """A concrete source-to-*node* dataflow path proving taintedness."""
        if node not in self.tainted:
            raise ValueError(f"{node!r} is statically clean; no witness exists")
        path = [node]
        while path[-1] not in self.sources:
            pred, _kind = self.witness_parent[path[-1]]
            path.append(pred)
        return tuple(reversed(path))

    @property
    def stats(self) -> dict[str, object]:
        """Prune census: how much shadow state the certificate removes."""
        out: dict[str, object] = {}
        total_all = tainted_all = 0
        for kind, (total, tainted) in self.census.items():
            out[kind] = total
            out[f"tainted_{kind}"] = tainted
            out[f"pruned_{kind}"] = total - tainted
            total_all += total
            tainted_all += tainted
        out["prune_ratio"] = (total_all - tainted_all) / total_all if total_all else 0.0
        return out


def default_taint_sources(design: CompiledDesign) -> tuple[str, ...]:
    """Everything that can carry secrets into *design*'s module.

    Three families: the dynamic tag ports the compiler adds for
    non-enforced inputs (``name__tag``), the data inputs whose declared
    label sits strictly above the lattice bottom (an ``H`` input is
    itself a secret even though its tag port is constant), and the
    shadow tag arrays (``name__tags``) that are loaded from outside
    before simulation starts.  The last family is what makes closed
    designs like the secure processor analyzable: it has no ports at
    all, so its secrets arrive entirely through preloaded tag memory.
    Per-entity tag *registers* are deliberately not sources -- they
    reset to the lattice bottom, so any taint they hold is derived and
    the fixpoint discovers it.
    """
    bottom = design.lattice.bottom
    module = design.module
    sources = []
    for name in module.inputs:
        if name.endswith("__tag"):
            sources.append(name)
            continue
        decl = design.info.regs.get(name)
        if decl is not None and decl.label is not None and decl.label != bottom:
            sources.append(name)
    for name in module.arrays:
        if name.endswith("__tags"):
            sources.append(name)
    return tuple(sources)


#: module -> {sources tuple -> certificate}; the three batched tiers all
#: attach over the same optimized module object, so the fixpoint runs once
_CERT_CACHE = WeakIdMemo()


def compute_taint(module: Module, sources: Iterable[str]) -> TaintCertificate:
    """Fixpoint may-carry-taint reachability from *sources* (input names)."""
    sources = tuple(sources)
    per_module = _CERT_CACHE.get(module)
    if per_module is None:
        per_module = {}
        _CERT_CACHE.set(module, per_module)
    cached = per_module.get(sources)
    if cached is not None:
        return cached
    graph = build_graph(module)
    source_list = []
    for name in sources:
        if name in module.arrays:
            name = array_node(name)
        if name not in graph.kinds:
            raise ValueError(f"{module.name}: unknown taint source {name!r}")
        source_list.append(name)

    tainted: set[str] = set(source_list)
    parent: dict[str, tuple[str, str]] = {}
    frontier = list(source_list)
    while frontier:
        node = frontier.pop()
        for succ, kind in graph.succs.get(node, ()):
            if succ not in tainted:
                tainted.add(succ)
                parent[succ] = (node, kind)
                frontier.append(succ)

    comb_names = [name for name, _ in module.comb]
    census = {
        "signals": (len(comb_names), sum(1 for n in comb_names if n in tainted)),
        "regs": (len(module.regs), sum(1 for n in module.regs if n in tainted)),
        "arrays": (
            len(module.arrays),
            sum(1 for n in module.arrays if array_node(n) in tainted),
        ),
        "inputs": (len(module.inputs), sum(1 for n in module.inputs if n in tainted)),
    }
    cert = TaintCertificate(
        module_name=module.name,
        sources=tuple(source_list),
        tainted=frozenset(tainted),
        witness_parent=parent,
        census=census,
    )
    per_module[sources] = cert
    return cert


# -- packed dynamic tracking over the tainted cone ------------------------------


#: module -> {sources tuple -> compiled step function}
_TRACKER_CACHE = WeakIdMemo()


def _signal_term(
    name: str,
    module: Module,
    tainted: frozenset[str],
    sources: frozenset[str],
    local: dict[str, str],
) -> str | None:
    """Python expression for the current taint word of signal *name*
    (None when the signal is statically clean and contributes nothing)."""
    if name in sources:
        return f"src[{name!r}]"
    if name not in tainted:
        return None
    if name in module.regs:
        return f"rt[{name!r}]"
    return local[name]


def _compile_tracker(module: Module, cert: TaintCertificate):
    """Generate the per-cycle taint-propagation step for *module*.

    The generated function is value-independent and conservative: every
    statically tainted combinational signal gets one packed word (bit
    *l* = lane *l* may carry taint this cycle) computed as the OR of its
    operands' words; registers commit two-phase like the value
    simulators; arrays are tracked as one sticky word.  Statically
    clean signals appear nowhere -- that is the prune.
    """
    from repro.hdl.ir import HOp, HRef

    tainted = cert.tainted
    sources = frozenset(s for s in cert.sources if not is_array_node(s))
    local: dict[str, str] = {}
    lines = ["def step(rt, at, src, ev, cur):"]

    def terms_of(expr) -> list[str]:
        terms = []
        for node in expr.walk():
            if isinstance(node, HRef):
                term = _signal_term(node.name, module, tainted, sources, local)
                if term is not None:
                    terms.append(term)
            elif isinstance(node, HOp) and node.op == "read":
                if array_node(node.array) in tainted:
                    terms.append(f"at[{node.array!r}]")
        return sorted(set(terms))

    for i, (name, expr) in enumerate(module.comb):
        if name not in tainted:
            continue
        var = f"t{i}"
        local[name] = var
        terms = terms_of(expr)
        lines.append(f"    {var} = " + (" | ".join(terms) if terms else "0"))
        lines.append(f"    cur[{name!r}] = {var}")
        lines.append(f"    ev[{name!r}] |= {var}")
    for name in sorted(sources):
        lines.append(f"    ev[{name!r}] |= src[{name!r}]")

    # clock edge: register loads then array write ports, both reading
    # the pre-edge words computed above
    commits = []
    for j, (reg, sig) in enumerate(module.reg_next.items()):
        if reg not in tainted:
            continue
        term = _signal_term(sig, module, tainted, sources, local) or "0"
        lines.append(f"    n{j} = {term}")
        commits.append(f"    rt[{reg!r}] = n{j}")
        commits.append(f"    ev[{reg!r}] |= n{j}")
    for wr in module.array_writes:
        node = array_node(wr.array)
        if node not in tainted:
            continue
        terms = []
        for expr in (wr.addr, wr.data, wr.enable):
            terms.extend(terms_of(expr))
        if terms:
            joined = " | ".join(sorted(set(terms)))
            commits.append(f"    at[{wr.array!r}] |= {joined}")
            commits.append(f"    ev[{node!r}] |= at[{wr.array!r}]")
    lines.extend(commits if commits else ["    pass"])

    namespace: dict = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - generated from the IR only
    return namespace["step"]


def _tracker_step(module: Module, cert: TaintCertificate):
    per_module = _TRACKER_CACHE.get(module)
    if per_module is None:
        per_module = {}
        _TRACKER_CACHE.set(module, per_module)
    fn = per_module.get(cert.sources)
    if fn is None:
        fn = per_module[cert.sources] = _compile_tracker(module, cert)
    return fn


class PackedTaintTracker:
    """Lane-packed dynamic taint over the statically tainted cone.

    One integer word per *statically tainted* signal, register, and
    array; bit *l* set means lane *l*'s instance may carry taint.
    Statically clean signals get no word -- the
    :class:`TaintCertificate` proves they never need one -- which is
    the tag-prune the batched tiers report (:attr:`stats`).

    Propagation is value-independent (mux taints as the union of all
    three operands, write ports are sticky), so tracked taint always
    contains the value-aware oracle of :mod:`repro.analyze.shadow` and
    is always contained in the static certificate.  Lanes diverge
    through *lane_masks*: a per-source packed mask of which lanes drive
    tainted data (default: all lanes, every cycle).
    """

    def __init__(
        self,
        module: Module,
        certificate: TaintCertificate,
        lanes: int,
        lane_masks: dict[str, int] | None = None,
    ):
        self.module = module
        self.certificate = certificate
        self.lanes = lanes
        ones = (1 << lanes) - 1
        self._step = _tracker_step(module, certificate)
        tainted = certificate.tainted
        self.reg_taint = {r: 0 for r in module.regs if r in tainted}
        self.arr_taint = {a: 0 for a in module.arrays if array_node(a) in tainted}
        self.src = {s: ones for s in certificate.sources if not is_array_node(s)}
        array_sources = [
            s[len("array:") :] for s in certificate.sources if is_array_node(s)
        ]
        for name in array_sources:
            self.arr_taint[name] = ones
        if lane_masks:
            for name, mask in lane_masks.items():
                if name in self.src:
                    self.src[name] = mask & ones
                elif name in array_sources:
                    self.arr_taint[name] = mask & ones
                else:
                    raise ValueError(f"{name!r} is not a taint source of {module.name}")
        self.cur: dict[str, int] = {}
        self.ever: dict[str, int] = {}
        for name, _ in module.comb:
            if name in tainted:
                self.ever[name] = 0
        for name in self.src:
            self.ever[name] = 0
        for name in self.reg_taint:
            self.ever[name] = 0
        for name, word in self.arr_taint.items():
            self.ever[array_node(name)] = word

    def step(self) -> None:
        """Advance the shadow state one clock cycle (all lanes)."""
        self._step(self.reg_taint, self.arr_taint, self.src, self.ever, self.cur)

    def compact(self, keep: Sequence[int]) -> None:
        """Repack every shadow word to the surviving lane positions."""
        pairs = list(enumerate(keep))

        def repack(word: int) -> int:
            return sum(((word >> lane) & 1) << i for i, lane in pairs)

        for store in (self.reg_taint, self.arr_taint, self.src, self.cur, self.ever):
            for name, word in store.items():
                store[name] = repack(word)
        self.lanes = len(keep)

    def lane_tainted(self, lane: int, node: str) -> bool:
        """Did taint ever reach *node* in lane *lane*?"""
        return bool((self.ever.get(node, 0) >> lane) & 1)

    def ever_tainted(self, lane: int) -> frozenset[str]:
        """All nodes taint ever reached in lane *lane*."""
        return frozenset(n for n, w in self.ever.items() if (w >> lane) & 1)

    @property
    def stats(self) -> dict[str, object]:
        """The certificate's prune census plus live tracker counts."""
        out = self.certificate.stats
        out["tracked_words"] = len(self.ever)
        out["lanes"] = self.lanes
        return out

"""Signal-level dataflow graph over :class:`repro.hdl.ir.Module`.

Nodes are signal names (inputs, registers, combinational wires) plus one
``array:NAME`` node per register array (an array is tracked as a single
storage location; per-cell precision lives in the dynamic oracle, not
here).  Edges carry a kind:

* ``comb`` -- a combinational assignment reads the source signal;
* ``read`` -- a combinational assignment reads the source array;
* ``reg`` -- a register loads the source signal at the clock edge;
* ``write`` -- an array write port (address, data, or enable) reads the
  source signal or array at the clock edge.

``comb``/``read`` edges are same-cycle, ``reg``/``write`` edges cross
the clock edge; taint reachability follows all four, combinational-cycle
detection only the same-cycle wire-to-wire subgraph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdl.ir import HExpr, HOp, HRef, Module

#: Prefix distinguishing array nodes from signal nodes.
ARRAY_PREFIX = "array:"


def array_node(name: str) -> str:
    """Graph node name for the register array *name*."""
    return ARRAY_PREFIX + name


def is_array_node(node: str) -> bool:
    return node.startswith(ARRAY_PREFIX)


def _expr_sources(expr: HExpr) -> tuple[set[str], set[str]]:
    """Signal names and array names read anywhere inside *expr*."""
    signals: set[str] = set()
    arrays: set[str] = set()
    for node in expr.walk():
        if isinstance(node, HRef):
            signals.add(node.name)
        elif isinstance(node, HOp) and node.op == "read":
            arrays.add(node.array)
    return signals, arrays


@dataclass
class SignalGraph:
    """The dataflow graph of one module (see module docstring)."""

    module: Module
    #: node -> "input" | "reg" | "wire" | "array"
    kinds: dict[str, str] = field(default_factory=dict)
    #: node -> sorted tuple of (successor, edge kind)
    succs: dict[str, tuple[tuple[str, str], ...]] = field(default_factory=dict)
    #: node -> sorted tuple of (predecessor, edge kind)
    preds: dict[str, tuple[tuple[str, str], ...]] = field(default_factory=dict)

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(self.kinds)

    def comb_cycles(self) -> list[list[str]]:
        """Combinational cycles, each as an ordered signal list.

        Runs Tarjan's SCC algorithm (iteratively; compiled designs nest
        thousands deep) over the same-cycle wire subgraph: ``comb``
        edges whose both endpoints are combinational wires.  Inputs and
        registers cannot participate (they have no same-cycle
        in-edges), and arrays cannot either (array state only changes
        at the clock edge).  Each non-trivial SCC -- or wire reading
        itself -- is reported as one concrete cycle
        ``[s0, s1, ..., s0-again-implied]`` with every hop a real
        read-of relationship.
        """
        wires = [n for n, k in self.kinds.items() if k == "wire"]
        adj: dict[str, list[str]] = {}
        for name in wires:
            adj[name] = [
                dst
                for dst, kind in self.succs.get(name, ())
                if kind == "comb" and self.kinds.get(dst) == "wire"
            ]

        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = 0
        sccs: list[list[str]] = []

        for root in wires:
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, child_i = work[-1]
                if child_i == 0:
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                children = adj[node]
                while child_i < len(children):
                    succ = children[child_i]
                    child_i += 1
                    if succ not in index:
                        work[-1] = (node, child_i)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if low[node] == index[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    if len(scc) > 1 or node in adj[node]:
                        sccs.append(scc)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

        return [self._concrete_cycle(set(scc), adj) for scc in sccs]

    def _concrete_cycle(self, scc: set[str], adj: dict[str, list[str]]) -> list[str]:
        """One concrete cycle inside *scc*, as an ordered signal list."""
        start = min(scc)
        path = [start]
        seen = {start: 0}
        node = start
        while True:
            node = next(s for s in adj[node] if s in scc)
            if node in seen:
                return path[seen[node] :]
            seen[node] = len(path)
            path.append(node)


def build_graph(module: Module) -> SignalGraph:
    """Construct the :class:`SignalGraph` of *module*.

    Works on modules that would fail :meth:`Module.validate` (duplicate
    or undefined signals): lint rules need the graph precisely when the
    module is broken.  References to names with no definition become
    dangling source nodes of kind ``"undefined"``.
    """
    kinds: dict[str, str] = {}
    for name in module.inputs:
        kinds[name] = "input"
    for name in module.regs:
        kinds.setdefault(name, "reg")
    for name in module.arrays:
        kinds[array_node(name)] = "array"
    for name, _expr in module.comb:
        kinds.setdefault(name, "wire")

    edges: set[tuple[str, str, str]] = set()

    def note(src: str, dst: str, kind: str) -> None:
        kinds.setdefault(src, "undefined")
        edges.add((src, dst, kind))

    for name, expr in module.comb:
        signals, arrays = _expr_sources(expr)
        for src in signals:
            note(src, name, "comb")
        for arr in arrays:
            note(array_node(arr), name, "read")
    for reg, sig in module.reg_next.items():
        note(sig, reg, "reg")
    for wr in module.array_writes:
        dst = array_node(wr.array)
        kinds.setdefault(dst, "array")
        for expr in (wr.addr, wr.data, wr.enable):
            signals, arrays = _expr_sources(expr)
            for src in signals:
                note(src, dst, "write")
            for arr in arrays:
                note(array_node(arr), dst, "write")

    succs: dict[str, list[tuple[str, str]]] = {}
    preds: dict[str, list[tuple[str, str]]] = {}
    for src, dst, kind in sorted(edges):
        succs.setdefault(src, []).append((dst, kind))
        preds.setdefault(dst, []).append((src, kind))
    return SignalGraph(
        module=module,
        kinds=kinds,
        succs={k: tuple(v) for k, v in succs.items()},
        preds={k: tuple(v) for k, v in preds.items()},
    )

"""Shadow-tag reference interpreter: the dynamic half of the soundness
contract.

:class:`ShadowSimulator` runs a module cycle-accurately while carrying a
one-bit dynamic taint alongside every value.  Taint enters through the
designated source inputs and propagates value-aware where that is
precise (a mux taints from its select and the *taken* arm only; an array
read taints from the address and the *addressed cell* only) and as the
operand union everywhere else.

It is deliberately implemented as a recursive tree interpreter with no
code generation and no dependency on :mod:`repro.analyze.graph` -- an
independent second opinion.  The Hypothesis differential suite pins two
containments against it on random programs:

* every signal in :attr:`ever_tainted` is marked tainted by the static
  :class:`~repro.analyze.taint.TaintCertificate` (static-clean is a
  proof);
* values are bit-identical with :class:`repro.hdl.sim.Simulator`
  (carrying taint cannot perturb the simulation).
"""

from __future__ import annotations


from repro.analyze.graph import array_node
from repro.hdl.ir import HConst, HExpr, HOp, HRef, Module


def _signed(v: int, w: int) -> int:
    return v - (1 << w) if v >> (w - 1) & 1 else v


class ShadowSimulator:
    """Cycle-accurate value + dynamic-taint interpreter of *module*.

    Mirrors :class:`repro.hdl.sim.Simulator` semantics exactly
    (division by zero yields all-ones, remainder the dividend, shifts
    saturate, arrays are sparse with a per-array default) so values can
    be cross-checked bit-for-bit.  *sources* lists the input ports that
    carry taint (every cycle, whatever their value).
    """

    def __init__(self, module: Module, sources: tuple[str, ...] = ()):
        module.validate()
        self.module = module
        self.sources = frozenset(sources)
        unknown = self.sources - set(module.inputs)
        if unknown:
            raise ValueError(f"{module.name}: unknown taint sources {sorted(unknown)}")
        self.regs: dict[str, int] = {r.name: r.init for r in module.regs.values()}
        self.reg_taint: dict[str, bool] = dict.fromkeys(module.regs, False)
        self.arrays: dict[str, dict[int, int]] = {a: {} for a in module.arrays}
        self.array_taint: dict[str, dict[int, bool]] = {a: {} for a in module.arrays}
        self.cycles = 0
        #: every node name that ever carried dynamic taint (signals by
        #: name, arrays as ``array:NAME`` -- the certificate convention)
        self.ever_tainted: set[str] = set()
        #: signal -> taint as of the last completed step
        self.taints: dict[str, bool] = {}

    # -- expression evaluation ------------------------------------------------

    def _eval(
        self,
        e: HExpr,
        values: dict[str, int],
        taints: dict[str, bool],
    ) -> tuple[int, bool]:
        if isinstance(e, HConst):
            return e.value, False
        if isinstance(e, HRef):
            return values[e.name], taints[e.name]
        assert isinstance(e, HOp)
        op = e.op
        m = (1 << e.width) - 1

        if op == "mux":
            sv, st = self._eval(e.args[0], values, taints)
            v, t = self._eval(e.args[1] if sv else e.args[2], values, taints)
            return v, st or t
        if op == "read":
            av, at = self._eval(e.args[0], values, taints)
            arr = self.module.arrays[e.array]
            idx = av % arr.size
            value = self.arrays[e.array].get(idx, arr.default)
            taint = at or self.array_taint[e.array].get(idx, False)
            return value, taint

        pairs = [self._eval(c, values, taints) for c in e.args]
        a = [v for v, _ in pairs]
        t = any(taint for _, taint in pairs)
        aw = [c.width for c in e.args]

        if op == "add":
            return (a[0] + a[1]) & m, t
        if op == "sub":
            return (a[0] - a[1]) & m, t
        if op == "mul":
            return (a[0] * a[1]) & m, t
        if op == "div":
            return ((a[0] // a[1]) & m if a[1] else m), t
        if op == "mod":
            return ((a[0] % a[1]) if a[1] else a[0]), t
        if op == "and":
            return a[0] & a[1], t
        if op == "or":
            return a[0] | a[1], t
        if op == "xor":
            return a[0] ^ a[1], t
        if op == "shl":
            return ((a[0] << a[1]) & m if a[1] < e.width else 0), t
        if op == "shr":
            return (a[0] >> a[1] if a[1] < aw[0] else 0), t
        if op == "asr":
            shift = a[1] if a[1] < aw[0] else aw[0] - 1
            return (_signed(a[0], aw[0]) >> shift) & m, t
        if op == "eq":
            return int(a[0] == a[1]), t
        if op == "ne":
            return int(a[0] != a[1]), t
        if op == "lt":
            return int(a[0] < a[1]), t
        if op == "le":
            return int(a[0] <= a[1]), t
        if op == "gt":
            return int(a[0] > a[1]), t
        if op == "ge":
            return int(a[0] >= a[1]), t
        if op == "lts":
            return int(_signed(a[0], aw[0]) < _signed(a[1], aw[1])), t
        if op == "les":
            return int(_signed(a[0], aw[0]) <= _signed(a[1], aw[1])), t
        if op == "gts":
            return int(_signed(a[0], aw[0]) > _signed(a[1], aw[1])), t
        if op == "ges":
            return int(_signed(a[0], aw[0]) >= _signed(a[1], aw[1])), t
        if op == "land":
            return int(bool(a[0] and a[1])), t
        if op == "lor":
            return int(bool(a[0] or a[1])), t
        if op == "lnot":
            return int(not a[0]), t
        if op == "not":
            return (~a[0]) & m, t
        if op == "neg":
            return (-a[0]) & m, t
        if op == "cat":
            r = 0
            shift = 0
            for child, v in zip(reversed(e.args), reversed(a)):
                r |= v << shift
                shift += child.width
            return r, t
        if op == "slice":
            return (a[0] >> e.lo) & m, t
        if op == "zext":
            return a[0], t
        if op == "sext":
            return _signed(a[0], aw[0]) & m, t
        raise ValueError(f"cannot interpret op {op!r}")

    # -- cycle execution ------------------------------------------------------

    def step(self, inputs: dict[str, int] | None = None) -> dict[str, int]:
        """Advance one clock cycle; returns the output-port values."""
        m = self.module
        inputs = inputs or {}
        values: dict[str, int] = {}
        taints: dict[str, bool] = {}
        for name, width in m.inputs.items():
            values[name] = inputs.get(name, 0) & ((1 << width) - 1)
            taints[name] = name in self.sources
        for name in m.regs:
            values[name] = self.regs[name]
            taints[name] = self.reg_taint[name]
        for name, expr in m.comb:
            values[name], taints[name] = self._eval(expr, values, taints)

        for name, tainted in taints.items():
            if tainted:
                self.ever_tainted.add(name)

        # clock edge: evaluate every port's operands against the
        # pre-edge state, then commit registers and writes in order
        next_regs = {reg: values[sig] for reg, sig in m.reg_next.items()}
        next_taints = {reg: taints[sig] for reg, sig in m.reg_next.items()}
        writes = []
        for wr in m.array_writes:
            ev, et = self._eval(wr.enable, values, taints)
            av, at = self._eval(wr.addr, values, taints)
            dv, dt = self._eval(wr.data, values, taints)
            if ev:
                writes.append((wr.array, av % m.arrays[wr.array].size, dv, dt or at or et))
        self.regs.update(next_regs)
        self.reg_taint.update(next_taints)
        for reg, tainted in next_taints.items():
            if tainted:
                self.ever_tainted.add(reg)
        for arr, idx, value, tainted in writes:
            self.arrays[arr][idx] = value
            self.array_taint[arr][idx] = tainted
            if tainted:
                self.ever_tainted.add(array_node(arr))

        self.cycles += 1
        self.taints = taints
        return {port: values[sig] for port, sig in m.outputs.items()}

    def run(self, cycles: int, inputs: dict[str, int] | None = None) -> dict[str, int]:
        out: dict[str, int] = {}
        for _ in range(cycles):
            out = self.step(inputs)
        return out

    def load_array(self, name: str, data: dict[int, int] | list[int]) -> None:
        """Initialize (untainted) array contents, like the simulators."""
        arr = self.module.arrays[name]
        mask = (1 << arr.width) - 1
        items = enumerate(data) if isinstance(data, list) else data.items()
        self.arrays[name] = {i: v & mask for i, v in items if v & mask != arr.default}
        self.array_taint[name] = {}

"""Kernel + two-process system image builder (see package docstring)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mips.assembler import Executable, assemble

#: memory map
KERNEL_TEXT = 0x400
LPROC_TEXT = 0x1000
HPROC_TEXT = 0x3000
KDATA = 0x10000          # qcount, cur_proc, save-pointer table
LSAVE = 0x10100          # L process save area (11 words)
LDATA = 0x10200          # l_result
HSAVE = 0x20000          # H process save area
HDATA = 0x200C0          # h_seed, h_result
H_REGION = (0x20000, 0x20100)
H_CODE_REGION = (0x3000, 0x3100)

QUANTUM = 250
MAX_QUANTA = 6

#: save-area slot offsets: pc, s0-s3, t0-t3, v0, ra
_SLOTS = ["pc", "s0", "s1", "s2", "s3", "t0", "t1", "t2", "t3", "v0", "ra"]


@dataclass
class KernelImage:
    executable: Executable
    tag_regions: list[tuple[int, int, str]] = field(default_factory=list)
    l_result_addr: int = LDATA
    h_result_addr: int = HDATA + 4


def _save_block(base_reg: str) -> str:
    lines = []
    for i, slot in enumerate(_SLOTS[1:], start=1):
        lines.append(f"    sw   ${slot}, {i * 4}({base_reg})")
    return "\n".join(lines)


def _restore_block(base_reg: str) -> str:
    lines = []
    for i, slot in enumerate(_SLOTS[1:], start=1):
        lines.append(f"    lw   ${slot}, {i * 4}({base_reg})")
    return "\n".join(lines)


def kernel_source(h_seed: int) -> str:
    """Full system assembly: kernel, L process, H process, data."""
    return f"""
# ==================== micro-kernel (runs at L) ====================
.org {KERNEL_TEXT:#x}
kentry:
    # Only $k0/$k1 may be touched before the save: all other registers
    # still belong to the preempted process.
    la   $k0, qcount
    lw   $k1, 0($k0)
    addiu $k1, $k1, 1
    sw   $k1, 0($k0)
    addiu $k1, $k1, -1
    beq  $k1, $zero, boot_init        # first entry: nothing to save
    # ---- save the current process's context ----
    la   $k0, cur_ptr
    lw   $k0, 0($k0)                  # save-area base
{_save_block("$k0")}
    li   $k1, 0x40000008              # MMIO: epc of the preempted code
    lw   $k1, 0($k1)
    sw   $k1, 0($k0)                  # pc slot
    b    pick_next

boot_init:
    # label the high process's memory and code with set-tag (section 4.2:
    # "the set-tag instruction allows software to explicitly modify the
    # security tag of a word in memory")
    li   $t0, {H_REGION[0]:#x}
    li   $t1, {H_REGION[1]:#x}
    li   $t2, 1                       # encoding of H in the 2-level lattice
tagloop1:
    setrtag $t0, $t2
    addiu $t0, $t0, 4
    blt  $t0, $t1, tagloop1
    li   $t0, {H_CODE_REGION[0]:#x}
    li   $t1, {H_CODE_REGION[1]:#x}
tagloop2:
    setrtag $t0, $t2
    addiu $t0, $t0, 4
    blt  $t0, $t1, tagloop2
    la   $t0, cur_proc                # start so that L runs first
    li   $t1, 1
    sw   $t1, 0($t0)

pick_next:
    la   $t0, cur_proc
    lw   $t1, 0($t0)
    li   $t2, 1
    subu $t1, $t2, $t1                # next = 1 - cur
    sw   $t1, 0($t0)
    la   $t3, ptr_table
    sll  $t4, $t1, 2
    addu $t3, $t3, $t4
    lw   $t5, 0($t3)                  # next save-area base
    la   $t6, cur_ptr
    sw   $t5, 0($t6)
    # stop after the quanta budget
    la   $t0, qcount
    lw   $t1, 0($t0)
    li   $t2, {MAX_QUANTA}
    bgt  $t1, $t2, shutdown
    # ---- restore and dispatch ----
    move $k0, $t5
{_restore_block("$k0")}
    lw   $k1, 0($k0)                  # pc
    li   $at, {QUANTUM}
    setrtimer $at
    jr   $k1

shutdown:
    li   $t9, 0x40000004
    sw   $zero, 0($t9)

# ==================== L process: trusted computation ====================
.org {LPROC_TEXT:#x}
lproc:
    li   $t0, 30
    li   $s0, 0
    li   $s1, 1
lloop:
    add  $s0, $s0, $s1
    addiu $s1, $s1, 1
    ble  $s1, $t0, lloop
    la   $t1, l_result
    sw   $s0, 0($t1)
    li   $t2, 0x40000000              # low-observable output port
    sw   $s0, 0($t2)
lspin:
    b    lspin

# ==================== H process: untrusted computation ====================
.org {HPROC_TEXT:#x}
hproc:
    la   $t0, hdata
    lw   $s0, 0($t0)                  # h_seed (H-tagged)
    li   $s1, 1103515245
hloop:
    mult $s0, $s1
    mflo $s0
    addiu $s0, $s0, 12345
    sw   $s0, 4($t0)                  # h_result (H-tagged cell)
    b    hloop

# ==================== data ====================
.org {KDATA:#x}
qcount:   .word 0
cur_proc: .word 0
cur_ptr:  .word 0
ptr_table: .word {LSAVE:#x}, {HSAVE:#x}

.org {LSAVE:#x}
lsave: .word {LPROC_TEXT:#x}, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0
.org {LDATA:#x}
l_result: .word 0

.org {HSAVE:#x}
hsave: .word {HPROC_TEXT:#x}, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0
.org {HDATA:#x}
hdata: .word {h_seed:#x}, 0
"""


def build_kernel_image(h_seed: int = 0x1234) -> KernelImage:
    """Assemble the full system image.

    The kernel itself tags the H regions with ``set-tag`` at boot, so no
    harness-side tagging is strictly required; the returned
    ``tag_regions`` list is empty by default and exists for experiments
    that want to pre-tag additional regions.
    """
    exe = assemble(kernel_source(h_seed))
    return KernelImage(executable=exe)

"""The micro-kernel of section 4.4.

A simplified kernel in MIPS assembly that demonstrates the paper's
security-validation setup: it schedules two processes at different
security levels (round-robin, fixed quanta), saves/restores their
registers on every context switch, labels the high process's memory with
``set-tag`` at boot, and arms the trusted timer with ``set-timer``
before every dispatch so that untrusted code is always preempted.  The
kernel provides *no* security enforcement itself -- all enforcement is
the processor's (exactly the paper's point).

Conventions: processes own the saved register subset (``$s0-$s3``,
``$t0-$t3``, ``$v0``, ``$ra``) plus ``pc``; ``$k0/$k1`` are
kernel-reserved and ``$at`` is assembler-reserved.  Memory is statically
allocated (the paper modified its benchmarks the same way).
"""

from repro.kernel.image import KernelImage, build_kernel_image

__all__ = ["KernelImage", "build_kernel_image"]

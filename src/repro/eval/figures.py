"""Implementations of the paper's tables and figures (see DESIGN.md E1-E9)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.caisson import caisson_transform
from repro.glift import glift_augment
from repro.hdl.synth import CostReport
from repro.lattice import Lattice, diamond, encode, two_level
from repro.mips.assembler import assemble
from repro.mips.isa import FIGURE7_INSTRUCTIONS
from repro.proc.design import design_sections
from repro.proc.machine import SapperMachine, compile_processor, run_on_iss
from repro.sapper import samples
from repro.toolchain import get_toolchain, lattice_key as lattice_key_of


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)]
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


# -- Figure 3: generated Verilog for the 8-bit design -----------------------------


def fig3_adder_verilog() -> dict[str, str]:
    """The CHECK and TRACK variants of Figure 3 compiled to Verilog."""
    lat = two_level()
    tc = get_toolchain()
    out = {}
    for name, src in (("check", samples.ADDER_CHECK), ("track", samples.ADDER_TRACK)):
        design = tc.compile(src, lat, name=f"adder_{name}")
        out[name] = tc.verilog(design)
    return out


# -- Figure 7: ISA coverage ---------------------------------------------------------


def fig7_isa_table() -> list[tuple[str, tuple[str, ...]]]:
    """The implemented ISA, grouped exactly as the paper's Figure 7."""
    return list(FIGURE7_INSTRUCTIONS.items())


# -- Figure 8: LOC per processor component --------------------------------------------


def _loc(text: str) -> int:
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            count += 1
    return count


def fig8_loc_table(lattice: Lattice | None = None) -> list[tuple[str, int]]:
    """Lines of Sapper code per processor component (paper's Figure 8).

    Counted on the generated source, non-blank non-comment lines.  The
    paper's counts (total 5397, with a 3000+ line FPU) reflect a
    hand-written design; ours is generator-emitted and more compact, but
    the component split is the same.
    """
    sections = design_sections(lattice or two_level())
    rows = [(name, _loc(text)) for name, text in sections.items()]
    rows.append(("Total", sum(loc for _, loc in rows)))
    return rows


# -- Figure 9: hardware overhead of Base / GLIFT / Caisson / Sapper --------------------


@dataclass
class OverheadRow:
    name: str
    area_um2: float
    delay_ns: float
    power_uw: float
    memory_bits: float

    def normalized(self, base: OverheadRow) -> dict[str, float]:
        return {
            "area": self.area_um2 / base.area_um2,
            "delay": self.delay_ns / base.delay_ns,
            "power": self.power_uw / base.power_uw,
            "memory": self.memory_bits / base.memory_bits,
        }


def _memory_bits(lattice: Lattice, kind: str, mem_words: int = 1 << 24) -> float:
    """Main-memory storage including each scheme's metadata.

    The paper synthesizes only datapath+control and reports memory
    separately: GLIFT shadows every bit (2x), Caisson duplicates memory
    per level (Kx), Sapper adds an n-bit tag per 32-bit word (~3% for
    the two-level lattice).
    """
    data_bits = mem_words * 32
    if kind == "base":
        return data_bits
    if kind == "glift":
        return data_bits * 2
    if kind == "caisson":
        return data_bits * len(lattice)
    tag_bits = encode(lattice).width
    return data_bits * (1 + tag_bits / 32)


def fig9_overhead(
    lattice: Lattice | None = None, mem_words: int = 1 << 24
) -> dict[str, OverheadRow]:
    """Synthesize the four processors and report area/delay/power/memory.

    All four designs come from the *same* Sapper source: Base is the
    insecure compile, Sapper the secure compile, GLIFT is the Base gate
    census with per-gate shadow logic, and Caisson is the Base module
    put through the duplication transform -- mirroring the paper's
    methodology of migrating one design into each scheme.
    """
    lat = lattice or two_level()
    tc = get_toolchain()
    base_design = compile_processor(lat, secure=False, mem_words=mem_words)
    sapper_design = compile_processor(lat, secure=True, mem_words=mem_words)

    # Both variants flow through the identical optimize->synthesize
    # pipeline, so the reported secure/base ratios stay paper-faithful.
    base_rpt = tc.synthesize(base_design)
    sapper_rpt = tc.synthesize(sapper_design)
    glift_rpt = glift_augment(base_rpt)
    caisson_key = ("caisson-synth", lattice_key_of(lat), mem_words)
    caisson_rpt = tc.cached(
        caisson_key,
        lambda: tc.synthesize(caisson_transform(base_design.module, lat)),
    )

    def row(name: str, rpt: CostReport, kind: str) -> OverheadRow:
        return OverheadRow(
            name=name,
            area_um2=rpt.area_um2,
            delay_ns=rpt.delay_ns,
            power_uw=rpt.power_uw,
            memory_bits=_memory_bits(lat, kind, mem_words),
        )

    return {
        "Base Processor": row("Base Processor", base_rpt, "base"),
        "GLIFT": row("GLIFT", glift_rpt, "glift"),
        "Caisson": row("Caisson", caisson_rpt, "caisson"),
        "Sapper": row("Sapper", sapper_rpt, "sapper"),
    }


def format_fig9(rows: dict[str, OverheadRow]) -> str:
    base = rows["Base Processor"]
    table = []
    for name, row in rows.items():
        n = row.normalized(base)
        table.append(
            [
                name,
                f"{row.area_um2 / 1e6:.3f} mm2 ({n['area']:.2f}x)",
                f"{row.delay_ns:.2f} ns ({n['delay']:.2f}x)",
                f"{row.power_uw / 1000:.2f} mW ({n['power']:.2f}x)",
                f"{n['memory']:.3f}x",
            ]
        )
    return format_table(["Processor", "Area", "Delay", "Power", "Memory"], table)


# -- section 4.3: functional validation --------------------------------------------------


def sec43_functional_validation(
    names: list[str] | None = None,
    run_hw: bool = True,
    batched: bool | None = None,
) -> list[dict]:
    """Cross-compare every workload's outputs: golden vs ISS vs hardware.

    The hardware runs go through :func:`repro.proc.machine.run_workloads`:
    with enough workloads they execute as lanes of one batched machine
    (``batched=None`` picks the engine by suite size, ``True``/``False``
    forces it); results are bit-identical either way.
    """
    from repro.proc.machine import run_workloads
    from repro.workloads import ALL_WORKLOADS

    selected = [
        (name, wl) for name, wl in ALL_WORKLOADS.items()
        if not names or name in names
    ]
    exes = {name: assemble(wl.source) for name, wl in selected}
    hw_results = None
    if run_hw:
        budgets = [wl.max_cycles for _, wl in selected]
        hw_results = run_workloads(list(exes.values()), max_cycles=budgets, batched=batched)
    results = []
    for i, (name, wl) in enumerate(selected):
        iss = run_on_iss(exes[name])
        entry = {
            "workload": name,
            "expected": wl.expected,
            "iss_outputs": tuple(iss.outputs),
            "iss_instructions": iss.instret,
            "iss_matches": tuple(iss.outputs) == wl.expected,
        }
        if hw_results is not None:
            res = hw_results[i]
            entry.update(
                hw_outputs=tuple(res.outputs),
                hw_cycles=res.cycles,
                hw_violations=res.violations,
                hw_matches=tuple(res.outputs) == wl.expected and res.halted,
            )
        results.append(entry)
    return results


# -- section 4.4: security validation ------------------------------------------------------


def sec44_security_validation() -> dict:
    """Run the micro-kernel scheduling an L and an H process twice, with
    different H data, and compare the low-observable traces."""
    from repro.kernel import build_kernel_image

    def run(h_seed: int):
        machine = SapperMachine()
        image = build_kernel_image(h_seed=h_seed)
        machine.load(image.executable)
        for start, end, label in image.tag_regions:
            machine.tag_region(start, end, label)
        res = machine.run(400_000)
        low_trace = tuple(res.outputs)
        l_result = machine.read_word(image.l_result_addr)
        h_result = machine.read_word(image.h_result_addr)
        return res, low_trace, l_result, h_result

    res1, trace1, l1, h1 = run(h_seed=0x1111)
    res2, trace2, l2, h2 = run(h_seed=0x9999)
    return {
        "halted": res1.halted and res2.halted,
        "low_traces_equal": trace1 == trace2,
        "low_trace": trace1,
        "l_results_equal": l1 == l2,
        "h_results_differ": h1 != h2,
        "h_results": (h1, h2),
        "violations": (res1.violations, res2.violations),
        "cycles": (res1.cycles, res2.cycles),
        "timing_equal": res1.cycles == res2.cycles,
    }


# -- section 4.6: diamond lattice ---------------------------------------------------------------


def sec46_diamond_overhead(mem_words: int = 1 << 24) -> dict:
    """Compare the Sapper processor under the two-level and diamond
    lattices (paper: ~3% extra overhead, one more tag bit)."""
    two = fig9_overhead(two_level(), mem_words)
    four = fig9_overhead(diamond(), mem_words)
    sapper2 = two["Sapper"]
    sapper4 = four["Sapper"]
    base2 = two["Base Processor"]
    base4 = four["Base Processor"]
    overhead2 = sapper2.area_um2 / base2.area_um2
    overhead4 = sapper4.area_um2 / base4.area_um2
    return {
        "two_level_area_ratio": overhead2,
        "diamond_area_ratio": overhead4,
        "extra_overhead": overhead4 - overhead2,
        "two_level_tag_bits": encode(two_level()).width,
        "diamond_tag_bits": encode(diamond()).width,
        "two_level_memory_ratio": sapper2.memory_bits / base2.memory_bits,
        "diamond_memory_ratio": sapper4.memory_bits / base4.memory_bits,
        "caisson_diamond_area_ratio": four["Caisson"].area_um2 / base4.area_um2,
    }

"""Evaluation harness: regenerates every table and figure of the paper.

Each ``figN_*`` / ``secN_*`` function returns plain data structures and
has a ``format_*`` companion producing the table text the benchmarks
print.  See DESIGN.md section 2 for the experiment index.
"""

from repro.eval.figures import (
    fig3_adder_verilog,
    fig7_isa_table,
    fig8_loc_table,
    fig9_overhead,
    format_table,
    sec43_functional_validation,
    sec44_security_validation,
    sec46_diamond_overhead,
)

__all__ = [
    "fig3_adder_verilog",
    "fig7_isa_table",
    "fig8_loc_table",
    "fig9_overhead",
    "sec43_functional_validation",
    "sec44_security_validation",
    "sec46_diamond_overhead",
    "format_table",
]

"""Content-addressed on-disk artifact store for the Sapper toolchain.

The :class:`~repro.toolchain.Toolchain` keys every artifact (compiled
design, optimized module, synthesis report, Verilog text) by structural
identity -- source digest, lattice order, compile flags.  This module
gives those keys a life beyond the process: an :class:`ArtifactStore`
maps a structural key to a file under a content-addressed layout ::

    <root>/<stage>/<digest[:2]>/<digest>.art

where *digest* is the SHA-256 of a canonical encoding of the key, so
two processes (or two machines sharing a directory) agree on the
address without coordination.

Durability discipline -- the store is a cache, never an oracle:

* **Atomic writes.**  Entries are written to a temp file in the target
  directory and published with ``os.replace``; a reader can never see a
  half-written entry under the final name.
* **Versioned header.**  Every entry starts with a magic tag, a format
  version, the payload length, and the SHA-256 of the payload.  A
  version mismatch (an entry written by an older/newer toolchain) is
  *stale*: quarantined and treated as a miss, never parsed.
* **Integrity check.**  The payload hash is verified before a single
  byte reaches the unpickler, so truncated or bit-flipped entries are
  detected structurally, counted, quarantined (moved to ``*.corrupt``,
  one postmortem copy per entry), and recomputed -- a poisoned entry is
  never served.
* **Graceful fallback.**  ``get`` returns the caller's default on any
  problem; ``put`` swallows I/O errors (counting them) so a full disk
  degrades to a smaller cache, not a crashed toolchain.  Only
  construction raises (:class:`StoreError`) -- a store root that cannot
  be created or written is a configuration error the caller must hear
  about.

Keys must be *stable*: tuples of strings, ints, bools, and ``None``.
Identity-based key components (the toolchain's escape hatch for
AST/ProgramInfo sources it cannot digest) are deliberately
non-canonicalizable -- :func:`persistable_key` reports whether a key
can cross a process boundary, and the toolchain keeps such artifacts in
memory only.
"""

from __future__ import annotations

import gc
import hashlib
import os
import pickle
import struct
import sys
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path
from collections.abc import Iterator
from typing import Any


class StoreError(Exception):
    """The store root is unusable (cannot be created, probed, or written)."""


#: Entry header: magic, format version, payload SHA-256, payload length.
STORE_MAGIC = b"RPAS"
STORE_VERSION = 1
_HEADER = struct.Struct(">4sH32sQ")

#: Sentinel distinguishing "miss" from a stored ``None``.
MISS = object()


class UnstableKey:
    """Identity-keyed component: hashable in memory, refused on disk.

    The toolchain uses this for sources it cannot digest structurally
    (e.g. an already-analyzed ``ProgramInfo``).  It canonicalizes to
    nothing -- :func:`persistable_key` returns False for any key that
    contains one -- so such artifacts never leak an ``id()`` into a
    file name that a different process would misinterpret.
    """

    __slots__ = ("oid",)

    def __init__(self, obj: object):
        self.oid = id(obj)

    def __hash__(self) -> int:
        return self.oid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UnstableKey) and other.oid == self.oid

    def __repr__(self) -> str:
        return f"UnstableKey(0x{self.oid:x})"


def _canon(obj: Any, out: list[bytes]) -> None:
    """Append a canonical, injective encoding of *obj* to *out*."""
    if isinstance(obj, tuple):
        out.append(b"(")
        for item in obj:
            _canon(item, out)
        out.append(b")")
    elif isinstance(obj, bool):  # before int: bool is an int subclass
        out.append(b"b1" if obj else b"b0")
    elif isinstance(obj, int):
        out.append(b"i%d;" % obj)
    elif isinstance(obj, str):
        enc = obj.encode()
        out.append(b"s%d:" % len(enc))
        out.append(enc)
    elif obj is None:
        out.append(b"n")
    else:
        raise TypeError(f"key component {obj!r} has no stable encoding")


def digest_key(key: tuple) -> str:
    """SHA-256 hex digest of the canonical encoding of a structural key."""
    out: list[bytes] = []
    _canon(key, out)
    return hashlib.sha256(b"".join(out)).hexdigest()


def persistable_key(key: tuple) -> bool:
    """True iff *key* is stable across processes (no identity components)."""
    try:
        _canon(key, [])
        return True
    except TypeError:
        return False


@contextmanager
def _pickle_guard() -> Iterator[None]:
    """Deep-IR (de)serialization guard: headroom for nested expression
    trees, and GC paused so allocating a million small nodes does not
    trigger collection sweeps mid-(un)pickle (~2x on large modules)."""
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 50_000))
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
        sys.setrecursionlimit(limit)


class ArtifactStore:
    """A content-addressed, crash-safe artifact cache rooted at *root*."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "write_errors": 0,
            "corrupt": 0,
            "stale": 0,
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            # probe writability now: a read-only or misconfigured root
            # should fail loudly at construction, not silently degrade
            # every later put()
            fd, probe = tempfile.mkstemp(prefix=".probe-", dir=self.root)
            os.close(fd)
            os.unlink(probe)
        except OSError as exc:
            raise StoreError(
                f"artifact store directory {self.root} is not usable: {exc}"
            ) from exc

    # -- layout ---------------------------------------------------------------

    def path_for(self, key: tuple) -> Path:
        """The entry path for *key* (raises TypeError on unstable keys)."""
        stage = key[0] if isinstance(key[0], str) else "misc"
        digest = digest_key(key)
        return self.root / stage / digest[:2] / f"{digest}.art"

    def _bump(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self.counters[counter] += by

    # -- read side ------------------------------------------------------------

    def get(self, key: tuple, default: Any = None) -> Any:
        """The stored artifact for *key*, or *default*.

        Never raises on bad entries: corrupt or stale files are counted,
        quarantined to ``<entry>.corrupt``, and reported as a miss.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self._bump("misses")
            return default
        except OSError:
            self._bump("misses")
            return default

        payload = self._check(blob, path)
        if payload is None:
            return default
        try:
            with _pickle_guard():
                value = pickle.loads(payload)
        except Exception:
            # intact hash but unloadable content (e.g. a class whose
            # shape changed without a version bump): corrupt, not fatal
            self._quarantine(path, "corrupt")
            return default
        self._bump("hits")
        return value

    def _check(self, blob: bytes, path: Path) -> bytes | None:
        """Validate header + integrity; quarantine and return None on failure."""
        if len(blob) < _HEADER.size:
            self._quarantine(path, "corrupt")
            return None
        magic, version, digest, length = _HEADER.unpack_from(blob)
        if magic != STORE_MAGIC:
            self._quarantine(path, "corrupt")
            return None
        if version != STORE_VERSION:
            # written by a different toolchain generation: stale, not trusted
            self._quarantine(path, "stale")
            return None
        payload = blob[_HEADER.size:]
        if len(payload) != length or hashlib.sha256(payload).digest() != digest:
            self._quarantine(path, "corrupt")
            return None
        return payload

    def _quarantine(self, path: Path, kind: str) -> None:
        """Move a bad entry aside (one ``.corrupt`` postmortem copy) so
        it is rewritten by the next put and never re-served."""
        self._bump(kind)
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- write side -----------------------------------------------------------

    def put(self, key: tuple, value: Any) -> bool:
        """Persist *value* under *key* atomically; False on I/O failure."""
        path = self.path_for(key)
        try:
            with _pickle_guard():
                payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self._bump("write_errors")
            return False
        header = _HEADER.pack(
            STORE_MAGIC, STORE_VERSION, hashlib.sha256(payload).digest(), len(payload)
        )
        tmp = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(prefix=".put-", dir=path.parent)
            with os.fdopen(fd, "wb") as fh:
                fh.write(header)
                fh.write(payload)
            os.replace(tmp, path)  # atomic publish: readers see old or new
            tmp = None
        except OSError:
            self._bump("write_errors")
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            return False
        self._bump("writes")
        return True

    # -- introspection --------------------------------------------------------

    def entries(self) -> Iterator[Path]:
        """All live entry files (excluding quarantined postmortems)."""
        yield from self.root.glob("*/*/*.art")

    def entry_count(self) -> int:
        return sum(1 for _ in self.entries())

    def stats(self) -> dict[str, int]:
        with self._lock:
            snap = dict(self.counters)
        snap["entries"] = self.entry_count()
        return snap


def coerce_store(store: ArtifactStore | str | Path | None) -> ArtifactStore | None:
    """Normalize the *store* argument every multi-process entry point
    accepts: an :class:`ArtifactStore` passes through, a path opens (or
    creates) one rooted there, ``None`` stays ``None``.  Fleet workers
    and CLI commands share this so "a directory" is always a valid way
    to name the artifact tier."""
    if store is None or isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)

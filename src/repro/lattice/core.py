"""Finite lattices of security labels.

Labels are plain strings.  A :class:`Lattice` is built from a partial
order and validated: every pair of elements must have a unique least
upper bound (join) and greatest lower bound (meet), and the lattice must
have bottom and top elements.  Joins drive tag propagation (section 3.3
of the paper); the partial order drives enforcement checks.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable, Sequence


class LatticeError(ValueError):
    """Raised when a declared order does not form a lattice."""


class Lattice:
    """A finite security lattice.

    Parameters
    ----------
    elements:
        Label names.  Order of iteration is preserved and used as the
        canonical element order (and the default LUT encoding order).
    leq_pairs:
        The partial order as a set of ``(lo, hi)`` pairs meaning
        ``lo <= hi``.  The reflexive-transitive closure is taken
        automatically; the result is validated to be a lattice.
    """

    def __init__(self, elements: Iterable[str], leq_pairs: Iterable[tuple[str, str]]):
        self._elements: tuple[str, ...] = tuple(elements)
        if len(set(self._elements)) != len(self._elements):
            raise LatticeError("duplicate lattice elements")
        if not self._elements:
            raise LatticeError("a lattice needs at least one element")
        index = {e: i for i, e in enumerate(self._elements)}
        for lo, hi in leq_pairs:
            if lo not in index or hi not in index:
                raise LatticeError(f"order pair ({lo!r}, {hi!r}) mentions unknown element")

        self._index = index
        self._leq = self._close({(index[a], index[b]) for a, b in leq_pairs})
        self._join_table, self._meet_table = self._build_tables()
        self._bot = self._find_extreme(is_bottom=True)
        self._top = self._find_extreme(is_bottom=False)

    # -- construction helpers ------------------------------------------------

    def _close(self, pairs: set[tuple[int, int]]) -> list[list[bool]]:
        n = len(self._elements)
        leq = [[False] * n for _ in range(n)]
        for i in range(n):
            leq[i][i] = True
        for a, b in pairs:
            leq[a][b] = True
        # Floyd-Warshall style transitive closure.
        for k in range(n):
            for i in range(n):
                if leq[i][k]:
                    row_k = leq[k]
                    row_i = leq[i]
                    for j in range(n):
                        if row_k[j]:
                            row_i[j] = True
        for i in range(n):
            for j in range(n):
                if i != j and leq[i][j] and leq[j][i]:
                    raise LatticeError(
                        f"order is not antisymmetric: {self._elements[i]!r} and "
                        f"{self._elements[j]!r} are mutually <="
                    )
        return leq

    def _build_tables(self) -> tuple[list[list[int]], list[list[int]]]:
        n = len(self._elements)
        leq = self._leq
        join = [[0] * n for _ in range(n)]
        meet = [[0] * n for _ in range(n)]
        for a in range(n):
            for b in range(n):
                ub = [c for c in range(n) if leq[a][c] and leq[b][c]]
                lub = [c for c in ub if all(leq[c][d] for d in ub)]
                if len(lub) != 1:
                    raise LatticeError(
                        f"no unique join for {self._elements[a]!r} and {self._elements[b]!r}"
                    )
                join[a][b] = lub[0]
                lb = [c for c in range(n) if leq[c][a] and leq[c][b]]
                glb = [c for c in lb if all(leq[d][c] for d in lb)]
                if len(glb) != 1:
                    raise LatticeError(
                        f"no unique meet for {self._elements[a]!r} and {self._elements[b]!r}"
                    )
                meet[a][b] = glb[0]
        return join, meet

    def _find_extreme(self, is_bottom: bool) -> str:
        n = len(self._elements)
        for i in range(n):
            if all(self._leq[i][j] if is_bottom else self._leq[j][i] for j in range(n)):
                return self._elements[i]
        raise LatticeError(
            "lattice has no bottom element" if is_bottom else "lattice has no top element"
        )

    # -- queries ---------------------------------------------------------------

    @property
    def elements(self) -> tuple[str, ...]:
        """All labels, in canonical order."""
        return self._elements

    @property
    def bottom(self) -> str:
        """The least element (public / untrusted-from-nobody)."""
        return self._bot

    @property
    def top(self) -> str:
        """The greatest element."""
        return self._top

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, label: str) -> bool:
        return label in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Lattice):
            return NotImplemented
        return self._elements == other._elements and self._leq == other._leq

    def __hash__(self) -> int:
        return hash((self._elements, tuple(tuple(r) for r in self._leq)))

    def __repr__(self) -> str:
        return f"Lattice({list(self._elements)!r})"

    def index(self, label: str) -> int:
        """Canonical index of *label* (used by the LUT encoding)."""
        return self._index[label]

    def check(self, label: str) -> str:
        """Return *label* unchanged, raising ``LatticeError`` if unknown."""
        if label not in self._index:
            raise LatticeError(f"unknown security label {label!r}; known: {list(self._elements)}")
        return label

    def leq(self, a: str, b: str) -> bool:
        """True iff ``a <= b`` in the lattice (information may flow a -> b)."""
        return self._leq[self._index[a]][self._index[b]]

    def join(self, *labels: str) -> str:
        """Least upper bound of the given labels (bottom if none given)."""
        acc = self._index[self._bot]
        for lab in labels:
            acc = self._join_table[acc][self._index[lab]]
        return self._elements[acc]

    def meet(self, *labels: str) -> str:
        """Greatest lower bound of the given labels (top if none given)."""
        acc = self._index[self._top]
        for lab in labels:
            acc = self._meet_table[acc][self._index[lab]]
        return self._elements[acc]

    def upset(self, label: str) -> frozenset[str]:
        """All labels >= *label* (the "H" set of the proof appendix is a complement of a downset)."""
        i = self._index[label]
        return frozenset(e for e in self._elements if self._leq[i][self._index[e]])

    def downset(self, label: str) -> frozenset[str]:
        """All labels <= *label* (the "L" observer set of Appendix A.2)."""
        i = self._index[label]
        return frozenset(e for e in self._elements if self._leq[self._index[e]][i])

    def join_irreducibles(self) -> tuple[str, ...]:
        """Elements with exactly one lower cover; the basis of the Birkhoff encoding."""
        out = []
        for e in self._elements:
            i = self._index[e]
            strictly_below = [j for j in range(len(self._elements)) if self._leq[j][i] and j != i]
            covers = [
                j
                for j in strictly_below
                if not any(
                    self._leq[j][k] and self._leq[k][i] and k not in (i, j) for k in strictly_below
                )
            ]
            if len(covers) == 1:
                out.append(e)
        return tuple(out)

    def is_distributive(self) -> bool:
        """True iff the lattice is distributive (then join embeds into bitwise OR)."""
        names = self._elements
        for a, b, c in combinations(names, 3):
            for x, y, z in ((a, b, c), (b, a, c), (c, a, b)):
                if self.meet(x, self.join(y, z)) != self.join(self.meet(x, y), self.meet(x, z)):
                    return False
        return True


def from_order(elements: Sequence[str], leq_pairs: Iterable[tuple[str, str]]) -> Lattice:
    """Build and validate a lattice from covering/order pairs."""
    return Lattice(elements, leq_pairs)


def two_level(low: str = "L", high: str = "H") -> Lattice:
    """The classic two-point lattice low < high used throughout the paper."""
    return Lattice([low, high], [(low, high)])


def diamond() -> Lattice:
    """The four-point diamond of section 4.6: L < M1, M2 < H, M1 # M2."""
    return Lattice(["L", "M1", "M2", "H"], [("L", "M1"), ("L", "M2"), ("M1", "H"), ("M2", "H")])


def total_order(names: Sequence[str]) -> Lattice:
    """A chain ``names[0] < names[1] < ...`` (e.g. unclassified < secret < topsecret)."""
    return Lattice(names, [(a, b) for a, b in zip(names, names[1:])])


def powerset(tags: Sequence[str]) -> Lattice:
    """The powerset lattice over atomic *tags*, ordered by inclusion.

    Element names are ``"{}"`` for the empty set and ``"{a,b}"`` style
    strings otherwise, with tags listed in the given order.
    """
    subsets: list[frozenset[str]] = []
    for mask in range(1 << len(tags)):
        subsets.append(frozenset(t for i, t in enumerate(tags) if mask >> i & 1))

    def name(s: frozenset[str]) -> str:
        return "{" + ",".join(t for t in tags if t in s) + "}"

    pairs = [(name(a), name(b)) for a in subsets for b in subsets if a <= b and a != b]
    return Lattice([name(s) for s in subsets], pairs)


def product(a: Lattice, b: Lattice, sep: str = "*") -> Lattice:
    """Component-wise product lattice, e.g. confidentiality x integrity."""
    names = [f"{x}{sep}{y}" for x in a.elements for y in b.elements]
    pairs = []
    for x1 in a.elements:
        for y1 in b.elements:
            for x2 in a.elements:
                for y2 in b.elements:
                    if a.leq(x1, x2) and b.leq(y1, y2):
                        pairs.append((f"{x1}{sep}{y1}", f"{x2}{sep}{y2}"))
    return Lattice(names, pairs)

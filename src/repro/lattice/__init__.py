"""Finite security lattices and their hardware encodings.

A security policy in Sapper is an arbitrary finite lattice of labels
(paper, section 2.1).  This subpackage provides:

* :class:`~repro.lattice.core.Lattice` -- validated finite lattices with
  join/meet, plus the standard constructions used in the paper (the
  two-level low/high lattice and the four-point "diamond" of section 4.6).
* :mod:`repro.lattice.encoding` -- bit-level encodings used by the
  compiler: the Birkhoff down-set encoding for distributive lattices
  (join = bitwise OR, leq = subset test) and a lookup-table encoding for
  arbitrary lattices.
"""

from repro.lattice.core import (
    Lattice,
    LatticeError,
    diamond,
    from_order,
    powerset,
    product,
    total_order,
    two_level,
)
from repro.lattice.encoding import BitEncoding, LutEncoding, encode

__all__ = [
    "Lattice",
    "LatticeError",
    "two_level",
    "diamond",
    "total_order",
    "powerset",
    "product",
    "from_order",
    "BitEncoding",
    "LutEncoding",
    "encode",
]

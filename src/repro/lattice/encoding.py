"""Hardware bit encodings of security lattices.

The Sapper compiler stores an *n*-bit tag next to every register (paper,
section 3.3: "each variable has an n-bit tag ... where n depends on the
size of the security lattice") and needs combinational logic for two
operations: ``join`` (tag propagation) and ``leq`` (enforcement checks).

Two encodings are provided:

* :class:`BitEncoding` -- the Birkhoff down-set encoding, available for
  distributive lattices.  Each label maps to the bitmask of
  join-irreducible elements below it, so ``join`` is bitwise OR and
  ``a <= b`` is the subset test ``(a | b) == b``.  Both the two-level and
  the diamond lattices of the paper are distributive, and both get the
  natural encodings (1 bit for low/high, 2 bits for the diamond — hence
  the "one more bit for each tag" observation of section 4.6).
* :class:`LutEncoding` -- a dense index encoding with explicit join/leq
  tables, sound for *any* finite lattice (e.g. the non-distributive M3
  and N5), at the cost of table-lookup logic.
"""

from __future__ import annotations

from repro.lattice.core import Lattice


class BitEncoding:
    """Down-set (Birkhoff) encoding of a distributive lattice."""

    kind = "bitmask"

    def __init__(self, lattice: Lattice):
        if not lattice.is_distributive():
            raise ValueError("BitEncoding requires a distributive lattice; use LutEncoding")
        self.lattice = lattice
        self._basis = lattice.join_irreducibles()
        self.width = max(1, len(self._basis))
        self._to_bits = {
            label: sum(1 << i for i, j in enumerate(self._basis) if lattice.leq(j, label))
            for label in lattice.elements
        }
        self._from_bits = {bits: label for label, bits in self._to_bits.items()}
        if len(self._from_bits) != len(lattice):
            raise ValueError("down-set encoding is not injective (lattice invalid?)")

    def encode(self, label: str) -> int:
        """Bit pattern of *label*."""
        return self._to_bits[self.lattice.check(label)]

    def decode(self, bits: int) -> str:
        """Label of a bit pattern produced by :meth:`encode` or :meth:`join_bits`."""
        return self._from_bits[bits]

    def join_bits(self, a: int, b: int) -> int:
        """Hardware join: bitwise OR."""
        return a | b

    def leq_bits(self, a: int, b: int) -> bool:
        """Hardware flow check: subset test."""
        return (a | b) == b

    def is_closed(self, bits: int) -> bool:
        """True iff *bits* denotes a lattice element (ORs of encodings always are)."""
        return bits in self._from_bits

    def clamp(self, bits: int) -> str:
        """Interpret arbitrary *bits* as a label, rounding upward: the
        join of the basis elements whose bits are set (never rounds a
        pattern down, so clamping cannot declassify)."""
        labels = [j for i, j in enumerate(self._basis) if bits >> i & 1]
        return self.lattice.join(*labels)

    def basis(self) -> tuple[str, ...]:
        """The join-irreducible elements, in bit order."""
        return self._basis


class LutEncoding:
    """Dense index encoding with explicit join/leq tables.

    Works for every finite lattice.  The compiler lowers ``join`` and
    ``leq`` to lookup-table logic (nested muxes) instead of OR/subset.
    """

    kind = "lut"

    def __init__(self, lattice: Lattice):
        self.lattice = lattice
        n = len(lattice)
        self.width = max(1, (n - 1).bit_length())
        self._join_table = [
            [lattice.index(lattice.join(a, b)) for b in lattice.elements] for a in lattice.elements
        ]
        self._leq_table = [[lattice.leq(a, b) for b in lattice.elements] for a in lattice.elements]

    def encode(self, label: str) -> int:
        return self.lattice.index(self.lattice.check(label))

    def decode(self, bits: int) -> str:
        return self.lattice.elements[bits]

    def join_bits(self, a: int, b: int) -> int:
        return self._join_table[a][b]

    def leq_bits(self, a: int, b: int) -> bool:
        return self._leq_table[a][b]

    def is_closed(self, bits: int) -> bool:
        return 0 <= bits < len(self.lattice)

    def clamp(self, bits: int) -> str:
        """Out-of-range indices round up to top (never declassify)."""
        if 0 <= bits < len(self.lattice):
            return self.lattice.elements[bits]
        return self.lattice.top


def encode(lattice: Lattice) -> BitEncoding | LutEncoding:
    """Pick the cheapest sound encoding for *lattice*."""
    if lattice.is_distributive():
        return BitEncoding(lattice)
    return LutEncoding(lattice)

"""Command-line interface to the Sapper toolchain.

Built entirely on the :class:`~repro.toolchain.Toolchain` facade::

    python -m repro compile  design.sapper            # emit Verilog
    python -m repro simulate design.sapper -n 100     # run the simulator
    python -m repro synth    design.sapper            # gate census report
    python -m repro stats    design.sapper            # pass-pipeline effect
    python -m repro check    design.sapper            # design lint + taint audit

Common options: ``--lattice two|diamond``, ``--insecure`` (compile the
Base variant with tracking stripped), ``--no-opt`` (raw compiler
output), ``--name`` (module name).  ``simulate`` drives constant input
values given as ``-i port=value`` (tag inputs as ``port__tag=bits``;
with ``--lanes``, ``port=v0,v1,...`` drives one value per lane)
and prints the output ports each cycle plus a violation summary;
``--lanes N`` advances N independent machine states per cycle through
the lane-batched simulator (bit-identical to N scalar runs), and
``--engine {scalar,batch,swar,vector}`` pins the simulation engine
(``auto`` picks scalar at one lane, the SWAR wide-word engine for
small batches, and the NumPy vector engine -- when NumPy is
installed -- from 64 lanes up, where its ufunc amortization wins).
``--compact`` (default; disable with ``--no-compact``) retires lanes
whose ``halted`` output fires from the batch -- the simulator repacks
its state to the surviving lanes, keeping skewed multi-lane runs at
full occupancy, and stops early once every lane has halted -- and the
summary reports active lane-cycles and the final occupancy::

    python -m repro simulate design.sapper -n 100 --lanes 8 --quiet
    python -m repro simulate design.sapper -n 100 --lanes 8 --engine batch
    python -m repro simulate design.sapper -n 100 --lanes 8 --no-compact

``check`` runs the static analyzer (:mod:`repro.analyze`): design-lint
rules (combinational loops, undriven/multiply-driven signals, dead
input ports, width discipline, unreachable FSM states, unused lattice
levels) plus the information-flow taint certificate, printed as text
or ``--format json``; the exit status is nonzero iff an
error-severity finding is present, so it slots straight into CI.
``--seed-defect comb-loop`` injects a known defect first -- a smoke
test that the checker fails loudly::

    python -m repro check design.sapper --format json
    python -m repro check design.sapper --seed-defect comb-loop; echo $?

``--store DIR`` (any command) adds a persistent artifact-store tier
under the in-memory cache: compiled and optimized modules, synthesis
reports, and Verilog text are reloaded from ``DIR`` on later runs
instead of recompiled.  ``python -m repro serve`` runs the async
toolchain server (newline-delimited JSON over TCP, or ``--stdio``),
coalescing concurrent identical requests onto single builds and
pre-warming the two-level/diamond/powerset processor family::

    python -m repro serve --store ~/.cache/repro --port 9178
    python -m repro serve --stdio --store /tmp/artifacts --no-warm
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from collections.abc import Sequence

from repro.lattice import Lattice, diamond, two_level
from repro.store import ArtifactStore, StoreError
from repro.toolchain import Toolchain

_LATTICES = {"two": two_level, "diamond": diamond}

#: Lane count from which ``--engine auto`` prefers the NumPy vector
#: engine: measured on the secure processor, the ufunc-amortized tier
#: overtakes SWAR lane packing between 32 and 128 lanes.
_VECTOR_AUTO_LANES = 64


def _have_numpy() -> bool:
    from repro.hdl.vector import HAVE_NUMPY

    return HAVE_NUMPY


def _positive_int(text: str) -> int:
    try:
        value = int(text, 0)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"lane count must be >= 1, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Sapper hardware security-policy toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("source", help="path to a .sapper source file, or '-' for stdin")
        p.add_argument("--lattice", choices=sorted(_LATTICES), default="two",
                       help="security lattice (default: two-level L<H)")
        p.add_argument("--insecure", action="store_true",
                       help="compile the Base variant (no tags, no checks)")
        p.add_argument("--no-opt", action="store_true",
                       help="skip the optimization pipeline")
        p.add_argument("--name", default=None, help="module name (default: file stem)")
        p.add_argument("--store", default=None, metavar="DIR",
                       help="persistent artifact-store directory (reload compiled "
                            "and optimized artifacts across runs)")

    common(sub.add_parser("compile", help="compile to synthesizable Verilog"))

    sim = sub.add_parser("simulate", help="run the cycle-accurate simulator")
    common(sim)
    sim.add_argument("-n", "--cycles", type=int, default=32, help="cycles to run")
    sim.add_argument("-i", "--input", action="append", default=[], metavar="PORT=VALUE",
                     help="constant input drive (repeatable); with --lanes, "
                          "PORT=V0,V1,... drives one value per lane")
    sim.add_argument("--lanes", type=_positive_int, default=1, metavar="N",
                     help="advance N independent machine states with the "
                          "lane-batched simulator (default: 1, scalar)")
    sim.add_argument("--shards", type=_positive_int, default=1, metavar="S",
                     help="split the lane batch across S worker processes "
                          "(the multiprocess fleet scheduler; workers share "
                          "compiled artifacts through one store and results "
                          "are bit-identical to --shards 1; default: 1, "
                          "in-process)")
    sim.add_argument("--engine",
                     choices=["auto", "scalar", "batch", "swar", "vector"],
                     default="auto",
                     help="simulation engine: 'scalar' (one Simulator per "
                          "run, --lanes 1 only), 'batch' (lane-packed tags "
                          "+ per-lane datapath, the pre-SWAR engine), "
                          "'swar' (adds guard-banded wide-word lane "
                          "packing), 'vector' (NumPy uint64 lane arrays; "
                          "needs numpy), or 'auto' (scalar at 1 lane, swar "
                          "for small batches, vector from 64 lanes when "
                          "numpy is available; default)")
    sim.add_argument("--compact", action=argparse.BooleanOptionalAction, default=True,
                     help="retire lanes whose 'halted' output fires and repack "
                          "the batch to the survivors (lane compaction), "
                          "stopping early once every lane has halted; "
                          "default on, a no-op for designs without a 'halted' "
                          "output port or with --lanes 1")
    sim.add_argument("--quiet", action="store_true", help="only print the summary")

    common(sub.add_parser("synth", help="synthesize to a gate census / cost report"))
    common(sub.add_parser("stats", help="report what each optimization pass did"))

    check = sub.add_parser(
        "check",
        help="run the static design-lint + information-flow analyzer",
    )
    common(check)
    check.add_argument("--format", choices=["text", "json"], default="text",
                       help="report format (default: text)")
    check.add_argument("--seed-defect", choices=["comb-loop"], default=None,
                       help="inject a known defect before analysis -- a smoke "
                            "test that the checker fails loudly (exit 1)")

    serve = sub.add_parser(
        "serve",
        help="run the async artifact server (newline-delimited JSON requests)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=9178, help="TCP port (default 9178)")
    serve.add_argument("--stdio", action="store_true",
                       help="serve one client over stdin/stdout instead of TCP")
    serve.add_argument("--store", default=None, metavar="DIR",
                       help="persistent artifact-store directory shared by requests")
    serve.add_argument("--workers", type=_positive_int, default=4,
                       help="bounded build worker pool size (default 4)")
    serve.add_argument("--warm", action=argparse.BooleanOptionalAction, default=True,
                       help="pre-compile the two-level/diamond/powerset processor "
                            "family on startup (default on; --no-warm to skip)")
    return parser


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text()


def _design(args: argparse.Namespace, tc: Toolchain):
    lattice: Lattice = _LATTICES[args.lattice]()
    name = args.name or (Path(args.source).stem if args.source != "-" else "design")
    source = _read_source(args.source)
    return tc.compile(source, lattice, secure=not args.insecure, name=name), lattice


def _parse_inputs(pairs: Sequence[str]) -> dict[str, int | list[int]]:
    """``PORT=VALUE`` drives every lane; ``PORT=V0,V1,...`` drives one
    value per lane (length must match ``--lanes``)."""
    out: dict[str, int | list[int]] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad --input {pair!r}: expected PORT=VALUE")
        port, _, value = pair.partition("=")
        try:
            if "," in value:
                out[port.strip()] = [int(v, 0) for v in value.split(",")]
            else:
                out[port.strip()] = int(value, 0)
        except ValueError:
            raise SystemExit(f"bad --input {pair!r}: {value!r} is not an integer")
    return out


def _lane_stimulus(
    inputs: dict[str, int | list[int]], lanes: int
) -> list[dict[str, int]] | None:
    """Per-lane input dicts when any port carries a per-lane list."""
    if not any(isinstance(v, list) for v in inputs.values()):
        return None
    for port, value in inputs.items():
        if isinstance(value, list) and len(value) != lanes:
            raise SystemExit(
                f"--input {port} drives {len(value)} lanes but --lanes is {lanes}"
            )
    return [
        {port: (value[lane] if isinstance(value, list) else value)
         for port, value in inputs.items()}
        for lane in range(lanes)
    ]


def _cmd_compile(args: argparse.Namespace, tc: Toolchain) -> int:
    design, _ = _design(args, tc)
    if args.no_opt:
        from repro.hdl import emit_verilog

        print(emit_verilog(design.module, optimize=False))
    else:
        print(tc.verilog(design))
    return 0


def _cmd_simulate(args: argparse.Namespace, tc: Toolchain) -> int:
    from repro.hdl import BatchSimulator, Simulator

    design, _ = _design(args, tc)
    inputs = _parse_inputs(args.input)
    engine = args.engine
    if engine == "auto":
        if args.lanes <= 1:
            engine = "scalar"
        elif args.lanes >= _VECTOR_AUTO_LANES and _have_numpy():
            engine = "vector"  # ufunc amortization beats lane packing
        else:
            engine = "swar"
    if engine == "scalar" and args.lanes > 1:
        raise SystemExit(
            f"--engine scalar supports --lanes 1 only (got {args.lanes}); "
            "use --engine batch, swar, or vector"
        )
    if engine == "scalar" and any(isinstance(v, list) for v in inputs.values()):
        raise SystemExit(
            "per-lane input lists (PORT=V0,V1,...) need the batched engine; "
            "pass --lanes N"
        )
    if engine == "vector" and not _have_numpy():
        from repro.hdl.vector import _NUMPY_HINT

        raise SystemExit(_NUMPY_HINT)
    if args.shards > 1:
        if engine == "scalar":
            raise SystemExit("--shards needs the batched engine; pass --lanes N (N > 1)")
        if args.no_opt:
            raise SystemExit("--shards shares optimized artifacts; drop --no-opt")
        return _simulate_sharded(args, tc, engine, inputs)
    if engine in ("batch", "swar", "vector"):
        if args.no_opt:
            if engine == "vector":
                from repro.hdl import VectorSimulator

                sim = VectorSimulator(design.module, args.lanes, optimize=False)
            else:
                sim = BatchSimulator(design.module, args.lanes, optimize=False,
                                     swar=engine == "swar")
        else:
            sim = tc.batch_simulator(design, args.lanes, engine=engine)
        lane_stim = _lane_stimulus(inputs, args.lanes)
        violations = [0] * args.lanes
        final: list[dict[str, int]] = [{} for _ in range(args.lanes)]
        for cycle in range(args.cycles):
            outs = sim.step(lane_stim if lane_stim is not None else inputs)
            for pos, out in enumerate(outs):
                lane = sim.active_lanes[pos]
                violations[lane] += int(bool(out.get("violation", 0)))
                final[lane] = out
            if not args.quiet:
                ports = " | ".join(
                    " ".join(f"{k}={v}" for k, v in out.items()) for out in outs
                )
                print(f"cycle {cycle:4d}  {ports}")
            if args.compact:
                retire = [pos for pos, out in enumerate(outs) if out.get("halted")]
                if retire and len(retire) == sim.lanes:
                    break  # every lane halted; nothing left to simulate
                if retire:
                    gone = set(retire)
                    sim.compact(retire)
                    if lane_stim is not None:  # keep stimulus lane-aligned
                        lane_stim = [
                            d for pos, d in enumerate(lane_stim) if pos not in gone
                        ]
        print(f"# {sim.cycles} cycles x {args.lanes} lanes "
              f"({sim.lane_cycles} active lane-cycles, final occupancy "
              f"{sim.lanes}/{args.lanes})")
        for lane, out in enumerate(final):
            print(f"# lane {lane}: {violations[lane]} violation cycle(s), "
                  f"final outputs: {out}")
        return 0
    sim = Simulator(design.module, optimize=False) if args.no_opt else tc.simulator(design)
    violations = 0
    out: dict[str, int] = {}
    for cycle in range(args.cycles):
        out = sim.step(inputs)
        violations += int(bool(out.get("violation", 0)))
        if not args.quiet:
            ports = "  ".join(f"{k}={v}" for k, v in out.items())
            print(f"cycle {cycle:4d}  {ports}")
    print(f"# {args.cycles} cycles, {violations} violation cycle(s), "
          f"final outputs: {out}")
    return 0


def _simulate_sharded(args: argparse.Namespace, tc: Toolchain, engine: str, inputs) -> int:
    """``simulate --shards S``: lane slices across fleet workers.

    Per-cycle traces live in the workers, so this path always prints
    summary-only (as --quiet does); per-lane violation counts and
    final outputs are bit-identical to the in-process run.
    """
    from repro.fleet import simulate_sharded

    lattice: Lattice = _LATTICES[args.lattice]()
    name = args.name or (Path(args.source).stem if args.source != "-" else "design")
    source = _read_source(args.source)
    lane_stim = _lane_stimulus(inputs, args.lanes)
    scalar_inputs = {p: v for p, v in inputs.items() if not isinstance(v, list)}
    if not args.quiet:
        print(f"# --shards {args.shards}: per-cycle trace runs in the workers; "
              "printing the summary only")
    out = simulate_sharded(
        source, lattice,
        cycles=args.cycles, lanes=args.lanes, shards=args.shards,
        name=name, secure=not args.insecure, inputs=scalar_inputs,
        lane_stim=lane_stim, engine=None if args.engine == "auto" else engine,
        compact=args.compact, store=tc.store,
    )
    merged = out["stats"].merged()
    print(f"# {out['steps']} cycles x {args.lanes} lanes "
          f"({out['lane_cycles']} active lane-cycles, {args.shards} shard(s), "
          f"mean occupancy {merged['occupancy']:.2f})")
    print(f"# fleet: start_method={merged['start_method']} "
          f"degraded={merged['degraded']} requeues={merged['requeues']} "
          f"store_hits={merged['toolchain'].get('store_hit:compile', 0)}")
    for lane, final in enumerate(out["final"]):
        print(f"# lane {lane}: {out['violations'][lane]} violation cycle(s), "
              f"final outputs: {final}")
    return 0


def _cmd_synth(args: argparse.Namespace, tc: Toolchain) -> int:
    design, _ = _design(args, tc)
    if args.no_opt:
        from repro.hdl import synthesize

        rpt = synthesize(design.module, optimize=False)
    else:
        rpt = tc.synthesize(design)
    print(f"module {rpt.name}")
    for key, value in rpt.summary().items():
        print(f"  {key:12s} {value:,.1f}")
    counts = rpt.counts
    print(f"  cells        and2={counts.and2} or2={counts.or2} xor2={counts.xor2} "
          f"inv={counts.inv} dff={counts.dff}")
    return 0


def _cmd_stats(args: argparse.Namespace, tc: Toolchain) -> int:
    from repro.hdl.passes import run_pipeline

    design, _ = _design(args, tc)
    result = run_pipeline(design.module)
    before = len(design.module.comb)
    after = len(result.module.comb)
    print(f"module {design.module.name}: {before} -> {after} signals "
          f"({before - after} removed)")
    for stat in result.stats:
        flag = "*" if stat.changed else " "
        print(f" {flag} {stat.name:10s} {stat.signals_before:6d} -> "
              f"{stat.signals_after:6d}  {stat.seconds * 1000:7.1f} ms")
    return 0


def _seed_comb_loop(module) -> None:
    """Append a two-signal combinational cycle to *module* (in place)."""
    from repro.hdl.ir import HRef

    module.comb.append(("seeded_loop_a", HRef("seeded_loop_b", 1)))
    module.comb.append(("seeded_loop_b", HRef("seeded_loop_a", 1)))


def _cmd_check(args: argparse.Namespace, tc: Toolchain) -> int:
    import json

    design, _ = _design(args, tc)
    if args.seed_defect == "comb-loop":
        # Mutated module: analyze directly so the broken report never
        # lands in the cache or store under the clean design's key.
        from repro.analyze import analyze_design

        _seed_comb_loop(design.module)
        report = analyze_design(design)
    else:
        report = tc.analyze(design)
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace, tc: Toolchain) -> int:
    import asyncio

    from repro.server import ReproServer

    server = ReproServer(toolchain=tc, max_workers=args.workers)
    try:
        if args.stdio:
            asyncio.run(server.run_stdio(warm=args.warm))
        else:
            asyncio.run(server.run_tcp(args.host, args.port, warm=args.warm))
    except OSError as exc:
        raise SystemExit(
            f"error: cannot listen on {args.host}:{args.port}: {exc}\n"
            "hint: is another 'repro serve' already running there? "
            "pass --port to pick a free port, or --stdio to skip TCP entirely"
        )
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down", file=sys.stderr)
    return 0


_COMMANDS = {
    "compile": _cmd_compile,
    "simulate": _cmd_simulate,
    "synth": _cmd_synth,
    "stats": _cmd_stats,
    "check": _cmd_check,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    from repro.sapper.errors import SapperError

    args = _build_parser().parse_args(argv)
    store = None
    if getattr(args, "store", None):
        try:
            store = ArtifactStore(args.store)
        except StoreError as exc:
            raise SystemExit(
                f"error: {exc}\n"
                "hint: --store needs a creatable, writable directory; "
                "check the path and its permissions"
            )
    tc = Toolchain(store=store)
    try:
        return _COMMANDS[args.command](args, tc)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SapperError as exc:
        print(f"{getattr(args, 'source', 'input')}: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface to the Sapper toolchain.

Built entirely on the :class:`~repro.toolchain.Toolchain` facade::

    python -m repro compile  design.sapper            # emit Verilog
    python -m repro simulate design.sapper -n 100     # run the simulator
    python -m repro synth    design.sapper            # gate census report
    python -m repro stats    design.sapper            # pass-pipeline effect

Common options: ``--lattice two|diamond``, ``--insecure`` (compile the
Base variant with tracking stripped), ``--no-opt`` (raw compiler
output), ``--name`` (module name).  ``simulate`` drives constant input
values given as ``-i port=value`` (tag inputs as ``port__tag=bits``)
and prints the output ports each cycle plus a violation summary;
``--lanes N`` advances N independent machine states per cycle through
the lane-batched simulator (bit-identical to N scalar runs), and
``--engine {scalar,batch,swar}`` pins the simulation engine (``auto``
picks scalar at one lane and the SWAR wide-word engine beyond)::

    python -m repro simulate design.sapper -n 100 --lanes 8 --quiet
    python -m repro simulate design.sapper -n 100 --lanes 8 --engine batch
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.lattice import Lattice, diamond, two_level
from repro.toolchain import Toolchain

_LATTICES = {"two": two_level, "diamond": diamond}


def _positive_int(text: str) -> int:
    try:
        value = int(text, 0)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"lane count must be >= 1, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Sapper hardware security-policy toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("source", help="path to a .sapper source file, or '-' for stdin")
        p.add_argument("--lattice", choices=sorted(_LATTICES), default="two",
                       help="security lattice (default: two-level L<H)")
        p.add_argument("--insecure", action="store_true",
                       help="compile the Base variant (no tags, no checks)")
        p.add_argument("--no-opt", action="store_true",
                       help="skip the optimization pipeline")
        p.add_argument("--name", default=None, help="module name (default: file stem)")

    common(sub.add_parser("compile", help="compile to synthesizable Verilog"))

    sim = sub.add_parser("simulate", help="run the cycle-accurate simulator")
    common(sim)
    sim.add_argument("-n", "--cycles", type=int, default=32, help="cycles to run")
    sim.add_argument("-i", "--input", action="append", default=[], metavar="PORT=VALUE",
                     help="constant input drive (repeatable)")
    sim.add_argument("--lanes", type=_positive_int, default=1, metavar="N",
                     help="advance N independent machine states with the "
                          "lane-batched simulator (default: 1, scalar)")
    sim.add_argument("--engine", choices=["auto", "scalar", "batch", "swar"],
                     default="auto",
                     help="simulation engine: 'scalar' (one Simulator per "
                          "run, --lanes 1 only), 'batch' (lane-packed tags "
                          "+ per-lane datapath, the pre-SWAR engine), "
                          "'swar' (adds guard-banded wide-word lane "
                          "packing), or 'auto' (scalar at 1 lane, swar "
                          "beyond; default)")
    sim.add_argument("--quiet", action="store_true", help="only print the summary")

    common(sub.add_parser("synth", help="synthesize to a gate census / cost report"))
    common(sub.add_parser("stats", help="report what each optimization pass did"))
    return parser


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    return Path(path).read_text()


def _design(args: argparse.Namespace, tc: Toolchain):
    lattice: Lattice = _LATTICES[args.lattice]()
    name = args.name or (Path(args.source).stem if args.source != "-" else "design")
    source = _read_source(args.source)
    return tc.compile(source, lattice, secure=not args.insecure, name=name), lattice


def _parse_inputs(pairs: Sequence[str]) -> dict[str, int]:
    out: dict[str, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad --input {pair!r}: expected PORT=VALUE")
        port, _, value = pair.partition("=")
        try:
            out[port.strip()] = int(value, 0)
        except ValueError:
            raise SystemExit(f"bad --input {pair!r}: {value!r} is not an integer")
    return out


def _cmd_compile(args: argparse.Namespace, tc: Toolchain) -> int:
    design, _ = _design(args, tc)
    if args.no_opt:
        from repro.hdl import emit_verilog

        print(emit_verilog(design.module, optimize=False))
    else:
        print(tc.verilog(design))
    return 0


def _cmd_simulate(args: argparse.Namespace, tc: Toolchain) -> int:
    from repro.hdl import BatchSimulator, Simulator

    design, _ = _design(args, tc)
    inputs = _parse_inputs(args.input)
    engine = args.engine
    if engine == "auto":
        engine = "swar" if args.lanes > 1 else "scalar"
    if engine == "scalar" and args.lanes > 1:
        raise SystemExit(
            f"--engine scalar supports --lanes 1 only (got {args.lanes}); "
            "use --engine batch or swar"
        )
    if engine in ("batch", "swar"):
        swar = engine == "swar"
        if args.no_opt:
            sim = BatchSimulator(design.module, args.lanes, optimize=False, swar=swar)
        else:
            sim = tc.batch_simulator(design, args.lanes, swar=swar)
        violations = [0] * args.lanes
        outs: list[dict[str, int]] = [{} for _ in range(args.lanes)]
        for cycle in range(args.cycles):
            outs = sim.step(inputs)
            for lane, out in enumerate(outs):
                violations[lane] += int(bool(out.get("violation", 0)))
            if not args.quiet:
                ports = " | ".join(
                    " ".join(f"{k}={v}" for k, v in out.items()) for out in outs
                )
                print(f"cycle {cycle:4d}  {ports}")
        print(f"# {args.cycles} cycles x {args.lanes} lanes "
              f"({args.cycles * args.lanes} lane-cycles)")
        for lane, out in enumerate(outs):
            print(f"# lane {lane}: {violations[lane]} violation cycle(s), "
                  f"final outputs: {out}")
        return 0
    sim = Simulator(design.module, optimize=False) if args.no_opt else tc.simulator(design)
    violations = 0
    out: dict[str, int] = {}
    for cycle in range(args.cycles):
        out = sim.step(inputs)
        violations += int(bool(out.get("violation", 0)))
        if not args.quiet:
            ports = "  ".join(f"{k}={v}" for k, v in out.items())
            print(f"cycle {cycle:4d}  {ports}")
    print(f"# {args.cycles} cycles, {violations} violation cycle(s), "
          f"final outputs: {out}")
    return 0


def _cmd_synth(args: argparse.Namespace, tc: Toolchain) -> int:
    design, _ = _design(args, tc)
    if args.no_opt:
        from repro.hdl import synthesize

        rpt = synthesize(design.module, optimize=False)
    else:
        rpt = tc.synthesize(design)
    print(f"module {rpt.name}")
    for key, value in rpt.summary().items():
        print(f"  {key:12s} {value:,.1f}")
    counts = rpt.counts
    print(f"  cells        and2={counts.and2} or2={counts.or2} xor2={counts.xor2} "
          f"inv={counts.inv} dff={counts.dff}")
    return 0


def _cmd_stats(args: argparse.Namespace, tc: Toolchain) -> int:
    from repro.hdl.passes import run_pipeline

    design, _ = _design(args, tc)
    result = run_pipeline(design.module)
    before = len(design.module.comb)
    after = len(result.module.comb)
    print(f"module {design.module.name}: {before} -> {after} signals "
          f"({before - after} removed)")
    for stat in result.stats:
        flag = "*" if stat.changed else " "
        print(f" {flag} {stat.name:10s} {stat.signals_before:6d} -> "
              f"{stat.signals_after:6d}  {stat.seconds * 1000:7.1f} ms")
    return 0


_COMMANDS = {
    "compile": _cmd_compile,
    "simulate": _cmd_simulate,
    "synth": _cmd_synth,
    "stats": _cmd_stats,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.sapper.errors import SapperError

    args = _build_parser().parse_args(argv)
    tc = Toolchain()
    try:
        return _COMMANDS[args.command](args, tc)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SapperError as exc:
        print(f"{args.source}: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())

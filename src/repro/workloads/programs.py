"""The six validation workloads (see package docstring)."""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from collections.abc import Callable

from repro.mips import softfloat as sf

OUT = """
    li   $t8, 0x40000000
    sw   $v0, 0($t8)
"""

HALT = """
    li   $t9, 0x40000004
    sw   $zero, 0($t9)
"""

MASK32 = 0xFFFFFFFF


@dataclass(frozen=True)
class Workload:
    name: str
    description: str
    source: str
    expected: tuple[int, ...]    # golden MMIO output sequence
    max_cycles: int = 400_000
    uses_fpu: bool = False


# -- specrand -------------------------------------------------------------------


def _build_specrand() -> Workload:
    seed = 0x5EED
    a, c = 1103515245, 12345
    state = seed
    expected = []
    for _ in range(12):
        state = (a * state + c) & MASK32
        expected.append(state >> 16 & 0x7FFF)
    src = f"""
.org 0x400
    li   $s0, {seed}        # state
    li   $s1, {a}           # multiplier
    li   $s2, {c}           # increment
    li   $s3, 12            # draws
loop:
    mult $s0, $s1
    mflo $s0
    addu $s0, $s0, $s2
    srl  $v0, $s0, 16
    andi $v0, $v0, 0x7FFF
{OUT}
    addiu $s3, $s3, -1
    bgt  $s3, $zero, loop
{HALT}
"""
    return Workload(
        "specrand",
        "SPEC-style pseudo-random number generator (LCG), 12 draws",
        src,
        tuple(expected),
        max_cycles=120_000,
    )


# -- sha (real SHA-1, one padded block) ----------------------------------------


def _sha1_pad(message: bytes) -> list[int]:
    assert len(message) <= 55
    padded = message + b"\x80" + b"\x00" * (55 - len(message)) + struct.pack(">Q", len(message) * 8)
    return list(struct.unpack(">16I", padded))


def _build_sha() -> Workload:
    message = b"Sapper @ ASPLOS14"
    block = _sha1_pad(message)
    digest = hashlib.sha1(message).digest()
    expected = struct.unpack(">5I", digest)
    words = ", ".join(f"0x{w:08x}" for w in block)
    src = f"""
.org 0x400
    # h0..h4 in $s0..$s4
    li   $s0, 0x67452301
    li   $s1, 0xEFCDAB89
    li   $s2, 0x98BADCFE
    li   $s3, 0x10325476
    li   $s4, 0xC3D2E1F0
    # expand the schedule: W[0..15] are the block, W[16..79] computed
    la   $t0, wsched
    li   $t1, 16
expand:
    sll  $t2, $t1, 2
    addu $t2, $t2, $t0
    lw   $t3, -12($t2)      # W[t-3]
    lw   $t4, -32($t2)      # W[t-8]
    lw   $t5, -56($t2)      # W[t-14]
    lw   $t6, -64($t2)      # W[t-16]
    xor  $t3, $t3, $t4
    xor  $t3, $t3, $t5
    xor  $t3, $t3, $t6
    sll  $t4, $t3, 1        # rotl 1
    srl  $t3, $t3, 31
    or   $t3, $t3, $t4
    sw   $t3, 0($t2)
    addiu $t1, $t1, 1
    li   $t7, 80
    blt  $t1, $t7, expand
    # main loop: a..e in $a0..$a3, $v1
    move $a0, $s0
    move $a1, $s1
    move $a2, $s2
    move $a3, $s3
    move $v1, $s4
    li   $t1, 0             # t
round:
    li   $t7, 20
    blt  $t1, $t7, f_ch
    li   $t7, 40
    blt  $t1, $t7, f_par1
    li   $t7, 60
    blt  $t1, $t7, f_maj
    # parity 2
    xor  $t2, $a1, $a2
    xor  $t2, $t2, $a3
    li   $t3, 0xCA62C1D6
    b    have_f
f_ch:
    and  $t2, $a1, $a2
    not  $t4, $a1
    and  $t4, $t4, $a3
    or   $t2, $t2, $t4
    li   $t3, 0x5A827999
    b    have_f
f_par1:
    xor  $t2, $a1, $a2
    xor  $t2, $t2, $a3
    li   $t3, 0x6ED9EBA1
    b    have_f
f_maj:
    and  $t2, $a1, $a2
    and  $t4, $a1, $a3
    or   $t2, $t2, $t4
    and  $t4, $a2, $a3
    or   $t2, $t2, $t4
    li   $t3, 0x8F1BBCDC
have_f:
    sll  $t4, $a0, 5        # rotl(a,5)
    srl  $t5, $a0, 27
    or   $t4, $t4, $t5
    addu $t4, $t4, $t2
    addu $t4, $t4, $v1
    addu $t4, $t4, $t3
    la   $t6, wsched
    sll  $t5, $t1, 2
    addu $t6, $t6, $t5
    lw   $t5, 0($t6)
    addu $t4, $t4, $t5      # temp
    move $v1, $a3
    move $a3, $a2
    sll  $t5, $a1, 30       # rotl(b,30)
    srl  $a2, $a1, 2
    or   $a2, $a2, $t5
    move $a1, $a0
    move $a0, $t4
    addiu $t1, $t1, 1
    li   $t7, 80
    blt  $t1, $t7, round
    addu $s0, $s0, $a0
    addu $s1, $s1, $a1
    addu $s2, $s2, $a2
    addu $s3, $s3, $a3
    addu $s4, $s4, $v1
    move $v0, $s0
{OUT}
    move $v0, $s1
{OUT}
    move $v0, $s2
{OUT}
    move $v0, $s3
{OUT}
    move $v0, $s4
{OUT}
{HALT}
.org 0x10000
wsched: .word {words}
        .space 256
"""
    return Workload(
        "sha",
        f"SHA-1 of {message!r} (one padded block, golden: hashlib)",
        src,
        tuple(expected),
        max_cycles=400_000,
    )


# -- rijndael-class cipher (XTEA substitution) ----------------------------------


def _xtea_encrypt(v0: int, v1: int, key: tuple[int, int, int, int]) -> tuple[int, int]:
    delta = 0x9E3779B9
    total = 0
    for _ in range(32):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + key[total & 3]))) & MASK32
        total = (total + delta) & MASK32
        v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + key[(total >> 11) & 3]))) & MASK32
    return v0, v1


def _build_cipher() -> Workload:
    key = (0x0F0E0D0C, 0x0B0A0908, 0x07060504, 0x03020100)
    blocks = [(0x01234567, 0x89ABCDEF), (0xDEADBEEF, 0xFEEDC0DE)]
    expected: list[int] = []
    for b0, b1 in blocks:
        c0, c1 = _xtea_encrypt(b0, b1, key)
        expected.extend((c0, c1))
    key_words = ", ".join(f"0x{k:08x}" for k in key)
    blk_words = ", ".join(f"0x{b:08x}" for pair in blocks for b in pair)
    src = f"""
.org 0x400
    la   $s7, blocks
    li   $s6, {len(blocks)}
next_block:
    lw   $s0, 0($s7)        # v0
    lw   $s1, 4($s7)        # v1
    li   $s2, 0             # sum
    li   $s3, 32            # rounds
    la   $s5, key
xtea_round:
    sll  $t0, $s1, 4
    srl  $t1, $s1, 5
    xor  $t0, $t0, $t1
    addu $t0, $t0, $s1
    andi $t2, $s2, 3
    sll  $t2, $t2, 2
    addu $t2, $t2, $s5
    lw   $t3, 0($t2)
    addu $t3, $t3, $s2
    xor  $t0, $t0, $t3
    addu $s0, $s0, $t0
    li   $t4, 0x9E3779B9
    addu $s2, $s2, $t4
    sll  $t0, $s0, 4
    srl  $t1, $s0, 5
    xor  $t0, $t0, $t1
    addu $t0, $t0, $s0
    srl  $t2, $s2, 11
    andi $t2, $t2, 3
    sll  $t2, $t2, 2
    addu $t2, $t2, $s5
    lw   $t3, 0($t2)
    addu $t3, $t3, $s2
    xor  $t0, $t0, $t3
    addu $s1, $s1, $t0
    addiu $s3, $s3, -1
    bgt  $s3, $zero, xtea_round
    move $v0, $s0
{OUT}
    move $v0, $s1
{OUT}
    addiu $s7, $s7, 8
    addiu $s6, $s6, -1
    bgt  $s6, $zero, next_block
{HALT}
.org 0x10000
key:    .word {key_words}
blocks: .word {blk_words}
"""
    return Workload(
        "rijndael_xtea",
        "block-cipher benchmark (XTEA substitution for MiBench rijndael)",
        src,
        tuple(expected),
        max_cycles=300_000,
    )


# -- fft (FP32, radix-2 DIT, 8 points) ------------------------------------------


def _fft_golden(values: list[float]) -> list[int]:
    """8-point FFT computed with the architectural softfloat model."""
    n = 8
    re = [sf.from_python(v) for v in values]
    im = [0] * n
    # bit-reversal permutation
    order = [0, 4, 2, 6, 1, 5, 3, 7]
    re = [re[i] for i in order]
    im = [im[i] for i in order]
    import math

    size = 2
    while size <= n:
        half = size // 2
        for start in range(0, n, size):
            for k in range(half):
                angle = -2 * math.pi * k / size
                wr = sf.from_python(math.cos(angle))
                wi = sf.from_python(math.sin(angle))
                i = start + k
                j = i + half
                tr = sf.fsub(sf.fmul(wr, re[j]), sf.fmul(wi, im[j]))
                ti = sf.fadd(sf.fmul(wr, im[j]), sf.fmul(wi, re[j]))
                re[j] = sf.fsub(re[i], tr)
                im[j] = sf.fsub(im[i], ti)
                re[i] = sf.fadd(re[i], tr)
                im[i] = sf.fadd(im[i], ti)
        size *= 2
    out = []
    for k in range(n):
        out.append(re[k])
        out.append(im[k])
    return out


def _build_fft() -> Workload:
    import math

    values = [1.0, 0.5, -0.25, 2.0, -1.5, 0.75, 0.125, -2.0]
    expected = _fft_golden(values)
    order = [0, 4, 2, 6, 1, 5, 3, 7]
    permuted = ", ".join(f"{values[i]!r}" for i in order)
    # twiddle table: for each size stage (2, 4, 8), cos/sin pairs
    twiddles: list[float] = []
    for size in (2, 4, 8):
        for k in range(size // 2):
            angle = -2 * math.pi * k / size
            twiddles.extend((math.cos(angle), math.sin(angle)))
    twid = ", ".join(repr(t) for t in twiddles)
    src = f"""
.org 0x400
    # arrays: re[8], im[8] (already bit-reversed), twiddles per stage
    la   $s0, re_data
    la   $s1, im_data
    la   $s2, twid
    li   $s3, 2             # size
stage:
    srl  $s4, $s3, 1        # half
    li   $s5, 0             # start
group:
    li   $s6, 0             # k
butterfly:
    # twiddle for (stage, k): cos at twid + 8*k, sin at +4
    sll  $t0, $s6, 3
    addu $t0, $t0, $s2
    lwc1 $f10, 0($t0)       # wr
    lwc1 $f11, 4($t0)       # wi
    addu $t1, $s5, $s6      # i
    addu $t2, $t1, $s4      # j
    sll  $t3, $t1, 2
    sll  $t4, $t2, 2
    addu $t5, $s0, $t3      # &re[i]
    addu $t6, $s0, $t4      # &re[j]
    addu $t7, $s1, $t3      # &im[i]
    addu $t8, $s1, $t4      # &im[j]? ($t8 reserved -> use $t9)
    lwc1 $f0, 0($t5)        # re[i]
    lwc1 $f1, 0($t6)        # re[j]
    lwc1 $f2, 0($t7)        # im[i]
    addu $t4, $s1, $t4
    lwc1 $f3, 0($t4)        # im[j]
    mul.s $f4, $f10, $f1    # wr*re[j]
    mul.s $f5, $f11, $f3    # wi*im[j]
    sub.s $f4, $f4, $f5     # tr
    mul.s $f5, $f10, $f3    # wr*im[j]
    mul.s $f6, $f11, $f1    # wi*re[j]
    add.s $f5, $f5, $f6     # ti
    sub.s $f7, $f0, $f4     # re[j] = re[i]-tr
    swc1 $f7, 0($t6)
    sub.s $f7, $f2, $f5     # im[j] = im[i]-ti
    swc1 $f7, 0($t4)
    add.s $f7, $f0, $f4     # re[i] += tr
    swc1 $f7, 0($t5)
    add.s $f7, $f2, $f5     # im[i] += ti
    swc1 $f7, 0($t7)
    addiu $s6, $s6, 1
    blt  $s6, $s4, butterfly
    addu $s5, $s5, $s3      # next group
    li   $t0, 8
    blt  $s5, $t0, group
    # advance twiddle table by half entries (8 bytes each)
    sll  $t0, $s4, 3
    addu $s2, $s2, $t0
    sll  $s3, $s3, 1        # size *= 2
    li   $t0, 8
    ble  $s3, $t0, stage
    # emit re/im pairs
    li   $s5, 0
emit:
    sll  $t0, $s5, 2
    addu $t1, $s0, $t0
    lw   $v0, 0($t1)
{OUT}
    addu $t1, $s1, $t0
    lw   $v0, 0($t1)
{OUT}
    addiu $s5, $s5, 1
    li   $t0, 8
    blt  $s5, $t0, emit
{HALT}
.org 0x10000
re_data: .float {permuted}
im_data: .float 0, 0, 0, 0, 0, 0, 0, 0
twid:    .float {twid}
"""
    return Workload(
        "fft",
        "8-point radix-2 FP32 FFT (MiBench-class floating point)",
        src,
        tuple(expected),
        max_cycles=400_000,
        uses_fpu=True,
    )


# -- bzip2-class compressor (RLE) -------------------------------------------------


def _rle_compress(data: bytes) -> list[int]:
    out = []
    i = 0
    while i < len(data):
        run = 1
        while i + run < len(data) and data[i + run] == data[i] and run < 255:
            run += 1
        out.extend((run, data[i]))
        i += run
    return out


def _build_compress() -> Workload:
    data = bytes([7] * 9 + [3] * 4 + list(range(10, 20)) + [42] * 17 + [0] * 8 + [9, 9, 5])
    compressed = _rle_compress(data)
    checksum = 0
    for byte in compressed:
        checksum = (checksum * 31 + byte) & MASK32
    expected = (len(compressed), checksum)
    data_bytes = ", ".join(str(b) for b in data)
    src = f"""
.org 0x400
    la   $s0, input
    li   $s1, {len(data)}     # remaining
    la   $s2, outbuf
    li   $s3, 0               # out length
run_start:
    ble  $s1, $zero, finish
    lbu  $t0, 0($s0)          # current byte
    li   $t1, 1               # run length
scan:
    bge  $t1, $s1, run_done
    addu $t2, $s0, $t1
    lbu  $t3, 0($t2)
    bne  $t3, $t0, run_done
    li   $t4, 255
    bge  $t1, $t4, run_done
    addiu $t1, $t1, 1
    b    scan
run_done:
    sb   $t1, 0($s2)
    sb   $t0, 1($s2)
    addiu $s2, $s2, 2
    addiu $s3, $s3, 2
    addu $s0, $s0, $t1
    subu $s1, $s1, $t1
    b    run_start
finish:
    move $v0, $s3
{OUT}
    # checksum the compressed buffer
    la   $s2, outbuf
    li   $t5, 0               # checksum
    li   $t6, 0               # index
cksum:
    bge  $t6, $s3, done
    addu $t7, $s2, $t6
    lbu  $t0, 0($t7)
    li   $t1, 31
    mult $t5, $t1
    mflo $t5
    addu $t5, $t5, $t0
    addiu $t6, $t6, 1
    b    cksum
done:
    move $v0, $t5
{OUT}
{HALT}
.org 0x10000
input:  .byte {data_bytes}
.org 0x11000
outbuf: .space 256
"""
    return Workload(
        "bzip2_rle",
        "byte-granular run-length compressor (bzip2-class substitution)",
        src,
        expected,
        max_cycles=400_000,
    )


# -- mcf-class graph kernel (Bellman-Ford) ------------------------------------------


def _build_mincost() -> Workload:
    nodes = 8
    edges = [
        (0, 1, 4), (0, 2, 7), (1, 2, 2), (1, 3, 5), (2, 4, 3),
        (3, 5, 6), (4, 3, 1), (4, 5, 8), (4, 6, 5), (5, 7, 2),
        (6, 5, 1), (6, 7, 9), (2, 6, 12), (1, 4, 11), (3, 7, 14), (0, 6, 30),
    ]
    inf = 0x3FFFFFFF
    dist = [inf] * nodes
    dist[0] = 0
    for _ in range(nodes - 1):
        for u, v, w in edges:
            if dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
    expected = tuple(dist)
    edge_words = ", ".join(f"{u}, {v}, {w}" for u, v, w in edges)
    src = f"""
.org 0x400
    # init distances
    la   $s0, dist
    li   $t0, 0
    li   $t1, {inf}
initd:
    sll  $t2, $t0, 2
    addu $t2, $t2, $s0
    sw   $t1, 0($t2)
    addiu $t0, $t0, 1
    li   $t3, {nodes}
    blt  $t0, $t3, initd
    sw   $zero, 0($s0)       # dist[0] = 0
    li   $s1, {nodes - 1}    # passes
pass_loop:
    la   $s2, edges
    li   $s3, {len(edges)}   # edge count
edge_loop:
    lw   $t0, 0($s2)         # u
    lw   $t1, 4($s2)         # v
    lw   $t2, 8($s2)         # w
    sll  $t3, $t0, 2
    addu $t3, $t3, $s0
    lw   $t4, 0($t3)         # dist[u]
    addu $t4, $t4, $t2       # candidate
    sll  $t5, $t1, 2
    addu $t5, $t5, $s0
    lw   $t6, 0($t5)         # dist[v]
    bge  $t4, $t6, no_relax
    sw   $t4, 0($t5)
no_relax:
    addiu $s2, $s2, 12
    addiu $s3, $s3, -1
    bgt  $s3, $zero, edge_loop
    addiu $s1, $s1, -1
    bgt  $s1, $zero, pass_loop
    # emit distances
    li   $t0, 0
emit:
    sll  $t2, $t0, 2
    addu $t2, $t2, $s0
    lw   $v0, 0($t2)
{OUT}
    addiu $t0, $t0, 1
    li   $t3, {nodes}
    blt  $t0, $t3, emit
{HALT}
.org 0x10000
dist:  .space 64
edges: .word {edge_words}
"""
    return Workload(
        "mcf_bellmanford",
        "min-cost relaxation kernel (mcf-class substitution, Bellman-Ford)",
        src,
        expected,
        max_cycles=700_000,
    )


def _build_all() -> dict[str, Workload]:
    builders: list[Callable[[], Workload]] = [
        _build_specrand,
        _build_sha,
        _build_cipher,
        _build_fft,
        _build_compress,
        _build_mincost,
    ]
    out = {}
    for build in builders:
        wl = build()
        out[wl.name] = wl
    return out


ALL_WORKLOADS: dict[str, Workload] = _build_all()


def get_workload(name: str) -> Workload:
    return ALL_WORKLOADS[name]

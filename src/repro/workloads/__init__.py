"""Benchmark workloads for the functional validation of section 4.3.

The paper ran mcf, specrand and bzip2 (SPEC CPU2006) plus sha, rijndael
and FFT (MiBench), compiled with GCC and cross-compared against a real
machine.  We reproduce the same validation with six workloads of the
same classes, written directly in MIPS assembly (our GCC substitute),
with I/O through the MMIO output port and statically allocated memory,
exactly as the paper modified its benchmarks.  Substitutions (documented
in DESIGN.md): rijndael -> XTEA (block cipher of the same ALU-heavy,
branch-light class) and bzip2/mcf -> run-length compression /
Bellman-Ford relaxation kernels exercising the same ISA mix at
laptop-simulable sizes.  sha is real SHA-1 (golden: hashlib); FFT is a
radix-2 FP32 FFT checked bit-exact against the softfloat model and
within tolerance against NumPy.

Every workload provides assembly source, a pure-Python golden reference
producing the exact expected MMIO output sequence, and a cycle budget
for the hardware run.
"""

from repro.workloads.programs import ALL_WORKLOADS, Workload, get_workload

__all__ = ["ALL_WORKLOADS", "Workload", "get_workload"]

"""SWAR (SIMD-within-a-register) primitives for lane-packed values.

The lane-batched simulator (:mod:`repro.hdl.batch`) holds every 1-bit
signal as one integer with bit ``l`` = lane ``l``.  This module extends
the same idea to *multi-bit* signals: ``n`` lanes of a ``w``-bit value
(``2 <= w <= 33``) are packed into one big integer of ``n`` fixed-size
slots.  Each slot is ``pitch`` bits wide with ``pitch > w``, so every
slot carries at least one zero *guard bit* above the value; arithmetic
carries and borrows are absorbed by the guard band and can never leak
into the neighbouring lane.

Canonical form
--------------

A packed word for width ``w`` is *canonical* when every bit outside the
per-slot value region ``[l * pitch, l * pitch + w)`` is zero.  All
primitives here consume and produce canonical words; the correctness
argument for each is a two-line bound on the per-slot intermediate:

* ``add``: slot sum ``< 2**(w+1) <= 2**pitch`` -- the carry stays in the
  guard band and is masked off;
* ``sub``/``neg``: the minuend is first OR-ed with ``2**w`` per slot, so
  the slot difference stays in ``[1, 2**(w+1))`` and no borrow crosses a
  slot boundary;
* compares: the classic guard-bit borrow trick -- ``(x | G) - y`` has
  the per-slot guard bit set iff ``x >= y``.

1-bit results (compares) are returned *lane-contiguous* (bit ``l`` =
lane ``l``), the same layout the batched simulator's packed-tag world
uses; :meth:`SwarLayout.compress` / :meth:`SwarLayout.spread` convert
between slot-spaced and lane-contiguous bit layouts in ``O(log n)``
big-integer operations (binary doubling), not ``O(n)`` Python loops.

All primitives are pure functions of a :class:`SwarLayout` -- the
batched code generator emits the same formulas inline with the layout's
masks bound as closure constants, and ``tests/test_swar.py`` checks
every primitive differentially against the scalar semantics of
:mod:`repro.hdl.sim` across widths 2..33 and lane counts 1..64.
"""

from __future__ import annotations

from functools import lru_cache
from collections.abc import Sequence

#: Widest signal the SWAR tier packs (the 33-bit tagged-word boundary).
SWAR_MAX_WIDTH = 33


class SwarLayout:
    """Slot geometry and precomputed masks for ``lanes`` slots of
    ``pitch`` bits each.

    Masks are built lazily per width and cached -- a layout is shared by
    every signal of a module (the batched codegen picks one ``pitch``
    for the whole design), so the per-width dictionaries stay tiny.
    """

    def __init__(self, pitch: int, lanes: int):
        if pitch < 2:
            raise ValueError(f"slot pitch must be >= 2, got {pitch}")
        if lanes < 1:
            raise ValueError(f"lane count must be >= 1, got {lanes}")
        self.pitch = pitch
        self.lanes = lanes
        #: one set bit at the base of every slot
        self.unit = sum(1 << (lane * pitch) for lane in range(lanes))
        #: lane-contiguous all-ones (the packed-1-bit world's ONES)
        self.lane_ones = (1 << lanes) - 1
        self._vmask: dict[int, int] = {}
        self._gmask: dict[int, int] = {}
        self._smask: dict[int, int] = {}
        # binary-doubling schedules for compress/spread: before step k
        # (group size g = 2**k), lane l's bit sits at
        # (l // g) * g * pitch + (l % g); each step merges odd groups
        # into the even group below them.
        self._steps: list[tuple[int, int, int, int]] = []
        g = 1
        while g < lanes:
            blk = 2 * g
            shift = g * (pitch - 1)
            keep = 0
            for base in range(0, lanes, blk):
                keep |= ((1 << blk) - 1) << (base * pitch)
            low = 0
            for base in range(0, lanes, blk):
                low |= ((1 << g) - 1) << (base * pitch)
            self._steps.append((shift, keep, low, keep ^ low))
            g = blk
        # one-multiply gather/scatter magics.  With n <= pitch - 1 the
        # partial products x * sum(2**(j*(pitch-1))) occupy pairwise
        # distinct bit positions (pitch and pitch-1 are coprime and the
        # lane index is too small to alias), so a single multiplication
        # moves every lane bit without carries:
        #   compress: diagonal terms land contiguously at (n-1)*(pitch-1)
        #   spread:   diagonal terms are the only ones on slot bases
        self._magic = None
        if 1 < lanes <= pitch - 1:
            magic = sum(1 << (j * (pitch - 1)) for j in range(lanes))
            self._magic = (magic, (lanes - 1) * (pitch - 1))

    # -- masks --------------------------------------------------------------

    def replicate(self, value: int, width: int) -> int:
        """*value* (masked to *width* bits) copied into every slot."""
        if width > self.pitch - 1:
            raise ValueError(f"width {width} does not fit pitch {self.pitch}")
        return (value & ((1 << width) - 1)) * self.unit

    def vmask(self, width: int) -> int:
        """Value mask: the low *width* bits of every slot."""
        m = self._vmask.get(width)
        if m is None:
            m = self._vmask[width] = self.replicate((1 << width) - 1, width)
        return m

    def gmask(self, width: int) -> int:
        """Guard mask: bit *width* of every slot."""
        m = self._gmask.get(width)
        if m is None:
            if width > self.pitch - 1:
                raise ValueError(f"width {width} does not fit pitch {self.pitch}")
            m = self._gmask[width] = (1 << width) * self.unit
        return m

    def smask(self, width: int) -> int:
        """Sign mask: bit *width - 1* of every slot."""
        m = self._smask.get(width)
        if m is None:
            m = self._smask[width] = (1 << (width - 1)) * self.unit
        return m

    # -- layout conversion --------------------------------------------------

    def compress(self, x: int) -> int:
        """Bits at slot bases (``l * pitch``) gathered to bit ``l``."""
        if self._magic is not None:
            magic, shift = self._magic
            return ((x * magic) >> shift) & self.lane_ones
        for shift, keep, _, _ in self._steps:
            x = (x | (x >> shift)) & keep
        return x

    def spread(self, x: int) -> int:
        """Bit ``l`` scattered to the base of slot ``l`` (compress⁻¹)."""
        if self._magic is not None:
            return (x * self._magic[0]) & self.unit
        for shift, _, low, high in reversed(self._steps):
            x = (x & low) | ((x & high) << shift)
        return x

    def compressor(self):
        """:meth:`compress` as a minimal closure (the batched step calls
        it hundreds of times per cycle, so dispatch overhead matters)."""
        if self._magic is not None:
            magic, shift = self._magic
            ones = self.lane_ones
            return lambda x: ((x * magic) >> shift) & ones
        return self.compress

    def spreader(self):
        """:meth:`spread` as a minimal closure."""
        if self._magic is not None:
            magic = self._magic[0]
            unit = self.unit
            return lambda x: (x * magic) & unit
        return self.spread

    # -- state packing ------------------------------------------------------

    def pack(self, values: Sequence[int], width: int) -> int:
        """Per-lane *values* packed into one canonical word."""
        mask = (1 << width) - 1
        word = 0
        for lane, v in enumerate(values):
            word |= (v & mask) << (lane * self.pitch)
        return word

    def unpack(self, word: int, width: int) -> list[int]:
        """Canonical *word* split back into per-lane values."""
        mask = (1 << width) - 1
        return [(word >> (lane * self.pitch)) & mask for lane in range(self.lanes)]

    def get(self, word: int, lane: int, width: int) -> int:
        return (word >> (lane * self.pitch)) & ((1 << width) - 1)

    def set(self, word: int, lane: int, width: int, value: int) -> int:
        slot = ((1 << width) - 1) << (lane * self.pitch)
        return (word & ~slot) | ((value & ((1 << width) - 1)) << (lane * self.pitch))


@lru_cache(maxsize=64)
def get_layout(pitch: int, lanes: int) -> SwarLayout:
    """Shared :class:`SwarLayout` instances (mask tables are reused)."""
    return SwarLayout(pitch, lanes)


# ----------------------------------------------------------------- arithmetic


def swar_add(lay: SwarLayout, x: int, y: int, w: int) -> int:
    """Per-slot ``(x + y) mod 2**w``; the carry dies in the guard band."""
    return (x + y) & lay.vmask(w)


def swar_sub(lay: SwarLayout, x: int, y: int, w: int) -> int:
    """Per-slot ``(x - y) mod 2**w`` via a borrowed guard bit."""
    return ((x | lay.gmask(w)) - y) & lay.vmask(w)


def swar_neg(lay: SwarLayout, x: int, w: int) -> int:
    """Per-slot ``(-x) mod 2**w`` (``2**w - x``, guard absorbs ``x=0``)."""
    return (lay.gmask(w) - x) & lay.vmask(w)


# -------------------------------------------------------------------- bitwise


def swar_and(lay: SwarLayout, x: int, y: int, w: int) -> int:
    return x & y


def swar_or(lay: SwarLayout, x: int, y: int, w: int) -> int:
    return x | y


def swar_xor(lay: SwarLayout, x: int, y: int, w: int) -> int:
    return x ^ y


def swar_not(lay: SwarLayout, x: int, w: int) -> int:
    return x ^ lay.vmask(w)


# --------------------------------------------------------- shifts-by-constant


def swar_shl(lay: SwarLayout, x: int, k: int, w: int) -> int:
    """Per-slot ``(x << k) mod 2**w`` for a *constant* k.

    Bits that would leave the value region are masked off *before* the
    shift, so nothing ever crosses into the next slot.
    """
    if k <= 0:
        return x
    if k >= w:
        return 0
    return (x & lay.vmask(w - k)) << k


def swar_shr(lay: SwarLayout, x: int, k: int, w: int) -> int:
    """Per-slot logical ``x >> k`` for a constant k."""
    if k <= 0:
        return x
    if k >= w:
        return 0
    return (x >> k) & lay.vmask(w - k)


def swar_asr(lay: SwarLayout, x: int, k: int, w: int) -> int:
    """Per-slot arithmetic ``x >> k`` (shift clamped to ``w - 1``,
    matching the scalar simulator's convention)."""
    k = min(k, w - 1)
    if k <= 0:
        return x
    t = (x >> k) & lay.vmask(w - k)
    m = lay.replicate(1 << (w - 1 - k), w)
    return (((t ^ m) | lay.gmask(w)) - m) & lay.vmask(w)


# ---------------------------------------------------------- width adaptation


def swar_zext(lay: SwarLayout, x: int, w_from: int, w_to: int) -> int:
    """Zero-extension is the identity on canonical words."""
    return x


def swar_sext(lay: SwarLayout, x: int, w_from: int, w_to: int) -> int:
    """Per-slot sign-extension from *w_from* to *w_to* bits."""
    if w_from >= w_to:
        return x
    m = lay.smask(w_from)
    return (((x ^ m) | lay.gmask(w_to)) - m) & lay.vmask(w_to)


def swar_slice(lay: SwarLayout, x: int, hi: int, lo: int) -> int:
    """Per-slot bit-field extract ``x[hi:lo]``."""
    return (x >> lo) & lay.vmask(hi - lo + 1)


def swar_cat(lay: SwarLayout, parts: Sequence[tuple[int, int]]) -> int:
    """Per-slot concatenation of ``(word, width)`` parts, most
    significant first (total width must stay within the pitch)."""
    word = 0
    shift = 0
    for part, width in reversed(list(parts)):
        word |= part << shift
        shift += width
    return word


# ------------------------------------------------------------------ compares
# All compares return *lane-contiguous* flags: bit l = lane l.


def _guards_eq(lay: SwarLayout, x: int, y: int, w: int) -> int:
    d = x ^ y
    return (lay.gmask(w) - d) & lay.gmask(w)


def _guards_le(lay: SwarLayout, x: int, y: int, w: int) -> int:
    """Guard bit of slot l set iff ``x_l <= y_l`` (unsigned)."""
    return ((y | lay.gmask(w)) - x) & lay.gmask(w)


def swar_eq(lay: SwarLayout, x: int, y: int, w: int) -> int:
    return lay.compress(_guards_eq(lay, x, y, w) >> w)


def swar_ne(lay: SwarLayout, x: int, y: int, w: int) -> int:
    return lay.compress((_guards_eq(lay, x, y, w) ^ lay.gmask(w)) >> w)


def swar_ult(lay: SwarLayout, x: int, y: int, w: int) -> int:
    return lay.compress((_guards_le(lay, y, x, w) ^ lay.gmask(w)) >> w)


def swar_ule(lay: SwarLayout, x: int, y: int, w: int) -> int:
    return lay.compress(_guards_le(lay, x, y, w) >> w)


def swar_ugt(lay: SwarLayout, x: int, y: int, w: int) -> int:
    return swar_ult(lay, y, x, w)


def swar_uge(lay: SwarLayout, x: int, y: int, w: int) -> int:
    return swar_ule(lay, y, x, w)


def _sign_flip(lay: SwarLayout, x: int, w: int) -> int:
    return x ^ lay.smask(w)


def swar_slt(lay: SwarLayout, x: int, y: int, w: int) -> int:
    return swar_ult(lay, _sign_flip(lay, x, w), _sign_flip(lay, y, w), w)


def swar_sle(lay: SwarLayout, x: int, y: int, w: int) -> int:
    return swar_ule(lay, _sign_flip(lay, x, w), _sign_flip(lay, y, w), w)


def swar_sgt(lay: SwarLayout, x: int, y: int, w: int) -> int:
    return swar_slt(lay, y, x, w)


def swar_sge(lay: SwarLayout, x: int, y: int, w: int) -> int:
    return swar_sle(lay, y, x, w)


# ----------------------------------------------------------------------- mux


def select_mask(lay: SwarLayout, sel_lanes: int, w: int) -> int:
    """Lane-contiguous 1-bit *sel_lanes* expanded to a full per-slot
    value mask (all *w* value bits set where the lane selects)."""
    base = lay.spread(sel_lanes)
    return (base << w) - base


def swar_mux(lay: SwarLayout, sel_lanes: int, a: int, b: int, w: int) -> int:
    """Per-slot ``a if sel else b`` with a lane-contiguous selector."""
    mv = select_mask(lay, sel_lanes, w)
    return b ^ ((a ^ b) & mv)

"""A 90 nm-style standard-cell library cost model.

Substitute for the Synopsys 90 nm generic library + Design Compiler used
in the paper's section 4.5.  All numbers are representative of a 90 nm
process; the evaluation only relies on *relative* costs across the four
processor variants, which a consistent model preserves.

Units: area in um^2, delay in ns per logic level, energy in pJ per
switching event, leakage in uW per cell.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    name: str
    area: float      # um^2
    delay: float     # ns
    leakage: float   # uW
    energy: float    # pJ per output toggle


#: The five primitive cell types every design is decomposed into.
CELLS: dict[str, Cell] = {
    "and2": Cell("and2", 5.5, 0.040, 0.012, 0.0021),
    "or2": Cell("or2", 5.5, 0.042, 0.012, 0.0021),
    "xor2": Cell("xor2", 8.8, 0.055, 0.020, 0.0034),
    "inv": Cell("inv", 3.3, 0.020, 0.006, 0.0010),
    "dff": Cell("dff", 22.0, 0.120, 0.080, 0.0090),
}

#: SRAM macro density (bits are cheaper than flops but are reported
#: separately, mirroring the paper's exclusion of memory from synthesis).
SRAM_UM2_PER_BIT = 1.2

#: Default switching-activity factor for dynamic power estimation.
ACTIVITY = 0.15

#: Assumed clock frequency for power estimation (MHz).
CLOCK_MHZ = 200.0


@dataclass
class GateCounts:
    """Primitive-cell census of a synthesized design."""

    and2: int = 0
    or2: int = 0
    xor2: int = 0
    inv: int = 0
    dff: int = 0
    sram_bits: int = 0

    def add(self, other: GateCounts, times: int = 1) -> None:
        self.and2 += other.and2 * times
        self.or2 += other.or2 * times
        self.xor2 += other.xor2 * times
        self.inv += other.inv * times
        self.dff += other.dff * times
        self.sram_bits += other.sram_bits * times

    def total_gates(self) -> int:
        return self.and2 + self.or2 + self.xor2 + self.inv + self.dff

    def area_um2(self) -> float:
        return (
            self.and2 * CELLS["and2"].area
            + self.or2 * CELLS["or2"].area
            + self.xor2 * CELLS["xor2"].area
            + self.inv * CELLS["inv"].area
            + self.dff * CELLS["dff"].area
        )

    def sram_area_um2(self) -> float:
        return self.sram_bits * SRAM_UM2_PER_BIT

    def leakage_uw(self) -> float:
        return (
            self.and2 * CELLS["and2"].leakage
            + self.or2 * CELLS["or2"].leakage
            + self.xor2 * CELLS["xor2"].leakage
            + self.inv * CELLS["inv"].leakage
            + self.dff * CELLS["dff"].leakage
        )

    def dynamic_uw(self, activity: float = ACTIVITY, clock_mhz: float = CLOCK_MHZ) -> float:
        # uW = pJ * MHz * activity
        energy = (
            self.and2 * CELLS["and2"].energy
            + self.or2 * CELLS["or2"].energy
            + self.xor2 * CELLS["xor2"].energy
            + self.inv * CELLS["inv"].energy
            + self.dff * CELLS["dff"].energy
        )
        return energy * clock_mhz * activity

    def power_uw(self) -> float:
        return self.leakage_uw() + self.dynamic_uw()


#: Average combinational level delay used by the depth-based critical
#: path estimate (ns); a blend of the cell delays plus wire RC.
LEVEL_DELAY_NS = 0.048

#: Fixed sequential overhead per cycle: clock->Q plus setup (ns).
SEQUENTIAL_OVERHEAD_NS = 0.30


def critical_path_ns(levels: int) -> float:
    """Clock-period estimate from a logic-level count."""
    return SEQUENTIAL_OVERHEAD_NS + levels * LEVEL_DELAY_NS

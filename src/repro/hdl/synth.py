"""Structural synthesis: lower an HDL module to primitive-gate counts.

This is the repository's stand-in for Synopsys Design Compiler (see
DESIGN.md section 3).  Every IR operator is decomposed into the five
primitive cells of :mod:`repro.hdl.techlib` using textbook structures
(carry-lookahead adders, array multipliers, restoring dividers, barrel
shifters, mux trees).  The walk produces:

* a primitive-cell census (:class:`~repro.hdl.techlib.GateCounts`),
* a critical-path estimate in logic levels (longest register-to-register
  or register-to-output combinational path),
* area / delay / power figures via the 90 nm cost model.

Large arrays synthesize as SRAM macros whose bits are reported
separately -- the paper likewise excluded main memory from synthesis and
reported memory overheads analytically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hdl import techlib
from repro.hdl.ir import ArrayDef, HConst, HExpr, HOp, HRef, Module
from repro.hdl.techlib import GateCounts


def _log2(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n))))


def _mux2(width: int, count: int = 1) -> GateCounts:
    return GateCounts(and2=2 * width * count, or2=width * count, inv=count)


def _adder(width: int) -> tuple[GateCounts, int]:
    g = GateCounts(xor2=2 * width, and2=width, or2=width)
    return g, 2 * _log2(width) + 3


def _or_tree(width: int) -> tuple[GateCounts, int]:
    return GateCounts(or2=max(0, width - 1)), _log2(width)


def op_cost(e: HOp) -> tuple[GateCounts, int]:
    """Gate census and level count of one operator instance."""
    w = e.width
    aw = [a.width for a in e.args]
    op = e.op
    if op in ("add", "sub"):
        g, lv = _adder(w)
        if op == "sub":
            g.inv += w
        return g, lv
    if op == "neg":
        g, lv = _adder(w)
        g.inv += w
        return g, lv
    if op == "mul":
        w1, w2 = aw
        g = GateCounts(and2=w1 * w2, xor2=2 * w1 * w2, or2=w1 * w2)
        return g, 3 * _log2(w1 + w2) + 6
    if op in ("div", "mod"):
        width = aw[0]
        per_stage = GateCounts(
            xor2=2 * width, and2=3 * width, or2=2 * width, inv=width
        )
        g = GateCounts()
        g.add(per_stage, width)
        return g, width * (_log2(width) + 2)
    if op in ("and", "or", "xor"):
        key = {"and": "and2", "or": "or2", "xor": "xor2"}[op]
        g = GateCounts(**{key: w})
        return g, 1
    if op == "not":
        return GateCounts(inv=w), 1
    if op in ("shl", "shr", "asr"):
        stages = _log2(aw[0])
        g = _mux2(aw[0], stages)
        return g, 2 * stages
    if op in ("eq", "ne"):
        cmp_w = max(aw)
        g, lv = _or_tree(cmp_w)
        g.xor2 += cmp_w
        g.inv += 1 if op == "eq" else 0
        return g, lv + 1
    if op in ("lt", "le", "gt", "ge", "lts", "les", "gts", "ges"):
        g, lv = _adder(max(aw))
        g.inv += max(aw)
        return g, lv + 1
    if op in ("land", "lor", "lnot"):
        g = GateCounts()
        lv = 0
        for width in aw:
            tree, tree_lv = _or_tree(width)
            g.add(tree)
            lv = max(lv, tree_lv)
        if op == "lnot":
            g.inv += 1
        else:
            g.and2 += 1
        return g, lv + 1
    if op == "mux":
        return _mux2(w), 2
    if op in ("cat", "slice", "zext", "sext"):
        return GateCounts(), 0  # wiring only
    if op == "read":
        return GateCounts(), 0  # accounted at the array level
    raise ValueError(f"no cost model for op {e.op!r}")


def array_cost(arr: ArrayDef, read_ports: int, write_ports: int) -> tuple[GateCounts, int]:
    """Storage plus port logic for a register array.

    Small arrays become flop banks with mux-tree read ports and
    decoder+enable write ports; large arrays become SRAM macros with a
    fixed small port overhead.
    """
    g = GateCounts()
    if arr.is_sram:
        g.sram_bits += arr.size * arr.width
        # sense amps / decoders, charged per port
        g.add(GateCounts(and2=64, or2=32, inv=32), read_ports + write_ports)
        return g, 6
    g.dff += arr.size * arr.width
    # read port: (size-1) 2:1 muxes per bit
    g.add(_mux2(arr.width, max(0, arr.size - 1)), read_ports)
    # write port: address decoder + per-word recirculating mux
    decoder = GateCounts(and2=arr.size * _log2(arr.size))
    per_word = _mux2(arr.width, arr.size)
    for _ in range(write_ports):
        g.add(decoder)
        g.add(per_word)
    return g, 2 * _log2(arr.size) + 2


@dataclass
class CostReport:
    """Synthesis result for one module."""

    name: str
    counts: GateCounts
    levels: int
    signal_levels: dict[str, int] = field(default_factory=dict)

    @property
    def area_um2(self) -> float:
        return self.counts.area_um2()

    @property
    def sram_area_um2(self) -> float:
        return self.counts.sram_area_um2()

    @property
    def delay_ns(self) -> float:
        return techlib.critical_path_ns(self.levels)

    @property
    def power_uw(self) -> float:
        return self.counts.power_uw()

    def summary(self) -> dict[str, float]:
        return {
            "gates": float(self.counts.total_gates()),
            "area_um2": self.area_um2,
            "delay_ns": self.delay_ns,
            "power_uw": self.power_uw,
            "sram_bits": float(self.counts.sram_bits),
        }


def synthesize(module: Module, optimize: bool = True) -> CostReport:
    """Lower *module* to gates and estimate area / delay / power.

    The module first goes through the standard optimization pipeline
    (like a real synthesis tool's logic optimization step); pass
    ``optimize=False`` to census the raw compiler output instead.
    """
    if optimize:
        from repro.hdl.passes import optimize as _optimize

        module = _optimize(module)
    module.validate()
    counts = GateCounts()
    counts.dff += sum(r.width for r in module.regs.values())

    levels: dict[str, int] = {}
    for name in module.inputs:
        levels[name] = 0
    for name in module.regs:
        levels[name] = 0

    array_read_ports: dict[str, int] = {a: 0 for a in module.arrays}
    array_read_levels: dict[str, int] = {}
    for name, arr in module.arrays.items():
        _, lv = array_cost(arr, 1, 1)
        array_read_levels[name] = lv

    def depth(e: HExpr) -> int:
        if isinstance(e, HConst):
            return 0
        if isinstance(e, HRef):
            return levels[e.name]
        assert isinstance(e, HOp)
        g, lv = op_cost(e)
        counts.add(g)
        base = max((depth(a) for a in e.args), default=0)
        if e.op == "read":
            array_read_ports[e.array] += 1
            return base + array_read_levels[e.array]
        return base + lv

    critical = 0
    for name, expr in module.comb:
        levels[name] = depth(expr)
        critical = max(critical, levels[name])

    # Array ports.
    write_ports: dict[str, int] = {a: 0 for a in module.arrays}
    for wr in module.array_writes:
        write_ports[wr.array] += 1
        critical = max(critical, depth(wr.addr), depth(wr.data), depth(wr.enable))
    for name, arr in module.arrays.items():
        g, _ = array_cost(arr, max(1, array_read_ports[name]), max(1, write_ports[name]))
        counts.add(g)

    for _reg, sig in module.reg_next.items():
        critical = max(critical, levels[sig])
    for _port, sig in module.outputs.items():
        critical = max(critical, levels[sig])

    return CostReport(module.name, counts, critical, levels)

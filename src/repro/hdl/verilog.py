"""Synthesizable Verilog emission from the HDL IR.

Mirrors the paper's Figure 3: the Sapper compiler's output is plain
Verilog with the tracking/checking logic materialized as assigns.  The
emitted text targets the same subset Design Compiler accepts; division
is guarded so simulation matches the IR's division-by-zero convention.
"""

from __future__ import annotations

from repro.hdl.ir import HConst, HExpr, HOp, HRef, Module

_INFIX = {
    "add": "+", "sub": "-", "mul": "*",
    "and": "&", "or": "|", "xor": "^",
    "shl": "<<", "shr": ">>",
    "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
    "land": "&&", "lor": "||",
}


def _emit(e: HExpr) -> str:
    if isinstance(e, HConst):
        return f"{e.width}'d{e.value}"
    if isinstance(e, HRef):
        return e.name
    assert isinstance(e, HOp)
    a = [_emit(c) for c in e.args]
    op = e.op
    if op in _INFIX:
        return f"({a[0]} {_INFIX[op]} {a[1]})"
    if op == "div":
        return f"(({a[1]} == 0) ? {{{e.width}{{1'b1}}}} : ({a[0]} / {a[1]}))"
    if op == "mod":
        return f"(({a[1]} == 0) ? {a[0]} : ({a[0]} % {a[1]}))"
    if op == "asr":
        return f"($signed({a[0]}) >>> {a[1]})"
    if op in ("lts", "les", "gts", "ges"):
        sym = {"lts": "<", "les": "<=", "gts": ">", "ges": ">="}[op]
        return f"($signed({a[0]}) {sym} $signed({a[1]}))"
    if op == "not":
        return f"(~{a[0]})"
    if op == "lnot":
        return f"(!{a[0]})"
    if op == "neg":
        return f"(-{a[0]})"
    if op == "mux":
        return f"({a[0]} ? {a[1]} : {a[2]})"
    if op == "cat":
        return "{" + ", ".join(a) + "}"
    if op == "slice":
        mask = (1 << e.width) - 1
        return f"(({a[0]} >> {e.lo}) & {e.width}'h{mask:x})"
    if op == "zext":
        # explicit zero-pad: a bare operand would be self-determined at
        # its own (narrower) width inside concatenations
        pad = e.width - e.args[0].width
        if pad <= 0:
            return a[0]
        return f"{{{{{pad}{{1'b0}}}}, {a[0]}}}"
    if op == "sext":
        return f"$signed({a[0]})"
    if op == "read":
        return f"{e.array}[{a[0]}]"
    raise ValueError(f"cannot emit Verilog for op {op!r}")


def emit_verilog(module: Module, optimize: bool = True) -> str:
    """Emit *module* as a single synthesizable Verilog module.

    The standard optimization pipeline runs first so the emitted text
    matches what the simulator executes and the synthesizer counts;
    pass ``optimize=False`` for the raw compiler output.
    """
    if optimize:
        from repro.hdl.passes import optimize as _optimize

        module = _optimize(module)
    lines: list[str] = []
    ports = ["clk"] + list(module.inputs) + list(module.outputs)
    lines.append(f"module {module.name}({', '.join(ports)});")
    lines.append("  input clk;")
    for name, width in module.inputs.items():
        vec = f"[{width - 1}:0] " if width > 1 else ""
        lines.append(f"  input {vec}{name};")
    for port, sig in module.outputs.items():
        width = module.width_of(sig)
        vec = f"[{width - 1}:0] " if width > 1 else ""
        lines.append(f"  output {vec}{port};")
    for reg in module.regs.values():
        vec = f"[{reg.width - 1}:0] " if reg.width > 1 else ""
        lines.append(f"  reg {vec}{reg.name};")
    for arr in module.arrays.values():
        vec = f"[{arr.width - 1}:0] " if arr.width > 1 else ""
        lines.append(f"  reg {vec}{arr.name} [0:{arr.size - 1}];")
    lines.append("")
    for name, expr in module.comb:
        width = module.width_of(name)
        vec = f"[{width - 1}:0] " if width > 1 else ""
        lines.append(f"  wire {vec}{name} = {_emit(expr)};")
    lines.append("")
    lines.append("  always @(posedge clk) begin")
    for reg, sig in module.reg_next.items():
        lines.append(f"    {reg} <= {sig};")
    for wr in module.array_writes:
        lines.append(
            f"    if ({_emit(wr.enable)}) {wr.array}[{_emit(wr.addr)}] <= {_emit(wr.data)};"
        )
    lines.append("  end")
    lines.append("")
    for port, sig in module.outputs.items():
        lines.append(f"  assign {port} = {sig};")
    lines.append("endmodule")
    return "\n".join(lines)

"""Pass framework for the HDL optimization pipeline.

A :class:`Pass` rewrites one :class:`~repro.hdl.ir.Module` into an
equivalent one.  Passes never touch architectural state -- inputs,
registers, arrays, output ports, and the register/array write semantics
are all preserved bit-for-bit -- so a pass is free to rewrite only the
SSA combinational block (and to drop sequential write ports it can prove
never fire).  The :class:`PassManager` runs a pipeline to a fixpoint and
records per-pass statistics.

Equivalence contract (relied on by ``repro.sapper.crossval`` and the
GLIFT shadow property tests): for every input trace, an optimized module
produces the same register contents, array contents, and output-port
values at every cycle boundary as the original.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.hdl.ir import ArrayWrite, HExpr, Module


class WeakIdMemo:
    """A memo keyed by object identity.

    Mutable IR objects are unhashable, so caches key on ``id()``; a
    weakref per entry guards against a recycled id aliasing a dead key,
    and the reaper binds its dict/key as defaults so it stays safe when
    module globals are cleared at interpreter shutdown.
    """

    def __init__(self) -> None:
        self._store: dict = {}

    def get(self, obj: object):
        entry = self._store.get(id(obj))
        if entry is not None and entry[0]() is obj:
            return entry[1]
        return None

    def set(self, obj: object, value) -> None:
        key = id(obj)
        reaper = lambda _, d=self._store, k=key: d.pop(k, None)  # noqa: E731
        self._store[key] = (weakref.ref(obj, reaper), value)


class Pass:
    """Base class: a semantics-preserving module rewrite."""

    name = "pass"

    def run(self, module: Module) -> tuple[Module, bool]:
        """Return ``(new_module, changed)``.

        When ``changed`` is False the returned module may be the input
        object itself.
        """
        raise NotImplementedError


def rebuild(
    module: Module,
    comb: list[tuple[str, HExpr]],
    outputs: dict[str, str] | None = None,
    reg_next: dict[str, str] | None = None,
    array_writes: list[ArrayWrite] | None = None,
) -> Module:
    """Construct a new module sharing *module*'s architectural shell.

    Inputs, registers, and arrays are copied verbatim; the combinational
    block (and optionally outputs / reg-next wiring / write ports) is
    replaced.  Signal widths are recomputed from the new block.
    """
    out = Module(module.name)
    out.inputs = dict(module.inputs)
    out.regs = dict(module.regs)
    out.arrays = dict(module.arrays)
    out.comb = comb
    out.reg_next = dict(reg_next if reg_next is not None else module.reg_next)
    out.outputs = dict(outputs if outputs is not None else module.outputs)
    out.array_writes = list(
        array_writes if array_writes is not None else module.array_writes
    )
    out._counter = module._counter
    widths = {name: w for name, w in module.inputs.items()}
    widths.update({name: r.width for name, r in module.regs.items()})
    for name, expr in comb:
        widths[name] = expr.width
    out._widths = widths
    return out


@dataclass
class PassStat:
    """One pipeline step's effect, for reporting and benchmarks."""

    name: str
    signals_before: int
    signals_after: int
    seconds: float
    changed: bool


@dataclass
class OptResult:
    """An optimized module plus the pipeline trace that produced it."""

    module: Module
    stats: list[PassStat] = field(default_factory=list)

    @property
    def signals_removed(self) -> int:
        if not self.stats:
            return 0
        return self.stats[0].signals_before - self.stats[-1].signals_after


class PassManager:
    """Runs an ordered pass pipeline, iterating until nothing changes.

    Each iteration applies every pass once, in order; iteration stops as
    soon as a full sweep makes no change (or after *max_iters* sweeps --
    the passes all shrink or preserve the module, so this terminates
    quickly in practice).
    """

    def __init__(self, passes: Sequence[Pass], max_iters: int = 4):
        self.passes = list(passes)
        self.max_iters = max_iters

    def run(self, module: Module) -> OptResult:
        result = OptResult(module)
        for _ in range(self.max_iters):
            sweep_changed = False
            for p in self.passes:
                before = len(module.comb)
                t0 = time.perf_counter()
                module, changed = p.run(module)
                result.stats.append(
                    PassStat(
                        name=p.name,
                        signals_before=before,
                        signals_after=len(module.comb),
                        seconds=time.perf_counter() - t0,
                        changed=changed,
                    )
                )
                sweep_changed = sweep_changed or changed
            if not sweep_changed:
                break
        module.validate()
        result.module = module
        return result

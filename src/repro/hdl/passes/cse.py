"""Common-subexpression elimination.

The Sapper compiler wires most intermediate values to named SSA signals
and re-emits structurally identical trees for every tag join, Fcd
upgrade, and forwarding comparison.  This pass value-numbers the block
in one forward sweep: every subtree equal to the defining expression of
an earlier signal is replaced by a reference to that signal, and
assignments whose whole right-hand side collapses to a reference become
pure aliases (which constant propagation then forwards and dead-signal
elimination removes).

Expressions are compared by structural equality (the IR nodes are
frozen dataclasses), so two joins of the same tags through the same
wires dedupe no matter where the compiler emitted them.
"""

from __future__ import annotations

from repro.hdl.ir import ArrayWrite, HConst, HExpr, HOp, HRef, Module
from repro.hdl.passes.base import Pass, rebuild


class CommonSubexpr(Pass):
    """Value numbering over the SSA combinational block."""

    name = "cse"

    def run(self, module: Module) -> tuple[Module, bool]:
        table: dict[HExpr, HRef] = {}
        alias: dict[str, HRef] = {}
        changed = False

        def rewrite(e: HExpr) -> HExpr:
            if isinstance(e, HConst):
                return e
            if isinstance(e, HRef):
                return alias.get(e.name, e)
            assert isinstance(e, HOp)
            args = tuple(rewrite(a) for a in e.args)
            node = e if all(a is b for a, b in zip(args, e.args)) else HOp(
                e.op, args, e.width, hi=e.hi, lo=e.lo, array=e.array
            )
            hit = table.get(node)
            if hit is not None:
                return hit
            return node

        new_comb: list[tuple[str, HExpr]] = []
        for name, expr in module.comb:
            new = rewrite(expr)
            if new is not expr:
                changed = True
            new_comb.append((name, new))
            if isinstance(new, HRef):
                alias[name] = new
            elif isinstance(new, HOp):
                table.setdefault(new, HRef(name, new.width))

        new_writes = []
        for wr in module.array_writes:
            addr, data, enable = rewrite(wr.addr), rewrite(wr.data), rewrite(wr.enable)
            if addr is not wr.addr or data is not wr.data or enable is not wr.enable:
                changed = True
                wr = ArrayWrite(wr.array, addr, data, enable)
            new_writes.append(wr)

        if not changed:
            return module, False
        return rebuild(module, new_comb, array_writes=new_writes), True

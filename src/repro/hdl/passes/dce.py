"""Dead-signal elimination.

Computes the set of signals transitively feeding a register next-value,
an array write port, or an output port, and drops every other
combinational assignment.  Along the way it

* retargets outputs and register next-values through pure alias chains
  (``x := y``) so the aliases themselves can die, and
* removes array write ports whose enable is a known constant zero
  (produced by constant-folding the guards of ``secure=False``-stripped
  checks and statically-failed enforcement).

Registers, arrays, inputs, and output ports are architectural state and
are never removed -- cross-validation compares them directly.
"""

from __future__ import annotations

from repro.hdl.ir import HConst, HExpr, HRef, Module
from repro.hdl.passes.base import Pass, rebuild


def _refs(e: HExpr):
    for node in e.walk():
        if isinstance(node, HRef):
            yield node.name


class DeadSignalElim(Pass):
    """Drop combinational signals no architectural sink depends on."""

    name = "dce"

    def run(self, module: Module) -> tuple[Module, bool]:
        defs = dict(module.comb)

        def resolve(name: str) -> str:
            # follow x := y alias chains to the ultimate source signal
            while True:
                d = defs.get(name)
                if isinstance(d, HRef):
                    name = d.name
                else:
                    return name

        outputs = {port: resolve(sig) for port, sig in module.outputs.items()}
        reg_next = {reg: resolve(sig) for reg, sig in module.reg_next.items()}
        writes = [
            wr
            for wr in module.array_writes
            if not (isinstance(wr.enable, HConst) and wr.enable.value == 0)
        ]

        live: set[str] = set()
        stack: list[str] = list(outputs.values()) + list(reg_next.values())
        for wr in writes:
            for expr in (wr.addr, wr.data, wr.enable):
                stack.extend(_refs(expr))
        while stack:
            name = stack.pop()
            if name in live:
                continue
            live.add(name)
            d = defs.get(name)
            if d is not None:
                stack.extend(_refs(d))

        new_comb = [(name, expr) for name, expr in module.comb if name in live]
        changed = (
            len(new_comb) != len(module.comb)
            or outputs != module.outputs
            or reg_next != module.reg_next
            or len(writes) != len(module.array_writes)
        )
        if not changed:
            return module, False
        return rebuild(
            module, new_comb, outputs=outputs, reg_next=reg_next, array_writes=writes
        ), True

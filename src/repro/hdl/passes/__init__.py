"""Mid-level optimization passes over the HDL IR.

One optimized module feeds all three backends -- the cycle-accurate
simulator, the gate-count synthesizer, and the Verilog emitter -- so
the redundant tag-join and mux logic the Sapper compiler emits is paid
for once, here, instead of three times downstream.

* :class:`ConstantFold` -- fold constant operators, propagate constants
  and aliases (bit-exact with the simulator's semantics);
* :class:`SimplifyLogic` -- mux/boolean/algebraic identities
  (``mux(c, x, x)``, ``x & 0``, constant guards, ...);
* :class:`CommonSubexpr` -- value numbering of duplicated tag joins,
  Fcd upgrades, and forwarding comparisons;
* :class:`DeadSignalElim` -- drop signals that feed no register
  next-value, array port, or output; prune never-firing write ports.

:func:`optimize` runs the standard pipeline with a per-module memo so
every backend sees the same optimized object without re-running passes.
"""

from __future__ import annotations

from repro.hdl.ir import Module
from repro.hdl.passes.base import (
    OptResult,
    Pass,
    PassManager,
    PassStat,
    WeakIdMemo,
    rebuild,
)
from repro.hdl.passes.constfold import ConstantFold, eval_op
from repro.hdl.passes.cse import CommonSubexpr
from repro.hdl.passes.dce import DeadSignalElim
from repro.hdl.passes.narrow import NarrowWidths
from repro.hdl.passes.simplify import SimplifyLogic

#: Highest supported optimization level.
MAX_OPT_LEVEL = 2


def default_passes(level: int = MAX_OPT_LEVEL) -> list[Pass]:
    """The standard pipeline for *level* (0 = none, 1 = fold+dce, 2 = full)."""
    if level <= 0:
        return []
    if level == 1:
        return [ConstantFold(), DeadSignalElim()]
    return [ConstantFold(), NarrowWidths(), SimplifyLogic(), CommonSubexpr(),
            DeadSignalElim()]


# raw module -> {level: optimized module}
_MEMO = WeakIdMemo()


def optimize(module: Module, level: int = MAX_OPT_LEVEL) -> Module:
    """Run the standard pass pipeline on *module* (memoized).

    Already-optimized modules pass through untouched; the same raw
    module object always yields the same optimized object, so the
    simulator, synthesizer, and Verilog emitter all agree on what they
    consume.
    """
    if level <= 0 or getattr(module, "_opt_level", None) is not None:
        return module
    levels = _MEMO.get(module)
    if levels is None:
        levels = {}
        _MEMO.set(module, levels)
    cached = levels.get(level)
    if cached is not None:
        return cached

    result = PassManager(default_passes(level)).run(module)
    optimized = result.module
    optimized._opt_level = level  # type: ignore[attr-defined]
    optimized._opt_stats = result.stats  # type: ignore[attr-defined]
    levels[level] = optimized
    return optimized


def run_pipeline(module: Module, level: int = MAX_OPT_LEVEL) -> OptResult:
    """Run the pipeline without memoization, returning per-pass stats."""
    return PassManager(default_passes(level)).run(module)


__all__ = [
    "CommonSubexpr",
    "ConstantFold",
    "DeadSignalElim",
    "MAX_OPT_LEVEL",
    "NarrowWidths",
    "OptResult",
    "Pass",
    "PassManager",
    "PassStat",
    "SimplifyLogic",
    "default_passes",
    "eval_op",
    "optimize",
    "rebuild",
    "run_pipeline",
]

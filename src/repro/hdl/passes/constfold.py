"""Constant folding and propagation.

Evaluates operators whose inputs are all constants, substitutes signals
that folded to constants into their uses, and forwards pure aliases
(``x := y``).  The evaluator mirrors :mod:`repro.hdl.sim`'s generated
code *exactly* -- including the division-by-zero convention, the shift
out-of-range behaviour, and signed reinterpretation -- so folding can
never diverge from what the simulator would have computed.  A node is
only replaced when the folded value fits the node's declared width;
anything else is left alone.
"""

from __future__ import annotations


from repro.hdl.ir import ArrayWrite, HConst, HExpr, HOp, HRef, Module
from repro.hdl.passes.base import Pass, rebuild


def _s(v: int, w: int) -> int:
    """Signed reinterpretation of a *w*-bit value (sim's helper)."""
    return v - (1 << w) if (v >> (w - 1)) & 1 else v


def eval_op(e: HOp, vals: list[int]) -> int | None:
    """Evaluate one operator on constant inputs, or None if not foldable.

    Mirrors the expressions emitted by :class:`repro.hdl.sim._CodeGen`
    one for one.  Returns None for ``read`` (array contents unknown) and
    for any result that does not fit ``e.width`` (the simulator would
    carry the oversized value; a constant cannot).
    """
    m = (1 << e.width) - 1
    aw = [a.width for a in e.args]
    op = e.op
    a = vals
    if op == "add":
        r = (a[0] + a[1]) & m
    elif op == "sub":
        r = (a[0] - a[1]) & m
    elif op == "mul":
        r = (a[0] * a[1]) & m
    elif op == "div":
        r = (a[0] // a[1]) & m if a[1] else m
    elif op == "mod":
        r = (a[0] % a[1]) if a[1] else a[0]
    elif op == "and":
        r = a[0] & a[1]
    elif op == "or":
        r = a[0] | a[1]
    elif op == "xor":
        r = a[0] ^ a[1]
    elif op == "shl":
        r = (a[0] << a[1]) & m if a[1] < e.width else 0
    elif op == "shr":
        r = a[0] >> a[1] if a[1] < aw[0] else 0
    elif op == "asr":
        r = (_s(a[0], aw[0]) >> (a[1] if a[1] < aw[0] else aw[0] - 1)) & m
    elif op == "eq":
        r = 1 if a[0] == a[1] else 0
    elif op == "ne":
        r = 1 if a[0] != a[1] else 0
    elif op == "lt":
        r = 1 if a[0] < a[1] else 0
    elif op == "le":
        r = 1 if a[0] <= a[1] else 0
    elif op == "gt":
        r = 1 if a[0] > a[1] else 0
    elif op == "ge":
        r = 1 if a[0] >= a[1] else 0
    elif op == "lts":
        r = 1 if _s(a[0], aw[0]) < _s(a[1], aw[1]) else 0
    elif op == "les":
        r = 1 if _s(a[0], aw[0]) <= _s(a[1], aw[1]) else 0
    elif op == "gts":
        r = 1 if _s(a[0], aw[0]) > _s(a[1], aw[1]) else 0
    elif op == "ges":
        r = 1 if _s(a[0], aw[0]) >= _s(a[1], aw[1]) else 0
    elif op == "land":
        r = 1 if a[0] and a[1] else 0
    elif op == "lor":
        r = 1 if a[0] or a[1] else 0
    elif op == "lnot":
        r = 0 if a[0] else 1
    elif op == "not":
        r = (~a[0]) & m
    elif op == "neg":
        r = (-a[0]) & m
    elif op == "mux":
        r = a[1] if a[0] else a[2]
    elif op == "cat":
        r = 0
        shift = 0
        for child, v in zip(reversed(e.args), reversed(a)):
            r |= v << shift
            shift += child.width
    elif op == "slice":
        r = (a[0] >> e.lo) & m
    elif op == "zext":
        r = a[0]
    elif op == "sext":
        r = _s(a[0], aw[0]) & m
    else:
        return None  # read, or future ops: never folded
    if r != r & m:
        return None  # would not fit the declared width; sim would carry it
    return r


class ConstantFold(Pass):
    """Fold constant operators; propagate constants and pure aliases."""

    name = "constfold"

    def run(self, module: Module) -> tuple[Module, bool]:
        # name -> replacement (HConst for folded signals, HRef for aliases)
        env: dict[str, HExpr] = {}
        changed = False
        new_comb: list[tuple[str, HExpr]] = []

        def rewrite(e: HExpr) -> HExpr:
            if isinstance(e, HConst):
                return e
            if isinstance(e, HRef):
                return env.get(e.name, e)
            assert isinstance(e, HOp)
            args = tuple(rewrite(a) for a in e.args)
            node = e if all(a is b for a, b in zip(args, e.args)) else HOp(
                e.op, args, e.width, hi=e.hi, lo=e.lo, array=e.array
            )
            if node.op == "mux" and isinstance(args[0], HConst):
                pick = args[1] if args[0].value else args[2]
                if pick.width == node.width:
                    return pick
            if all(isinstance(a, HConst) for a in args) and node.op != "read":
                val = eval_op(node, [a.value for a in args])
                if val is not None:
                    return HConst(val, node.width)
            return node

        for name, expr in module.comb:
            new = rewrite(expr)
            if new is not expr:
                changed = True
            new_comb.append((name, new))
            if isinstance(new, HConst):
                env[name] = new
            elif isinstance(new, HRef):
                env[name] = new

        new_writes = []
        for wr in module.array_writes:
            addr, data, enable = rewrite(wr.addr), rewrite(wr.data), rewrite(wr.enable)
            if addr is not wr.addr or data is not wr.data or enable is not wr.enable:
                changed = True
                wr = ArrayWrite(wr.array, addr, data, enable)
            new_writes.append(wr)

        if not changed:
            return module, False
        return rebuild(module, new_comb, array_writes=new_writes), True

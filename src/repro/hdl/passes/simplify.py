"""Mux and boolean simplification.

Local algebraic rewrites on the SSA block: identity/absorbing constants
(``x & 0``, ``x | 0``, ``x + 0``, shifts by zero), idempotence
(``x & x``, ``mux(c, x, x)``), trivially-decided comparisons
(``x == x``), redundant width adapters (``zext``/``slice`` that change
nothing), 1-bit boolean algebra (``land``/``lor``/``lnot`` chains,
``c ? 1 : 0``), and same-condition mux nesting -- the shapes the Sapper
compiler's per-path tag merging and ``secure=False`` stripping produce
in bulk.

Every rewrite preserves the node's declared width; rules that would
change observable out-of-width behaviour (the simulator does not mask
``and``/``or``/``xor``) only fire when argument widths already match.
"""

from __future__ import annotations

from repro.hdl.ir import ArrayWrite, HConst, HExpr, HOp, HRef, Module
from repro.hdl.passes.base import Pass, rebuild

_ALWAYS_EQ = {"eq": 1, "ne": 0, "lt": 0, "le": 1, "gt": 0, "ge": 1,
              "lts": 0, "les": 1, "gts": 0, "ges": 1}


class SimplifyLogic(Pass):
    """Boolean/mux/algebraic identities over the combinational block."""

    name = "simplify"

    def run(self, module: Module) -> tuple[Module, bool]:
        defs: dict[str, HExpr] = {}
        changed = False

        def peek(e: HExpr) -> HExpr:
            """Look through a wire reference at its defining expression
            (read-only: used for pattern matching, never substituted
            wholesale)."""
            if isinstance(e, HRef):
                return defs.get(e.name, e)
            return e

        def simplify(e: HOp) -> HExpr:
            op, args, w = e.op, e.args, e.width
            aw = [a.width for a in args]

            if op == "mux":
                c, t, f = args
                if t == f and t.width == w:
                    return t
                pc = peek(c)
                # c ? 1 : 0  ->  c   and   c ? 0 : 1  ->  !c   (1-bit)
                if (
                    w == 1 and c.width == 1
                    and isinstance(t, HConst) and isinstance(f, HConst)
                ):
                    if (t.value, f.value) == (1, 0):
                        return c
                    if (t.value, f.value) == (0, 1):
                        return HOp("lnot", (c,), 1)
                # same-condition nesting: collapse the redundant arm
                pt, pf = peek(t), peek(f)
                if (
                    isinstance(pf, HOp)
                    and pf.op == "mux"
                    and pf.args[0] == c
                    and pf.args[2].width == w
                ):
                    return HOp("mux", (c, t, pf.args[2]), w)
                if (
                    isinstance(pt, HOp)
                    and pt.op == "mux"
                    and pt.args[0] == c
                    and pt.args[1].width == w
                ):
                    return HOp("mux", (c, pt.args[1], f), w)
                if isinstance(pc, HOp) and pc.op == "lnot" and pc.args[0].width == 1:
                    return HOp("mux", (pc.args[0], f, t), w)
                return e

            if op in ("and", "or", "xor") and aw[0] == w and aw[1] == w:
                a, b = args
                if a == b:
                    return a if op in ("and", "or") else HConst(0, w)
                for x, y in ((a, b), (b, a)):
                    if isinstance(y, HConst):
                        if y.value == 0:
                            return HConst(0, w) if op == "and" else x
                        if y.value == (1 << w) - 1:
                            return x if op == "and" else (
                                HConst(y.value, w) if op == "or" else HOp("not", (x,), w)
                            )
                return e

            if op in ("add", "sub") and aw[0] == w and aw[1] == w:
                if isinstance(args[1], HConst) and args[1].value == 0:
                    return args[0]
                if op == "add" and isinstance(args[0], HConst) and args[0].value == 0:
                    return args[1]
                return e

            if op == "mul" and aw[0] == w and aw[1] == w:
                for x, y in ((args[0], args[1]), (args[1], args[0])):
                    if isinstance(y, HConst):
                        if y.value == 1:
                            return x
                        if y.value == 0:
                            return HConst(0, w)
                return e

            if op in ("shl", "shr", "asr") and aw[0] == w:
                if isinstance(args[1], HConst) and args[1].value == 0:
                    return args[0]
                return e

            if op in _ALWAYS_EQ and args[0] == args[1] and w == 1:
                return HConst(_ALWAYS_EQ[op], 1)

            if op in ("eq", "ne") and aw[0] == 1 and aw[1] == 1:
                # 1-bit equality is the wire itself or its negation
                for x, y in ((args[0], args[1]), (args[1], args[0])):
                    if isinstance(y, HConst):
                        want = y.value if op == "eq" else 1 - y.value
                        return x if want == 1 else HOp("lnot", (x,), 1)
                return e

            if op in ("land", "lor") and aw[0] == 1 and aw[1] == 1:
                a, b = args
                if a == b:
                    return a
                for x, y in ((a, b), (b, a)):
                    if isinstance(y, HConst):
                        if op == "land":
                            return x if y.value else HConst(0, 1)
                        return HConst(1, 1) if y.value else x
                return e

            if op == "lnot" and aw[0] == 1:
                inner = peek(args[0])
                if isinstance(inner, HOp) and inner.op == "lnot" and inner.args[0].width == 1:
                    return inner.args[0]
                return e

            if op == "not":
                inner = peek(args[0])
                if isinstance(inner, HOp) and inner.op == "not" and inner.args[0].width == w:
                    return inner.args[0]
                return e

            if op == "zext" and aw[0] == w:
                return args[0]

            if op == "slice":
                if e.lo == 0 and aw[0] == w:
                    return args[0]
                inner = args[0]
                # slicing a zext back down to (or below) the payload width
                if (
                    isinstance(inner, HOp) and inner.op == "zext"
                    and e.lo == 0 and inner.args[0].width == w
                ):
                    return inner.args[0]
                return e

            if op == "cat" and len(args) == 1 and aw[0] == w:
                return args[0]

            return e

        def rewrite(e: HExpr) -> HExpr:
            if not isinstance(e, HOp):
                return e
            args = tuple(rewrite(a) for a in e.args)
            node = e if all(a is b for a, b in zip(args, e.args)) else HOp(
                e.op, args, e.width, hi=e.hi, lo=e.lo, array=e.array
            )
            return simplify(node)

        new_comb: list[tuple[str, HExpr]] = []
        for name, expr in module.comb:
            new = rewrite(expr)
            if new is not expr:
                changed = True
            new_comb.append((name, new))
            defs[name] = new

        new_writes = []
        for wr in module.array_writes:
            addr, data, enable = rewrite(wr.addr), rewrite(wr.data), rewrite(wr.enable)
            if addr is not wr.addr or data is not wr.data or enable is not wr.enable:
                changed = True
                wr = ArrayWrite(wr.array, addr, data, enable)
            new_writes.append(wr)

        if not changed:
            return module, False
        return rebuild(module, new_comb, array_writes=new_writes), True

"""Width narrowing: shrink oversized operators into SWAR-eligible widths.

The Sapper compiler pads intermediate widths generously (concatenated
address arithmetic, multiply chains, merged tag words), which leaves
operators computing at 48, 64, or 128 bits whose *values* provably fit
far fewer.  Anything wider than :data:`~repro.hdl.swar.SWAR_MAX_WIDTH`
falls off the batched simulator's SWAR tier into per-lane loops, and
wide adders cost gates in synthesis.

This pass computes a sound significant-bit bound for every signal
(:func:`repro.hdl.ir.significant_bits`) and rewrites the width-monotone
operators -- ``add``, ``mul``, ``and``, ``or``, ``xor``, ``mux``,
``zext``, and constant ``shl`` -- to compute at the bounded width,
zero-extending the result back to the declared width::

    t := add[w=64](a, b)        -->   t := zext(add[w=20](a', b'), 64)

Because the bound guarantees no wraparound occurs at either width, the
rewritten expression is bit-identical (the equivalence contract of
:mod:`repro.hdl.passes.base`); operands wider than the new width are
wrapped in a ``slice`` that is value-preserving by the same bound (for
``and``, by absorption against the narrower operand).  Unsigned
comparison operands get the same treatment, which is what unblocks the
compare-heavy forwarding logic for the SWAR tier.
"""

from __future__ import annotations

from repro.hdl.ir import ArrayWrite, HConst, HExpr, HOp, HRef, Module, significant_bits
from repro.hdl.passes.base import Pass, rebuild
from repro.hdl.swar import SWAR_MAX_WIDTH

#: Operators whose value is preserved when computed at any width that
#: their significant-bit bound fits (no wraparound at either width).
_NARROWABLE = frozenset(["add", "mul", "and", "or", "xor", "mux", "shl", "zext"])

_UNSIGNED_CMPS = frozenset(["eq", "ne", "lt", "le", "gt", "ge"])

#: Operators whose scalar semantics read the *declared* width of an
#: argument (sign position, shift bounds, concatenation offsets, field
#: bounds) -- a shrunk signal stays wrapped in ``zext`` under these.
_WIDTH_SENSITIVE = frozenset(
    ["sext", "asr", "shr", "shl", "cat", "lts", "les", "gts", "ges"]
)


class NarrowWidths(Pass):
    """Shrink provably-narrow operators below the SWAR width boundary."""

    name = "narrow"

    def __init__(self, limit: int = SWAR_MAX_WIDTH):
        self.limit = limit

    def run(self, module: Module) -> tuple[Module, bool]:
        env: dict[str, int] = {}
        self._changed = False
        self._memo: dict[int, HExpr] = {}
        # bound memo keyed by node id: every rewritten node is pinned by
        # self._memo for the whole run, so ids cannot be recycled
        self._bounds: dict[int, int] = {}
        comb: list[tuple[str, HExpr]] = []
        for name, expr in module.comb:
            new = self._rewrite(expr, env)
            env[name] = significant_bits(new, env, self._bounds)
            comb.append((name, new))

        # Phase 2: signals now defined as ``zext(inner, W)`` with a
        # narrow inner value shed the wrapper and become narrow signals
        # outright; every consumer is adapted (bare reference where the
        # operator is value-based, re-wrapped in zext where its
        # semantics read the declared argument width).  Register
        # next-values and output ports keep their declared widths.
        protected = set(module.outputs.values()) | set(module.reg_next.values())
        shrunk: dict[str, int] = {}
        for name, e in comb:
            if (name not in protected and isinstance(e, HOp) and e.op == "zext"
                    and e.width > self.limit and e.args[0].width <= self.limit):
                shrunk[name] = e.args[0].width
        array_writes = None
        if shrunk:
            self._changed = True

            def adapt(e: HExpr, parent: str = "") -> HExpr:
                if isinstance(e, HRef) and e.name in shrunk:
                    ref = HRef(e.name, shrunk[e.name])
                    if not parent or parent in _WIDTH_SENSITIVE:
                        return HOp("zext", (ref,), e.width)
                    return ref
                if isinstance(e, HOp):
                    args = tuple(adapt(a, e.op) for a in e.args)
                    if any(a is not b for a, b in zip(args, e.args)):
                        return HOp(e.op, args, e.width, e.hi, e.lo, e.array)
                return e

            comb = [
                (name,
                 adapt(e.args[0]) if name in shrunk else adapt(e))
                for name, e in comb
            ]
            array_writes = [
                ArrayWrite(wr.array, adapt(wr.addr), adapt(wr.data), adapt(wr.enable))
                for wr in module.array_writes
            ]

        if not self._changed:
            return module, False
        return rebuild(module, comb, array_writes=array_writes), True

    # -- rewriting ---------------------------------------------------------

    def _fit(self, e: HExpr, width: int) -> HExpr:
        """*e* presented at *width* bits (a value-preserving slice when
        the operand is declared wider; identity otherwise)."""
        if e.width <= width:
            return e
        if isinstance(e, HConst):
            return HConst(e.value, width)
        if isinstance(e, HOp) and e.op == "zext" and e.args[0].width <= width:
            inner = e.args[0]  # refit the padding instead of slicing it
            return inner if inner.width == width else HOp("zext", (inner,), width)
        return HOp("slice", (e,), width, hi=width - 1, lo=0)

    def _rewrite(self, e: HExpr, env: dict[str, int]) -> HExpr:
        got = self._memo.get(id(e))
        if got is not None:
            return got
        out = self._rewrite_inner(e, env)
        self._memo[id(e)] = out
        return out

    def _rewrite_inner(self, e: HExpr, env: dict[str, int]) -> HExpr:
        if not isinstance(e, HOp):
            return e
        args = tuple(self._rewrite(a, env) for a in e.args)
        if any(a is not b for a, b in zip(args, e.args)):
            self._changed = True
            e = HOp(e.op, args, e.width, e.hi, e.lo, e.array)

        limit = self.limit
        if (e.op in _UNSIGNED_CMPS
                and any(a.width > limit for a in e.args)):
            bounds = [significant_bits(a, env, self._bounds) for a in e.args]
            n = max(bounds)
            if n <= limit:
                self._changed = True
                return HOp(
                    e.op,
                    tuple(self._fit(a, n) for a in e.args),
                    1,
                )
        if e.op not in _NARROWABLE or e.width <= limit:
            return e
        if e.op == "zext" and e.args[0].width <= limit:
            return e  # already feeds a narrow value; nothing to shrink
        if e.op == "shl" and not isinstance(e.args[1], HConst):
            return e
        n = significant_bits(e, env, self._bounds)
        if n > limit:
            return e
        self._changed = True
        if e.op == "zext":
            narrow: HExpr = self._fit(e.args[0], n)
        elif e.op == "mux":
            narrow = HOp(
                "mux",
                (e.args[0],
                 self._fit(e.args[1], n),
                 self._fit(e.args[2], n)),
                n,
            )
        elif e.op == "shl":
            narrow = HOp("shl", (self._fit(e.args[0], n),
                                 e.args[1]), n)
        else:
            narrow = HOp(
                e.op, tuple(self._fit(a, n) for a in e.args), n
            )
        return HOp("zext", (narrow,), e.width)

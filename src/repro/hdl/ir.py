"""Dataflow hardware IR (a synthesizable Verilog subset).

A :class:`Module` consists of:

* input and output ports;
* registers (D flip-flops with an init value), each updated *every*
  clock edge from a designated combinational signal (hold behaviour is
  expressed with an explicit mux, which is what synthesis produces
  anyway);
* register arrays (memories) with combinational read (expression op
  ``read``) and any number of guarded sequential write ports applied in
  order at the clock edge;
* an ordered list of SSA combinational assignments ``name := expr``.

Expressions are trees of :class:`HConst`, :class:`HRef` (a named signal:
a previous assignment, a register's current value, or an input) and
:class:`HOp`.  Every node carries its result width; values are unsigned
bit vectors and operators with signed semantics are explicit (``lts``,
``asr``, ...).  Division by zero yields all-ones and remainder by zero
the dividend, mirroring the Sapper semantics so that compiled designs
are bit-exact with the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator

#: Operator -> arity (None = variadic).
OPS: dict[str, int | None] = {
    "add": 2, "sub": 2, "mul": 2, "div": 2, "mod": 2,
    "and": 2, "or": 2, "xor": 2,
    "shl": 2, "shr": 2, "asr": 2,
    "eq": 2, "ne": 2, "lt": 2, "le": 2, "gt": 2, "ge": 2,
    "lts": 2, "les": 2, "gts": 2, "ges": 2,
    "land": 2, "lor": 2,
    "not": 1, "lnot": 1, "neg": 1,
    "mux": 3,           # mux(sel, if_true, if_false)
    "cat": None,        # parts, most significant first
    "slice": 1,         # attrs hi, lo
    "zext": 1, "sext": 1,
    "read": 1,          # attrs array;  child = address
}

BOOL_OUT = frozenset(
    ["eq", "ne", "lt", "le", "gt", "ge", "lts", "les", "gts", "ges", "land", "lor", "lnot"]
)


def op_width_issue(node: HOp, arrays: dict[str, ArrayDef] | None = None) -> str | None:
    """Width-discipline violation of a single operator node, or ``None``.

    The backends trust declared widths wherever they skip masking, so
    every shape whose scalar semantics could produce a value outside
    ``node.width`` bits -- or whose attributes are inconsistent with the
    declared width -- is rejected:

    * ``and``/``or``/``xor`` results and ``mux`` arms are unmasked:
      operands must not be wider than the node;
    * ``shr`` and ``mod`` results are unmasked (a remainder by zero
      yields the dividend): the dividend/shifted operand must fit;
    * ``zext`` passes its operand through unmasked and ``sext`` reads
      the operand's declared sign position: neither may narrow;
    * ``cat`` ORs parts at their declared offsets unmasked: the parts
      must fit the node;
    * ``slice`` bounds must describe exactly the declared width;
    * comparison/logical operators produce a single bit;
    * ``read`` returns stored words verbatim: its width must match the
      array's declared word width (pass *arrays* to enable this check).
    """
    op = node.op
    if op in ("and", "or", "xor"):
        wide = [a.width for a in node.args if a.width > node.width]
        if wide:
            return f"{op!r} of width {node.width} with wider operand(s) {wide}"
    elif op == "mux":
        wide = [a.width for a in node.args[1:] if a.width > node.width]
        if wide:
            return f"'mux' of width {node.width} with wider operand(s) {wide} in its arms"
    elif op in ("shr", "mod"):
        if node.args[0].width > node.width:
            return (
                f"{op!r} of width {node.width} with a wider (unmasked) "
                f"operand of width {node.args[0].width}"
            )
    elif op in ("zext", "sext"):
        if node.args[0].width > node.width:
            return (
                f"{op!r} narrowing from {node.args[0].width} to "
                f"{node.width} bits (extensions must widen)"
            )
    elif op == "cat":
        total = sum(a.width for a in node.args)
        if total > node.width:
            return f"'cat' of width {node.width} with {total} bits of parts"
    elif op == "slice":
        if not 0 <= node.lo <= node.hi or node.hi - node.lo + 1 != node.width:
            return (
                f"'slice' [{node.hi}:{node.lo}] inconsistent with "
                f"declared width {node.width}"
            )
    elif op == "read" and arrays is not None:
        arr = arrays.get(node.array)
        if arr is not None and node.width != arr.width:
            return (
                f"'read' of width {node.width} from array {node.array!r} "
                f"of word width {arr.width}"
            )
    if op in BOOL_OUT and node.width != 1:
        return f"boolean operator {op!r} declared at width {node.width}"
    return None


def significant_bits(
    e: HExpr,
    env: dict[str, int] | None = None,
    memo: dict[int, int] | None = None,
) -> int:
    """A sound upper bound on the number of significant (possibly
    non-zero) low bits of *e*'s value, at most ``e.width``.

    *env* maps signal names to already-computed bounds (defaults to each
    reference's declared width); *memo* (keyed by node identity) makes
    repeated queries over shared subtrees linear instead of per-path.
    Used by the width-narrowing pass and the SWAR eligibility analysis:
    a value whose bound fits a narrower width can be computed at that
    width with identical results for the width-monotone operators (no
    wraparound can occur at either width).
    """
    if isinstance(e, HConst):
        return max(e.value.bit_length(), 1)
    if isinstance(e, HRef):
        bound = env.get(e.name, e.width) if env else e.width
        return min(bound, e.width)
    assert isinstance(e, HOp)
    if memo is not None:
        got = memo.get(id(e))
        if got is not None:
            return got
    w = e.width
    op = e.op
    if op in BOOL_OUT:
        if memo is not None:
            memo[id(e)] = 1
        return 1
    a = [significant_bits(c, env, memo) for c in e.args]
    if op == "add":
        out = min(max(a[0], a[1]) + 1, w)
    elif op == "mul":
        out = min(a[0] + a[1], w)
    elif op == "and":
        out = min(a[0], a[1], w)
    elif op in ("or", "xor"):
        out = min(max(a[0], a[1]), w)
    elif op == "mux":
        out = min(max(a[1], a[2]), w)
    elif op == "zext":
        out = min(a[0], w)
    elif op == "shl":
        out = min(a[0] + e.args[1].value, w) if isinstance(e.args[1], HConst) else w
    elif op == "shr":
        if isinstance(e.args[1], HConst):
            out = min(max(a[0] - e.args[1].value, 1), w)
        else:
            out = min(a[0], w)
    elif op == "slice":
        out = min(e.hi - e.lo + 1, max(a[0] - e.lo, 1), w)
    elif op == "mod":
        # x % 0 yields x, so the dividend's bound is the only safe one
        out = min(a[0], w)
    elif op == "cat":
        lower = sum(c.width for c in e.args[1:])
        out = min(lower + a[0], w)
    else:
        # read/sub/neg/not/sext/div/asr can populate every result bit
        out = w
    if memo is not None:
        memo[id(e)] = out
    return out


@dataclass(frozen=True)
class HExpr:
    """Base class for IR expressions."""

    def children(self) -> tuple["HExpr", ...]:
        return ()

    def walk(self) -> Iterator["HExpr"]:
        yield self
        for c in self.children():
            yield from c.walk()


@dataclass(frozen=True)
class HConst(HExpr):
    value: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("constant width must be positive")
        object.__setattr__(self, "value", self.value & ((1 << self.width) - 1))


@dataclass(frozen=True)
class HRef(HExpr):
    """Reference to a named signal (wire, register, or input)."""

    name: str
    width: int


@dataclass(frozen=True)
class HOp(HExpr):
    op: str
    args: tuple[HExpr, ...]
    width: int
    hi: int = 0          # slice upper bound
    lo: int = 0          # slice lower bound
    array: str = ""      # array name for 'read'

    def __post_init__(self) -> None:
        arity = OPS.get(self.op)
        if self.op not in OPS:
            raise ValueError(f"unknown IR op {self.op!r}")
        if arity is not None and len(self.args) != arity:
            raise ValueError(f"op {self.op!r} expects {arity} args, got {len(self.args)}")
        if self.width <= 0:
            raise ValueError(f"op {self.op!r} has bad width {self.width}")

    def children(self) -> tuple[HExpr, ...]:
        return self.args


@dataclass
class RegDef:
    name: str
    width: int
    init: int = 0


@dataclass
class ArrayDef:
    name: str
    width: int
    size: int
    #: Value returned for never-written elements (used for tag stores
    #: whose declared label does not encode to zero).
    default: int = 0
    #: Arrays at least this large synthesize as SRAM macros (excluded
    #: from gate-level area, like the paper's memory; see techlib).
    SRAM_THRESHOLD = 2048

    @property
    def is_sram(self) -> bool:
        return self.size >= self.SRAM_THRESHOLD


@dataclass
class ArrayWrite:
    """Guarded sequential write port, applied at the clock edge."""

    array: str
    addr: HExpr
    data: HExpr
    enable: HExpr


@dataclass
class Module:
    """A complete synchronous hardware module."""

    name: str
    inputs: dict[str, int] = field(default_factory=dict)     # name -> width
    outputs: dict[str, str] = field(default_factory=dict)    # port -> driving signal
    regs: dict[str, RegDef] = field(default_factory=dict)
    arrays: dict[str, ArrayDef] = field(default_factory=dict)
    comb: list[tuple[str, HExpr]] = field(default_factory=list)
    reg_next: dict[str, str] = field(default_factory=dict)   # reg -> signal loaded each edge
    array_writes: list[ArrayWrite] = field(default_factory=list)

    _widths: dict[str, int] = field(default_factory=dict, repr=False)
    _counter: int = field(default=0, repr=False)

    # -- construction helpers ---------------------------------------------------

    def add_input(self, name: str, width: int) -> HRef:
        self.inputs[name] = width
        self._widths[name] = width
        return HRef(name, width)

    def add_reg(self, name: str, width: int, init: int = 0) -> HRef:
        self.regs[name] = RegDef(name, width, init & ((1 << width) - 1))
        self._widths[name] = width
        return HRef(name, width)

    def add_array(self, name: str, width: int, size: int, default: int = 0) -> ArrayDef:
        self.arrays[name] = ArrayDef(name, width, size, default)
        return self.arrays[name]

    def assign(self, name: str, expr: HExpr) -> HRef:
        """Define the SSA wire *name* := *expr*; returns a reference."""
        if name in self._widths:
            raise ValueError(f"signal {name!r} defined twice")
        self.comb.append((name, expr))
        self._widths[name] = expr.width
        return HRef(name, expr.width)

    def fresh(self, expr: HExpr, hint: str = "t") -> HRef:
        """Assign *expr* to a fresh wire and return the reference."""
        self._counter += 1
        return self.assign(f"{hint}_{self._counter}", expr)

    def set_output(self, port: str, signal: HRef) -> None:
        self.outputs[port] = signal.name
        self._widths.setdefault(signal.name, signal.width)

    def set_reg_next(self, reg: str, signal: HRef) -> None:
        if reg not in self.regs:
            raise ValueError(f"unknown register {reg!r}")
        self.reg_next[reg] = signal.name

    def write_array(self, array: str, addr: HExpr, data: HExpr, enable: HExpr) -> None:
        if array not in self.arrays:
            raise ValueError(f"unknown array {array!r}")
        self.array_writes.append(ArrayWrite(array, addr, data, enable))

    def width_of(self, signal: str) -> int:
        return self._widths[signal]

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Check SSA discipline, reference order and widths.

        Width discipline (:func:`op_width_issue`): every operator whose
        scalar semantics skip masking -- ``and``/``or``/``xor``/``mux``
        operands, ``shr``/``mod`` dividends, extensions, ``cat`` parts,
        ``slice`` bounds, boolean outputs, array reads -- is checked so
        out-of-range "w-bit" values cannot appear downstream.
        """
        defined = set(self.inputs) | set(self.regs)
        for name, expr in self.comb:
            for node in expr.walk():
                if isinstance(node, HRef) and node.name not in defined:
                    raise ValueError(f"{self.name}: signal {name!r} reads undefined {node.name!r}")
                if isinstance(node, HOp):
                    if node.op == "read" and node.array not in self.arrays:
                        raise ValueError(f"{self.name}: read of unknown array {node.array!r}")
                    issue = op_width_issue(node, self.arrays)
                    if issue:
                        raise ValueError(f"{self.name}: signal {name!r} has a {issue}")
            defined.add(name)
        for wr in self.array_writes:
            if wr.array not in self.arrays:
                raise ValueError(f"{self.name}: write to unknown array {wr.array!r}")
            for expr in (wr.addr, wr.data, wr.enable):
                for node in expr.walk():
                    if isinstance(node, HRef) and node.name not in defined:
                        raise ValueError(
                            f"{self.name}: write port of {wr.array!r} reads "
                            f"undefined {node.name!r}"
                        )
                    if isinstance(node, HOp):
                        issue = op_width_issue(node, self.arrays)
                        if issue:
                            raise ValueError(
                                f"{self.name}: write port of {wr.array!r} has a {issue}"
                            )
            if wr.data.width > self.arrays[wr.array].width:
                raise ValueError(
                    f"{self.name}: write port of {wr.array!r} stores "
                    f"{wr.data.width}-bit data into {self.arrays[wr.array].width}-bit words"
                )
        for reg, sig in self.reg_next.items():
            if sig not in defined:
                raise ValueError(f"{self.name}: reg {reg!r} loads undefined signal {sig!r}")
        for port, sig in self.outputs.items():
            if sig not in defined:
                raise ValueError(f"{self.name}: output {port!r} driven by undefined {sig!r}")
        for reg in self.regs:
            if reg not in self.reg_next:
                raise ValueError(f"{self.name}: register {reg!r} has no next-value signal")

"""Exact gate-level netlists for small designs.

Bit-blasts an HDL module into AND/OR/XOR/INV/DFF primitives -- the same
flow the paper uses for GLIFT ("the base processor is first synthesized
... targeting its and_or.db library which contains only gate primitives
... and flip-flops").  A gate-level simulator executes netlists so that
GLIFT's shadow logic can be demonstrated running, not just counted.

Only the operators needed by the small evaluation designs are supported
(arithmetic via ripple structures, bitwise logic, muxes, comparisons,
constant shifts, slicing).  Arrays and wide multipliers/dividers are
deliberately unsupported here -- processor-scale GLIFT costs use the
analytical path in :mod:`repro.glift.analytical`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.ir import HConst, HExpr, HOp, HRef, Module

AND, OR, XOR, INV, DFF, CONST0, CONST1, INPUT = (
    "and", "or", "xor", "inv", "dff", "const0", "const1", "input",
)


@dataclass
class Gate:
    kind: str
    a: int = -1
    b: int = -1
    init: int = 0        # DFF reset value
    name: str = ""       # for inputs


class NetlistError(ValueError):
    """Raised when a module uses constructs the bit-blaster cannot lower."""


class Netlist:
    """A flat gate network with single-bit nets."""

    def __init__(self, name: str):
        self.name = name
        self.gates: list[Gate] = []
        self.inputs: dict[str, list[int]] = {}     # port -> net ids (LSB first)
        self.outputs: dict[str, list[int]] = {}
        self.dff_d: dict[int, int] = {}            # dff net -> data net
        self._const0: int | None = None
        self._const1: int | None = None

    # -- construction -------------------------------------------------------

    def new(self, kind: str, a: int = -1, b: int = -1, **kw) -> int:
        self.gates.append(Gate(kind, a, b, **kw))
        return len(self.gates) - 1

    def const(self, bit: int) -> int:
        if bit:
            if self._const1 is None:
                self._const1 = self.new(CONST1)
            return self._const1
        if self._const0 is None:
            self._const0 = self.new(CONST0)
        return self._const0

    def g_and(self, a: int, b: int) -> int:
        return self.new(AND, a, b)

    def g_or(self, a: int, b: int) -> int:
        return self.new(OR, a, b)

    def g_xor(self, a: int, b: int) -> int:
        return self.new(XOR, a, b)

    def g_inv(self, a: int) -> int:
        return self.new(INV, a)

    def g_mux(self, sel: int, a: int, b: int) -> int:
        """sel ? a : b"""
        ns = self.g_inv(sel)
        return self.g_or(self.g_and(sel, a), self.g_and(ns, b))

    def or_tree(self, bits: list[int]) -> int:
        if not bits:
            return self.const(0)
        while len(bits) > 1:
            nxt = [self.g_or(bits[i], bits[i + 1]) for i in range(0, len(bits) - 1, 2)]
            if len(bits) % 2:
                nxt.append(bits[-1])
            bits = nxt
        return bits[0]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for g in self.gates:
            out[g.kind] = out.get(g.kind, 0) + 1
        return out


class NetlistSimulator:
    """Event-free two-phase simulator: full evaluation each cycle."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.state: dict[int, int] = {}
        for i, g in enumerate(netlist.gates):
            if g.kind == DFF:
                self.state[i] = g.init

    def step(self, inputs: dict[str, int]) -> dict[str, int]:
        nl = self.netlist
        value: list[int] = [0] * len(nl.gates)
        # inputs
        for name, nets in nl.inputs.items():
            v = inputs.get(name, 0)
            for bit, net in enumerate(nets):
                value[net] = (v >> bit) & 1
        # combinational evaluation; gate list is topologically ordered by
        # construction (DFF outputs behave as sources)
        for i, g in enumerate(nl.gates):
            if g.kind == AND:
                value[i] = value[g.a] & value[g.b]
            elif g.kind == OR:
                value[i] = value[g.a] | value[g.b]
            elif g.kind == XOR:
                value[i] = value[g.a] ^ value[g.b]
            elif g.kind == INV:
                value[i] = 1 - value[g.a]
            elif g.kind == DFF:
                value[i] = self.state[i]
            elif g.kind == CONST0:
                value[i] = 0
            elif g.kind == CONST1:
                value[i] = 1
        # second pass so DFF data nets defined after the DFF are seen
        for i, g in enumerate(nl.gates):
            if g.kind == AND:
                value[i] = value[g.a] & value[g.b]
            elif g.kind == OR:
                value[i] = value[g.a] | value[g.b]
            elif g.kind == XOR:
                value[i] = value[g.a] ^ value[g.b]
            elif g.kind == INV:
                value[i] = 1 - value[g.a]
        outs = {
            name: sum(value[net] << bit for bit, net in enumerate(nets))
            for name, nets in nl.outputs.items()
        }
        for dff, d in nl.dff_d.items():
            self.state[dff] = value[d]
        return outs


class _Blaster:
    def __init__(self, module: Module):
        self.module = module
        self.nl = Netlist(module.name)
        self.signals: dict[str, list[int]] = {}

    def build(self) -> Netlist:
        m = self.module
        if m.arrays:
            raise NetlistError("gate-level netlists do not support arrays")
        for name, width in m.inputs.items():
            nets = [self.nl.new(INPUT, name=name) for _ in range(width)]
            self.nl.inputs[name] = nets
            self.signals[name] = nets
        dff_nets: dict[str, list[int]] = {}
        for reg in m.regs.values():
            nets = [
                self.nl.new(DFF, init=(reg.init >> bit) & 1) for bit in range(reg.width)
            ]
            dff_nets[reg.name] = nets
            self.signals[reg.name] = nets
        for name, expr in m.comb:
            self.signals[name] = self.bits(expr)
        for reg, sig in m.reg_next.items():
            for q, d in zip(dff_nets[reg], self.signals[sig]):
                self.nl.dff_d[q] = d
        for port, sig in m.outputs.items():
            self.nl.outputs[port] = self.signals[sig]
        return self.nl

    # -- expression lowering ----------------------------------------------------

    def bits(self, e: HExpr) -> list[int]:
        nl = self.nl
        if isinstance(e, HConst):
            return [nl.const((e.value >> bit) & 1) for bit in range(e.width)]
        if isinstance(e, HRef):
            return list(self.signals[e.name])
        assert isinstance(e, HOp)
        op = e.op
        if op in ("add", "sub"):
            a = self.bits(e.args[0])
            b = self.bits(e.args[1])
            return self._addsub(a, b, e.width, subtract=op == "sub")
        if op == "neg":
            zero = [nl.const(0)] * e.width
            return self._addsub(zero, self.bits(e.args[0]), e.width, subtract=True)
        if op in ("and", "or", "xor"):
            a = self._fit(self.bits(e.args[0]), e.width)
            b = self._fit(self.bits(e.args[1]), e.width)
            fn = {"and": nl.g_and, "or": nl.g_or, "xor": nl.g_xor}[op]
            return [fn(x, y) for x, y in zip(a, b)]
        if op == "not":
            return [nl.g_inv(x) for x in self._fit(self.bits(e.args[0]), e.width)]
        if op == "mux":
            sel = self.or_reduce(self.bits(e.args[0]))
            a = self._fit(self.bits(e.args[1]), e.width)
            b = self._fit(self.bits(e.args[2]), e.width)
            return [nl.g_mux(sel, x, y) for x, y in zip(a, b)]
        if op in ("eq", "ne"):
            w = max(a.width for a in e.args)
            a = self._fit(self.bits(e.args[0]), w)
            b = self._fit(self.bits(e.args[1]), w)
            diff = nl.or_tree([nl.g_xor(x, y) for x, y in zip(a, b)])
            return [diff if op == "ne" else nl.g_inv(diff)]
        if op in ("lt", "ge", "gt", "le"):
            w = max(a.width for a in e.args)
            a = self._fit(self.bits(e.args[0]), w)
            b = self._fit(self.bits(e.args[1]), w)
            if op in ("gt", "le"):
                a, b = b, a
            borrow = self._borrow(a, b)
            return [borrow if op in ("lt", "gt") else nl.g_inv(borrow)]
        if op in ("land", "lor", "lnot"):
            reduced = [self.or_reduce(self.bits(arg)) for arg in e.args]
            if op == "land":
                return [nl.g_and(reduced[0], reduced[1])]
            if op == "lor":
                return [nl.g_or(reduced[0], reduced[1])]
            return [nl.g_inv(reduced[0])]
        if op in ("shl", "shr"):
            if not isinstance(e.args[1], HConst):
                raise NetlistError("netlist shifts must have constant amounts")
            amt = e.args[1].value
            a = self.bits(e.args[0])
            if op == "shl":
                shifted = [nl.const(0)] * amt + a
            else:
                shifted = a[amt:] or [nl.const(0)]
            return self._fit(shifted, e.width)
        if op == "slice":
            a = self.bits(e.args[0])
            return self._fit(a[e.lo : e.hi + 1], e.width)
        if op == "cat":
            out: list[int] = []
            for part in reversed(e.args):
                out.extend(self.bits(part))
            return self._fit(out, e.width)
        if op == "zext":
            return self._fit(self.bits(e.args[0]), e.width)
        if op == "sext":
            a = self.bits(e.args[0])
            return (a + [a[-1]] * e.width)[: e.width]
        raise NetlistError(f"netlist lowering does not support op {op!r}")

    def or_reduce(self, bits: list[int]) -> int:
        return self.nl.or_tree(bits)

    def _fit(self, bits: list[int], width: int) -> list[int]:
        if len(bits) >= width:
            return bits[:width]
        return bits + [self.nl.const(0)] * (width - len(bits))

    def _addsub(self, a: list[int], b: list[int], width: int, subtract: bool) -> list[int]:
        nl = self.nl
        a = self._fit(a, width)
        b = self._fit(b, width)
        if subtract:
            b = [nl.g_inv(x) for x in b]
        carry = nl.const(1 if subtract else 0)
        out = []
        for x, y in zip(a, b):
            axy = nl.g_xor(x, y)
            out.append(nl.g_xor(axy, carry))
            carry = nl.g_or(nl.g_and(x, y), nl.g_and(carry, axy))
        return out

    def _borrow(self, a: list[int], b: list[int]) -> int:
        """Borrow-out of a - b, i.e. the a < b predicate (unsigned)."""
        nl = self.nl
        b_inv = [nl.g_inv(x) for x in b]
        carry = nl.const(1)
        for x, y in zip(a, b_inv):
            axy = nl.g_xor(x, y)
            carry = nl.g_or(nl.g_and(x, y), nl.g_and(carry, axy))
        return nl.g_inv(carry)


def bit_blast(module: Module) -> Netlist:
    """Lower *module* to a gate-level netlist (small designs only)."""
    module.validate()
    return _Blaster(module).build()

"""Hardware substrate: a synthesizable-Verilog-subset IR plus tooling.

The Sapper compiler targets this IR; the baselines (GLIFT, Caisson)
transform it.  Tooling:

* :mod:`repro.hdl.ir` -- the dataflow IR (SSA combinational assigns,
  synchronous register update, sequential array write ports).
* :mod:`repro.hdl.sim` -- cycle-accurate simulator; generates a
  specialized Python step function per module (our ModelSim substitute).
* :mod:`repro.hdl.batch` -- lane-batched simulation: one vectorized step
  function advances N independent machine states bit-identically.
* :mod:`repro.hdl.vector` -- the NumPy uint64 native tier over the
  batched engine (lanes as the vector axis; optional dependency).
* :mod:`repro.hdl.verilog` -- synthesizable Verilog text emission.
* :mod:`repro.hdl.synth` / :mod:`repro.hdl.techlib` -- structural
  lowering to gate counts with a 90 nm-style cell library; area, critical
  path and power reports (our Design Compiler substitute).
* :mod:`repro.hdl.passes` -- the shared mid-level optimization pipeline
  (constant folding, CSE, mux/boolean simplification, dead-signal
  elimination).  All three backends consume its output by default.
* :mod:`repro.hdl.netlist` -- an exact gate-level netlist + simulator for
  small designs (used to demonstrate GLIFT executably).
"""

from repro.hdl.batch import BatchSimulator
from repro.hdl.ir import ArrayDef, ArrayWrite, HConst, HExpr, HOp, HRef, Module, RegDef
from repro.hdl.passes import PassManager, optimize
from repro.hdl.sim import Simulator
from repro.hdl.synth import CostReport, synthesize
from repro.hdl.vector import HAVE_NUMPY, VectorSimulator
from repro.hdl.verilog import emit_verilog

__all__ = [
    "Module",
    "RegDef",
    "ArrayDef",
    "ArrayWrite",
    "HExpr",
    "HConst",
    "HRef",
    "HOp",
    "Simulator",
    "BatchSimulator",
    "VectorSimulator",
    "HAVE_NUMPY",
    "synthesize",
    "CostReport",
    "emit_verilog",
    "optimize",
    "PassManager",
]

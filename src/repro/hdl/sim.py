"""Cycle-accurate simulation of HDL modules.

For every module a specialized Python step function is generated
(string-compiled once), making simulation fast enough to run whole
benchmark programs on the compiled processor -- this is the repository's
substitute for the paper's ModelSim runs.

Semantics: two-phase synchronous execution.  All combinational signals
evaluate in SSA order reading the *current* register/array contents;
then every register loads its next-value signal and array write ports
apply in declaration order.  Division by zero yields all-ones, remainder
the dividend (matching the Sapper interpreter).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.hdl.ir import HConst, HExpr, HOp, HRef, Module
from repro.hdl.passes.base import WeakIdMemo

#: module -> (source, step function).  The generated function is pure
#: (all state is passed in), so every Simulator over the same module
#: object can share one compilation.
_STEP_CACHE = WeakIdMemo()

_SIGNED_HELPER = (
    "def _s(v, w):\n"
    "    return v - (1 << w) if v >> (w - 1) & 1 else v\n"
)


def _mangle(name: str) -> str:
    return "v_" + name


def paren_depth(code: str) -> int:
    """Maximum parenthesis nesting of *code* (inlining must stay well
    below CPython's parser limit)."""
    d = mx = 0
    for ch in code:
        if ch == "(":
            d += 1
            if d > mx:
                mx = d
        elif ch == ")":
            d -= 1
    return mx


class _CodeGen:
    """Scalar expression emitter shared by :class:`Simulator` and the
    lane-batched codegen in :mod:`repro.hdl.batch` (which subclasses it
    and overrides :meth:`ref` to resolve signals to per-lane storage)."""

    def __init__(self, module: Module):
        self.module = module
        self.lines: list[str] = []
        #: single-use wires inlined textually into their one consumer
        self.inline: dict[str, str] = {}

    def ref(self, name: str) -> str:
        """Code for reading the named signal (overridable)."""
        inlined = self.inline.get(name)
        return inlined if inlined is not None else _mangle(name)

    def expr(self, e: HExpr) -> str:
        m = (1 << e.width) - 1
        if isinstance(e, HConst):
            return repr(e.value)
        if isinstance(e, HRef):
            return self.ref(e.name)
        assert isinstance(e, HOp)
        a = [self.expr(c) for c in e.args]
        aw = [c.width for c in e.args]
        op = e.op
        if op == "add":
            return f"(({a[0]} + {a[1]}) & {m})"
        if op == "sub":
            return f"(({a[0]} - {a[1]}) & {m})"
        if op == "mul":
            return f"(({a[0]} * {a[1]}) & {m})"
        if op == "div":
            return f"(({a[0]} // {a[1]}) & {m} if {a[1]} else {m})"
        if op == "mod":
            return f"(({a[0]} % {a[1]}) if {a[1]} else {a[0]})"
        if op == "and":
            return f"({a[0]} & {a[1]})"
        if op == "or":
            return f"({a[0]} | {a[1]})"
        if op == "xor":
            return f"({a[0]} ^ {a[1]})"
        if op == "shl":
            return f"(({a[0]} << {a[1]}) & {m} if {a[1]} < {e.width} else 0)"
        if op == "shr":
            return f"({a[0]} >> {a[1]} if {a[1]} < {aw[0]} else 0)"
        if op == "asr":
            w0 = aw[0]
            return (
                f"((_s({a[0]}, {w0}) >> ({a[1]} if {a[1]} < {w0} else {w0 - 1})) & {m})"
            )
        if op == "eq":
            return f"(1 if {a[0]} == {a[1]} else 0)"
        if op == "ne":
            return f"(1 if {a[0]} != {a[1]} else 0)"
        if op == "lt":
            return f"(1 if {a[0]} < {a[1]} else 0)"
        if op == "le":
            return f"(1 if {a[0]} <= {a[1]} else 0)"
        if op == "gt":
            return f"(1 if {a[0]} > {a[1]} else 0)"
        if op == "ge":
            return f"(1 if {a[0]} >= {a[1]} else 0)"
        if op == "lts":
            return f"(1 if _s({a[0]}, {aw[0]}) < _s({a[1]}, {aw[1]}) else 0)"
        if op == "les":
            return f"(1 if _s({a[0]}, {aw[0]}) <= _s({a[1]}, {aw[1]}) else 0)"
        if op == "gts":
            return f"(1 if _s({a[0]}, {aw[0]}) > _s({a[1]}, {aw[1]}) else 0)"
        if op == "ges":
            return f"(1 if _s({a[0]}, {aw[0]}) >= _s({a[1]}, {aw[1]}) else 0)"
        if op == "land":
            return f"(1 if {a[0]} and {a[1]} else 0)"
        if op == "lor":
            return f"(1 if {a[0]} or {a[1]} else 0)"
        if op == "lnot":
            return f"(0 if {a[0]} else 1)"
        if op == "not":
            return f"((~{a[0]}) & {m})"
        if op == "neg":
            return f"((-{a[0]}) & {m})"
        if op == "mux":
            return f"({a[1]} if {a[0]} else {a[2]})"
        if op == "cat":
            parts = []
            shift = 0
            for child, code in zip(reversed(e.args), reversed(a)):
                parts.append(f"({code} << {shift})" if shift else code)
                shift += child.width
            return "(" + " | ".join(parts) + ")"
        if op == "slice":
            return f"(({a[0]} >> {e.lo}) & {m})"
        if op == "zext":
            return a[0]
        if op == "sext":
            return f"(_s({a[0]}, {aw[0]}) & {m})"
        if op == "read":
            arr = self.module.arrays[e.array]
            return f"a_{e.array}.get({a[0]} % {arr.size}, {arr.default})"
        raise ValueError(f"cannot generate code for op {op!r}")


class Simulator:
    """Executable instance of a :class:`~repro.hdl.ir.Module`.

    Register state lives in :attr:`regs`; array contents in
    :attr:`arrays` (sparse dicts, missing entries read 0).  Call
    :meth:`step` once per clock cycle.

    By default the module is run through the standard optimization
    pipeline (:func:`repro.hdl.passes.optimize`) before the step
    function is generated -- architectural state and outputs are
    bit-identical, only the dead and duplicated combinational work is
    gone.  Pass ``optimize=False`` to simulate the raw IR (used by
    cross-validation to check the optimizer itself).
    """

    def __init__(self, module: Module, optimize: bool = True):
        if optimize:
            from repro.hdl.passes import optimize as _optimize

            module = _optimize(module)
        module.validate()
        self.module = module
        self.regs: dict[str, int] = {r.name: r.init for r in module.regs.values()}
        self.arrays: dict[str, dict[int, int]] = {a: {} for a in module.arrays}
        self.cycles = 0
        self._step = self._compile()

    def _compile(self) -> Callable:
        m = self.module
        entry = _STEP_CACHE.get(m)
        if entry is not None:
            self.source = entry[0]
            return entry[1]
        gen = _CodeGen(m)
        # Wires consumed exactly once, and only inside the combinational
        # block, are inlined into their consumer: the generated function
        # skips one local store/load per wire, which is a large share of
        # the per-cycle cost on big modules.  Names feeding the clock
        # edge (register next-values, write ports, outputs) stay named --
        # the write section must not re-evaluate array reads after
        # earlier ports have fired.  Textual nesting is capped well
        # below CPython's parser limit.
        use_count: dict[str, int] = {}
        for _, expr in m.comb:
            for node in expr.walk():
                if isinstance(node, HRef):
                    use_count[node.name] = use_count.get(node.name, 0) + 1
        keep = set(m.reg_next.values()) | set(m.outputs.values())
        for wr in m.array_writes:
            for e in (wr.addr, wr.data, wr.enable):
                for node in e.walk():
                    if isinstance(node, HRef):
                        keep.add(node.name)

        lines = ["def _step(regs, arrays, inputs):"]
        for name in m.arrays:
            lines.append(f"    a_{name} = arrays[{name!r}]")
        for name, width in m.inputs.items():
            mask = (1 << width) - 1
            lines.append(f"    {_mangle(name)} = inputs.get({name!r}, 0) & {mask}")
        for name in m.regs:
            lines.append(f"    {_mangle(name)} = regs[{name!r}]")
        for name, expr in m.comb:
            code = gen.expr(expr)
            if (
                use_count.get(name, 0) == 1
                and name not in keep
                and len(code) <= 4000
                and paren_depth(code) <= 100
            ):
                gen.inline[name] = f"({code})"
            else:
                lines.append(f"    {_mangle(name)} = {code}")
        # Clock edge: register updates then array write ports, in order.
        for reg, sig in m.reg_next.items():
            lines.append(f"    regs[{reg!r}] = {_mangle(sig)}")
        for _i, wr in enumerate(m.array_writes):
            size = m.arrays[wr.array].size
            lines.append(f"    if {gen.expr(wr.enable)}:")
            lines.append(
                f"        a_{wr.array}[{gen.expr(wr.addr)} % {size}] = {gen.expr(wr.data)}"
            )
        outs = ", ".join(f"{p!r}: {_mangle(sig)}" for p, sig in m.outputs.items())
        lines.append("    return {" + outs + "}")
        source = _SIGNED_HELPER + "\n".join(lines)
        namespace: dict = {}
        exec(compile(source, f"<hdl:{m.name}>", "exec"), namespace)  # noqa: S102
        self.source = source
        step = namespace["_step"]
        _STEP_CACHE.set(m, (source, step))
        return step

    def step(self, inputs: dict[str, int] | None = None) -> dict[str, int]:
        """Advance one clock cycle; returns the output-port values."""
        self.cycles += 1
        return self._step(self.regs, self.arrays, inputs or {})

    def run(self, cycles: int, inputs: dict[str, int] | None = None) -> dict[str, int]:
        out: dict[str, int] = {}
        for _ in range(cycles):
            out = self.step(inputs)
        return out

    def load_array(self, name: str, data: dict[int, int] | list[int]) -> None:
        """Initialize array contents (e.g. program memory)."""
        arr = self.module.arrays[name]
        mask = (1 << arr.width) - 1
        items = enumerate(data) if isinstance(data, list) else data.items()
        self.arrays[name] = {i: v & mask for i, v in items if v & mask != arr.default}

"""Lane-batched simulation: advance N independent machine states per call.

The scalar :class:`~repro.hdl.sim.Simulator` pays full Python
interpretation overhead for every machine it runs; randomized suites and
the evaluation driver run hundreds of independent simulations of the
*same* module.  :class:`BatchSimulator` compiles one *vectorized* step
function that advances ``n`` lanes at once, bit-identically to ``n``
scalar simulators, using three cooperating representations:

**Packed world** -- every 1-bit signal whose whole expression tree is
1-bit (the security-tag cone dominates compiled Sapper designs) is held
as a single integer with bit ``l`` = lane ``l``.  One Python ``&`` then
advances all lanes of an AND gate at once; muxes become three bitwise
ops.  This is the classic bit-slicing transform, applied across lanes
instead of across a word.

**Scalar world** -- wider signals (the datapath) are evaluated per lane
inside a ``for`` loop over lanes; cross-phase values live in per-lane
list buffers, lane-loop-invariant reads are hoisted, and guard
expressions are emitted in boolean context (``a == b`` instead of
``1 if a == b else 0``).  The two worlds interleave in dependency-scheduled
phases; 1-bit values produced by wide comparisons are accumulated back
into packed form with ``|= flag << lane``.

**Uniform-state fast path** -- when every lane agrees on the value of
the module's narrow control registers (FSM/fall registers), the step
dispatches to a *specialized* body: the module partially evaluated under
that binding and re-optimized by :func:`repro.hdl.passes.optimize`'s
pipeline.  Boot, refill, and other non-pipeline phases collapse to a few
percent of the full design, and registers that provably hold skip their
write-back entirely.  Bodies are compiled lazily per observed state and
cached; bindings that fail to shrink the module are remembered and
skipped.

All compiled artifacts are cached per module object (the same structural
identity the :class:`~repro.toolchain.Toolchain` keys its artifacts by),
so every ``BatchSimulator`` over one module shares a single compilation.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Optional, Sequence, Union

from repro.hdl.ir import HConst, HExpr, HOp, HRef, Module
from repro.hdl.passes.base import WeakIdMemo
from repro.hdl.sim import _SIGNED_HELPER, _CodeGen, paren_depth

#: Ops that close over the packed (1-bit lane-sliced) world.
_PACK_OPS = frozenset(
    ["and", "or", "xor", "not", "mux", "land", "lor", "lnot",
     "eq", "ne", "add", "sub", "neg", "slice", "zext", "sext"]
)

#: Ops whose scalar code is a Python comparison/boolean expression that
#: can be used directly in boolean context (mux guards, accumulators).
_BOOL_OPS = frozenset(
    ["eq", "ne", "lt", "le", "gt", "ge", "lts", "les", "gts", "ges",
     "land", "lor", "lnot"]
)

_INLINE_LEN = 4000
_INLINE_DEPTH = 90

#: module -> _BatchEntry with every compiled artifact for that module.
_BATCH_CACHE = WeakIdMemo()


def _packable(e: HExpr) -> bool:
    for node in e.walk():
        if node.width != 1:
            return False
        if isinstance(node, HOp) and node.op not in _PACK_OPS:
            return False
    return True


# --------------------------------------------------------------------------- codegen


class _BatchCodeGen(_CodeGen):
    """Emits the hybrid packed/scalar batched step function for a module.

    The generated source defines ``_make_batch_step(n)`` returning a
    ``_step(pregs, wregs, arrays, inputs)`` closure; cross-phase lane
    buffers are allocated once per lane count as default arguments.
    """

    def __init__(self, module: Module):
        super().__init__(module)
        m = module
        #: comb signal -> 'p' (packed) | 's' (scalar)
        self.kinds: dict[str, str] = {}
        #: any name -> has a packed (bit-per-lane) representation
        self.packed_src: dict[str, bool] = {}
        self.use_count: dict[str, int] = {}
        for r in m.regs.values():
            self.packed_src[r.name] = r.width == 1
        for name, w in m.inputs.items():
            self.packed_src[name] = w == 1
        for name, e in m.comb:
            self.kinds[name] = "p" if (e.width == 1 and _packable(e)) else "s"
            self.packed_src[name] = e.width == 1
            for node in e.walk():
                if isinstance(node, HRef):
                    self.use_count[node.name] = self.use_count.get(node.name, 0) + 1
        self.pinline: dict[str, str] = {}   # packed single-use inlines
        self.ncache: dict[str, str] = {}    # selector -> complement local
        self.lane_local: set[str] = set()   # names bound to lane locals
        self.exprs = dict(m.comb)

    # -- scheduling --------------------------------------------------------

    def _schedule(self) -> None:
        m = self.module
        order = [n for n, _ in m.comb]
        deps = {
            name: [n.name for n in e.walk() if isinstance(n, HRef) and n.name in self.kinds]
            for name, e in m.comb
        }
        done: set[str] = set()
        phases: list[tuple[str, list[str]]] = []
        while len(done) < len(order):
            progress = False
            for kind in ("s", "p"):
                grabbed: list[str] = []
                frontier = [n for n in order if n not in done and self.kinds[n] == kind
                            and all(d in done for d in deps[n])]
                while frontier:
                    grabbed.extend(frontier)
                    done.update(frontier)
                    frontier = [n for n in order if n not in done and self.kinds[n] == kind
                                and all(d in done for d in deps[n])]
                if grabbed:
                    phases.append((kind, grabbed))
                    progress = True
            if not progress:  # pragma: no cover - validate() rejects cycles
                raise ValueError(f"{m.name}: combinational cycle")
        self.phase_of = {}
        for i, (_, sigs) in enumerate(phases):
            for s in sigs:
                self.phase_of[s] = i
        self.consumers: dict[str, list[str]] = {}
        for name in order:
            for d in deps[name]:
                self.consumers.setdefault(d, []).append(name)
        # sink scalar signals into the latest scalar phase preceding their
        # first consumer: fewer wide values cross phases through buffers
        nphases = len(phases)
        for i in range(nphases - 1, -1, -1):
            kind, sigs = phases[i]
            if kind != "s":
                continue
            for s in list(sigs):
                limit = nphases - 1
                for c in self.consumers.get(s, []):
                    cp = self.phase_of[c]
                    limit = min(limit, cp if self.kinds[c] == "s" else cp - 1)
                best = i
                for j in range(limit, i, -1):
                    if phases[j][0] == "s":
                        best = j
                        break
                if best != i:
                    sigs.remove(s)
                    phases[best][1].append(s)
                    self.phase_of[s] = best
        pos = {name: k for k, name in enumerate(order)}
        for _, sigs in phases:
            sigs.sort(key=pos.__getitem__)
        self.phases = phases
        # names whose refs feed the clock edge (re-evaluated there)
        keep = set(m.reg_next.values()) | set(m.outputs.values())
        for wr in m.array_writes:
            for e in (wr.addr, wr.data, wr.enable):
                for node in e.walk():
                    if isinstance(node, HRef):
                        keep.add(node.name)
        self.keep = keep
        # scalar wide signals needing a per-lane buffer (cross a phase
        # boundary or feed the edge)
        self.listed: set[str] = set()
        for name in order:
            if self.kinds[name] != "s" or self.exprs[name].width == 1:
                continue
            if name in keep or any(
                self.phase_of[c] != self.phase_of[name]
                for c in self.consumers.get(name, [])
                if self.kinds[c] == "s"
            ):
                self.listed.add(name)

    # -- packed expression emission ---------------------------------------

    def pexpr(self, e: HExpr) -> str:
        if isinstance(e, HConst):
            return "ONES" if e.value else "0"
        if isinstance(e, HRef):
            inl = self.pinline.get(e.name)
            return inl if inl is not None else f"p_{e.name}"
        a = [self.pexpr(c) for c in e.args]
        op = e.op
        if op in ("and", "land"):
            return f"({a[0]} & {a[1]})"
        if op in ("or", "lor"):
            return f"({a[0]} | {a[1]})"
        if op in ("xor", "ne", "add", "sub"):
            # 1-bit add/sub are xor
            return f"({a[0]} ^ {a[1]})"
        if op == "eq":
            return f"(({a[0]} ^ {a[1]}) ^ ONES)"
        if op in ("not", "lnot"):
            return f"({a[0]} ^ ONES)"
        if op in ("neg", "zext", "sext", "slice"):
            return a[0]
        if op == "mux":
            c = a[0]
            nc = self.ncache.get(c) or f"({c} ^ ONES)"
            if a[1] == "ONES":
                return c if a[2] == "0" else f"({c} | ({nc} & {a[2]}))"
            if a[2] == "0":
                return f"({c} & {a[1]})"
            if a[1] == "0":
                return f"({nc} & {a[2]})"
            if a[2] == "ONES":
                return f"({nc} | ({c} & {a[1]}))"
            return f"(({c} & {a[1]}) | ({nc} & {a[2]}))"
        raise ValueError(f"op {op!r} is not packable")  # pragma: no cover

    # -- scalar expression emission ----------------------------------------

    def ref(self, name: str) -> str:
        inl = self.inline.get(name)
        if inl is not None:
            return inl
        if name in self.lane_local:
            return f"v_{name}"
        if self.packed_src.get(name):
            return f"((p_{name} >> _l) & 1)"
        if name in self.listed:
            return f"x_{name}[_l]"
        if name in self.module.regs:
            return f"wr_{name}[_l]"
        if name in self.module.inputs:
            return f"wi_{name}[_l]"
        raise KeyError(name)  # pragma: no cover

    @staticmethod
    def _bool_safe(e: HExpr) -> bool:
        """Is the boolean-form code for *e* guaranteed to evaluate to a
        Python bool or a 0/1 int (so it can be used as a value)?"""
        if isinstance(e, HOp):
            if e.op in ("eq", "ne", "lt", "le", "gt", "ge",
                        "lts", "les", "gts", "ges", "lnot"):
                return True
            if e.op in ("land", "lor"):
                return all(_BatchCodeGen._bool_safe(a) for a in e.args)
        return e.width == 1

    def expr(self, e: HExpr) -> str:
        if isinstance(e, HOp):
            if e.op == "read":
                arr = self.module.arrays[e.array]
                addr = self.expr(e.args[0])
                if (1 << e.args[0].width) <= arr.size:
                    return f"a_{e.array}.get({addr}, {arr.default})"
                return f"a_{e.array}.get({addr} % {arr.size}, {arr.default})"
            if e.op == "mux":
                return (f"({self.expr(e.args[1])} if {self.bool_expr(e.args[0])}"
                        f" else {self.expr(e.args[2])})")
            # comparisons yield Python bools -- 0/1 ints, directly usable
            # as values (shifted, or-ed, stored) without a conditional
            if e.op in ("eq", "ne", "lt", "le", "gt", "ge",
                        "lts", "les", "gts", "ges"):
                return self.bool_expr(e)
            if e.op in ("land", "lor", "lnot"):
                if self._bool_safe(e):
                    return self.bool_expr(e)
                return f"(1 if {self.bool_expr(e)} else 0)"
        return super().expr(e)

    def bool_expr(self, e: HExpr) -> str:
        """*e* in Python boolean context (guards, enables, flags)."""
        if isinstance(e, HOp) and e.op in _BOOL_OPS:
            op = e.op
            if op in ("eq", "ne", "lt", "le", "gt", "ge"):
                a = [self.expr(c) for c in e.args]
                sym = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
                       "gt": ">", "ge": ">="}[op]
                return f"({a[0]} {sym} {a[1]})"
            if op in ("lts", "les", "gts", "ges"):
                a = [self.expr(c) for c in e.args]
                aw = [c.width for c in e.args]
                sym = {"lts": "<", "les": "<=", "gts": ">", "ges": ">="}[op]
                return f"(_s({a[0]}, {aw[0]}) {sym} _s({a[1]}, {aw[1]}))"
            if op == "land":
                return f"({self.bool_expr(e.args[0])} and {self.bool_expr(e.args[1])})"
            if op == "lor":
                return f"({self.bool_expr(e.args[0])} or {self.bool_expr(e.args[1])})"
            if op == "lnot":
                return f"(not {self.bool_expr(e.args[0])})"
        return self.expr(e)

    # -- helpers -----------------------------------------------------------

    def _edge_exprs(self) -> list[HExpr]:
        out: list[HExpr] = []
        for wr in self.module.array_writes:
            out += [wr.addr, wr.data, wr.enable]
        return out

    @staticmethod
    def _wide_regs_in(module: Module, exprs: Sequence[HExpr]) -> set[str]:
        out = set()
        for e in exprs:
            for node in e.walk():
                if (isinstance(node, HRef) and node.name in module.regs
                        and module.regs[node.name].width != 1):
                    out.add(node.name)
        return out

    @staticmethod
    def _arrays_in(exprs: Sequence[HExpr]) -> set[str]:
        out = set()
        for e in exprs:
            for node in e.walk():
                if isinstance(node, HOp) and node.op == "read":
                    out.add(node.array)
        return out

    def _resolve_alias(self, name: str) -> str:
        """Follow pure-ref combinational aliases to their source name."""
        seen = set()
        while name in self.exprs and name not in seen:
            seen.add(name)
            e = self.exprs[name]
            if isinstance(e, HRef):
                name = e.name
            else:
                break
        return name

    # -- generation --------------------------------------------------------

    def generate(self) -> str:
        m = self.module
        self._schedule()
        exprs = self.exprs
        keep = self.keep

        # complements of packed mux selectors referenced more than once
        ncount: Counter = Counter()
        for name, e in m.comb:
            if self.kinds[name] != "p":
                continue
            for node in e.walk():
                if not isinstance(node, HOp):
                    continue
                if node.op == "mux" and isinstance(node.args[0], HRef):
                    t, f = node.args[1], node.args[2]
                    if not (isinstance(f, HConst) and f.value == 0) and not (
                        isinstance(t, HConst) and t.value == 1
                    ):
                        ncount[node.args[0].name] += 1
                elif node.op in ("not", "lnot") and isinstance(node.args[0], HRef):
                    ncount[node.args[0].name] += 1
        nc_emit = {nm for nm, c in ncount.items() if c >= 2}

        cons_kind: dict[str, list[str]] = {}
        for cname, ce in m.comb:
            for node in ce.walk():
                if isinstance(node, HRef):
                    cons_kind.setdefault(node.name, []).append(self.kinds[cname])

        L: list[str] = []
        bufs: list[str] = []

        def emit(line: str) -> None:
            L.append("        " + line)

        def emit_lane(line: str) -> None:
            L.append("            " + line)

        # packed registers and inputs into locals
        for r in m.regs.values():
            if r.width == 1:
                emit(f"p_{r.name} = pregs[{r.name!r}]")
        for r in m.regs.values():
            if r.width == 1 and r.name in nc_emit:
                emit(f"q_{r.name} = p_{r.name} ^ ONES")
                self.ncache[f"p_{r.name}"] = f"q_{r.name}"
        p_inputs = [nm for nm, w in m.inputs.items() if w == 1]
        w_inputs = [nm for nm, w in m.inputs.items() if w != 1]
        if p_inputs or w_inputs:
            for nm in p_inputs:
                emit(f"p_{nm} = 0")
            for nm in w_inputs:
                bufs.append(f"wi_{nm}")
            emit("for _l in range(n):")
            emit_lane("_inp = inputs[_l]")
            for nm in p_inputs:
                emit_lane(f"p_{nm} |= (_inp.get({nm!r}, 0) & 1) << _l")
            for nm in w_inputs:
                mask = (1 << m.inputs[nm]) - 1
                emit_lane(f"wi_{nm}[_l] = _inp.get({nm!r}, 0) & {mask}")

        for name in sorted(self.listed):
            bufs.append(f"x_{name}")

        def accumulated(s: str) -> bool:
            """Does the 1-bit scalar-rooted signal *s* need packed form?"""
            return (
                any(k == "p" for k in cons_kind.get(s, []))
                or s in keep
                or any(self.phase_of[c] != self.phase_of[s]
                       for c in self.consumers.get(s, []))
            )

        # -- phases --------------------------------------------------------
        for kind, sigs in self.phases:
            if kind == "p":
                for name in sigs:
                    code = self.pexpr(exprs[name])
                    if (self.use_count.get(name, 0) == 1 and name not in keep
                            and cons_kind.get(name) == ["p"]
                            and len(code) <= _INLINE_LEN
                            and paren_depth(code) <= _INLINE_DEPTH):
                        self.pinline[name] = code
                    else:
                        emit(f"p_{name} = {code}")
                        if name in nc_emit:
                            emit(f"q_{name} = p_{name} ^ ONES")
                            self.ncache[f"p_{name}"] = f"q_{name}"
                continue

            # scalar phase: one loop over lanes
            phase_set = set(sigs)
            body_exprs = [exprs[s] for s in sigs]
            for s in sigs:
                if exprs[s].width == 1 and accumulated(s):
                    emit(f"p_{s} = 0")
            for arr in sorted(self._arrays_in(body_exprs)):
                emit(f"al_{arr} = arrays[{arr!r}]")
            for wreg in sorted(self._wide_regs_in(m, body_exprs)):
                emit(f"wr_{wreg} = wregs[{wreg!r}]")
            # hoist lane-loop reads used more than once in this phase
            ref_count: Counter = Counter()
            for s in sigs:
                for node in exprs[s].walk():
                    if isinstance(node, HRef) and node.name not in phase_set:
                        ref_count[node.name] += 1
            self.lane_local = set()
            self.inline = {}
            hoists: list[str] = []
            for nm, cnt in sorted(ref_count.items()):
                if cnt < 2:
                    continue
                if self.packed_src.get(nm) and nm not in phase_set:
                    hoists.append(f"v_{nm} = (p_{nm} >> _l) & 1")
                elif nm in self.listed and nm not in phase_set:
                    hoists.append(f"v_{nm} = x_{nm}[_l]")
                elif nm in m.regs and m.regs[nm].width != 1:
                    hoists.append(f"v_{nm} = wr_{nm}[_l]")
                else:
                    continue
                self.lane_local.add(nm)
            lane_stmts: list[str] = []
            lane = lane_stmts.append
            for arr in sorted(self._arrays_in(body_exprs)):
                lane(f"a_{arr} = al_{arr}[_l]")
            for h in hoists:
                lane(h)
            for s in sigs:
                e = exprs[s]
                uses = self.use_count.get(s, 0)
                if e.width == 1:
                    if not accumulated(s):
                        code = self.expr(e)
                        if (uses == 1 and len(code) <= _INLINE_LEN
                                and paren_depth(code) <= _INLINE_DEPTH):
                            self.inline[s] = f"({code})"
                        else:
                            lane(f"v_{s} = {code}")
                            self.lane_local.add(s)
                    elif any(k == "s" for k in cons_kind.get(s, [])):
                        lane(f"v_{s} = {self.expr(e)}")
                        lane(f"p_{s} |= v_{s} << _l")
                        self.lane_local.add(s)
                    else:
                        lane(f"p_{s} |= {self.expr(e)} << _l")
                elif s in self.listed:
                    code = self.expr(e)
                    if any(c in phase_set for c in self.consumers.get(s, [])):
                        lane(f"v_{s} = {code}")
                        lane(f"x_{s}[_l] = v_{s}")
                        self.lane_local.add(s)
                    else:
                        lane(f"x_{s}[_l] = {code}")
                else:
                    code = self.expr(e)
                    if (uses == 1 and s not in keep
                            and len(code) <= _INLINE_LEN
                            and paren_depth(code) <= _INLINE_DEPTH):
                        self.inline[s] = f"({code})"
                    else:
                        lane(f"v_{s} = {code}")
                        self.lane_local.add(s)
            if lane_stmts:
                emit("for _l in range(n):")
                for stmt in lane_stmts:
                    L.append("            " + stmt)
            # complements of accumulators used as packed selectors
            for s in sigs:
                if (exprs[s].width == 1 and s in nc_emit and accumulated(s)
                        and f"p_{s}" not in self.ncache):
                    emit(f"q_{s} = p_{s} ^ ONES")
                    self.ncache[f"p_{s}"] = f"q_{s}"

        # -- clock edge ----------------------------------------------------
        # Packed register updates read packed locals, which still hold the
        # pre-edge values, so the dict stores can happen immediately.
        for reg, sig in m.reg_next.items():
            if m.regs[reg].width != 1:
                continue
            if self._resolve_alias(sig) == reg:
                continue  # provably holds this cycle
            emit(f"pregs[{reg!r}] = p_{sig}")
        self.lane_local = set()
        self.inline = {}
        edge_exprs = self._edge_exprs()
        wide_next = [
            (reg, sig) for reg, sig in m.reg_next.items()
            if m.regs[reg].width != 1 and self._resolve_alias(sig) != reg
        ]
        edge_arrays = sorted({wr.array for wr in m.array_writes} | self._arrays_in(edge_exprs))
        for arr in edge_arrays:
            emit(f"al_{arr} = arrays[{arr!r}]")
        edge_names = [sig for _, sig in wide_next] + list(m.outputs.values())
        edge_reg_reads = {
            nm for nm in edge_names if nm in m.regs and m.regs[nm].width != 1
        }
        preload = self._wide_regs_in(m, edge_exprs) | edge_reg_reads | {r for r, _ in wide_next}
        for wreg in sorted(preload):
            emit(f"wr_{wreg} = wregs[{wreg!r}]")
        emit("outs = []")
        emit("_outs_append = outs.append")
        emit("for _l in range(n):")
        for arr in sorted(self._arrays_in(edge_exprs)):
            emit_lane(f"a_{arr} = al_{arr}[_l]")
        # 1. next register values, computed from pre-edge state
        for reg, sig in wide_next:
            emit_lane(f"_n_{reg} = {self.ref(sig)}")
        # 2. array write ports, in declaration order (old registers visible)
        for wr in m.array_writes:
            arr = m.arrays[wr.array]
            addr = self.expr(wr.addr)
            idx = addr if (1 << wr.addr.width) <= arr.size else f"{addr} % {arr.size}"
            emit_lane(f"if {self.bool_expr(wr.enable)}:")
            emit_lane(f"    al_{wr.array}[_l][{idx}] = {self.expr(wr.data)}")
        # 3. output ports (pre-edge register values, current-cycle signals)
        outs = ", ".join(f"{p!r}: {self.ref(sig)}" for p, sig in m.outputs.items())
        emit_lane("_outs_append({" + outs + "})")
        # 4. commit the new register values
        for reg, _ in wide_next:
            emit_lane(f"wr_{reg}[_l] = _n_{reg}")
        emit("return outs")

        # scratch buffers are allocated once per lane count by the factory
        # and bound as default arguments (plain fast locals in the step)
        header = ["def _make_batch_step(n):", "    ONES = (1 << n) - 1"]
        header += [f"    {b}_buf = [0] * n" for b in bufs]
        params = "".join(f", {b}={b}_buf" for b in bufs)
        header.append(f"    def _step(pregs, wregs, arrays, inputs{params}):")
        body = "\n".join(L) if L else "        pass"
        return _SIGNED_HELPER + "\n".join(header) + "\n" + body + "\n    return _step"


# ------------------------------------------------------------- specialization


def _fold_module(module: Module, binding: dict[str, int]) -> Module:
    """*module* with the bound registers replaced by constants, then
    re-optimized.  Architectural state (registers, arrays, ports) is
    preserved, so the folded module is a drop-in step-function source for
    any cycle on which every lane holds the bound values."""
    from repro.hdl.passes import run_pipeline

    def sub(e: HExpr) -> HExpr:
        if isinstance(e, HRef) and e.name in binding:
            return HConst(binding[e.name], e.width)
        if isinstance(e, HOp):
            return HOp(e.op, tuple(sub(a) for a in e.args), e.width, e.hi, e.lo, e.array)
        return e

    out = Module(module.name)
    out.inputs = dict(module.inputs)
    out.regs = dict(module.regs)
    out.arrays = dict(module.arrays)
    out.reg_next = dict(module.reg_next)
    out.outputs = dict(module.outputs)
    out.array_writes = list(module.array_writes)
    out._counter = module._counter
    out.comb = [(n, sub(e)) for n, e in module.comb]
    widths = dict(module.inputs)
    widths.update({name: r.width for name, r in module.regs.items()})
    for name, e in out.comb:
        widths[name] = e.width
    out._widths = widths
    return run_pipeline(out).module


def _dispatch_regs(module: Module, max_width: int = 4, max_regs: int = 4) -> list[str]:
    """Control registers worth specializing on: narrow registers compared
    against constants (FSM state codes, fall registers) plus heavily-read
    1-bit mode registers."""
    eq_regs: Counter = Counter()
    ref_count: Counter = Counter()
    for _, e in module.comb:
        for node in e.walk():
            if isinstance(node, HRef) and node.name in module.regs:
                ref_count[node.name] += 1
            if (isinstance(node, HOp) and node.op == "eq"
                    and isinstance(node.args[0], HRef)
                    and isinstance(node.args[1], HConst)):
                name = node.args[0].name
                if name in module.regs and 1 < module.regs[name].width <= max_width:
                    eq_regs[name] += 1
    picks = [name for name, _ in eq_regs.most_common(max_regs)]
    onebit = [
        name for name, cnt in ref_count.most_common()
        if name not in picks and module.regs[name].width == 1 and cnt >= 8
    ]
    return picks + onebit[: max_regs - len(picks)]


#: A folded body must shrink the combinational block at least this much
#: to be worth compiling.
_FOLD_THRESHOLD = 0.5

#: Bound on cached specialized bodies per module.
_MAX_BODIES = 16


class _BatchEntry:
    """All compiled batched artifacts for one module object."""

    def __init__(self, module: Module):
        gen = _BatchCodeGen(module)
        self.source = gen.generate()
        namespace: dict = {}
        exec(compile(self.source, f"<hdl-batch:{module.name}>", "exec"), namespace)  # noqa: S102
        self.factory: Callable[[int], Callable] = namespace["_make_batch_step"]
        self.steps: dict[int, Callable] = {}
        self.dispatch = _dispatch_regs(module)
        #: combo -> per-lane-count factory, or None when folding was refused
        self.bodies: dict[tuple, Optional["_BatchEntry._Body"]] = {}

    class _Body:
        def __init__(self, module: Module, source: str):
            self.module = module
            self.source = source
            namespace: dict = {}
            exec(compile(source, f"<hdl-batch:{module.name}:fold>", "exec"), namespace)  # noqa: S102
            self.factory = namespace["_make_batch_step"]
            self.steps: dict[int, Callable] = {}

        def step(self, n: int) -> Callable:
            fn = self.steps.get(n)
            if fn is None:
                fn = self.steps[n] = self.factory(n)
            return fn

    def step(self, n: int) -> Callable:
        fn = self.steps.get(n)
        if fn is None:
            fn = self.steps[n] = self.factory(n)
        return fn

    def body_for(self, module: Module, combo: tuple) -> Optional["_BatchEntry._Body"]:
        """The specialized body for a uniform *combo*, compiled lazily."""
        if combo in self.bodies:
            return self.bodies[combo]
        binding = {reg: v for reg, v in zip(self.dispatch, combo) if v is not None}
        body: Optional[_BatchEntry._Body] = None
        compiled = sum(1 for b in self.bodies.values() if b is not None)
        if binding and compiled < _MAX_BODIES:
            folded = _fold_module(module, binding)
            if len(folded.comb) <= _FOLD_THRESHOLD * max(len(module.comb), 1):
                body = self._Body(folded, _BatchCodeGen(folded).generate())
        self.bodies[combo] = body
        return body


def _batch_entry(module: Module) -> _BatchEntry:
    entry = _BATCH_CACHE.get(module)
    if entry is None:
        entry = _BatchEntry(module)
        _BATCH_CACHE.set(module, entry)
    return entry


# ----------------------------------------------------------------- simulator


InputLike = Union[None, dict, Sequence[Optional[dict]]]


class _LaneRegs:
    """Dict-like per-lane view of a :class:`BatchSimulator`'s registers,
    compatible with :attr:`repro.hdl.sim.Simulator.regs` consumers."""

    def __init__(self, sim: "BatchSimulator", lane: int):
        self._sim = sim
        self._lane = lane

    def __getitem__(self, name: str) -> int:
        return self._sim.get_reg(self._lane, name)

    def __setitem__(self, name: str, value: int) -> None:
        self._sim.set_reg(self._lane, name, value)

    def get(self, name: str, default: Optional[int] = None) -> Optional[int]:
        try:
            return self[name]
        except KeyError:
            return default

    def __contains__(self, name: str) -> bool:
        return name in self._sim.module.regs

    def __iter__(self):
        return iter(self._sim.module.regs)

    def __len__(self) -> int:
        return len(self._sim.module.regs)

    def items(self):
        return ((name, self[name]) for name in self)


class _LaneView:
    """One lane presented with the scalar :class:`Simulator` interface
    (``regs`` mapping, ``arrays`` dict of live per-lane stores)."""

    def __init__(self, sim: "BatchSimulator", lane: int):
        self.regs = _LaneRegs(sim, lane)
        self.arrays = {name: store[lane] for name, store in sim.arrays.items()}


class BatchSimulator:
    """N independent executions of one module, advanced together.

    State layout: 1-bit registers live *packed* in :attr:`pregs` (bit
    ``l`` = lane ``l``); wider registers in :attr:`wregs` as per-lane
    lists; arrays in :attr:`arrays` as per-lane sparse dicts.  Use
    :meth:`get_reg` / :meth:`set_reg` / :meth:`lane_view` for scalar
    access -- each lane is bit-identical, cycle for cycle, to a scalar
    :class:`~repro.hdl.sim.Simulator` over the same module.

    ``step`` takes either one input dict broadcast to every lane or a
    sequence of per-lane dicts, and returns the per-lane output-port
    dicts.  Pass ``optimize=False`` to batch the raw IR (the default
    mirrors :class:`Simulator` and runs the module through the shared
    optimization pipeline first).
    """

    def __init__(
        self,
        module: Module,
        lanes: int,
        optimize: bool = True,
        specialize: bool = True,
    ):
        if lanes < 1:
            raise ValueError(f"lane count must be >= 1, got {lanes}")
        if optimize:
            from repro.hdl.passes import optimize as _optimize

            module = _optimize(module)
        module.validate()
        self.module = module
        self.lanes = lanes
        self.cycles = 0
        self.specialize = specialize
        self._entry = _batch_entry(module)
        self._step = self._entry.step(lanes)
        self.source = self._entry.source
        self.pregs: dict[str, int] = {}
        self.wregs: dict[str, list[int]] = {}
        for r in module.regs.values():
            if r.width == 1:
                self.pregs[r.name] = ((1 << lanes) - 1) if (r.init & 1) else 0
            else:
                self.wregs[r.name] = [r.init] * lanes
        self.arrays: dict[str, list[dict[int, int]]] = {
            name: [{} for _ in range(lanes)] for name in module.arrays
        }
        self._ones = (1 << lanes) - 1
        self._empty_inputs = [{}] * lanes
        self._dispatch = [
            (name, module.regs[name].width == 1) for name in self._entry.dispatch
        ]

    # -- state access -------------------------------------------------------

    def get_reg(self, lane: int, name: str) -> int:
        reg = self.module.regs[name]
        if reg.width == 1:
            return (self.pregs[name] >> lane) & 1
        return self.wregs[name][lane]

    def set_reg(self, lane: int, name: str, value: int) -> None:
        reg = self.module.regs[name]
        value &= (1 << reg.width) - 1
        if reg.width == 1:
            bit = 1 << lane
            self.pregs[name] = (self.pregs[name] & ~bit) | (bit if value else 0)
        else:
            self.wregs[name][lane] = value

    def lane_view(self, lane: int) -> _LaneView:
        return _LaneView(self, lane)

    def lane_regs(self, lane: int) -> dict[str, int]:
        """A snapshot dict of one lane's registers."""
        return {name: self.get_reg(lane, name) for name in self.module.regs}

    def load_array(self, lane: int, name: str, data: Union[dict, list]) -> None:
        """Initialize one lane's array contents (e.g. program memory).

        Mutates the lane's store in place so live views of it (e.g. a
        :meth:`lane_view` held across the load) stay current.
        """
        arr = self.module.arrays[name]
        mask = (1 << arr.width) - 1
        items = enumerate(data) if isinstance(data, list) else data.items()
        store = self.arrays[name][lane]
        store.clear()
        store.update({i: v & mask for i, v in items if v & mask != arr.default})

    # -- running -----------------------------------------------------------

    def _lane_inputs(self, inputs: InputLike) -> Sequence[dict]:
        if inputs is None:
            return self._empty_inputs
        if isinstance(inputs, dict):
            return [inputs] * self.lanes
        if len(inputs) != self.lanes:
            raise ValueError(f"expected {self.lanes} per-lane inputs, got {len(inputs)}")
        return [d if d is not None else {} for d in inputs]

    def _uniform_combo(self) -> Optional[tuple]:
        vals = []
        some = False
        for name, onebit in self._dispatch:
            if onebit:
                p = self.pregs[name]
                if p == 0:
                    vals.append(0)
                    some = True
                elif p == self._ones:
                    vals.append(1)
                    some = True
                else:
                    vals.append(None)
            else:
                lst = self.wregs[name]
                v0 = lst[0]
                for v in lst:
                    if v != v0:
                        vals.append(None)
                        break
                else:
                    vals.append(v0)
                    some = True
        return tuple(vals) if some else None

    def step(self, inputs: InputLike = None) -> list[dict[str, int]]:
        """Advance every lane one clock cycle; returns per-lane outputs."""
        self.cycles += 1
        lane_inputs = self._lane_inputs(inputs)
        if self.specialize and self._dispatch:
            combo = self._uniform_combo()
            if combo is not None:
                body = self._entry.body_for(self.module, combo)
                if body is not None:
                    return body.step(self.lanes)(
                        self.pregs, self.wregs, self.arrays, lane_inputs
                    )
        return self._step(self.pregs, self.wregs, self.arrays, lane_inputs)

    def run(self, cycles: int, inputs: InputLike = None) -> list[dict[str, int]]:
        out: list[dict[str, int]] = [{} for _ in range(self.lanes)]
        for _ in range(cycles):
            out = self.step(inputs)
        return out

"""Lane-batched simulation: advance N independent machine states per call.

The scalar :class:`~repro.hdl.sim.Simulator` pays full Python
interpretation overhead for every machine it runs; randomized suites and
the evaluation driver run hundreds of independent simulations of the
*same* module.  :class:`BatchSimulator` compiles one *vectorized* step
function that advances ``n`` lanes at once, bit-identically to ``n``
scalar simulators, using three cooperating evaluation tiers:

**Packed world ("p")** -- every 1-bit signal whose whole expression tree
is 1-bit (the security-tag cone dominates compiled Sapper designs) is
held as a single integer with bit ``l`` = lane ``l``.  One Python ``&``
then advances all lanes of an AND gate at once; muxes become three
bitwise ops.  This is the classic bit-slicing transform, applied across
lanes instead of across a word.

**SWAR world ("w")** -- multi-bit signals up to
:data:`~repro.hdl.swar.SWAR_MAX_WIDTH` bits whose trees use only
SWAR-expressible operators (add/sub, bitwise, compares, constant shifts,
mux, extends, slices, cat) are packed ``n`` lanes per big integer, one
fixed-``pitch`` slot per lane with a guard band above the value bits
(:mod:`repro.hdl.swar`).  A single big-int ``+`` then advances all lanes
of an adder; compares use the guard-bit borrow trick and return either
slot-spaced flags (consumed by SWAR muxes) or lane-contiguous flags
(consumed by the packed tag world) -- layout conversions are a single
multiply, not a per-lane loop.  Registers in 2..33 bits live *packed* in
``sregs``; write-back from the SWAR world is one dict store.

**Scalar world ("s")** -- everything else (array reads, mul/div/mod,
variable shifts, >33-bit values) is evaluated per lane inside a ``for``
loop over lanes, exactly as the scalar simulator would, with per-lane
list buffers, hoisted loop-invariant reads, and boolean-context guard
emission.  Pack/unpack shims move values across the tier boundary:
scalar loops read packed signals with a shift-and-mask, and scalar
results feeding SWAR consumers are accumulated into packed form inside
the loop that computes them.

**Uniform-state fast path** -- when every lane agrees on the value of
the module's narrow control registers (FSM/fall registers), the step
dispatches to a *specialized* body: the module partially evaluated under
that binding and re-optimized by :func:`repro.hdl.passes.optimize`'s
pipeline.  Bodies are compiled lazily per observed state and cached;
bindings that fail to shrink the module are remembered and skipped.

**Majority-cohort dispatch** -- when lanes *disagree* on the control
registers, the step can still split the batch by dominant binding: the
majority cohort's state is gathered into cohort-packed words
(generalized compress/expand, O(log width) per word from a cached
per-mask schedule), stepped through the folded body at cohort width,
and mask-merged back, while only the minority runs the generic step.
Each compiled step records its state footprint so marshalling moves
exactly what the body reads and writes -- held registers travel in
neither direction.

**Lane compaction** -- :meth:`BatchSimulator.compact` retires lanes
mid-run (halted machines, exhausted budgets), repacking every piece of
state down to the survivors and re-entering the per-lane-count step
cache at the new width, so skewed workload suites keep full occupancy;
:attr:`BatchSimulator.active_lanes` maps compacted positions back to
construction-time lane ids.

All compiled artifacts are cached per (module object, engine flag) --
the same structural identity the :class:`~repro.toolchain.Toolchain`
keys its artifacts by -- so every ``BatchSimulator`` over one module
shares a single compilation.  Pass ``swar=False`` to disable the SWAR
tier and fall back to the two-tier packed/per-lane engine (used by the
benchmark suite to measure the SWAR tier's speedup).
"""

from __future__ import annotations

from collections import Counter
from time import perf_counter
from collections.abc import Callable, Sequence

from repro.hdl.ir import HConst, HExpr, HOp, HRef, Module, significant_bits
from repro.hdl.passes.base import WeakIdMemo
from repro.hdl.sim import _SIGNED_HELPER, _CodeGen, paren_depth
from repro.hdl.swar import SWAR_MAX_WIDTH, get_layout

#: Ops that close over the packed (1-bit lane-sliced) world.
_PACK_OPS = frozenset(
    ["and", "or", "xor", "not", "mux", "land", "lor", "lnot",
     "eq", "ne", "add", "sub", "neg", "slice", "zext", "sext"]
)

#: Ops whose scalar code is a Python comparison/boolean expression that
#: can be used directly in boolean context (mux guards, accumulators).
_BOOL_OPS = frozenset(
    ["eq", "ne", "lt", "le", "gt", "ge", "lts", "les", "gts", "ges",
     "land", "lor", "lnot"]
)

#: Comparison operators the SWAR tier implements with guard-bit tricks.
_CMP_OPS = frozenset(["eq", "ne", "lt", "le", "gt", "ge", "lts", "les", "gts", "ges"])
_SIGNED_CMPS = frozenset(["lts", "les", "gts", "ges"])

_INLINE_LEN = 4000
_INLINE_DEPTH = 90

#: module -> {swar flag -> _BatchEntry} with every compiled artifact.
_BATCH_CACHE = WeakIdMemo()


# ------------------------------------------------------- cohort bit movement
#
# Lane compaction and majority-cohort dispatch both move per-lane state
# between a full-width word and a cohort-packed word.  For a cohort
# described by a bit mask, the classic generalized compress/expand
# (Hacker's Delight 7-4/7-5) does this in O(log width) big-int
# operations per word -- independent of cohort size -- from a mask
# schedule computed once per cohort pattern and cached.


def _pext_plan(mask: int, width: int) -> list[int]:
    """The per-step move masks for compress/expand over *width* bits."""
    full = (1 << width) - 1
    m = mask & full
    mk = (~mask << 1) & full
    steps: list[int] = []
    for i in range(max(1, (width - 1).bit_length())):
        mp = mk
        shift = 1
        while shift < width:
            mp ^= (mp << shift) & full
            shift <<= 1
        mv = mp & m
        steps.append(mv)
        m = (m ^ mv) | (mv >> (1 << i))
        mk &= ~mp
    return steps


def _pext(x: int, mask: int, steps: Sequence[int]) -> int:
    """Bits of *x* at the set positions of *mask*, packed to the low end."""
    x &= mask
    for i, mv in enumerate(steps):
        t = x & mv
        x = (x ^ t) | (t >> (1 << i))
    return x


def _pdep(x: int, mask: int, steps: Sequence[int]) -> int:
    """Low bits of *x* scattered to the set positions of *mask*."""
    for i in range(len(steps) - 1, -1, -1):
        mv = steps[i]
        x = (x & ~mv) | ((x << (1 << i)) & mv)
    return x & mask


class _CohortPlan:
    """Gather/scatter schedule for one cohort of lanes.

    Lane-contiguous words (the packed 1-bit tag world) and slot-spaced
    words (SWAR ``sregs``) both repack through the same schedule: the
    slot mask is the lane mask with every set bit widened to a full
    slot, so whole slots travel intact and in lane order.  Small
    cohorts skip the log-step schedule for a plain positions loop,
    which is cheaper below a handful of lanes.
    """

    _LOOP_MAX = 4

    def __init__(self, mask: int, lanes: int, pitch: int):
        self.mask = mask
        self.positions = [lane for lane in range(lanes) if (mask >> lane) & 1]
        self.k = len(self.positions)
        self.inv = ((1 << lanes) - 1) ^ mask
        self._steps = None if self.k <= self._LOOP_MAX else _pext_plan(mask, lanes)
        self.pitch = pitch
        if pitch:
            slot = (1 << pitch) - 1
            smask = 0
            for lane in self.positions:
                smask |= slot << (lane * pitch)
            self.smask = smask
            self.sinv = ((1 << (lanes * pitch)) - 1) ^ smask
            self._slot = slot
            self._ssteps = (
                None if self._steps is None else _pext_plan(smask, lanes * pitch)
            )

    # lane-contiguous words (bit l = lane l)

    def gather(self, x: int) -> int:
        if self._steps is None:
            out = 0
            for i, lane in enumerate(self.positions):
                out |= ((x >> lane) & 1) << i
            return out
        return _pext(x, self.mask, self._steps)

    def scatter(self, x: int) -> int:
        if self._steps is None:
            out = 0
            for i, lane in enumerate(self.positions):
                out |= ((x >> i) & 1) << lane
            return out
        return _pdep(x, self.mask, self._steps)

    # slot-spaced words (lane l occupies bits [l * pitch, (l+1) * pitch))

    def sgather(self, x: int) -> int:
        if self._ssteps is None:
            pitch, slot = self.pitch, self._slot
            out = 0
            for i, lane in enumerate(self.positions):
                out |= ((x >> (lane * pitch)) & slot) << (i * pitch)
            return out
        return _pext(x, self.smask, self._ssteps)

    def sscatter(self, x: int) -> int:
        if self._ssteps is None:
            pitch, slot = self.pitch, self._slot
            out = 0
            for i, lane in enumerate(self.positions):
                out |= ((x >> (i * pitch)) & slot) << (lane * pitch)
            return out
        return _pdep(x, self.smask, self._ssteps)


def _packable(e: HExpr) -> bool:
    for node in e.walk():
        if node.width != 1:
            return False
        if isinstance(node, HOp) and node.op not in _PACK_OPS:
            return False
    return True


def _swar_ok(e: HExpr, limit: int = SWAR_MAX_WIDTH) -> bool:
    """Can *e*'s whole tree be evaluated in guard-banded packed slots of
    at least ``limit + 1`` bits?

    Conservative by construction: anything rejected here falls back to
    the bit-exact per-lane loops, so a ``False`` costs speed, never
    correctness.  State-folded bodies pass the entry's fixed slot pitch
    as the limit, so re-optimization can never manufacture a packed
    signal wider than the shared state layout.
    """
    for node in e.walk():
        if node.width > limit:
            return False
        if not isinstance(node, HOp):
            continue
        op = node.op
        if op in ("add", "sub", "neg", "not", "cat"):
            # wide nodes mask/guard wider args away, but the 1-bit flag
            # emitter treats operands as flags and cannot narrow them
            if node.width == 1 and any(a.width != 1 for a in node.args):
                return False
        elif op in ("and", "or", "xor"):
            # the scalar semantics don't mask these, so wider args would
            # leak significant bits past the declared width
            if any(a.width > node.width for a in node.args):
                return False
        elif op == "mux":
            if node.args[0].width != 1:
                return False
            if any(a.width > node.width for a in node.args[1:]):
                return False
        elif op in ("zext", "sext"):
            if node.args[0].width > node.width:
                return False
        elif op == "slice":
            pass  # value-based in both emitters, any arg width works
        elif op in ("shl", "shr", "asr"):
            if not isinstance(node.args[1], HConst):
                return False
            if node.args[0].width != node.width:
                return False
        elif op in ("land", "lor", "lnot"):
            if any(a.width != 1 for a in node.args):
                return False
        elif op in _CMP_OPS:
            if op in _SIGNED_CMPS and (
                node.args[0].width != node.args[1].width or node.args[0].width == 1
            ):
                return False
        else:  # read, mul, div, mod -- per-lane fallback
            return False
    return True


# --------------------------------------------------------------------------- codegen


class _BatchCodeGen(_CodeGen):
    """Emits the hybrid packed/SWAR/scalar batched step function.

    The generated source defines ``_make_batch_step(n)`` returning a
    ``_step(pregs, wregs, sregs, arrays, inputs)`` closure; cross-phase
    lane buffers are allocated once per lane count as default arguments,
    and the SWAR masks for the module's slot layout are bound as factory
    locals (they depend only on the lane count).

    *pitch* and *resident* may be passed explicitly so that specialized
    (state-folded) bodies agree with the main body on the packed state
    layout -- both are properties of the stored machine state, not of
    one particular combinational block.
    """

    def __init__(
        self,
        module: Module,
        swar: bool = True,
        pitch: int | None = None,
        resident: frozenset | None = None,
    ):
        super().__init__(module)
        m = module
        self.swar = swar
        self._limit = (pitch - 1) if pitch else SWAR_MAX_WIDTH
        #: comb signal -> 'p' (packed 1-bit) | 'w' (wide tier) | 's' (scalar)
        self.kinds: dict[str, str] = {}
        #: any name -> has a packed (bit-per-lane) representation
        self.packed_src: dict[str, bool] = {}
        self.use_count: dict[str, int] = {}
        for r in m.regs.values():
            self.packed_src[r.name] = r.width == 1
        for name, w in m.inputs.items():
            self.packed_src[name] = w == 1
        for name, e in m.comb:
            self.kinds[name] = self._classify(e)
            self.packed_src[name] = e.width == 1
            for node in e.walk():
                if isinstance(node, HRef):
                    self.use_count[node.name] = self.use_count.get(node.name, 0) + 1
        self.exprs = dict(m.comb)

        # Demote SWAR signals that *mux over* wide scalar values back to
        # the scalar tier.  The SWAR mux is eager (both arms are fully
        # packed before masking) while the scalar emitter's mux is a
        # Python conditional that evaluates only the taken arm -- for
        # select cascades over expensive per-lane values (store
        # byte-merging over an array read, for example) laziness beats
        # packing.  Compares and arithmetic over scalar values stay in
        # the SWAR tier: their pack shim costs two ops per lane once,
        # against a whole per-lane evaluation saved.  Worklist-driven:
        # the wide names appearing in mux arms are collected once, and
        # each demotion propagates through a reverse index.
        if swar:
            arm_refs: dict[str, set[str]] = {}
            for name, e in m.comb:
                if self.kinds[name] != "w":
                    continue
                refs: set[str] = set()
                for node in e.walk():
                    if isinstance(node, HOp) and node.op == "mux" and node.width > 1:
                        for arm in node.args[1:]:
                            for ref in arm.walk():
                                if isinstance(ref, HRef) and ref.width > 1:
                                    refs.add(ref.name)
                if refs:
                    arm_refs[name] = refs
            by_ref: dict[str, list[str]] = {}
            for name, refs in arm_refs.items():
                for ref in refs:
                    by_ref.setdefault(ref, []).append(name)
            worklist = [
                name for name, refs in arm_refs.items()
                if any(self.kinds.get(r) == "s" for r in refs)
            ]
            while worklist:
                name = worklist.pop()
                if self.kinds[name] != "w":
                    continue
                self.kinds[name] = "s"
                worklist.extend(by_ref.get(name, ()))

        # Wide-tier state layout: which registers live in ``sregs``, and
        # (for SWAR) the shared slot pitch.  Both are overridable so the
        # vector tier can widen residency to 64 bits with no pitch.
        self.resident = resident if resident is not None else self._default_resident()
        self.pitch = pitch if pitch is not None else self._compute_pitch()

        # wide scalar signals / inputs whose packed form SWAR trees read
        self.sform_comb: set[str] = set()
        self.sform_inputs: set[str] = set()
        for name, e in m.comb:
            if self.kinds[name] != "w":
                continue
            for node in e.walk():
                if isinstance(node, HRef) and node.width > 1:
                    if self.kinds.get(node.name) == "s":
                        self.sform_comb.add(node.name)
                    elif node.name in m.inputs:
                        self.sform_inputs.add(node.name)

        self.pinline: dict[str, str] = {}   # packed single-use inlines
        self.winline: dict[str, str] = {}   # SWAR single-use inlines
        self.ncache: dict[str, str] = {}    # selector -> complement local
        self.dcache: dict[str, str] = {}    # name -> spread (slot-base) local
        self.mvcache: dict[tuple[str, int], str] = {}  # (flag, w) -> mask local
        self.dstore: set[str] = set()       # 1-bit w signals with d-form
        self.lane_local: set[str] = set()   # names bound to lane locals
        self._pool: dict[tuple, str] = {}
        self._pool_lines: list[str] = []
        self._sbmemo: dict[int, int] = {}   # significant-bits memo
        self._tmp = 0
        self._use_cp = self._use_sp = False
        self._pending: list[str] = []

    # -- tier classification / state layout (overridable) ------------------

    def _classify(self, e: HExpr) -> str:
        """Evaluation tier for one combinational expression tree."""
        if e.width == 1 and _packable(e):
            return "p"
        if self.swar and _swar_ok(e, self._limit):
            return "w"
        return "s"

    def _default_resident(self) -> frozenset:
        if not self.swar:
            return frozenset()
        return frozenset(
            r.name for r in self.module.regs.values()
            if 2 <= r.width <= SWAR_MAX_WIDTH
        )

    def _compute_pitch(self) -> int:
        if not self.swar:
            return 0
        # only what actually gets packed sizes the slots: nodes of
        # SWAR-classified trees (operands included) and the
        # slot-resident registers -- a 33-bit intermediate inside a
        # scalar-tier mul cone must not widen every packed word
        maxw = 1
        for name, e in self.module.comb:
            if self.kinds[name] != "w":
                continue
            for node in e.walk():
                if node.width <= SWAR_MAX_WIDTH:
                    maxw = max(maxw, node.width)
        for r in self.module.regs.values():
            if r.name in self.resident:
                maxw = max(maxw, r.width)
        return maxw + 1

    # -- scheduling --------------------------------------------------------

    def _schedule(self) -> None:
        m = self.module
        order = [n for n, _ in m.comb]
        deps = {
            name: [n.name for n in e.walk() if isinstance(n, HRef) and n.name in self.kinds]
            for name, e in m.comb
        }
        done: set[str] = set()
        phases: list[tuple[str, list[str]]] = []
        while len(done) < len(order):
            progress = False
            for kind in ("s", "w", "p"):
                grabbed: list[str] = []
                frontier = [n for n in order if n not in done and self.kinds[n] == kind
                            and all(d in done for d in deps[n])]
                while frontier:
                    grabbed.extend(frontier)
                    done.update(frontier)
                    frontier = [n for n in order if n not in done and self.kinds[n] == kind
                                and all(d in done for d in deps[n])]
                if grabbed:
                    phases.append((kind, grabbed))
                    progress = True
            if not progress:  # pragma: no cover - validate() rejects cycles
                raise ValueError(f"{m.name}: combinational cycle")
        self.phase_of = {}
        for i, (_, sigs) in enumerate(phases):
            for s in sigs:
                self.phase_of[s] = i
        self.consumers: dict[str, list[str]] = {}
        for name in order:
            for d in deps[name]:
                self.consumers.setdefault(d, []).append(name)
        # sink scalar signals into the latest scalar phase preceding their
        # first consumer: fewer wide values cross phases through buffers
        nphases = len(phases)
        for i in range(nphases - 1, -1, -1):
            kind, sigs = phases[i]
            if kind != "s":
                continue
            for s in list(sigs):
                limit = nphases - 1
                for c in self.consumers.get(s, []):
                    cp = self.phase_of[c]
                    limit = min(limit, cp if self.kinds[c] == "s" else cp - 1)
                best = i
                for j in range(limit, i, -1):
                    if phases[j][0] == "s":
                        best = j
                        break
                if best != i:
                    sigs.remove(s)
                    phases[best][1].append(s)
                    self.phase_of[s] = best
        pos = {name: k for k, name in enumerate(order)}
        for _, sigs in phases:
            sigs.sort(key=pos.__getitem__)
        self.phases = phases
        # names whose refs feed the clock edge (re-evaluated there);
        # next-value signals of registers that provably hold are not kept
        # alive -- their whole alias chain is skipped at the edge, so a
        # signal feeding only held registers is dead weight (this is what
        # keeps state-folded bodies from dragging every held register's
        # alias through the step)
        self.live_next = [
            (reg, sig) for reg, sig in m.reg_next.items()
            if self._resolve_alias(sig) != reg
        ]
        keep = set(m.outputs.values()) | {sig for _, sig in self.live_next}
        for wr in m.array_writes:
            for e in (wr.addr, wr.data, wr.enable):
                for node in e.walk():
                    if isinstance(node, HRef):
                        keep.add(node.name)
        self.keep = keep
        # scalar wide signals needing a per-lane buffer (cross a phase
        # boundary for scalar consumers or feed the edge)
        self.listed: set[str] = set()
        for name in order:
            if self.kinds[name] != "s" or self.exprs[name].width == 1:
                continue
            if name in keep or any(
                self.phase_of[c] != self.phase_of[name]
                for c in self.consumers.get(name, [])
                if self.kinds[c] == "s"
            ):
                self.listed.add(name)

    # -- SWAR mask / constant pool -----------------------------------------

    def _vm(self, w: int) -> str:
        return self._pooled(("v", w), f"VM{w}", f"_lay.vmask({w})")

    def _gm(self, w: int) -> str:
        return self._pooled(("g", w), f"GM{w}", f"_lay.gmask({w})")

    def _sm(self, w: int) -> str:
        return self._pooled(("s", w), f"SM{w}", f"_lay.smask({w})")

    def _unit(self) -> str:
        return self._pooled(("u",), "UNIT", "_lay.unit")

    def _kr(self, value: int, width: int) -> str:
        if value == 0:
            return "0"
        return self._pooled(
            ("k", value, width), f"KR{len(self._pool)}",
            f"_lay.replicate({value}, {width})",
        )

    def _pooled(self, key: tuple, name: str, expr: str) -> str:
        got = self._pool.get(key)
        if got is None:
            got = self._pool[key] = name
            self._pool_lines.append(f"    {name} = {expr}")
        return got

    def _sig_bits(self, e: HExpr) -> int:
        """Sound upper bound on *e*'s non-zero low bits (memoized)."""
        return significant_bits(e, None, self._sbmemo)

    def _fresh(self, code: str) -> str:
        self._tmp += 1
        name = f"_w{self._tmp}"
        self._pending.append(f"{name} = {code}")
        return name

    def _as_local(self, code: str) -> str:
        """*code* bound to a local unless it is already a bare name."""
        return code if code.isidentifier() or code == "0" else self._fresh(code)

    # -- packed expression emission ---------------------------------------

    def pref(self, name: str) -> str:
        inl = self.pinline.get(name)
        return inl if inl is not None else f"p_{name}"

    def pexpr(self, e: HExpr) -> str:
        if isinstance(e, HConst):
            return "ONES" if e.value else "0"
        if isinstance(e, HRef):
            return self.pref(e.name)
        a = [self.pexpr(c) for c in e.args]
        op = e.op
        if op in ("and", "land"):
            return f"({a[0]} & {a[1]})"
        if op in ("or", "lor"):
            return f"({a[0]} | {a[1]})"
        if op in ("xor", "ne", "add", "sub"):
            # 1-bit add/sub are xor
            return f"({a[0]} ^ {a[1]})"
        if op == "eq":
            return f"(({a[0]} ^ {a[1]}) ^ ONES)"
        if op in ("not", "lnot"):
            return f"({a[0]} ^ ONES)"
        if op in ("neg", "zext", "sext", "slice"):
            return a[0]
        if op == "mux":
            c = a[0]
            nc = self.ncache.get(c) or f"({c} ^ ONES)"
            if a[1] == "ONES":
                return c if a[2] == "0" else f"({c} | ({nc} & {a[2]}))"
            if a[2] == "0":
                return f"({c} & {a[1]})"
            if a[1] == "0":
                return f"({nc} & {a[2]})"
            if a[2] == "ONES":
                return f"({nc} | ({c} & {a[1]}))"
            return f"(({c} & {a[1]}) | ({nc} & {a[2]}))"
        raise ValueError(f"op {op!r} is not packable")  # pragma: no cover

    # -- SWAR expression emission ------------------------------------------
    #
    # Two value spaces cooperate here:
    #   * dform(e) -- 1-bit expressions as *slot-spaced* flags (one 0/1
    #     value at the base of every slot).  Compares produce this form
    #     natively via the guard-bit borrow trick; bitwise combination
    #     stays in the space; a flag's numeric value doubles as its
    #     packed 0/1 value, so zext/mux-data positions need no work.
    #   * wval(e) -- multi-bit expressions as canonical packed slots.
    # Lane-contiguous form (the packed tag world's layout) is produced
    # once per signal with a single compress when the p-world needs it.

    def _spread_flag(self, name: str) -> str:
        """Code converting the packed form of *name* to wide-tier flag
        form (SWAR: slot-spaced; vector: boolean ndarray)."""
        self._use_sp = True
        return f"_sp({self.pref(name)})"

    def _pack_flag(self, code: str) -> str:
        """Code converting a wide-tier flag back to lane-contiguous
        packed form (SWAR: compress; vector: packbits)."""
        self._use_cp = True
        return f"_cp({code})"

    def dref(self, name: str) -> str:
        """Slot-spaced flag form of the 1-bit signal *name*."""
        if self.kinds.get(name) == "w" and name in self.dstore:
            return f"d_{name}"
        got = self.dcache.get(name)
        if got is None:
            self._tmp += 1
            got = self.dcache[name] = f"dc_{self._tmp}"
            self._pending.append(f"{got} = {self._spread_flag(name)}")
        return got

    def dform(self, e: HExpr) -> str:
        if isinstance(e, HConst):
            return self._unit() if e.value else "0"
        if isinstance(e, HRef):
            return self.dref(e.name)
        op = e.op
        if op in _CMP_OPS:
            if all(a.width == 1 for a in e.args) and op in ("eq", "ne"):
                a = [self.dform(c) for c in e.args]
                code = f"({a[0]} ^ {a[1]})"
                return code if op == "ne" else f"({code} ^ {self._unit()})"
            return self._cmp_guards(e)
        a = [self.dform(c) for c in e.args] if op != "slice" else None
        if op in ("and", "land"):
            return f"({a[0]} & {a[1]})"
        if op in ("or", "lor"):
            return f"({a[0]} | {a[1]})"
        if op in ("xor", "add", "sub"):
            return f"({a[0]} ^ {a[1]})"
        if op in ("not", "lnot"):
            return f"({a[0]} ^ {self._unit()})"
        if op in ("neg", "zext", "sext", "cat"):
            return a[0]
        if op in ("shl", "shr", "asr"):
            # 1-bit shift by a constant: asr clamps to w-1 = 0 (identity),
            # shl/shr drop the only bit for any non-zero amount
            if op == "asr" or e.args[1].value == 0:
                return a[0]
            return "0"
        if op == "mux":
            s = self._as_local(a[0])
            return f"(({s} & {a[1]}) | (({s} ^ {self._unit()}) & {a[2]}))"
        if op == "slice":  # extract one bit out of a wide packed value
            if e.lo >= e.args[0].width:
                return "0"  # canonical operands have no bits up there
            v = self.wval(e.args[0])
            shifted = f"({v} >> {e.lo})" if e.lo else v
            return f"({shifted} & {self._unit()})"
        raise ValueError(f"op {op!r} has no slot-flag form")  # pragma: no cover

    def _cmp_guards(self, e: HOp) -> str:
        """Slot-spaced flag code for a comparison over packed values."""
        x, y = (self.wval(a) for a in e.args)
        m = max(a.width for a in e.args)
        op = e.op
        if op in _SIGNED_CMPS:
            sm = self._sm(m)
            x, y = f"({x} ^ {sm})", f"({y} ^ {sm})"
            op = {"lts": "lt", "les": "le", "gts": "gt", "ges": "ge"}[op]
        g = self._gm(m)
        if op in ("eq", "ne"):
            d = x if y == "0" else (y if x == "0" else f"({x} ^ {y})")
            if op == "eq":
                return f"((({g} - {d}) & {g}) >> {m})"
            return f"(((({g} - {d}) & {g}) ^ {g}) >> {m})"
        if op == "le":  # x <= y  <=>  no borrow in y - x
            return f"(((({y} | {g}) - {x}) & {g}) >> {m})"
        if op == "ge":
            return f"(((({x} | {g}) - {y}) & {g}) >> {m})"
        if op == "lt":  # x < y  <=>  borrow in x - y ... 2**m + x - y < 2**m
            return f"((((({x} | {g}) - {y}) & {g}) ^ {g}) >> {m})"
        if op == "gt":
            return f"((((({y} | {g}) - {x}) & {g}) ^ {g}) >> {m})"
        raise ValueError(op)  # pragma: no cover

    def wref(self, name: str) -> str:
        """Packed-slot value form of a wide signal/register/input."""
        inl = self.winline.get(name)
        if inl is not None:
            return inl
        return f"s_{name}"

    def _select_mask(self, d: str, w: int) -> str:
        """Slot-base flag local *d* expanded to a full *w*-bit value mask
        per selected slot, deduplicated per step (control flags select
        many muxes, so the same mask is requested over and over)."""
        got = self.mvcache.get((d, w))
        if got is None:
            got = self.mvcache[(d, w)] = self._fresh(f"(({d} << {w}) - {d})")
        return got

    def _wsel(self, sel: HExpr, w: int) -> str:
        """Mux selector as a full per-slot value mask of width *w*."""
        if isinstance(sel, HConst):
            return self._vm(w) if sel.value else "0"
        return self._select_mask(self._as_local(self.dform(sel)), w)

    def wval(self, e: HExpr) -> str:
        if e.width == 1:
            return self.dform(e)
        w = e.width
        if isinstance(e, HConst):
            return self._kr(e.value, w)
        if isinstance(e, HRef):
            return self.wref(e.name)
        op = e.op
        if op == "add":
            a, b = self.wval(e.args[0]), self.wval(e.args[1])
            # mask elision: when the sum provably cannot carry into the
            # guard bit, the slots stay canonical without the clamp
            if max(self._sig_bits(e.args[0]), self._sig_bits(e.args[1])) + 1 <= w:
                return f"({a} + {b})"
            return f"(({a} + {b}) & {self._vm(w)})"
        if op == "sub":
            a, b = self.wval(e.args[0]), self.wval(e.args[1])
            g = self._gm(max(w, e.args[0].width, e.args[1].width))
            return f"((({a} | {g}) - {b}) & {self._vm(w)})"
        if op == "neg":
            g = self._gm(max(w, e.args[0].width))
            return f"(({g} - {self.wval(e.args[0])}) & {self._vm(w)})"
        if op == "and":
            return f"({self.wval(e.args[0])} & {self.wval(e.args[1])})"
        if op == "or":
            return f"({self.wval(e.args[0])} | {self.wval(e.args[1])})"
        if op == "xor":
            return f"({self.wval(e.args[0])} ^ {self.wval(e.args[1])})"
        if op == "not":
            code = f"({self.wval(e.args[0])} ^ {self._vm(w)})"
            if e.args[0].width > w:
                code = f"({code} & {self._vm(w)})"
            return code
        if op == "mux":
            mv = self._wsel(e.args[0], w)
            a, b = self.wval(e.args[1]), self.wval(e.args[2])
            if b == "0":
                return f"({a} & {mv})"
            if a == "0":
                b = self._as_local(b)
                return f"({b} ^ ({b} & {mv}))"
            b = self._as_local(b)
            return f"({b} ^ (({a} ^ {b}) & {mv}))"
        if op == "zext":
            if e.args[0].width == 1:
                return self.dform(e.args[0])
            return self.wval(e.args[0])
        if op == "sext":
            wf = e.args[0].width
            if wf == 1:
                return self._select_mask(self._as_local(self.dform(e.args[0])), w)
            if wf >= w:
                return self.wval(e.args[0])
            m = self._sm(wf)
            return (f"(((({self.wval(e.args[0])} ^ {m}) | {self._gm(w)}) - {m})"
                    f" & {self._vm(w)})")
        if op == "slice":
            # flatten slice-of-slice to one shift and one mask, clamping
            # the effective width against *every* level's truncation:
            # canonical packed values carry no bits at or above their
            # width, and a mask reaching past pitch - lo would scoop up
            # the neighbouring lane's slot (the narrowing pass legally
            # shrinks operands under slices sized for the padded width)
            arg, lo, limit = e.args[0], e.lo, w
            while True:
                limit = min(limit, arg.width - lo)
                if not (isinstance(arg, HOp) and arg.op == "slice"):
                    break
                lo += arg.lo
                arg = arg.args[0]
            if limit <= 0:
                return "0"
            a = self.wval(arg)
            if lo == 0 and arg.width == w == limit:
                return a
            shifted = f"({a} >> {lo})" if lo else a
            return f"({shifted} & {self._vm(limit)})"
        if op == "cat":
            parts = []
            shift = 0
            for child in reversed(e.args):
                code = self.wval(child) if child.width > 1 else self.dform(child)
                parts.append(f"({code} << {shift})" if shift else code)
                shift += child.width
            return "(" + " | ".join(parts) + ")"
        if op in ("shl", "shr", "asr"):
            a = self.wval(e.args[0])
            k = e.args[1].value
            if op == "asr":
                k = min(k, w - 1)
            if k == 0:
                return a
            if op != "asr" and k >= w:
                return "0"
            if op == "shl":
                # mask elision: a value already fitting w - k bits cannot
                # spill into the guard band when shifted left by k
                if self._sig_bits(e.args[0]) <= w - k:
                    return f"({a} << {k})"
                return f"(({a} & {self._vm(w - k)}) << {k})"
            t = f"(({a} >> {k}) & {self._vm(w - k)})"
            if op == "shr":
                return t
            m = self._kr(1 << (w - 1 - k), w)
            return f"(((({t} ^ {m}) | {self._gm(w)}) - {m}) & {self._vm(w)})"
        raise ValueError(f"op {op!r} has no SWAR form")  # pragma: no cover

    # -- scalar expression emission ----------------------------------------

    def _lane_read(self, name: str, width: int) -> str:
        """Per-lane scalar read of a wide-tier signal or resident register."""
        return f"(s_{name} >> _lp) & {(1 << width) - 1}"

    def ref(self, name: str) -> str:
        inl = self.inline.get(name)
        if inl is not None:
            return inl
        if name in self.lane_local:
            return f"v_{name}"
        if self.packed_src.get(name):
            return f"((p_{name} >> _l) & 1)"
        if self.kinds.get(name) == "w":
            return f"({self._lane_read(name, self.exprs[name].width)})"
        if name in self.listed:
            return f"x_{name}[_l]"
        if name in self.resident:
            return f"({self._lane_read(name, self.module.regs[name].width)})"
        if name in self.module.regs:
            return f"wr_{name}[_l]"
        if name in self.module.inputs:
            return f"wi_{name}[_l]"
        raise KeyError(name)  # pragma: no cover

    @staticmethod
    def _bool_safe(e: HExpr) -> bool:
        """Is the boolean-form code for *e* guaranteed to evaluate to a
        Python bool or a 0/1 int (so it can be used as a value)?"""
        if isinstance(e, HOp):
            if e.op in ("eq", "ne", "lt", "le", "gt", "ge",
                        "lts", "les", "gts", "ges", "lnot"):
                return True
            if e.op in ("land", "lor"):
                return all(_BatchCodeGen._bool_safe(a) for a in e.args)
        return e.width == 1

    def expr(self, e: HExpr) -> str:
        if isinstance(e, HOp):
            if e.op == "read":
                arr = self.module.arrays[e.array]
                addr = self.expr(e.args[0])
                if (1 << e.args[0].width) <= arr.size:
                    return f"a_{e.array}.get({addr}, {arr.default})"
                return f"a_{e.array}.get({addr} % {arr.size}, {arr.default})"
            if e.op == "mux":
                return (f"({self.expr(e.args[1])} if {self.bool_expr(e.args[0])}"
                        f" else {self.expr(e.args[2])})")
            # comparisons yield Python bools -- 0/1 ints, directly usable
            # as values (shifted, or-ed, stored) without a conditional
            if e.op in ("eq", "ne", "lt", "le", "gt", "ge",
                        "lts", "les", "gts", "ges"):
                return self.bool_expr(e)
            if e.op in ("land", "lor", "lnot"):
                if self._bool_safe(e):
                    return self.bool_expr(e)
                return f"(1 if {self.bool_expr(e)} else 0)"
        return super().expr(e)

    def bool_expr(self, e: HExpr) -> str:
        """*e* in Python boolean context (guards, enables, flags)."""
        if isinstance(e, HOp) and e.op in _BOOL_OPS:
            op = e.op
            if op in ("eq", "ne", "lt", "le", "gt", "ge"):
                a = [self.expr(c) for c in e.args]
                sym = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
                       "gt": ">", "ge": ">="}[op]
                return f"({a[0]} {sym} {a[1]})"
            if op in ("lts", "les", "gts", "ges"):
                a = [self.expr(c) for c in e.args]
                aw = [c.width for c in e.args]
                sym = {"lts": "<", "les": "<=", "gts": ">", "ges": ">="}[op]
                return f"(_s({a[0]}, {aw[0]}) {sym} _s({a[1]}, {aw[1]}))"
            if op == "land":
                return f"({self.bool_expr(e.args[0])} and {self.bool_expr(e.args[1])})"
            if op == "lor":
                return f"({self.bool_expr(e.args[0])} or {self.bool_expr(e.args[1])})"
            if op == "lnot":
                return f"(not {self.bool_expr(e.args[0])})"
        return self.expr(e)

    # -- helpers -----------------------------------------------------------

    def _edge_exprs(self) -> list[HExpr]:
        out: list[HExpr] = []
        for wr in self.module.array_writes:
            out += [wr.addr, wr.data, wr.enable]
        return out

    def _wide_regs_in(self, exprs: Sequence[HExpr]) -> set[str]:
        """Per-lane-list (non-resident) wide registers read by *exprs*."""
        module = self.module
        out = set()
        for e in exprs:
            for node in e.walk():
                if (isinstance(node, HRef) and node.name in module.regs
                        and module.regs[node.name].width != 1
                        and node.name not in self.resident):
                    out.add(node.name)
        return out

    @staticmethod
    def _arrays_in(exprs: Sequence[HExpr]) -> set[str]:
        out = set()
        for e in exprs:
            for node in e.walk():
                if isinstance(node, HOp) and node.op == "read":
                    out.add(node.array)
        return out

    def _resolve_alias(self, name: str) -> str:
        """Follow pure-ref combinational aliases to their source name."""
        seen = set()
        while name in self.exprs and name not in seen:
            seen.add(name)
            e = self.exprs[name]
            if isinstance(e, HRef):
                name = e.name
            else:
                break
        return name

    @staticmethod
    def _maybe_lp(stmts: list[str], pitch: int) -> list[str]:
        """Prepend the slot-offset local if any statement reads it."""
        if any("_lp" in s for s in stmts):
            return [f"_lp = _l * {pitch}"] + stmts
        return stmts

    # -- generation --------------------------------------------------------
    #
    # ``generate`` is decomposed into per-section emitters so a subclass
    # (the NumPy vector tier) can replace just the pieces whose lowering
    # differs -- input marshalling, the wide phase, per-lane reads, edge
    # write-back, the factory header -- while sharing the packed tag
    # world, the scheduler, and the overall step structure verbatim.

    def _emit(self, line: str) -> None:
        self._L.append("        " + line)

    def _emit_lane(self, line: str) -> None:
        self._L.append("            " + line)

    def _flush_pending(self) -> None:
        for line in self._pending:
            self._emit(line)
        self._pending.clear()

    def _accumulated(self, s: str) -> bool:
        """Does the 1-bit scalar-rooted signal *s* need packed form?"""
        return (
            any(k in ("p", "w") for k in self.cons_kind.get(s, []))
            or s in self.keep
            or any(self.phase_of[c] != self.phase_of[s]
                   for c in self.consumers.get(s, []))
        )

    def _prep_emission(self) -> None:
        m = self.module

        # complements of packed mux selectors referenced more than once
        ncount: Counter = Counter()
        for name, e in m.comb:
            if self.kinds[name] != "p":
                continue
            for node in e.walk():
                if not isinstance(node, HOp):
                    continue
                if node.op == "mux" and isinstance(node.args[0], HRef):
                    t, f = node.args[1], node.args[2]
                    if not (isinstance(f, HConst) and f.value == 0) and not (
                        isinstance(t, HConst) and t.value == 1
                    ):
                        ncount[node.args[0].name] += 1
                elif node.op in ("not", "lnot") and isinstance(node.args[0], HRef):
                    ncount[node.args[0].name] += 1
        self.nc_emit = {nm for nm, c in ncount.items() if c >= 2}

        self.cons_kind: dict[str, list[str]] = {}
        for cname, ce in m.comb:
            for node in ce.walk():
                if isinstance(node, HRef):
                    self.cons_kind.setdefault(node.name, []).append(self.kinds[cname])

        # transitively peel signals that feed only held registers (their
        # write-back is skipped, so the whole alias cone is dead weight;
        # state-folded bodies are mostly held registers)
        live_use = dict(self.use_count)
        dead: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, e in m.comb:
                if name in dead or live_use.get(name, 0) or name in self.keep:
                    continue
                dead.add(name)
                changed = True
                for node in e.walk():
                    if isinstance(node, HRef):
                        live_use[node.name] -= 1
        if dead:
            self.phases = [
                (kind, [s for s in sigs if s not in dead])
                for kind, sigs in self.phases
            ]

        # resident registers whose packed word the body actually reads
        edge_names = set(m.outputs.values()) | {sig for _, sig in self.live_next}
        for e in self._edge_exprs():
            for node in e.walk():
                if isinstance(node, HRef):
                    edge_names.add(node.name)
        self.used_sregs = sorted(
            r for r in self.resident
            if live_use.get(r) or r in edge_names
        )
        self.used_pregs = [
            r.name for r in m.regs.values()
            if r.width == 1 and (live_use.get(r.name) or r.name in edge_names)
        ]
        self._wreg_loads: set[str] = set()
        self._array_loads: set[str] = set()
        self._L: list[str] = []
        self._bufs: list[str] = []

    def _emit_state_loads(self) -> None:
        # packed registers and inputs into locals (only registers the
        # live body or the clock edge actually reads -- state-folded
        # bodies hold most registers, and the cohort-split dispatcher
        # gathers exactly this set when it marshals a cohort)
        for r in self.used_pregs:
            self._emit(f"p_{r} = pregs[{r!r}]")
        for r in self.used_pregs:
            if r in self.nc_emit:
                self._emit(f"q_{r} = p_{r} ^ ONES")
                self.ncache[f"p_{r}"] = f"q_{r}"
        for r in self.used_sregs:
            self._emit(f"s_{r} = sregs[{r!r}]")

    def _emit_input_marshal(self) -> None:
        m = self.module
        p_inputs = [nm for nm, w in m.inputs.items() if w == 1]
        w_inputs = [nm for nm, w in m.inputs.items() if w != 1]
        if not (p_inputs or w_inputs):
            return
        for nm in p_inputs:
            self._emit(f"p_{nm} = 0")
        for nm in sorted(self.sform_inputs):
            self._emit(f"s_{nm} = 0")
        for nm in w_inputs:
            self._bufs.append(f"wi_{nm}")
        in_stmts = ["_inp = inputs[_l]"]
        for nm in p_inputs:
            in_stmts.append(f"p_{nm} |= (_inp.get({nm!r}, 0) & 1) << _l")
        for nm in w_inputs:
            mask = (1 << m.inputs[nm]) - 1
            in_stmts.append(f"wi_{nm}[_l] = _inp.get({nm!r}, 0) & {mask}")
            if nm in self.sform_inputs:
                in_stmts.append(f"s_{nm} |= wi_{nm}[_l] << _lp")
        self._emit("for _l in range(n):")
        for stmt in self._maybe_lp(in_stmts, self.pitch):
            self._emit_lane(stmt)

    def generate(self) -> str:
        self._schedule()
        self._prep_emission()
        self._emit_state_loads()
        self._emit_input_marshal()
        for name in sorted(self.listed):
            self._bufs.append(f"x_{name}")
        for kind, sigs in self.phases:
            if kind == "p":
                self._emit_packed_phase(sigs)
            elif kind == "w":
                self._emit_wide_phase(sigs)
            else:
                self._emit_scalar_phase(sigs)
        self._emit_edge()
        self._record_footprint()
        return self._render()

    def _emit_packed_phase(self, sigs: list[str]) -> None:
        exprs, keep = self.exprs, self.keep
        for name in sigs:
            code = self.pexpr(exprs[name])
            if (self.use_count.get(name, 0) == 1 and name not in keep
                    and self.cons_kind.get(name) == ["p"]
                    and len(code) <= _INLINE_LEN
                    and paren_depth(code) <= _INLINE_DEPTH):
                self.pinline[name] = code
            else:
                self._emit(f"p_{name} = {code}")
                if name in self.nc_emit:
                    self._emit(f"q_{name} = p_{name} ^ ONES")
                    self.ncache[f"p_{name}"] = f"q_{name}"

    def _emit_wide_phase(self, sigs: list[str]) -> None:
        exprs, keep = self.exprs, self.keep
        for name in sigs:
            e = exprs[name]
            cons = self.cons_kind.get(name, [])
            if e.width == 1:
                # compares and mixed flag logic: slot-spaced
                # d-form feeds SWAR consumers; one compress per
                # signal feeds the packed/scalar worlds
                need_d = any(k == "w" for k in cons)
                need_p = (not need_d) or name in keep or any(
                    k in ("p", "s") for k in cons
                )
                code = self.dform(e)
                self._flush_pending()
                if need_d:
                    self.dstore.add(name)
                    self._emit(f"d_{name} = {code}")
                    code = f"d_{name}"
                if need_p:
                    self._emit(f"p_{name} = {self._pack_flag(code)}")
                    if name in self.nc_emit:
                        self._emit(f"q_{name} = p_{name} ^ ONES")
                        self.ncache[f"p_{name}"] = f"q_{name}"
            else:
                code = self.wval(e)
                self._flush_pending()
                if (self.use_count.get(name, 0) == 1 and name not in keep
                        and cons == ["w"]
                        and len(code) <= _INLINE_LEN
                        and paren_depth(code) <= _INLINE_DEPTH):
                    self.winline[name] = code
                else:
                    self._emit(f"s_{name} = {code}")

    def _sform_init(self, s: str) -> None:
        """Start the wide-tier accumulator for a scalar signal SWAR reads."""
        self._emit(f"s_{s} = 0")

    def _sform_accum(self, s: str) -> str:
        """Per-lane statement folding ``v_s`` into the wide-tier form."""
        return f"s_{s} |= v_{s} << _lp"

    def _scalar_phase_post(self, sigs: list[str]) -> None:
        """Hook after a scalar phase's lane loop (vector tier converts
        accumulated per-lane lists into ndarrays here)."""

    def _emit_scalar_phase(self, sigs: list[str]) -> None:
        # scalar phase: one loop over lanes
        m, exprs, keep = self.module, self.exprs, self.keep
        phase_set = set(sigs)
        body_exprs = [exprs[s] for s in sigs]
        for s in sigs:
            if exprs[s].width == 1 and self._accumulated(s):
                self._emit(f"p_{s} = 0")
            elif s in self.sform_comb:
                self._sform_init(s)
        for arr in sorted(self._arrays_in(body_exprs)):
            self._array_loads.add(arr)
            self._emit(f"al_{arr} = arrays[{arr!r}]")
        for wreg in sorted(self._wide_regs_in(body_exprs)):
            self._wreg_loads.add(wreg)
            self._emit(f"wr_{wreg} = wregs[{wreg!r}]")
        # hoist lane-loop reads used more than once in this phase
        ref_count: Counter = Counter()
        for s in sigs:
            for node in exprs[s].walk():
                if isinstance(node, HRef) and node.name not in phase_set:
                    ref_count[node.name] += 1
        self.lane_local = set()
        self.inline = {}
        hoists: list[str] = []
        for nm, cnt in sorted(ref_count.items()):
            if cnt < 2:
                continue
            if self.packed_src.get(nm) and nm not in phase_set:
                hoists.append(f"v_{nm} = (p_{nm} >> _l) & 1")
            elif self.kinds.get(nm) == "w" and nm not in phase_set:
                hoists.append(f"v_{nm} = {self._lane_read(nm, exprs[nm].width)}")
            elif nm in self.listed and nm not in phase_set:
                hoists.append(f"v_{nm} = x_{nm}[_l]")
            elif nm in self.resident:
                hoists.append(f"v_{nm} = {self._lane_read(nm, m.regs[nm].width)}")
            elif nm in m.regs and m.regs[nm].width != 1:
                hoists.append(f"v_{nm} = wr_{nm}[_l]")
            else:
                continue
            self.lane_local.add(nm)
        lane_stmts: list[str] = []
        lane = lane_stmts.append
        for arr in sorted(self._arrays_in(body_exprs)):
            lane(f"a_{arr} = al_{arr}[_l]")
        for h in hoists:
            lane(h)
        for s in sigs:
            e = exprs[s]
            uses = self.use_count.get(s, 0)
            if e.width == 1:
                if not self._accumulated(s):
                    code = self.expr(e)
                    if (uses == 1 and len(code) <= _INLINE_LEN
                            and paren_depth(code) <= _INLINE_DEPTH):
                        self.inline[s] = f"({code})"
                    else:
                        lane(f"v_{s} = {code}")
                        self.lane_local.add(s)
                elif any(k == "s" for k in self.cons_kind.get(s, [])):
                    lane(f"v_{s} = {self.expr(e)}")
                    lane(f"p_{s} |= v_{s} << _l")
                    self.lane_local.add(s)
                else:
                    lane(f"p_{s} |= {self.expr(e)} << _l")
            elif s in self.listed or s in self.sform_comb:
                code = self.expr(e)
                direct_store = (
                    s in self.listed
                    and s not in self.sform_comb
                    and not any(c in phase_set for c in self.consumers.get(s, []))
                )
                if direct_store:
                    lane(f"x_{s}[_l] = {code}")
                else:
                    lane(f"v_{s} = {code}")
                    self.lane_local.add(s)
                    if s in self.listed:
                        lane(f"x_{s}[_l] = v_{s}")
                    if s in self.sform_comb:
                        lane(self._sform_accum(s))
            else:
                code = self.expr(e)
                if (uses == 1 and s not in keep
                        and len(code) <= _INLINE_LEN
                        and paren_depth(code) <= _INLINE_DEPTH):
                    self.inline[s] = f"({code})"
                else:
                    lane(f"v_{s} = {code}")
                    self.lane_local.add(s)
        if lane_stmts:
            self._emit("for _l in range(n):")
            for stmt in self._maybe_lp(lane_stmts, self.pitch):
                self._emit_lane(stmt)
        # complements of accumulators used as packed selectors
        for s in sigs:
            if (exprs[s].width == 1 and s in self.nc_emit and self._accumulated(s)
                    and f"p_{s}" not in self.ncache):
                self._emit(f"q_{s} = p_{s} ^ ONES")
                self.ncache[f"p_{s}"] = f"q_{s}"
        self._scalar_phase_post(sigs)

    def _emit_res_pack(self, reg: str, sig: str) -> None:
        """Write back a resident register whose next value is wide-tier."""
        self._emit(f"sregs[{reg!r}] = s_{sig}")

    def _res_lane_init(self, reg: str) -> None:
        self._emit(f"ns_{reg} = 0")

    def _res_lane_accum(self, reg: str, sig: str) -> str:
        return f"ns_{reg} |= {self.ref(sig)} << _lp"

    def _res_lane_commit(self, reg: str) -> None:
        self._emit(f"sregs[{reg!r}] = ns_{reg}")

    def _port_store(self, arr: str, idx: str, data: str) -> list[str]:
        """Statements storing one array-write-port element for lane ``_l``.

        Hook point: the vector tier appends a mirror store into its dense
        ndarray backing alongside the canonical per-lane dict store.
        """
        return [f"al_{arr}[_l][{idx}] = {data}"]

    def _emit_edge(self) -> None:
        # -- clock edge ----------------------------------------------------
        # Packed register updates read packed locals, which still hold the
        # pre-edge values, so the dict stores can happen immediately; the
        # same holds for wide-resident registers whose next value lives in
        # a packed local (one dict store per register, not per lane).
        m = self.module
        for reg, sig in self.live_next:
            if m.regs[reg].width != 1:
                continue
            self._emit(f"pregs[{reg!r}] = p_{sig}")
        res_pack: list[tuple[str, str]] = []   # resident, packed next value
        res_lane: list[tuple[str, str]] = []   # resident, per-lane next value
        wide_next: list[tuple[str, str]] = []  # per-lane-list registers
        for reg, sig in self.live_next:
            if m.regs[reg].width == 1:
                continue
            if reg in self.resident:
                if self.kinds.get(sig) == "w" and sig not in self.winline:
                    res_pack.append((reg, sig))
                else:
                    res_lane.append((reg, sig))
            else:
                wide_next.append((reg, sig))
        self._res_pack, self._res_lane, self._wide_next = res_pack, res_lane, wide_next
        for reg, sig in res_pack:
            self._emit_res_pack(reg, sig)
        self.lane_local = set()
        self.inline = {}
        edge_exprs = self._edge_exprs()
        edge_arrays = sorted({wr.array for wr in m.array_writes} | self._arrays_in(edge_exprs))
        for arr in edge_arrays:
            self._array_loads.add(arr)
            self._emit(f"al_{arr} = arrays[{arr!r}]")
        out_names = list(m.outputs.values())
        edge_reg_reads = {
            nm for nm in ([sig for _, sig in wide_next] + out_names)
            if nm in m.regs and m.regs[nm].width != 1 and nm not in self.resident
        }
        preload = (self._wide_regs_in(edge_exprs) | edge_reg_reads
                   | {r for r, _ in wide_next})
        for wreg in sorted(preload):
            self._wreg_loads.add(wreg)
            self._emit(f"wr_{wreg} = wregs[{wreg!r}]")
        for reg, _ in res_lane:
            self._res_lane_init(reg)

        # Write ports fire on a handful of lanes most cycles.  When every
        # enable is a 1-bit name (which has a lane-contiguous packed
        # word) or a constant, each port iterates only its *set* enable
        # bits instead of testing all n lanes.  Lanes own their array
        # stores, so per-port loops preserve the per-lane declaration
        # order exactly.
        fast_ports = all(
            isinstance(wr.enable, HConst)
            or (isinstance(wr.enable, HRef) and wr.enable.width == 1)
            for wr in m.array_writes
        )
        ports_in_lane_loop = list(m.array_writes)
        if fast_ports:
            ports_in_lane_loop = []
            for wr in m.array_writes:
                arr = m.arrays[wr.array]
                addr = self.expr(wr.addr)
                idx = addr if (1 << wr.addr.width) <= arr.size else f"{addr} % {arr.size}"
                body = [f"a_{a} = al_{a}[_l]"
                        for a in sorted(self._arrays_in([wr.addr, wr.data]))]
                body.extend(self._port_store(wr.array, idx, self.expr(wr.data)))
                body = self._maybe_lp(body, self.pitch)
                if isinstance(wr.enable, HConst):
                    if wr.enable.value == 0:
                        continue
                    self._emit("for _l in range(n):")
                    for stmt in body:
                        self._emit_lane(stmt)
                else:
                    self._emit(f"_e = {self.pref(wr.enable.name)}")
                    self._emit("while _e:")
                    self._emit_lane("_lb = _e & -_e")
                    self._emit_lane("_l = _lb.bit_length() - 1")
                    self._emit_lane("_e ^= _lb")
                    for stmt in body:
                        self._emit_lane(stmt)

        self._emit("outs = []")
        self._emit("_outs_append = outs.append")
        edge_stmts: list[str] = []
        lane = edge_stmts.append
        if ports_in_lane_loop:
            for arr in sorted(self._arrays_in(edge_exprs)):
                lane(f"a_{arr} = al_{arr}[_l]")
        # 1. next register values, computed from pre-edge state
        for reg, sig in wide_next:
            lane(f"_n_{reg} = {self.ref(sig)}")
        for reg, sig in res_lane:
            lane(self._res_lane_accum(reg, sig))
        # 2. array write ports, in declaration order (old registers visible)
        for wr in ports_in_lane_loop:
            arr = m.arrays[wr.array]
            addr = self.expr(wr.addr)
            idx = addr if (1 << wr.addr.width) <= arr.size else f"{addr} % {arr.size}"
            lane(f"if {self.bool_expr(wr.enable)}:")
            for stmt in self._port_store(wr.array, idx, self.expr(wr.data)):
                lane(f"    {stmt}")
        # 3. output ports (pre-edge register values, current-cycle signals)
        outs = ", ".join(f"{p!r}: {self.ref(sig)}" for p, sig in m.outputs.items())
        lane("_outs_append({" + outs + "})")
        # 4. commit the new per-lane register values
        for reg, _ in wide_next:
            lane(f"wr_{reg}[_l] = _n_{reg}")
        self._emit("for _l in range(n):")
        for stmt in self._maybe_lp(edge_stmts, self.pitch):
            self._emit_lane(stmt)
        for reg, _ in res_lane:
            self._res_lane_commit(reg)
        self._emit("return outs")

    def _record_footprint(self) -> None:
        # the step's state footprint, consumed by the cohort-split
        # dispatcher: gather exactly what the body reads, merge back
        # exactly what it writes (held registers travel neither way)
        m = self.module
        self.reads_pregs = tuple(self.used_pregs)
        self.reads_sregs = tuple(self.used_sregs)
        self.reads_wregs = tuple(sorted(self._wreg_loads))
        self.writes_pregs = tuple(
            reg for reg, _ in self.live_next if m.regs[reg].width == 1
        )
        self.writes_sregs = tuple(reg for reg, _ in self._res_pack + self._res_lane)
        self.writes_wregs = tuple(reg for reg, _ in self._wide_next)
        self.used_arrays = tuple(sorted(self._array_loads))

    def _render(self) -> str:
        # scratch buffers are allocated once per lane count by the factory
        # and bound as default arguments (plain fast locals in the step);
        # SWAR masks depend only on the lane count and bind the same way
        header = ["def _make_batch_step(n):", "    ONES = (1 << n) - 1"]
        if self._pool_lines or self._use_cp or self._use_sp:
            header.append(f"    _lay = get_layout({self.pitch}, n)")
            if self._use_cp:
                header.append("    _cp = _lay.compressor()")
            if self._use_sp:
                header.append("    _sp = _lay.spreader()")
            header += self._pool_lines
        header += [f"    {b}_buf = [0] * n" for b in self._bufs]
        params = "".join(f", {b}={b}_buf" for b in self._bufs)
        header.append(f"    def _step(pregs, wregs, sregs, arrays, inputs{params}):")
        body = "\n".join(self._L) if self._L else "        pass"
        return _SIGNED_HELPER + "\n".join(header) + "\n" + body + "\n    return _step"


# ------------------------------------------------------------- specialization


def _fold_module(module: Module, binding: dict[str, int]) -> Module:
    """*module* with the bound registers replaced by constants, then
    re-optimized.  Architectural state (registers, arrays, ports) is
    preserved, so the folded module is a drop-in step-function source for
    any cycle on which every lane holds the bound values."""
    from repro.hdl.passes import run_pipeline

    def sub(e: HExpr) -> HExpr:
        if isinstance(e, HRef) and e.name in binding:
            return HConst(binding[e.name], e.width)
        if isinstance(e, HOp):
            return HOp(e.op, tuple(sub(a) for a in e.args), e.width, e.hi, e.lo, e.array)
        return e

    out = Module(module.name)
    out.inputs = dict(module.inputs)
    out.regs = dict(module.regs)
    out.arrays = dict(module.arrays)
    out.reg_next = dict(module.reg_next)
    out.outputs = dict(module.outputs)
    out.array_writes = list(module.array_writes)
    out._counter = module._counter
    out.comb = [(n, sub(e)) for n, e in module.comb]
    widths = dict(module.inputs)
    widths.update({name: r.width for name, r in module.regs.items()})
    for name, e in out.comb:
        widths[name] = e.width
    out._widths = widths
    return run_pipeline(out).module


def _dispatch_regs(module: Module, max_width: int = 4, max_regs: int = 4) -> list[str]:
    """Control registers worth specializing on: narrow registers compared
    against constants (FSM state codes, fall registers) plus heavily-read
    1-bit mode registers."""
    eq_regs: Counter = Counter()
    ref_count: Counter = Counter()
    for _, e in module.comb:
        for node in e.walk():
            if isinstance(node, HRef) and node.name in module.regs:
                ref_count[node.name] += 1
            if (isinstance(node, HOp) and node.op == "eq"
                    and isinstance(node.args[0], HRef)
                    and isinstance(node.args[1], HConst)):
                name = node.args[0].name
                if name in module.regs and 1 < module.regs[name].width <= max_width:
                    eq_regs[name] += 1
    picks = [name for name, _ in eq_regs.most_common(max_regs)]
    onebit = [
        name for name, cnt in ref_count.most_common()
        if name not in picks and module.regs[name].width == 1 and cnt >= 8
    ]
    return picks + onebit[: max_regs - len(picks)]


#: A folded body must shrink the combinational block at least this much
#: to be worth compiling.
_FOLD_THRESHOLD = 0.5

#: Bound on cached specialized bodies per module.
_MAX_BODIES = 16


class _Marshal:
    """State footprint of one compiled batched step function.

    The cohort-split dispatcher gathers the words a step *reads* into
    cohort-packed form and mask-merges back the words it *writes*;
    everything else stays in place untouched (held registers keep their
    full-width words, which is exactly the held semantics)."""

    __slots__ = ("reads_p", "reads_s", "reads_w",
                 "writes_p", "writes_s", "writes_w", "arrays")

    def __init__(self, gen: _BatchCodeGen):
        self.reads_p = gen.reads_pregs
        self.reads_s = gen.reads_sregs
        self.reads_w = gen.reads_wregs
        self.writes_p = gen.writes_pregs
        self.writes_s = gen.writes_sregs
        self.writes_w = gen.writes_wregs
        self.arrays = gen.used_arrays


class _BatchEntry:
    """All compiled batched artifacts for one (module, engine) pair.

    Subclassable per engine: :meth:`_make_gen` picks the code generator
    and :meth:`_namespace` the exec environment, so the vector tier
    reuses the whole body/dispatch machinery with a different lowering.
    """

    def __init__(self, module: Module, swar: bool = True):
        self.swar = swar
        gen = self._make_gen(module)
        self.kinds: dict[str, str] = dict(gen.kinds)
        self.resident = gen.resident
        self.source = gen.generate()
        self.marshal = _Marshal(gen)
        self.pitch = gen.pitch
        namespace = self._namespace()
        exec(compile(self.source, f"<hdl-batch:{module.name}>", "exec"), namespace)  # noqa: S102
        self.factory: Callable[[int], Callable] = namespace["_make_batch_step"]
        self.steps: dict[int, Callable] = {}
        self.dispatch = _dispatch_regs(module)
        #: combo -> per-lane-count factory, or None when folding was refused
        self.bodies: dict[tuple, _BatchEntry._Body | None] = {}

    def _make_gen(
        self,
        module: Module,
        pitch: int | None = None,
        resident: frozenset | None = None,
    ) -> _BatchCodeGen:
        return _BatchCodeGen(module, swar=self.swar, pitch=pitch, resident=resident)

    def _namespace(self) -> dict:
        return {"get_layout": get_layout}

    class _Body:
        def __init__(self, module: Module, source: str, marshal: _Marshal,
                     namespace: dict):
            self.module = module
            self.source = source
            self.marshal = marshal
            exec(compile(source, f"<hdl-batch:{module.name}:fold>", "exec"), namespace)  # noqa: S102
            self.factory = namespace["_make_batch_step"]
            self.steps: dict[int, Callable] = {}

        def step(self, n: int) -> Callable:
            fn = self.steps.get(n)
            if fn is None:
                fn = self.steps[n] = self.factory(n)
            return fn

    def step(self, n: int) -> Callable:
        fn = self.steps.get(n)
        if fn is None:
            fn = self.steps[n] = self.factory(n)
        return fn

    def body_for(self, module: Module, combo: tuple) -> _BatchEntry._Body | None:
        """The specialized body for a uniform *combo*, compiled lazily.

        The folded body is generated with the *entry's* slot pitch and
        resident-register set so it reads and writes exactly the same
        packed state layout as the generic step function.
        """
        if combo in self.bodies:
            return self.bodies[combo]
        binding = {reg: v for reg, v in zip(self.dispatch, combo) if v is not None}
        body: _BatchEntry._Body | None = None
        compiled = sum(1 for b in self.bodies.values() if b is not None)
        if binding and compiled < _MAX_BODIES:
            folded = _fold_module(module, binding)
            if len(folded.comb) <= _FOLD_THRESHOLD * max(len(module.comb), 1):
                gen = self._make_gen(folded, pitch=self.pitch, resident=self.resident)
                source = gen.generate()
                body = self._Body(folded, source, _Marshal(gen), self._namespace())
        self.bodies[combo] = body
        return body


def _cached_entry(module: Module, key: str, factory: Callable[[], _BatchEntry]) -> _BatchEntry:
    """The per-(module, engine) compiled-artifact cache behind every
    batched engine, keyed by engine name so the vector tier shares it."""
    entries = _BATCH_CACHE.get(module)
    if entries is None:
        entries = {}
        _BATCH_CACHE.set(module, entries)
    entry = entries.get(key)
    if entry is None:
        entry = entries[key] = factory()
    return entry


def _batch_entry(module: Module, swar: bool = True) -> _BatchEntry:
    return _cached_entry(
        module, "swar" if swar else "batch", lambda: _BatchEntry(module, swar)
    )


# ----------------------------------------------------------------- simulator


InputLike = None | dict | Sequence[dict | None]


class _LaneRegs:
    """Dict-like per-lane view of a :class:`BatchSimulator`'s registers,
    compatible with :attr:`repro.hdl.sim.Simulator.regs` consumers."""

    def __init__(self, sim: BatchSimulator, lane: int):
        self._sim = sim
        self._lane = lane

    def __getitem__(self, name: str) -> int:
        return self._sim.get_reg(self._lane, name)

    def __setitem__(self, name: str, value: int) -> None:
        self._sim.set_reg(self._lane, name, value)

    def get(self, name: str, default: int | None = None) -> int | None:
        try:
            return self[name]
        except KeyError:
            return default

    def __contains__(self, name: str) -> bool:
        return name in self._sim.module.regs

    def __iter__(self):
        return iter(self._sim.module.regs)

    def __len__(self) -> int:
        return len(self._sim.module.regs)

    def items(self):
        return ((name, self[name]) for name in self)


class _LaneView:
    """One lane presented with the scalar :class:`Simulator` interface
    (``regs`` mapping, ``arrays`` dict of live per-lane stores)."""

    def __init__(self, sim: BatchSimulator, lane: int):
        self.regs = _LaneRegs(sim, lane)
        self.arrays = {name: store[lane] for name, store in sim.arrays.items()}


class BatchSimulator:
    """N independent executions of one module, advanced together.

    State layout: 1-bit registers live *packed* in :attr:`pregs` (bit
    ``l`` = lane ``l``); registers of 2..33 bits live *slot-packed* in
    :attr:`sregs` (lane ``l`` occupies bits ``[l*pitch, l*pitch+width)``
    of one big integer); wider registers in :attr:`wregs` as per-lane
    lists; arrays in :attr:`arrays` as per-lane sparse dicts.  Use
    :meth:`get_reg` / :meth:`set_reg` / :meth:`lane_view` for scalar
    access -- each lane is bit-identical, cycle for cycle, to a scalar
    :class:`~repro.hdl.sim.Simulator` over the same module.

    ``step`` takes either one input dict broadcast to every lane or a
    sequence of per-lane dicts, and returns the per-lane output-port
    dicts.  Pass ``optimize=False`` to batch the raw IR (the default
    mirrors :class:`Simulator` and runs the module through the shared
    optimization pipeline first); pass ``swar=False`` to disable the
    SWAR tier and evaluate every multi-bit signal per lane (the PR-2
    engine, kept for benchmarking the SWAR tier against).

    **Lane compaction** -- :meth:`compact` drops retired lanes and
    repacks every piece of state (packed tag words, slot-packed
    ``sregs``, per-lane lists, array stores) down to the survivors, then
    re-enters the per-lane-count step-function cache at the new width,
    so skewed suites keep full occupancy.  ``retired`` names *current*
    lane positions; :attr:`active_lanes` maps current positions back to
    the lane ids the simulator was constructed with.  A *retire_when*
    predicate (``(sim, lane) -> bool``) makes :meth:`run` compact
    automatically.  Compaction invalidates previously created
    :meth:`lane_view` objects (lane positions shift).

    **Majority-cohort dispatch** -- when lanes disagree on the narrow
    control registers, the step splits the batch by dominant binding:
    the majority cohort runs the state-specialized (folded) body at
    cohort width with mask-merged write-back, and only the minority pays
    for the generic step.  On by default (*majority*); a cohort is split
    out when it covers at least :attr:`majority_fraction` of the lanes.
    The dispatcher is self-tuning: split steps are timed against a
    running estimate of the generic step, and a binding whose splits
    keep losing (on tag-cone-dominated designs both cohorts pay the
    lane-count-independent packed-world cost, so a split only wins when
    the folded body shrinks sharply) stops being split after a few
    trials; probes that find no dominant binding back off
    exponentially, so the probe cost vanishes on suites that never
    concentrate.  Timing only picks *which* bit-identical path runs --
    results never depend on it.
    """

    #: smallest share of lanes the dominant binding must cover before
    #: the step is split into specialized-majority + generic-minority
    majority_fraction = 0.5

    #: split trials per binding before its measured cost can retire it
    _SPLIT_TRIALS = 8

    #: bound on the failed-probe backoff (steps between probes)
    _MAX_BACKOFF = 32

    #: bound on cached cohort split plans (cleared by compaction)
    _MAX_PLANS = 128

    def __init__(
        self,
        module: Module,
        lanes: int,
        optimize: bool = True,
        specialize: bool = True,
        swar: bool = True,
        retire_when: Callable[["BatchSimulator", int], bool] | None = None,
        majority: bool = True,
    ):
        if lanes < 1:
            raise ValueError(f"lane count must be >= 1, got {lanes}")
        if optimize:
            from repro.hdl.passes import optimize as _optimize

            module = _optimize(module)
        module.validate()
        self.module = module
        self.lanes = lanes
        self.cycles = 0
        self.specialize = specialize
        self.swar = swar
        self.retire_when = retire_when
        self.majority = majority
        #: current lane position -> lane id at construction time
        self.active_lanes: list[int] = list(range(lanes))
        #: step counters: uniform fast path / cohort split / generic,
        #: plus compaction events and aggregate active lane-cycles
        self.uniform_steps = 0
        self.split_steps = 0
        self.generic_steps = 0
        self.compactions = 0
        self.lane_cycles = 0
        self._plans: dict[int, tuple[_CohortPlan, _CohortPlan]] = {}
        self._generic_time = 0.0            # EMA of one generic step
        self._split_stats: dict[tuple, list] = {}  # combo -> [trials, ema]
        self._majority_skip = 0             # failed-probe backoff countdown
        self._majority_backoff = 1
        self._entry = self._make_entry(module)
        self._step = self._entry.step(lanes)
        self.source = self._entry.source
        self.pitch = self._entry.pitch
        self._refresh_layout()
        self.pregs: dict[str, int] = {}
        self.sregs: dict = {}
        self.wregs: dict[str, list[int]] = {}
        for r in module.regs.values():
            if r.width == 1:
                self.pregs[r.name] = ((1 << lanes) - 1) if (r.init & 1) else 0
            elif r.name in self._entry.resident:
                self.sregs[r.name] = self._sreg_new(r)
            else:
                self.wregs[r.name] = [r.init] * lanes
        self.arrays: dict[str, list[dict[int, int]]] = {
            name: [{} for _ in range(lanes)] for name in module.arrays
        }
        #: optional lane-packed shadow-taint layer (see :meth:`attach_taint`)
        self.taint = None
        self._ones = (1 << lanes) - 1
        self._empty_inputs = [{}] * lanes
        self._dispatch = []
        for name in self._entry.dispatch:
            if module.regs[name].width == 1:
                self._dispatch.append((name, "p", 1))
            elif name in self._entry.resident:
                mask = (1 << module.regs[name].width) - 1
                self._dispatch.append((name, "w", mask))
            else:
                self._dispatch.append((name, "s", 0))

    # -- engine hooks -------------------------------------------------------
    #
    # Everything an engine generation does differently about the wide
    # (multi-bit resident) state representation funnels through these
    # methods: the SWAR defaults keep 2..33-bit registers slot-packed in
    # big integers, the vector tier overrides them to keep uint64
    # ndarrays.  ``step`` call sites and the dispatch machinery are
    # shared verbatim.

    def _make_entry(self, module: Module) -> _BatchEntry:
        return _batch_entry(module, self.swar)

    def _refresh_layout(self) -> None:
        self._layout = (
            get_layout(self.pitch, self.lanes) if self._entry.resident else None
        )

    def _sreg_new(self, reg):
        """Initial wide-resident state for one register, all lanes."""
        return self._layout.replicate(reg.init, reg.width)

    def _sreg_get(self, name: str, lane: int, width: int) -> int:
        return (self.sregs[name] >> (lane * self.pitch)) & ((1 << width) - 1)

    def _sreg_set(self, name: str, lane: int, width: int, value: int) -> None:
        self.sregs[name] = self._layout.set(self.sregs[name], lane, width, value)

    def _compact_sregs(self, keep: Sequence[int]) -> None:
        pitch = self.pitch
        for name, word in self.sregs.items():
            mask = (1 << self.module.regs[name].width) - 1
            self.sregs[name] = sum(
                (((word >> (lane * pitch)) & mask) << (i * pitch))
                for i, lane in enumerate(keep)
            )

    def _sreg_uniform(self, name: str, mask: int) -> int | None:
        """The shared value of *name* across lanes, or None if they differ."""
        word = self.sregs[name]
        v0 = word & mask
        if word == v0 * self._layout.unit:
            return v0
        return None

    def _sreg_column(self, name: str, mask: int) -> list[int]:
        word = self.sregs[name]
        pitch = self.pitch
        return [(word >> (lane * pitch)) & mask for lane in range(self.lanes)]

    def _make_plans(self, mask: int) -> tuple[_CohortPlan, _CohortPlan]:
        pitch = self.pitch if self.sregs else 0
        return (
            _CohortPlan(mask, self.lanes, pitch),
            _CohortPlan(mask ^ self._ones, self.lanes, pitch),
        )

    def _sreg_gather(self, plan: _CohortPlan, name: str):
        return plan.sgather(self.sregs[name])

    def _sreg_scatter(self, plan: _CohortPlan, name: str, sub) -> None:
        self.sregs[name] = (self.sregs[name] & plan.sinv) | plan.sscatter(sub)

    # -- state access -------------------------------------------------------

    @property
    def signal_tiers(self) -> dict[str, str]:
        """Combinational signal -> evaluation tier: ``'p'`` (packed
        1-bit), ``'w'`` (SWAR slots), or ``'s'`` (per-lane scalar)."""
        return dict(self._entry.kinds)

    def _check_lane(self, lane: int) -> int:
        """Validate a caller-facing lane index (current position).

        Without this, a negative index would silently wrap on the
        per-lane lists while reading garbage from the packed words, and
        an index past the (possibly compacted) lane count would silently
        read zeros from the packed words.
        """
        if not 0 <= lane < self.lanes:
            raise ValueError(
                f"lane {lane} out of range for {self.lanes} active lane(s)"
            )
        return lane

    def get_reg(self, lane: int, name: str) -> int:
        self._check_lane(lane)
        reg = self.module.regs[name]
        if reg.width == 1:
            return (self.pregs[name] >> lane) & 1
        if name in self.sregs:
            return self._sreg_get(name, lane, reg.width)
        return self.wregs[name][lane]

    def set_reg(self, lane: int, name: str, value: int) -> None:
        self._check_lane(lane)
        reg = self.module.regs[name]
        value &= (1 << reg.width) - 1
        if reg.width == 1:
            bit = 1 << lane
            self.pregs[name] = (self.pregs[name] & ~bit) | (bit if value else 0)
        elif name in self.sregs:
            self._sreg_set(name, lane, reg.width, value)
        else:
            self.wregs[name][lane] = value

    def attach_taint(self, sources=None, certificate=None, lane_masks=None):
        """Attach lane-packed shadow-taint tracking over the tainted cone.

        *sources* names the input ports that inject taint (or pass a
        precomputed :class:`~repro.analyze.taint.TaintCertificate` as
        *certificate*); *lane_masks* optionally restricts each source
        to a packed subset of lanes.  The static certificate prunes the
        shadow state up front: only statically tainted signals get a
        packed taint word, statically clean ones are dropped from the
        tag cone entirely (see ``self.taint.stats``).  Tracking is
        passive -- values, outputs, and every counter stay bit-identical
        with and without it.  The tracker advances with every
        :meth:`step` and repacks with every :meth:`compact`.
        """
        from repro.analyze.taint import PackedTaintTracker, compute_taint

        if certificate is None:
            if sources is None:
                raise ValueError("attach_taint() needs sources or a certificate")
            certificate = compute_taint(self.module, tuple(sources))
        self.taint = PackedTaintTracker(
            self.module, certificate, self.lanes, lane_masks
        )
        return self.taint

    def lane_view(self, lane: int) -> _LaneView:
        return _LaneView(self, self._check_lane(lane))

    def lane_regs(self, lane: int) -> dict[str, int]:
        """A snapshot dict of one lane's registers."""
        self._check_lane(lane)
        return {name: self.get_reg(lane, name) for name in self.module.regs}

    def load_array(self, lane: int, name: str, data: dict | list) -> None:
        """Initialize one lane's array contents (e.g. program memory).

        Mutates the lane's store in place so live views of it (e.g. a
        :meth:`lane_view` held across the load) stay current.
        """
        self._check_lane(lane)
        arr = self.module.arrays[name]
        mask = (1 << arr.width) - 1
        items = enumerate(data) if isinstance(data, list) else data.items()
        store = self.arrays[name][lane]
        store.clear()
        store.update({i: v & mask for i, v in items if v & mask != arr.default})

    # -- occupancy management ----------------------------------------------

    def compact(self, retired: Sequence[int] | None = None) -> list[int]:
        """Drop *retired* lanes and repack all state to the survivors.

        *retired* lists current lane positions (defaults to the lanes
        the *retire_when* predicate selects); duplicates and
        out-of-range positions raise ``ValueError``, as does retiring
        every lane -- at least one must survive.  Packed tag words,
        slot-packed ``sregs``, per-lane register lists, and per-lane
        array stores are all repacked in lane order; the step function
        re-enters the per-lane-count cache at the new width (compiled
        once per width, shared by every simulator over this module).
        Returns the construction-time ids of the retired lanes, and
        updates :attr:`active_lanes` for the survivors.
        """
        if retired is None:
            if self.retire_when is None:
                raise ValueError(
                    "compact() needs retired lanes or a retire_when predicate"
                )
            retired = [
                lane for lane in range(self.lanes) if self.retire_when(self, lane)
            ]
        retired = list(retired)
        seen: set[int] = set()
        for lane in retired:
            self._check_lane(lane)
            if lane in seen:
                raise ValueError(f"duplicate lane index {lane} in retired lanes")
            seen.add(lane)
        if not seen:
            return []
        if len(seen) == self.lanes:
            raise ValueError("cannot retire every lane; at least one must survive")
        keep = [lane for lane in range(self.lanes) if lane not in seen]
        k = len(keep)
        for name, word in self.pregs.items():
            self.pregs[name] = sum(
                ((word >> lane) & 1) << i for i, lane in enumerate(keep)
            )
        self._compact_sregs(keep)
        for name, lst in self.wregs.items():
            self.wregs[name] = [lst[lane] for lane in keep]
        for name, lst in self.arrays.items():
            self.arrays[name] = [lst[lane] for lane in keep]
        if self.taint is not None:
            self.taint.compact(keep)
        gone = [self.active_lanes[lane] for lane in sorted(seen)]
        self.active_lanes = [self.active_lanes[lane] for lane in keep]
        self.lanes = k
        self._ones = (1 << k) - 1
        self._empty_inputs = [{}] * k
        self._refresh_layout()
        self._step = self._entry.step(k)
        # lane-count-specific caches and cost estimates start over
        self._plans.clear()
        self._split_stats.clear()
        self._generic_time = 0.0
        self._majority_skip = 0
        self._majority_backoff = 1
        self.compactions += 1
        return gone

    # -- running -----------------------------------------------------------

    def _lane_inputs(self, inputs: InputLike) -> Sequence[dict]:
        if inputs is None:
            return self._empty_inputs
        if isinstance(inputs, dict):
            return [inputs] * self.lanes
        if len(inputs) != self.lanes:
            raise ValueError(f"expected {self.lanes} per-lane inputs, got {len(inputs)}")
        return [d if d is not None else {} for d in inputs]

    def _uniform_combo(self) -> tuple | None:
        vals = []
        some = False
        for name, mode, mask in self._dispatch:
            if mode == "p":
                p = self.pregs[name]
                if p == 0:
                    vals.append(0)
                    some = True
                elif p == self._ones:
                    vals.append(1)
                    some = True
                else:
                    vals.append(None)
            elif mode == "w":
                v0 = self._sreg_uniform(name, mask)
                vals.append(v0)
                if v0 is not None:
                    some = True
            else:
                lst = self.wregs[name]
                v0 = lst[0]
                for v in lst:
                    if v != v0:
                        vals.append(None)
                        break
                else:
                    vals.append(v0)
                    some = True
        return tuple(vals) if some else None

    def _lane_combos(self) -> list[tuple]:
        """Per-lane values of the dispatch registers."""
        n = self.lanes
        cols = []
        for name, mode, mask in self._dispatch:
            if mode == "p":
                word = self.pregs[name]
                cols.append([(word >> lane) & 1 for lane in range(n)])
            elif mode == "w":
                cols.append(self._sreg_column(name, mask))
            else:
                cols.append(self.wregs[name])
        return list(zip(*cols))

    def _majority_step(self, lane_inputs: Sequence[dict]) -> list | None:
        """Split the batch by dominant dispatch binding, if worthwhile.

        Returns the merged per-lane outputs, or ``None`` when no cohort
        dominates (the threshold keeps marshalling overhead off steps
        that could not win) or the dominant binding's folded body was
        refused.
        """
        n = self.lanes
        combos = self._lane_combos()
        combo, count = Counter(combos).most_common(1)[0]
        if count >= n or count < 2 or count < n * self.majority_fraction:
            return None
        stats = self._split_stats.get(combo)
        if (stats is not None and stats[0] >= self._SPLIT_TRIALS
                and self._generic_time and stats[1] > self._generic_time):
            return None  # measured: splitting this binding loses here
        body = self._entry.body_for(self.module, combo)
        if body is None:
            return None
        mask = 0
        for lane, c in enumerate(combos):
            if c == combo:
                mask |= 1 << lane
        plans = self._plans.get(mask)
        if plans is None:
            if len(self._plans) >= self._MAX_PLANS:
                self._plans.clear()
            plans = self._plans[mask] = self._make_plans(mask)
        t0 = perf_counter()
        outs = self._split_step(plans[0], plans[1], body, lane_inputs)
        dt = perf_counter() - t0
        if stats is None:
            stats = self._split_stats[combo] = [0, dt]
        stats[0] += 1
        stats[1] = stats[1] * 0.8 + dt * 0.2
        return outs

    def _split_step(
        self,
        maj: _CohortPlan,
        mino: _CohortPlan,
        body: _BatchEntry._Body,
        lane_inputs: Sequence[dict],
    ) -> list[dict[str, int]]:
        """One cycle as two cohorts with mask-merged write-back.

        Each cohort's pre-edge state is gathered into cohort-packed
        words, stepped at cohort width (the majority through the folded
        body, the minority through the generic step), and merged back
        under the cohort's lane mask.  The cohorts partition the lanes,
        so processing them sequentially is safe: a cohort's write-back
        only touches its own lanes' bits, slots, and list positions.
        """
        pregs, wregs = self.pregs, self.wregs
        arrays = self.arrays
        outs: list = [None] * self.lanes
        for plan, meta, step in (
            (maj, body.marshal, body.step(maj.k)),
            (mino, self._entry.marshal, self._entry.step(mino.k)),
        ):
            pos = plan.positions
            c_pregs = {r: plan.gather(pregs[r]) for r in meta.reads_p}
            c_sregs = {r: self._sreg_gather(plan, r) for r in meta.reads_s}
            c_wregs = {r: [wregs[r][lane] for lane in pos] for r in meta.reads_w}
            c_arrays = {a: [arrays[a][lane] for lane in pos] for a in meta.arrays}
            c_inputs = [lane_inputs[lane] for lane in pos]
            c_outs = step(c_pregs, c_wregs, c_sregs, c_arrays, c_inputs)
            for r in meta.writes_p:
                pregs[r] = (pregs[r] & plan.inv) | plan.scatter(c_pregs[r])
            for r in meta.writes_s:
                self._sreg_scatter(plan, r, c_sregs[r])
            for r in meta.writes_w:
                full, sub = wregs[r], c_wregs[r]
                for i, lane in enumerate(pos):
                    full[lane] = sub[i]
            for i, lane in enumerate(pos):
                outs[lane] = c_outs[i]
        return outs

    def step(self, inputs: InputLike = None) -> list[dict[str, int]]:
        """Advance every lane one clock cycle; returns per-lane outputs."""
        self.cycles += 1
        self.lane_cycles += self.lanes
        if self.taint is not None:
            self.taint.step()
        lane_inputs = self._lane_inputs(inputs)
        if self.specialize and self._dispatch:
            combo = self._uniform_combo()
            if combo is not None:
                body = self._entry.body_for(self.module, combo)
                if body is not None:
                    self.uniform_steps += 1
                    return body.step(self.lanes)(
                        self.pregs, self.wregs, self.sregs, self.arrays, lane_inputs
                    )
            if self.majority and self.lanes >= 3:
                if self._majority_skip:
                    self._majority_skip -= 1
                else:
                    outs = self._majority_step(lane_inputs)
                    if outs is not None:
                        self.split_steps += 1
                        self._majority_backoff = 1
                        return outs
                    self._majority_skip = self._majority_backoff
                    self._majority_backoff = min(
                        self._majority_backoff * 2, self._MAX_BACKOFF
                    )
        self.generic_steps += 1
        t0 = perf_counter()
        outs = self._step(self.pregs, self.wregs, self.sregs, self.arrays, lane_inputs)
        dt = perf_counter() - t0
        self._generic_time = (
            dt if not self._generic_time else self._generic_time * 0.9 + dt * 0.1
        )
        return outs

    def run(self, cycles: int, inputs: InputLike = None) -> list[dict[str, int]]:
        """Advance up to *cycles* cycles; returns the last per-lane outputs.

        With a *retire_when* predicate set, retired lanes are compacted
        away after every step (the returned list covers the surviving
        lanes, in :attr:`active_lanes` order); the run stops early once
        every remaining lane retires.
        """
        per_lane = not (inputs is None or isinstance(inputs, dict))
        if per_lane:
            inputs = list(inputs)  # aligned with current lane positions
        out: list[dict[str, int]] = [{} for _ in range(self.lanes)]
        for _ in range(cycles):
            out = self.step(inputs)
            if self.retire_when is not None:
                retired = [
                    lane for lane in range(self.lanes)
                    if self.retire_when(self, lane)
                ]
                if len(retired) == self.lanes:
                    break
                if retired:
                    gone = set(retired)
                    self.compact(retired)
                    out = [o for lane, o in enumerate(out) if lane not in gone]
                    if per_lane:  # keep the stimulus aligned with survivors
                        inputs = [
                            d for lane, d in enumerate(inputs) if lane not in gone
                        ]
        return out

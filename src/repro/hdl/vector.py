"""NumPy-vectorized native tier for the lane-batched simulator.

The fourth codegen tier: the dependency-scheduled step functions
:class:`~repro.hdl.batch._BatchCodeGen` produces are lowered to NumPy
``uint64`` arrays with **lanes as the vector axis** -- each multi-bit
signal is a ``(lanes,)`` ndarray, operators are elementwise ufuncs,
1-bit wide-tier signals are boolean arrays, and mux selects are
``np.where`` over boolean masks.  Lane packing, guard bits, and the
per-lane marshalling of the SWAR tier disappear from the hot path:
one ufunc call advances all lanes of an adder in C, with cost
amortized over the lane count instead of linear in it.

The packed 1-bit tag world is deliberately *kept* from the big-int
engine: a bitwise op on one n-bit Python integer is several times
faster than the same op on an n-element boolean ndarray for the lane
counts this simulator targets, and compiled Sapper designs are
dominated by their security-tag cone.  The vector tier therefore
replaces only the SWAR wide world; ``_ub``/``_pb`` convert between
packed words and boolean arrays at the (rare) tier boundaries.

Per-step fallback mirrors the SWAR tier's: any expression tree the
vector lowering cannot express exactly (>64-bit values, sparse array
read ports, non-canonical width mixes) drops to the bit-exact
per-lane scalar loops, which read vector-resident state through
hoisted ``.tolist()`` views.  Registers of 2..64 bits live as
``uint64`` ndarrays in ``sregs``; lane compaction re-slices them with
fancy indexing, and majority-cohort dispatch gathers/scatters cohorts
the same way instead of running ``_pext``/``_pdep`` bit schedules.

Generated step code treats every stored ndarray as an **immutable
value**: no in-place mutation, ever.  State mutation sites outside the
step (``set_reg``, cohort scatter) copy before writing, so write-back
aliasing (two registers latching the same signal's array) is harmless
without defensive copies on the hot path.

NumPy is an optional dependency: importing this module without it
leaves :data:`HAVE_NUMPY` false, and :class:`VectorSimulator` raises a
clear, actionable error instead of an ImportError traceback.
"""

from __future__ import annotations


from repro.hdl.batch import (
    _CMP_OPS,
    _INLINE_DEPTH,
    _INLINE_LEN,
    _SIGNED_CMPS,
    _BatchCodeGen,
    _BatchEntry,
    _CohortPlan,
    _cached_entry,
    _packable,
    BatchSimulator,
)
from repro.hdl.ir import HConst, HExpr, HOp, HRef, Module
from repro.hdl.sim import paren_depth

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via the gating tests
    np = None
    HAVE_NUMPY = False

#: Widest value the uint64 lowering can hold exactly.
VECTOR_MAX_WIDTH = 64

#: Largest array (elements) given a dense 2-D ndarray backing.  Small
#: arrays (register files, cache tag/data stores) are mirrored as
#: ``(lanes, size)`` uint64 ndarrays so their read cones vectorize as
#: one fancy-indexing gather per port; big sparse stores (main memory)
#: stay dict-only and their read cones fall back to the scalar tier.
DENSE_MAX = 4096

_NUMPY_HINT = (
    "the vector engine needs NumPy, which is not installed; "
    "install it (pip install numpy) or pick another engine "
    "(swar/batch)"
)


# ------------------------------------------------------- runtime helpers
#
# Injected into the generated step's namespace.  Each mirrors one scalar
# emitter semantic exactly (div-by-zero yields all-ones, mod-by-zero the
# dividend, shifts clamp instead of hitting the C shift-count UB), on
# whole lane vectors at a time.


def _vshl(a, k, w, m):
    """``(a << k) & m`` per lane, 0 where ``k >= w`` (scalar shl)."""
    ok = k < w
    ks = np.where(ok, k, 0)
    return np.where(ok, (a << ks) & m, 0)


def _vshr(a, k, w):
    """``a >> k`` per lane, 0 where ``k >= w`` (scalar shr)."""
    ok = k < w
    ks = np.where(ok, k, 0)
    return np.where(ok, a >> ks, 0)


def _vasr(a, k, w, m):
    """Arithmetic right shift of *w*-bit lanes by ``min(k, w - 1)``."""
    ks = np.minimum(k, np.uint64(w - 1))
    sb = np.uint64(1) << (np.uint64(w - 1) - ks)
    return (((a >> ks) ^ sb) - sb) & m


def _vdiv(x, y, m):
    """``(x // y) & m`` per lane; all-ones where ``y == 0``."""
    z = y == 0
    return np.where(z, m, (x // np.where(z, 1, y)) & m)


def _vmod(x, y):
    """``x % y`` per lane; the dividend where ``y == 0``."""
    z = y == 0
    return np.where(z, x, x % np.where(z, 1, y))


def _sv(x, w):
    """*w*-bit lanes of *x* as signed int64 values."""
    if w == 64:
        return np.asarray(x).view(np.int64)
    s = np.int64(1 << (w - 1))
    return (np.asarray(x).astype(np.int64) ^ s) - s


# ------------------------------------------------------- classification


def _dense_arrays(module: Module) -> frozenset:
    """Arrays small and narrow enough for the dense ndarray backing.

    A pure function of the module, so the codegen, the entry, and the
    simulator (and every specialized folded body -- ``_fold_module``
    preserves ``arrays``) agree on the set without plumbing.
    """
    return frozenset(
        name for name, arr in module.arrays.items()
        if arr.size <= DENSE_MAX and arr.width <= VECTOR_MAX_WIDTH
    )


def _vector_ok(e: HExpr, dense: frozenset = frozenset()) -> bool:
    """Can *e*'s whole tree be evaluated on uint64 lane vectors?

    Same conservative shape as :func:`repro.hdl.batch._swar_ok` -- a
    ``False`` costs speed (per-lane fallback), never correctness -- but
    the uint64 lowering additionally admits mul/div/mod and *variable*
    shift amounts, and runs all the way up to 64-bit values.  The width
    defenses are kept: every emitted value must stay canonical (no
    significant bits at or above its declared width), because the mask
    elision and the dtype both assume it.
    """
    low_mul: set = set()
    for node in e.walk():
        if (isinstance(node, HOp) and node.op == "slice"
                and node.lo + node.width <= VECTOR_MAX_WIDTH
                and isinstance(node.args[0], HOp) and node.args[0].op == "mul"
                and node.args[0].width > VECTOR_MAX_WIDTH
                and all(a.width <= VECTOR_MAX_WIDTH
                        for a in node.args[0].args)):
            # low-64 window of a doubled-width product (a MIPS-style
            # mult writing hi/lo): uint64 wraparound computes the low
            # 64 bits of the product exactly (two's complement), so the
            # over-wide mul node itself never needs to materialize
            low_mul.add(id(node.args[0]))
        if node.width > VECTOR_MAX_WIDTH and id(node) not in low_mul:
            return False
        if not isinstance(node, HOp):
            continue
        op = node.op
        if op in ("add", "sub", "neg", "not", "cat"):
            # wide nodes mask wider args away, but the 1-bit boolean
            # emitter treats operands as flags and cannot narrow them
            if node.width == 1 and any(a.width != 1 for a in node.args):
                return False
        elif op in ("mul", "div", "mod"):
            if node.width == 1:
                return False
            if op == "mod" and node.args[0].width > node.width:
                return False  # x % 0 = x could exceed the declared width
        elif op in ("and", "or", "xor"):
            # the scalar semantics don't mask these, so wider args would
            # leak significant bits past the declared width
            if any(a.width > node.width for a in node.args):
                return False
        elif op == "mux":
            if node.args[0].width != 1:
                return False
            if any(a.width > node.width for a in node.args[1:]):
                return False
        elif op == "zext":
            if node.args[0].width > node.width:
                return False  # scalar zext is an unmasked passthrough
        elif op == "sext":
            pass  # value-based and masked at every width mix
        elif op == "slice":
            pass
        elif op in ("shl", "shr", "asr"):
            # the clamp widths assume arg and node width agree (they do
            # in compiled designs); variable amounts are fine
            if node.args[0].width != node.width:
                return False
        elif op in ("land", "lor", "lnot"):
            if any(a.width != 1 for a in node.args):
                return False
        elif op in _CMP_OPS:
            pass  # signed compares handle per-arg widths via _sv
        elif op == "read":
            # densely-backed arrays gather with one fancy index; sparse
            # dict stores drop the cone to the per-lane fallback
            if node.array not in dense:
                return False
        else:  # pragma: no cover - no other ops reach the batched IR
            return False
    return True


# --------------------------------------------------------------- codegen


class _VectorCodeGen(_BatchCodeGen):
    """Emits the hybrid packed/vector/scalar batched step function.

    Subclasses the SWAR codegen and replaces exactly the wide tier: the
    ``wval``/``dform`` emitters produce ufunc expressions over uint64 /
    boolean lane arrays, flag conversion to and from the packed big-int
    tag world goes through ``packbits``/``unpackbits`` shims, per-lane
    scalar loops read vector values through hoisted ``.tolist()``
    views, and the clock edge writes ndarrays (not slot-packed words)
    into ``sregs``.  Scheduling, the packed world, the scalar world,
    inlining, dead-cone peeling, and the state footprint are all
    inherited verbatim.
    """

    def __init__(
        self,
        module: Module,
        pitch: int | None = None,
        resident: frozenset | None = None,
    ):
        self._xl_needed: set[str] = set()
        self.dense = _dense_arrays(module)
        self._local_memo: dict[str, str] = {}
        self._pbm_max = 0
        self._use_ubm = False
        self._used_R = False
        self._use_whr = False
        self._ucache: dict[str, str] = {}
        super().__init__(module, swar=True, pitch=pitch, resident=resident)

    # -- tier classification / state layout ---------------------------------

    def _classify(self, e: HExpr) -> str:
        if e.width == 1 and _packable(e):
            return "p"
        if _vector_ok(e, self.dense):
            return "w"
        return "s"

    def _default_resident(self) -> frozenset:
        return frozenset(
            r.name for r in self.module.regs.values()
            if 2 <= r.width <= VECTOR_MAX_WIDTH
        )

    def _compute_pitch(self) -> int:
        return 0  # no slot packing: lanes are the array axis

    # -- dense array backing -------------------------------------------------
    #
    # Dense arrays ride in ``sregs`` under reserved ``"a:" + name`` keys
    # (register names cannot contain a colon), which gives them lane
    # compaction, cohort gather/scatter, and footprint-aware marshalling
    # for free: ``_compact_sregs`` and the fancy-indexing gather both
    # select *rows* of a 2-D array exactly as they select elements of a
    # 1-D one.  The per-lane dicts in ``arrays`` remain the canonical
    # store (the scalar tier, ``lane_view``, and cross-validation read
    # them); the dense mirror is written through on every port store.

    def _emit_state_loads(self) -> None:
        super()._emit_state_loads()
        m = self.module
        self._dense_writes = sorted({
            wr.array for wr in m.array_writes
            if wr.array in self.dense
            and not (isinstance(wr.enable, HConst) and wr.enable.value == 0)
        })
        used = set(self._dense_writes)
        for kind, sigs in self.phases:
            if kind != "w":
                continue
            for s in sigs:
                for node in self.exprs[s].walk():
                    if (isinstance(node, HOp) and node.op == "read"
                            and node.array in self.dense):
                        used.add(node.array)
        self._dense_loads = sorted(used)
        for a in self._dense_loads:
            self._emit(f"ad_{a} = sregs[{'a:' + a!r}]")

    def _record_footprint(self) -> None:
        super()._record_footprint()
        # the dense mirrors travel with the cohort like resident
        # registers; written arrays are also read so the scatter-back
        # finds the gathered rows in place
        self.reads_sregs += tuple("a:" + a for a in self._dense_loads)
        self.writes_sregs += tuple("a:" + a for a in self._dense_writes)

    def _port_store(self, arr: str, idx: str, data: str) -> list[str]:
        stmts = super()._port_store(arr, idx, data)
        if arr in self.dense:
            stmts.append(f"ad_{arr}[_l, {idx}] = {data}")
        return stmts

    # -- local temps ---------------------------------------------------------

    def _as_local(self, code: str) -> str:
        """Memoized: the same emitted expression (a mux selector feeding
        many wheres, a repeated ``.astype`` of one flag) is computed once
        per step.  Safe because every vector-world name is assigned once
        per step body (packed/vector/scalar locals are all SSA)."""
        if code.isidentifier() or code == "0":
            return code
        got = self._local_memo.get(code)
        if got is None:
            got = self._local_memo[code] = self._fresh(code)
        return got

    # -- constant pool -------------------------------------------------------

    def _knp(self, value: int) -> str:
        """A pooled ``np.uint64`` scalar (plain int literals are only
        safe as the *second* operand of an array op; standalone values,
        mux arms, and where() branches must carry the dtype)."""
        return self._pooled(("vk", value), f"_K{len(self._pool)}", f"_U64({value})")

    def _kna(self, value: int) -> str:
        """A pooled full ``(n,)`` constant array.  ``np.where`` with two
        array arms is measurably cheaper than with a scalar arm (the
        scalar is broadcast-wrapped on every call), so where() branches
        pull constants from the pool; never mutated, like all stored
        vectors."""
        return self._pooled(
            ("vka", value), f"_F{len(self._pool)}", f"_np.full(n, {value}, _U64)"
        )

    def _btrue(self) -> str:
        return self._pooled(("bt",), "_TRUE", "_np.ones(n, _np.bool_)")

    def _bfalse(self) -> str:
        return self._pooled(("bf",), "_FALSE", "_np.zeros(n, _np.bool_)")

    # -- flag conversion shims ----------------------------------------------

    def _spread_flag(self, name: str) -> str:
        return f"_ub({self.pref(name)})"

    def _pack_flag(self, code: str) -> str:
        return f"_pb({code})"

    # -- boolean-array emission (1-bit wide-tier expressions) ----------------

    def dform(self, e: HExpr) -> str:
        if isinstance(e, HConst):
            return self._btrue() if e.value else self._bfalse()
        if isinstance(e, HRef):
            return self.dref(e.name)
        op = e.op
        if op in _CMP_OPS:
            if all(a.width == 1 for a in e.args) and op in ("eq", "ne"):
                a = [self.dform(c) for c in e.args]
                code = f"({a[0]} ^ {a[1]})"
                return code if op == "ne" else f"(~{code})"
            return self._cmp_vec(e)
        if op == "read":  # 1-bit dense array: gathered values are 0/1
            return f"({self._dense_read(e)} != 0)"
        if op == "slice":  # extract one bit out of a wide vector value
            if e.lo >= e.args[0].width:
                return self._bfalse()
            arg = e.args[0]
            if (isinstance(arg, HOp) and arg.op == "mul"
                    and arg.width > VECTOR_MAX_WIDTH):
                # low-64 bit of a doubled-width product (see _vector_ok)
                v = f"({self.vv(arg.args[0])} * {self.vv(arg.args[1])})"
            else:
                v = self.wval(arg)
            return f"(({v} & {self._knp(1 << e.lo)}) != 0)"
        if op in ("shl", "shr", "asr"):
            # 1-bit shift: asr clamps to w-1 = 0 (identity); shl/shr
            # drop the only bit for any non-zero amount
            if op == "asr":
                return self.dform(e.args[0])
            if isinstance(e.args[1], HConst):
                return self.dform(e.args[0]) if e.args[1].value == 0 else self._bfalse()
            k = self._as_local(self.wval(e.args[1]))
            return f"({self.dform(e.args[0])} & ({k} == 0))"
        if op == "mux" and not isinstance(e.args[0], HConst):
            t, f = self.dform(e.args[1]), self.dform(e.args[2])
            if t == f:
                return t
            return self._where(
                e.args[0], self._as_local(self.dform(e.args[0])), t, f
            )
        a = [self.dform(c) for c in e.args]
        if op in ("and", "land"):
            return f"({a[0]} & {a[1]})"
        if op in ("or", "lor"):
            return f"({a[0]} | {a[1]})"
        if op in ("xor", "add", "sub"):
            return f"({a[0]} ^ {a[1]})"
        if op in ("not", "lnot"):
            return f"(~{a[0]})"
        if op in ("neg", "zext", "sext", "cat"):
            return a[0]
        if op == "mux":
            return f"_np.where({a[0]}, {a[1]}, {a[2]})"
        raise ValueError(f"op {op!r} has no boolean-array form")  # pragma: no cover

    def _cmp_vec(self, e: HOp) -> str:
        """Boolean-array code for a comparison over vector values."""
        x, y = (self.vv(a) for a in e.args)
        op = e.op
        if op in _SIGNED_CMPS:
            x = f"_sv({x}, {e.args[0].width})"
            y = f"_sv({y}, {e.args[1].width})"
            op = {"lts": "lt", "les": "le", "gts": "gt", "ges": "ge"}[op]
        sym = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
               "gt": ">", "ge": ">="}[op]
        return f"({x} {sym} {y})"

    # -- uint64-array emission (multi-bit wide-tier expressions) -------------

    def vv(self, e: HExpr) -> str:
        """*e* as a uint64 lane vector (1-bit values as 0/1 uint64)."""
        if isinstance(e, HConst):
            return self._knp(e.value)  # np scalar: broadcasts, no alloc
        if e.width == 1:
            return self._as_local(f"({self.dform(e)}).astype(_U64)")
        return self.wval(e)

    def _varm(self, e: HExpr) -> str:
        """*e* as a ``np.where`` arm: constants come from the full-array
        pool instead of broadcasting a scalar per call."""
        if isinstance(e, HConst):
            return self._kna(e.value)
        return self.vv(e)

    def _bsel(self, sel: HExpr) -> str | None:
        """Mux selector as a boolean array, or None for a constant."""
        if isinstance(sel, HConst):
            return None
        return self._as_local(self.dform(sel))

    def wval(self, e: HExpr) -> str:
        if e.width == 1:
            return self.vv(e)
        w = e.width
        m = (1 << w) - 1
        if isinstance(e, HConst):
            return self._knp(e.value)
        if isinstance(e, HRef):
            return self.wref(e.name)
        op = e.op
        A = e.args
        if op == "add":
            a, b = self.vv(A[0]), self.vv(A[1])
            # mask elision: a sum that provably fits the width is
            # already canonical (and cannot wrap uint64, since w <= 64)
            if max(self._sig_bits(A[0]), self._sig_bits(A[1])) + 1 <= w:
                return f"({a} + {b})"
            return f"(({a} + {b}) & {m})"
        if op == "sub":
            # uint64 wraparound is two's complement: low w bits exact
            return f"(({self.vv(A[0])} - {self.vv(A[1])}) & {m})"
        if op == "neg":
            return f"((0 - {self.vv(A[0])}) & {m})"
        if op == "mul":
            a, b = self.vv(A[0]), self.vv(A[1])
            if self._sig_bits(A[0]) + self._sig_bits(A[1]) <= w:
                return f"({a} * {b})"
            return f"(({a} * {b}) & {m})"
        if op == "div":
            return f"_vdiv({self.vv(A[0])}, {self.vv(A[1])}, {self._knp(m)})"
        if op == "mod":
            return f"_vmod({self.vv(A[0])}, {self.vv(A[1])})"
        if op == "and":
            return f"({self.vv(A[0])} & {self.vv(A[1])})"
        if op == "or":
            return f"({self.vv(A[0])} | {self.vv(A[1])})"
        if op == "xor":
            return f"({self.vv(A[0])} ^ {self.vv(A[1])})"
        if op == "not":
            return f"((~{self.vv(A[0])}) & {m})"
        if op == "mux":
            if isinstance(A[0], HConst):
                return self.vv(A[1] if A[0].value else A[2])
            t, f = self._varm(A[1]), self._varm(A[2])
            if t == f:
                # write-enable networks emit one chain per register with
                # almost every arm equal to the old value; the identical
                # arms collapse bottom-up through the inlined links
                return t
            return self._where(A[0], self._bsel(A[0]), t, f)
        if op == "zext":
            return self.vv(A[0])
        if op == "sext":
            wf = A[0].width
            if wf == 1:
                s = self._bsel(A[0])
                if s is None:  # pragma: no cover - folded upstream
                    return self._knp(m if A[0].value else 0)
                return self._where(A[0], s, self._kna(m), self._kna(0))
            if wf == w:
                return self.vv(A[0])
            if wf > w:
                return f"({self.vv(A[0])} & {m})"
            return f"((({self.vv(A[0])} ^ {self._knp(1 << (wf - 1))}) - {1 << (wf - 1)}) & {m})"
        if op == "slice":
            # flatten slice-of-slice, clamping the effective width
            # against every level's truncation (canonical values carry
            # no bits at or above their width)
            arg, lo, limit = A[0], e.lo, w
            while True:
                limit = min(limit, arg.width - lo)
                if not (isinstance(arg, HOp) and arg.op == "slice"):
                    break
                lo += arg.lo
                arg = arg.args[0]
            if limit <= 0:
                return self._knp(0)
            if (isinstance(arg, HOp) and arg.op == "mul"
                    and arg.width > VECTOR_MAX_WIDTH):
                # low-64 window of a doubled-width product: wrapped
                # uint64 multiply is exact there (see _vector_ok), and
                # the window always needs the mask -- the wrapped
                # product fills all 64 bits
                prod = f"({self.vv(arg.args[0])} * {self.vv(arg.args[1])})"
                shifted = f"({prod} >> {lo})" if lo else prod
                if lo + limit >= VECTOR_MAX_WIDTH:
                    return shifted
                return f"({shifted} & {(1 << limit) - 1})"
            a = self.vv(arg)
            if lo == 0 and arg.width == w == limit:
                return a
            shifted = f"({a} >> {lo})" if lo else a
            # mask elision: extracting the topmost significant bits of a
            # canonical value leaves nothing above the slice to mask off
            if self._sig_bits(arg) <= lo + limit:
                return shifted
            return f"({shifted} & {(1 << limit) - 1})"
        if op == "cat":
            parts = []
            shift = 0
            cval = 0  # constant parts fold into one pooled scalar
            for child in reversed(A):
                if isinstance(child, HConst):
                    cval |= child.value << shift
                elif child.width == 1 and shift:
                    # bool * uint64-scalar promotes to uint64 in one
                    # ufunc call (vs astype-then-shift's two)
                    parts.append(f"({self.dform(child)} * {self._knp(1 << shift)})")
                else:
                    code = self.vv(child)
                    parts.append(f"({code} << {shift})" if shift else code)
                shift += child.width
            if cval or not parts:
                parts.append(self._knp(cval))
            return "(" + " | ".join(parts) + ")"
        if op in ("shl", "shr", "asr"):
            a = self.vv(A[0])
            if not isinstance(A[1], HConst):
                k = self.vv(A[1])
                # clamp elision: an amount that provably stays below the
                # width never triggers the k >= w => 0 semantics (nor
                # the C shift-count UB), so the np.where clamps drop
                kmax = (1 << self._sig_bits(A[1])) - 1
                if op == "shl":
                    if kmax < w:
                        if self._sig_bits(A[0]) + kmax <= w:
                            return f"({a} << {k})"
                        return f"(({a} << {k}) & {m})"
                    return f"_vshl({a}, {k}, {w}, {m})"
                if op == "shr":
                    if kmax < w:
                        return f"({a} >> {k})"
                    return f"_vshr({a}, {k}, {w})"
                return f"_vasr({a}, {k}, {w}, {m})"
            k = A[1].value
            if op == "asr":
                k = min(k, w - 1)
            if k == 0:
                return a
            if op != "asr" and k >= w:
                return self._knp(0)
            if op == "shl":
                # mask elision: a value already fitting w - k bits
                # cannot reach the masked-off range when shifted
                if self._sig_bits(A[0]) <= w - k:
                    return f"({a} << {k})"
                return f"(({a} << {k}) & {m})"
            if op == "shr":
                return f"({a} >> {k})"
            sb = 1 << (w - 1 - k)
            return f"(((({a} >> {k}) ^ {self._knp(sb)}) - {sb}) & {m})"
        if op == "read":
            return self._dense_read(e)
        raise ValueError(f"op {op!r} has no vector form")  # pragma: no cover

    def _dense_read(self, e: HOp) -> str:
        """All-lanes gather from a dense array backing; address wrap
        mirrors the scalar dict lookup's ``% size`` rule."""
        arr = self.module.arrays[e.array]
        idx = self.vv(e.args[0])
        if (1 << e.args[0].width) > arr.size:
            if arr.size & (arr.size - 1) == 0:
                idx = f"({idx} & {arr.size - 1})"
            else:
                idx = f"({idx} % {arr.size})"
        return f"ad_{e.array}[_R, {idx}]"

    # -- mux-chain gathering -------------------------------------------------
    #
    # Register files compiled without a read port lower to long priority
    # mux chains -- ``idx == 31 ? r31 : idx == 30 ? r30 : ... : 0`` --
    # which cost one np.where per arm.  When every selector in a chain
    # compares the *same* index expression against *distinct* constants,
    # the chain is semantically a table lookup: stack the arms once and
    # gather with one fancy index.  Chains sharing an arm set (two read
    # ports of one register file) also share the stacked table, because
    # ``_as_local`` memoizes by emitted code.

    # -- uniformity-gated selects --------------------------------------------
    #
    # Mode and handshake flags are frequently *uniform* across the lane
    # cohort for a whole step (every lane in the same bus state, no lane
    # raising an exception), and a ``np.where`` over a uniform selector
    # is pure waste: the result is an alias of one arm.  Each gated
    # select routes through ``_whr(u, d, t, f)`` where ``u`` is a 0 /
    # mixed / 2 uniformity tag computed once per selector per step --
    # from the selector's packed big-int form when one exists (two int
    # compares, ~30ns) or from a raw-bytes compare of the boolean array
    # (numpy bools are exactly 0/1 bytes, so ``tobytes`` against
    # all-zeros / all-ones decides uniformity in ~90ns -- 15x cheaper
    # than ``any``+``all`` reductions).  Mixed cohorts pay one extra
    # integer compare per select; uniform ones skip the where.

    _LAZY_LEN = 1200

    def _where(self, sel: HExpr, scode: str, t: str, f: str) -> str:
        u = self._uniform_tag(sel, scode)
        if u is None:
            return f"_np.where({scode}, {t}, {f})"
        if len(t) + len(f) <= self._LAZY_LEN:
            # conditional expression: the untaken arm's inline cone is
            # never evaluated; arm code is duplicated, so cap the size
            return (f"({t} if {u} == 2 else {f} if {u} == 0"
                    f" else _np.where({scode}, {t}, {f}))")
        # long arms become thunks: code appears once (no exponential
        # growth through nested chains) and a gated-out cone -- a whole
        # load-aligner or FPU path with no lane on it -- is skipped
        return f"_whl({u}, {scode}, lambda: {t}, lambda: {f})"

    def _uniform_tag(self, sel: HExpr, scode: str) -> str | None:
        if not scode.isidentifier():  # pragma: no cover - sites _as_local
            return None
        got = self._ucache.get(scode)
        if got is not None:
            return got
        packed = None
        if isinstance(sel, HRef) and not (
                self.kinds.get(sel.name) == "w" and sel.name in self.dstore):
            packed = self.pref(sel.name)
            if not packed.isidentifier():  # inlined packed expr: would
                packed = None              # re-evaluate the cone per tag
        if packed is not None:
            expr = f"0 if {packed} == 0 else (2 if {packed} == ONES else 1)"
        else:
            expr = f"_ut({scode})"
        self._use_whr = True
        u = self._ucache[scode] = self._fresh(expr)
        return u

    def _expr_key(self, e: HExpr) -> tuple:
        """Structural identity key (no emission side effects)."""
        if isinstance(e, HConst):
            return ("c", e.width, e.value)
        if isinstance(e, HRef):
            return ("r", e.width, e.name)
        return (
            ("o", e.op, e.width, getattr(e, "lo", None))
            + tuple(self._expr_key(a) for a in e.args)
        )

    def _sel_eq_const(self, sel: HExpr):
        """``(index_expr, k)`` if *sel* means ``index == k``, else None."""
        e = sel
        if isinstance(e, HRef):
            e = self.exprs.get(e.name)
            if e is None:
                return None
        if not (isinstance(e, HOp) and e.op == "eq"):
            return None
        a, b = e.args
        if isinstance(b, HConst) and not isinstance(a, HConst):
            return (a, b.value)
        if isinstance(a, HConst) and not isinstance(b, HConst):
            return (b, a.value)
        return None

    _GATHER_MIN = 8

    def _chain_members(self) -> set:
        """Mux signals consumed solely as another mux's else-tail.

        The optimizer emits priority chains one link per signal; gather
        detection follows those links, so firing it on the interior
        links too would build one dead table per link.  Only chain tops
        (everything that is *not* a member) attempt the transform.
        """
        got = getattr(self, "_chain_members_set", None)
        if got is None:
            got = set()
            for name, e in self.exprs.items():
                if not (self.kinds.get(name) == "w"
                        and isinstance(e, HOp) and e.op == "mux"):
                    continue
                t = e.args[2]
                if (isinstance(t, HRef) and self._chain_link(t) is not None):
                    got.add(t.name)
            self._chain_members_set = got
        return got

    def _chain_link(self, t: HRef) -> HOp | None:
        """*t*'s defining mux if it is a followable chain link."""
        if (self.kinds.get(t.name) == "w"
                and self.use_count.get(t.name, 0) == 1
                and t.name not in self.keep):
            e = self.exprs.get(t.name)
            if isinstance(e, HOp) and e.op == "mux":
                return e
        return None

    def _wide_sig_code(self, name: str, e: HExpr) -> str:
        if (isinstance(e, HOp) and e.op == "mux"
                and name not in self._chain_members()):
            g = self._mux_chain_code(e)
            if g is not None:
                return g
        return self.wval(e)

    def _mux_chain_code(self, e: HOp) -> str | None:
        """Shrink a priority mux chain, or None if nothing improves.

        The chain (one mux per link signal, followed through single-use
        refs) is analyzed as a whole.  When a suffix adjacent to the
        tail compares one index expression against distinct constants,
        its selectors are mutually exclusive, which licenses two
        rewrites the link-local emitters cannot see:

        * arms whose value is structurally the tail's are dropped --
          selecting one falls through every other (false) suffix arm to
          the very same value.  Register write networks emit one chain
          per register with *every* arm but one equal to the old value;
          they collapse to a single where each.
        * if the survivors still form a mostly-distinct, mostly-full
          small table over a constant tail, the suffix becomes one
          stacked gather (register-file read ports: one fancy index
          instead of 32 wheres).

        Validation is purely structural before anything is emitted: a
        bail-out must not leave dead temporaries behind.
        """
        w = e.width
        arms: list = []
        cur: HExpr = e
        while True:
            if isinstance(cur, HRef):
                nxt = self._chain_link(cur)
                if nxt is None or nxt.width != w:
                    break
                cur = nxt
                continue
            if (isinstance(cur, HOp) and cur.op == "mux" and cur.width == w
                    and not isinstance(cur.args[0], HConst)):
                arms.append((cur.args[0], cur.args[1]))
                cur = cur.args[2]
                continue
            break
        if len(arms) < 2:
            return None
        resolved = []
        for sel, _ in arms:
            rc = self._sel_eq_const(sel)
            resolved.append(
                None if rc is None
                else (self._expr_key(rc[0]), rc[0], rc[1])
            )
        start = len(arms)
        key0 = idx0 = None
        vals: set = set()
        for i in range(len(arms) - 1, -1, -1):
            r = resolved[i]
            if r is None:
                break
            key, idx, val = r
            if key0 is None:
                key0, idx0 = key, idx
            elif key != key0:
                break
            if val in vals:
                break  # duplicate constant: priority would matter
            vals.add(val)
            start = i
        suffix = arms[start:]
        if len(suffix) < 2:
            return None
        tail_key = self._expr_key(cur)
        kept = [  # (selector, arm, compared-against constant)
            (sel, arm, resolved[start + j][2])
            for j, (sel, arm) in enumerate(suffix)
            if self._expr_key(arm) != tail_key
        ]
        size = 1 << self._sig_bits(idx0)
        use_gather = (
            isinstance(cur, HConst)
            and size <= 64
            # arms comparing against values the (canonical) index can
            # never take are dead; require a mostly-full small table of
            # mostly-distinct rows
            and sum(v < size for _, _, v in kept) >= self._GATHER_MIN
            and len({self._expr_key(a) for _, a, _ in kept}) >= self._GATHER_MIN
        )
        if use_gather:
            rows_by_val = {v: arm for _, arm, v in kept}
            default = cur.value
            rows = []
            for v in range(size):
                arm = rows_by_val.get(v)
                if arm is None or isinstance(arm, HConst):
                    rows.append(self._kna(default if arm is None else arm.value))
                else:
                    rows.append(self.vv(arm))
            stk = self._as_local("_np.stack((" + ", ".join(rows) + "))")
            self._used_R = True
            code = f"{stk}[{self.vv(idx0)}, _R]"
        else:
            if len(kept) == len(suffix):
                return None  # nothing dropped: the plain emitters do as well
            code = self._varm(cur)
            for sel, arm, _ in reversed(kept):
                s = self._as_local(self.dform(sel))
                code = self._where(sel, s, self._varm(arm), code)
        for sel, arm in reversed(arms[:start]):
            s = self._as_local(self.dform(sel))
            code = self._where(sel, s, self._varm(arm), code)
        return code

    # -- wide phase: batched flag packing ------------------------------------

    def _emit_wide_phase(self, sigs: list) -> None:
        # Same structure as the base emitter, but the boolean->packed
        # compressions of a whole phase are deferred and fused into one
        # ``_pbm`` call: stacking k flag arrays and running packbits
        # once amortizes the per-call ndarray/bytes overhead that
        # dominates per-flag ``_pb``.  Deferral is safe because
        # same-phase consumers are wide-tier (they read the d-form,
        # which forces ``need_d`` and is still emitted in place) and
        # packed/scalar consumers run in later phases.
        exprs, keep = self.exprs, self.keep
        self._prime_unpacks(sigs)
        packs: list = []
        for name in sigs:
            e = exprs[name]
            cons = self.cons_kind.get(name, [])
            if e.width == 1:
                need_d = any(k == "w" for k in cons)
                need_p = (not need_d) or name in keep or any(
                    k in ("p", "s") for k in cons
                )
                code = self.dform(e)
                self._flush_pending()
                if need_d:
                    self.dstore.add(name)
                    self._emit(f"d_{name} = {code}")
                    code = f"d_{name}"
                if need_p:
                    packs.append((name, code))
            else:
                code = self._wide_sig_code(name, e)
                self._flush_pending()
                if (self.use_count.get(name, 0) == 1 and name not in keep
                        and cons == ["w"]
                        and len(code) <= _INLINE_LEN
                        and paren_depth(code) <= _INLINE_DEPTH):
                    self.winline[name] = code
                else:
                    self._emit(f"s_{name} = {code}")
        if len(packs) == 1:
            name, code = packs[0]
            self._emit(f"p_{name} = {self._pack_flag(code)}")
        elif packs:
            self._pbm_max = max(self._pbm_max, len(packs))
            names = ", ".join(f"p_{nm}" for nm, _ in packs)
            codes = ", ".join(code for _, code in packs)
            self._emit(f"{names} = _pbm(({codes},))")
        for name, _ in packs:
            if name in self.nc_emit:
                self._emit(f"q_{name} = p_{name} ^ ONES")
                self.ncache[f"p_{name}"] = f"q_{name}"

    def _prime_unpacks(self, sigs: list) -> None:
        """Batch the packed->boolean flag spreads a wide phase needs.

        ``dref`` lazily emits one ``_ub`` call per packed 1-bit signal a
        vector expression consumes; a pre-pass over the phase's trees
        finds them all up front and primes ``dcache`` from a single
        ``_ubm`` call (one ``unpackbits`` over the concatenated words),
        amortizing the per-flag ndarray/bytes overhead."""
        fresh: list[str] = []
        seen: set[str] = set()
        for name in sigs:
            for node in self.exprs[name].walk():
                if (isinstance(node, HRef) and node.width == 1
                        and node.name not in seen):
                    seen.add(node.name)
                    if (self.kinds.get(node.name) != "w"
                            and node.name not in self.dcache):
                        fresh.append(node.name)
        if len(fresh) < 2:
            return
        dcs = []
        for nm in fresh:
            self._tmp += 1
            dc = f"dc_{self._tmp}"
            self.dcache[nm] = dc
            dcs.append(dc)
        self._use_ubm = True
        srcs = ", ".join(self.pref(nm) for nm in fresh)
        self._emit(f"{', '.join(dcs)} = _ubm(({srcs},))")

    # -- scalar-world bridge -------------------------------------------------

    def _lane_read(self, name: str, width: int) -> str:
        """Scalar loops read vector state through a hoisted exact-int
        list view (spliced in by :meth:`_splice_xl`)."""
        self._xl_needed.add(name)
        return f"xl_{name}[_l]"

    def _splice_xl(self, mark: int) -> None:
        lines = [
            f"        xl_{nm} = _bk(s_{nm}).tolist()"
            for nm in sorted(self._xl_needed)
        ]
        self._L[mark:mark] = lines
        self._xl_needed = set()

    def _emit_scalar_phase(self, sigs: list[str]) -> None:
        self._xl_needed = set()
        mark = len(self._L)
        super()._emit_scalar_phase(sigs)
        self._splice_xl(mark)

    def _emit_edge(self) -> None:
        self._xl_needed = set()
        mark = len(self._L)
        super()._emit_edge()
        self._splice_xl(mark)

    def _sform_init(self, s: str) -> None:
        self._emit(f"sb_{s} = []")

    def _sform_accum(self, s: str) -> str:
        return f"sb_{s}.append(v_{s})"

    def _scalar_phase_post(self, sigs: list[str]) -> None:
        for s in sigs:
            if s in self.sform_comb:
                self._emit(f"s_{s} = _np.array(sb_{s}, _U64)")

    def _emit_input_marshal(self) -> None:
        m = self.module
        p_inputs = [nm for nm, w in m.inputs.items() if w == 1]
        w_inputs = [nm for nm, w in m.inputs.items() if w != 1]
        if not (p_inputs or w_inputs):
            return
        for nm in p_inputs:
            self._emit(f"p_{nm} = 0")
        for nm in w_inputs:
            self._bufs.append(f"wi_{nm}")
        in_stmts = ["_inp = inputs[_l]"]
        for nm in p_inputs:
            in_stmts.append(f"p_{nm} |= (_inp.get({nm!r}, 0) & 1) << _l")
        for nm in w_inputs:
            mask = (1 << m.inputs[nm]) - 1
            in_stmts.append(f"wi_{nm}[_l] = _inp.get({nm!r}, 0) & {mask}")
        self._emit("for _l in range(n):")
        for stmt in in_stmts:
            self._emit_lane(stmt)
        for nm in sorted(self.sform_inputs):
            self._emit(f"s_{nm} = _np.array(wi_{nm}, _U64)")

    # -- clock edge ---------------------------------------------------------

    def _emit_res_pack(self, reg: str, sig: str) -> None:
        # _bk guards the (constant-folded) corner where the next value
        # collapsed to one np scalar for every lane
        self._emit(f"sregs[{reg!r}] = _bk(s_{sig})")

    def _res_lane_init(self, reg: str) -> None:
        self._emit(f"ns_{reg} = []")

    def _res_lane_accum(self, reg: str, sig: str) -> str:
        return f"ns_{reg}.append({self.ref(sig)})"

    def _res_lane_commit(self, reg: str) -> None:
        self._emit(f"sregs[{reg!r}] = _np.array(ns_{reg}, _U64)")

    # -- rendering ----------------------------------------------------------

    def _render(self) -> str:
        from repro.hdl.sim import _SIGNED_HELPER

        header = [
            "def _make_batch_step(n):",
            "    ONES = (1 << n) - 1",
            "    _nb = (n + 7) >> 3",
            "    _U64 = _np.uint64",
            "    def _bk(x):",
            "        return x if getattr(x, 'shape', None) else _np.full(n, x)",
            "    def _ub(w):",
            "        return _np.unpackbits(_np.frombuffer(w.to_bytes(_nb,"
            " 'little'), _np.uint8), count=n, bitorder='little')"
            ".view(_np.bool_)",
            "    def _pb(v):",
            "        return int.from_bytes(_np.packbits(_bk(v),"
            " bitorder='little').tobytes(), 'little')",
        ]
        if self._pbm_max:
            # flag rows land in one preallocated buffer (reused every
            # step, consumed before return -- nothing aliases it), so
            # one packbits compresses a whole phase's flags without the
            # per-row ndarray overhead of np.stack
            header += [
                f"    _PBB = _np.empty(({self._pbm_max}, n), _np.bool_)",
                "    def _pbm(vs):",
                "        _k = len(vs)",
                "        _B = _PBB[:_k]",
                "        for _i in range(_k):",
                "            _B[_i] = vs[_i]",
                "        _b = _np.packbits(_B, axis=1,"
                " bitorder='little').tobytes()",
                "        return [int.from_bytes(_b[_i * _nb:_i * _nb + _nb],"
                " 'little') for _i in range(_k)]",
            ]
        if self._use_ubm:
            header += [
                "    def _ubm(ws):",
                "        _b = _np.frombuffer(b''.join(_w.to_bytes(_nb,"
                " 'little') for _w in ws), _np.uint8)",
                "        return list(_np.unpackbits(_b, bitorder='little')"
                ".view(_np.bool_).reshape(len(ws), _nb * 8)[:, :n])",
            ]
        if self._use_whr:
            header += [
                "    _ZB = bytes(n)",
                "    _OB = b'\\x01' * n",
                "    def _ut(d):",
                "        _b = d.tobytes()",
                "        return 0 if _b == _ZB else (2 if _b == _OB else 1)",
                "    def _whl(u, d, t, f):",
                "        if u == 2:",
                "            return t()",
                "        if u == 0:",
                "            return f()",
                "        return _np.where(d, t(), f())",
            ]
        if self._dense_loads or self._used_R:
            header.append("    _R = _np.arange(n)")
        header += self._pool_lines
        header += [f"    {b}_buf = [0] * n" for b in self._bufs]
        params = "".join(f", {b}={b}_buf" for b in self._bufs)
        header.append(f"    def _step(pregs, wregs, sregs, arrays, inputs{params}):")
        body = "\n".join(self._L) if self._L else "        pass"
        return _SIGNED_HELPER + "\n".join(header) + "\n" + body + "\n    return _step"


# ----------------------------------------------------------------- entry


class _VectorEntry(_BatchEntry):
    """Compiled vector-tier artifacts for one module (cached per module
    alongside the swar/batch entries, sharing the body/dispatch
    machinery of :class:`~repro.hdl.batch._BatchEntry`)."""

    def __init__(self, module: Module):
        super().__init__(module, swar=True)

    def _make_gen(
        self,
        module: Module,
        pitch: int | None = None,
        resident: frozenset | None = None,
    ) -> _VectorCodeGen:
        return _VectorCodeGen(module, pitch=pitch, resident=resident)

    def _namespace(self) -> dict:
        return {
            "_np": np,
            "_vshl": _vshl,
            "_vshr": _vshr,
            "_vasr": _vasr,
            "_vdiv": _vdiv,
            "_vmod": _vmod,
            "_sv": _sv,
        }


def _vector_entry(module: Module) -> _VectorEntry:
    return _cached_entry(module, "vector", lambda: _VectorEntry(module))


# ------------------------------------------------------------- simulator


class _VectorPlan(_CohortPlan):
    """A cohort plan whose sregs movement is fancy indexing."""

    def __init__(self, mask: int, lanes: int):
        super().__init__(mask, lanes, 0)
        self.pidx = np.array(self.positions, np.intp)


class VectorSimulator(BatchSimulator):
    """The lane-batched simulator on the NumPy uint64 vector tier.

    Drop-in for :class:`~repro.hdl.batch.BatchSimulator` -- same
    constructor, same step/compact/majority/uniform machinery, same
    bit-identical-per-lane contract -- with every multi-bit resident
    register held as a ``(lanes,)`` uint64 ndarray and the wide
    combinational tier lowered to ufunc expressions.  The packed 1-bit
    tag world and the per-lane scalar fallback are shared with the
    base engine.

    Stored ndarrays are treated as immutable values; all mutation
    sites (:meth:`set_reg`, cohort scatter) copy before writing.
    """

    def __init__(self, module: Module, lanes: int, **kwargs):
        if not HAVE_NUMPY:  # pragma: no cover - exercised via gating tests
            raise RuntimeError(_NUMPY_HINT)
        super().__init__(module, lanes, **kwargs)
        # dense mirrors of small arrays, riding in sregs under reserved
        # "a:" keys (so compaction and cohort gather/scatter re-slice
        # them for free); the per-lane dicts stay canonical, the step's
        # write ports write through to both
        for name in sorted(_dense_arrays(self.module)):
            arr = self.module.arrays[name]
            self.sregs["a:" + name] = np.full(
                (self.lanes, arr.size), arr.default, np.uint64
            )

    def load_array(self, lane: int, name: str, data) -> None:
        super().load_array(lane, name, data)
        key = "a:" + name
        dense = self.sregs.get(key)
        if dense is not None:
            arr = self.module.arrays[name]
            row = np.full(arr.size, arr.default, np.uint64)
            for i, v in self.arrays[name][lane].items():
                if 0 <= i < arr.size:  # out-of-range keys are unreachable
                    row[i] = v
            out = dense.copy()  # stored arrays are immutable values
            out[lane] = row
            self.sregs[key] = out

    # -- engine hooks -------------------------------------------------------

    def _make_entry(self, module: Module) -> _VectorEntry:
        return _vector_entry(module)

    def _refresh_layout(self) -> None:
        self._layout = None  # no slot layout: lanes are the array axis

    def _sreg_new(self, reg):
        mask = (1 << reg.width) - 1
        return np.full(self.lanes, reg.init & mask, np.uint64)

    def _sreg_get(self, name: str, lane: int, width: int) -> int:
        return int(self.sregs[name][lane])

    def _sreg_set(self, name: str, lane: int, width: int, value: int) -> None:
        arr = self.sregs[name].copy()  # stored arrays are immutable values
        arr[lane] = value
        self.sregs[name] = arr

    def _compact_sregs(self, keep) -> None:
        idx = np.array(keep, np.intp)
        for name, arr in self.sregs.items():
            self.sregs[name] = arr[idx]

    def _sreg_uniform(self, name: str, mask: int) -> int | None:
        arr = self.sregs[name]
        v0 = arr[0]
        if (arr == v0).all():
            return int(v0)
        return None

    def _sreg_column(self, name: str, mask: int) -> list[int]:
        return self.sregs[name].tolist()

    def _make_plans(self, mask: int) -> tuple[_VectorPlan, _VectorPlan]:
        return (
            _VectorPlan(mask, self.lanes),
            _VectorPlan(mask ^ self._ones, self.lanes),
        )

    def _sreg_gather(self, plan: _VectorPlan, name: str):
        return self.sregs[name][plan.pidx]

    def _sreg_scatter(self, plan: _VectorPlan, name: str, sub) -> None:
        out = self.sregs[name].copy()  # stored arrays are immutable values
        out[plan.pidx] = sub
        self.sregs[name] = out

    # -- state access -------------------------------------------------------

    @property
    def signal_tiers(self) -> dict[str, str]:
        """Combinational signal -> tier: ``'p'`` (packed 1-bit), ``'v'``
        (uint64 lane vectors), or ``'s'`` (per-lane scalar)."""
        return {
            name: ("v" if kind == "w" else kind)
            for name, kind in self._entry.kinds.items()
        }

"""``python -m repro serve`` -- the async toolchain-as-a-service layer.

A long-lived process owning one :class:`~repro.toolchain.Toolchain`
(usually backed by a persistent :class:`~repro.store.ArtifactStore`)
and answering newline-delimited JSON requests over TCP or stdio::

    {"id": 1, "op": "compile", "source_path": "tdma.sapper", "name": "tdma"}
    {"id": 2, "op": "simulate", "source_path": "tdma.sapper", "name": "tdma",
     "cycles": 100, "inputs": {"hi_in": 3}}

    -> {"id": 1, "ok": true, "result": {"name": "tdma", ...}}
    -> {"id": 2, "ok": true, "result": {"cycles": 100, ...}}

Request ops: ``ping``, ``compile``, ``verilog``, ``synth``,
``simulate``, ``check`` (the static design-lint + information-flow
report of ``python -m repro check``, as JSON), ``fleet`` (a workload
suite on the multiprocess fleet scheduler, sharded over the server's
artifact store), ``verify``
(three-way interpreter/raw/optimized cross-validation), ``stats``
(server + toolchain + store counters), ``shutdown``.  Errors come back as ``{"ok": false, "error": ...}`` --
a malformed line, an unknown op, or a Sapper compile error never tears
down the connection, let alone the server.

Concurrency model: the asyncio loop parses and routes; CPU-bound work
(compile, optimize, synthesis, simulation) runs on a bounded
``ThreadPoolExecutor``.  Design builds are **single-flight**: requests
that name the same structural key (source digest, lattice, flags)
while a build is in flight await the same future, so N identical
clients cost one compile -- the ``coalesced`` counters (server-side
and on the toolchain) prove it.  Distinct keys queue on the pool and
make independent progress.

On startup (unless disabled) the server pre-warms the secure-processor
family -- the two-level, diamond, and powerset lattices -- through the
same single-flight path, so the first real client of a warm store hits
precompiled artifacts.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Any, TextIO

from repro.lattice import Lattice, LatticeError, diamond, from_order, powerset, two_level
from repro.sapper.errors import SapperError
from repro.toolchain import Toolchain

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 9178

#: Per-line size cap (the processor source is ~40 KB; leave headroom).
MAX_LINE = 8 * 1024 * 1024
#: Request-bound guards: a serving process must survive greedy clients.
MAX_CYCLES = 100_000
MAX_LANES = 4096
MAX_VERIFY_CYCLES = 2_000
MAX_SHARDS = 8
MAX_FLEET_WORKLOADS = 64
MAX_FLEET_LANES = 256


class ServerError(Exception):
    """A malformed or unserviceable request (reported, never fatal)."""


def proc_powerset(tags: tuple[str, ...] = ("u", "k")) -> Lattice:
    """The powerset lattice over *tags* with its bottom renamed ``L``,
    so the generated processor (whose boot/reset annotations are pinned
    to the low label ``L``) compiles against it unchanged."""
    base = powerset(tags)
    rename = {"{}": "L"}
    elements = [rename.get(e, e) for e in base.elements]
    pairs = [
        (rename.get(a, a), rename.get(b, b))
        for a in base.elements
        for b in base.elements
        if a != b and base.leq(a, b)
    ]
    return from_order(elements, pairs)


#: Lattices a request may name, and the startup pre-warm family.
LATTICES = {"two": two_level, "diamond": diamond, "powerset": proc_powerset}
WARM_FAMILY = ("two", "diamond", "powerset")


class ReproServer:
    """One toolchain, many concurrent NDJSON clients."""

    def __init__(self, toolchain: Toolchain | None = None, max_workers: int = 4):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.tc = toolchain if toolchain is not None else Toolchain()
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-build"
        )
        #: structural key -> in-flight build future (single-flight layer)
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._stopping = asyncio.Event()
        self.counters: dict[str, int] = {
            "requests": 0,
            "errors": 0,
            "coalesced": 0,
            "builds": 0,
            "connections": 0,
            "warmed": 0,
        }

    # -- request plumbing -----------------------------------------------------

    async def handle_line(self, line: str) -> dict:
        """Parse one NDJSON request line and produce the response dict."""
        try:
            req = json.loads(line)
        except json.JSONDecodeError as exc:
            self.counters["requests"] += 1
            self.counters["errors"] += 1
            return {"id": None, "ok": False, "error": f"malformed request JSON: {exc}"}
        return await self.handle_request(req)

    async def handle_request(self, req: Any) -> dict:
        self.counters["requests"] += 1
        rid = req.get("id") if isinstance(req, dict) else None
        try:
            if not isinstance(req, dict):
                raise ServerError("request must be a JSON object with an 'op' field")
            op = req.get("op")
            handler = self._OPS.get(op)
            if handler is None:
                known = ", ".join(sorted(self._OPS))
                raise ServerError(f"unknown op {op!r}; known ops: {known}")
            result = await handler(self, req)
            return {"id": rid, "ok": True, "result": result}
        except (ServerError, SapperError, LatticeError, FileNotFoundError) as exc:
            self.counters["errors"] += 1
            return {"id": rid, "ok": False, "error": str(exc)}
        except Exception as exc:  # a bug must not take the server down
            self.counters["errors"] += 1
            return {"id": rid, "ok": False, "error": f"internal error: {exc!r}"}

    # -- field extraction -----------------------------------------------------

    @staticmethod
    def _field(req: dict, name: str, kind: type, default: Any = ...) -> Any:
        value = req.get(name, default)
        if value is ...:
            raise ServerError(f"missing required field {name!r}")
        if not isinstance(value, kind) or isinstance(value, bool) and kind is int:
            raise ServerError(f"field {name!r} must be {kind.__name__}, got {value!r}")
        return value

    def _design_fields(self, req: dict) -> tuple[str, str, bool, str]:
        if "source" in req:
            source = self._field(req, "source", str)
        elif "source_path" in req:
            path = self._field(req, "source_path", str)
            try:
                with open(path) as fh:
                    source = fh.read()
            except OSError as exc:
                raise ServerError(f"cannot read source_path {path!r}: {exc}")
        else:
            raise ServerError("request needs 'source' (text) or 'source_path'")
        lattice = req.get("lattice", "two")
        if lattice not in LATTICES:
            raise ServerError(
                f"unknown lattice {lattice!r}; known: {', '.join(sorted(LATTICES))}"
            )
        secure = req.get("secure", True)
        if not isinstance(secure, bool):
            raise ServerError(f"field 'secure' must be a boolean, got {secure!r}")
        name = self._field(req, "name", str, "design")
        return source, lattice, secure, name

    def _bounded(self, req: dict, name: str, default: int, lo: int, hi: int) -> int:
        value = self._field(req, name, int, default)
        if not lo <= value <= hi:
            raise ServerError(f"field {name!r} must be in [{lo}, {hi}], got {value}")
        return value

    # -- single-flight design builds ------------------------------------------

    def _build_design(self, source: str, lattice_name: str, secure: bool, name: str):
        """Compile + optimize (worker thread; overridable in tests)."""
        self.counters["builds"] += 1
        lattice = LATTICES[lattice_name]()
        design = self.tc.compile(source, lattice, secure=secure, name=name)
        module = self.tc.optimize(design)
        return design, module

    async def _built(self, req: dict):
        """The (design, optimized module, key digest) for a request,
        coalescing concurrent identical structural keys onto one build."""
        source, lattice_name, secure, name = self._design_fields(req)
        key = (
            "design",
            hashlib.sha256(source.encode()).hexdigest(),
            lattice_name,
            secure,
            name,
            self.tc.opt_level,
        )
        fut = self._inflight.get(key)
        if fut is None:
            loop = asyncio.get_running_loop()
            fut = loop.run_in_executor(
                self._pool, self._build_design, source, lattice_name, secure, name
            )
            self._inflight[key] = fut
            fut.add_done_callback(lambda _f: self._inflight.pop(key, None))
        else:
            self.counters["coalesced"] += 1
            self.tc.bump("coalesced")
        design, module = await fut
        return design, module, hashlib.sha256(repr(key).encode()).hexdigest()

    async def _in_pool(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(self._pool, fn, *args)

    # -- ops ------------------------------------------------------------------

    async def _op_ping(self, req: dict) -> dict:
        return {"pong": True}

    async def _op_compile(self, req: dict) -> dict:
        design, module, digest = await self._built(req)
        return {
            "name": design.name,
            "key": digest,
            "signals": len(module.comb),
            "regs": len(module.regs),
            "inputs": dict(module.inputs),
            "outputs": sorted(module.outputs),
        }

    async def _op_verilog(self, req: dict) -> dict:
        design, _module, digest = await self._built(req)
        text = await self._in_pool(self.tc.verilog, design)
        return {"key": digest, "verilog": text}

    async def _op_synth(self, req: dict) -> dict:
        design, _module, digest = await self._built(req)
        rpt = await self._in_pool(self.tc.synthesize, design)
        counts = rpt.counts
        return {
            "key": digest,
            "summary": rpt.summary(),
            "cells": {
                "and2": counts.and2,
                "or2": counts.or2,
                "xor2": counts.xor2,
                "inv": counts.inv,
                "dff": counts.dff,
            },
        }

    async def _op_simulate(self, req: dict) -> dict:
        design, _module, digest = await self._built(req)
        cycles = self._bounded(req, "cycles", 32, 1, MAX_CYCLES)
        lanes = self._bounded(req, "lanes", 1, 1, MAX_LANES)
        inputs = req.get("inputs", {})
        if not isinstance(inputs, dict):
            raise ServerError("field 'inputs' must be an object of port drives")
        drives: dict[str, int | list[int]] = {}
        for port, value in inputs.items():
            if isinstance(value, int) and not isinstance(value, bool):
                drives[port] = value
            elif (
                isinstance(value, list)
                and value
                and all(isinstance(v, int) and not isinstance(v, bool) for v in value)
            ):
                if len(value) != lanes:
                    raise ServerError(
                        f"input {port!r} drives {len(value)} lanes but 'lanes' is {lanes}"
                    )
                drives[port] = value
            else:
                raise ServerError(
                    f"input {port!r} must be an integer or a per-lane integer list"
                )
        return await self._in_pool(self._run_sim, design, cycles, lanes, drives, digest)

    def _run_sim(self, design, cycles: int, lanes: int, drives: dict, digest: str) -> dict:
        if lanes == 1:
            sim = self.tc.simulator(design)
            flat = {
                p: (v[0] if isinstance(v, list) else v) for p, v in drives.items()
            }
            violations = 0
            out: dict[str, int] = {}
            for _ in range(cycles):
                out = sim.step(flat)
                violations += int(bool(out.get("violation", 0)))
            return {
                "key": digest,
                "cycles": sim.cycles,
                "violations": violations,
                "outputs": out,
            }
        batch = self.tc.batch_simulator(design, lanes)
        lane_stim = None
        if any(isinstance(v, list) for v in drives.values()):
            lane_stim = [
                {p: (v[lane] if isinstance(v, list) else v) for p, v in drives.items()}
                for lane in range(lanes)
            ]
        violations = [0] * lanes
        final: list[dict[str, int]] = [{} for _ in range(lanes)]
        for _ in range(cycles):
            outs = batch.step(lane_stim if lane_stim is not None else drives)
            for pos, out in enumerate(outs):
                lane = batch.active_lanes[pos]
                violations[lane] += int(bool(out.get("violation", 0)))
                final[lane] = out
        return {
            "key": digest,
            "cycles": batch.cycles,
            "lanes": lanes,
            "violations": violations,
            "outputs": final,
        }

    async def _op_check(self, req: dict) -> dict:
        """Static design-lint + taint analysis (``repro check`` as JSON)."""
        design, _module, digest = await self._built(req)
        report = await self._in_pool(self.tc.analyze, design)
        return {"key": digest, **report.to_json()}

    async def _op_verify(self, req: dict) -> dict:
        """Three-way cross-validation (reference interpreter vs raw vs
        optimized hardware) -- a mismatch is a verdict, not an error."""
        source, lattice_name, _secure, _name = self._design_fields(req)
        cycles = self._bounded(req, "cycles", 64, 1, MAX_VERIFY_CYCLES)

        def check() -> dict:
            from repro.sapper.crossval import assert_equivalent

            try:
                assert_equivalent(source, LATTICES[lattice_name](), cycles)
            except AssertionError as exc:
                return {"equivalent": False, "cycles": cycles, "detail": str(exc)}
            return {"equivalent": True, "cycles": cycles}

        return await self._in_pool(check)

    async def _op_fleet(self, req: dict) -> dict:
        """Run a workload suite on the multiprocess fleet scheduler.

        ``workloads`` entries are either names from the built-in
        sec-4.3 suite (``repro.workloads``) or ``{"asm": ...,
        "max_cycles": ...}`` objects; results come back one per entry,
        in request order, plus the merged fleet counters (per-shard
        lane-cycles, occupancy, store hits, requeues).
        """
        shards = self._bounded(req, "shards", 2, 1, MAX_SHARDS)
        default_budget = self._bounded(req, "max_cycles", 10_000, 1, MAX_CYCLES)
        lanes = self._bounded(req, "lanes_per_worker", 32, 1, MAX_FLEET_LANES)
        entries = req.get("workloads")
        if not isinstance(entries, list) or not entries:
            raise ServerError("field 'workloads' must be a non-empty list")
        if len(entries) > MAX_FLEET_WORKLOADS:
            raise ServerError(
                f"at most {MAX_FLEET_WORKLOADS} workloads per request, got {len(entries)}"
            )
        from repro.workloads import ALL_WORKLOADS

        jobs: list[tuple[str, str, int]] = []
        for i, entry in enumerate(entries):
            if isinstance(entry, str):
                workload = ALL_WORKLOADS.get(entry)
                if workload is None:
                    known = ", ".join(sorted(ALL_WORKLOADS))
                    raise ServerError(f"unknown workload {entry!r}; known: {known}")
                jobs.append((entry, workload.source, min(workload.max_cycles, default_budget)))
            elif isinstance(entry, dict) and isinstance(entry.get("asm"), str):
                budget = self._bounded(entry, "max_cycles", default_budget, 1, MAX_CYCLES)
                name = entry.get("name")
                jobs.append((name if isinstance(name, str) else f"asm[{i}]",
                             entry["asm"], budget))
            else:
                raise ServerError(
                    f"workloads[{i}] must be a workload name or an object with 'asm'"
                )
        return await self._in_pool(self._run_fleet, jobs, shards, lanes)

    def _run_fleet(self, jobs: list, shards: int, lanes: int) -> dict:
        from repro.fleet import FleetRunner
        from repro.mips.assembler import AsmError, assemble

        try:
            exes = [assemble(source) for _name, source, _budget in jobs]
        except AsmError as exc:
            raise ServerError(f"workload assembly failed: {exc}")
        except Exception as exc:  # the assembler chokes on arbitrary text
            raise ServerError(
                f"workload assembly failed: {type(exc).__name__}: {exc}"
            )
        budgets = [budget for _name, _source, budget in jobs]
        with FleetRunner(
            shards=shards,
            lanes_per_worker=lanes,
            store=self.tc.store,  # share the server's artifact tier when present
            start_method="spawn",  # fork is unsafe under the server's thread pool
        ) as fleet:
            results = fleet.run(exes, max_cycles=budgets)
            merged = fleet.stats.merged()
        return {
            "shards": shards,
            "results": [
                {
                    "name": name,
                    "outputs": res.outputs,
                    "cycles": res.cycles,
                    "violations": res.violations,
                    "halted": res.halted,
                }
                for (name, _source, _budget), res in zip(jobs, results)
            ],
            "fleet": merged,
        }

    async def _op_stats(self, req: dict) -> dict:
        result = {
            "server": dict(self.counters),
            "toolchain": self.tc.counter_snapshot(),
            "cache": self.tc.cache_info(),
        }
        if self.tc.store is not None:
            result["store"] = self.tc.store.stats()
        return result

    async def _op_shutdown(self, req: dict) -> dict:
        self._stopping.set()
        return {"stopping": True}

    _OPS = {
        "ping": _op_ping,
        "compile": _op_compile,
        "verilog": _op_verilog,
        "synth": _op_synth,
        "simulate": _op_simulate,
        "check": _op_check,
        "fleet": _op_fleet,
        "verify": _op_verify,
        "stats": _op_stats,
        "shutdown": _op_shutdown,
    }

    # -- warm set -------------------------------------------------------------

    async def warm(self, family: tuple[str, ...] = WARM_FAMILY) -> int:
        """Pre-build the secure-processor family through the
        single-flight path (so early clients coalesce onto the warm
        builds instead of duplicating them).  Returns the number of
        designs warmed; failures are counted, logged, and non-fatal."""
        from repro.proc.design import generate_design

        warmed = 0
        for lattice_name in family:
            if self._stopping.is_set():
                break
            try:
                lattice = LATTICES[lattice_name]()
                source = await self._in_pool(generate_design, lattice)
                await self._built(
                    {"source": source, "lattice": lattice_name, "name": "sapper_mips"}
                )
                warmed += 1
                self.counters["warmed"] += 1
            except Exception as exc:
                print(
                    f"repro serve: warm({lattice_name}) failed: {exc}",
                    file=sys.stderr,
                    flush=True,
                )
        return warmed

    # -- transports -----------------------------------------------------------

    async def _client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.counters["connections"] += 1
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except ValueError:  # line exceeded the stream limit
                    writer.write(
                        (json.dumps({
                            "id": None,
                            "ok": False,
                            "error": f"request line exceeds {MAX_LINE} bytes",
                        }) + "\n").encode()
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                resp = await self.handle_line(line.decode(errors="replace"))
                writer.write((json.dumps(resp) + "\n").encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def start_tcp(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT):
        """Bind and return the listening ``asyncio.Server`` (raises
        ``OSError`` -- e.g. address in use -- for the caller to report)."""
        return await asyncio.start_server(self._client, host, port, limit=MAX_LINE)

    async def run_tcp(
        self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT, warm: bool = True
    ) -> None:
        server = await self.start_tcp(host, port)
        sock = server.sockets[0].getsockname()
        print(f"repro serve: listening on {sock[0]}:{sock[1]}", file=sys.stderr, flush=True)
        warm_task = asyncio.create_task(self.warm()) if warm else None
        try:
            async with server:
                await self._stopping.wait()
        finally:
            if warm_task is not None:
                warm_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await warm_task
            self._pool.shutdown(wait=False, cancel_futures=True)

    async def run_stdio(
        self,
        warm: bool = False,
        stdin: TextIO | None = None,
        stdout: TextIO | None = None,
    ) -> None:
        """Serve one client over stdin/stdout (testing, CI, inetd-style)."""
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        if warm:
            await self.warm()
        loop = asyncio.get_running_loop()
        try:
            while not self._stopping.is_set():
                line = await loop.run_in_executor(None, stdin.readline)
                if not line:
                    break
                if not line.strip():
                    continue
                resp = await self.handle_line(line)
                print(json.dumps(resp), file=stdout, flush=True)
        finally:
            self._pool.shutdown(wait=False, cancel_futures=True)

"""Executable formal semantics of Sapper (Figure 6 of the paper).

The interpreter is the *specification*: the compiler's generated hardware
is tested for cycle-by-cycle equivalence against it, and the
noninterference theorem (Theorem 1) is tested against it directly with
randomized programs.

A configuration is ``(p, rho, sigma, theta, S, delta)``:

* ``p`` -- the current program phrase (implicit in the recursion here);
* ``rho`` -- the FallMap: for each non-leaf state, which child a ``fall``
  enters;
* ``sigma`` -- the store (register, wire and array values);
* ``theta`` -- the TagMap (tags of registers, wires, array elements and
  states);
* ``S`` -- the security-context stack (``self.stack``);
* ``delta`` -- the cycle counter.

Reconstruction notes (the paper's Figure 6 is partially corrupted; every
deviation below is chosen so that the L-equivalence invariants of
Appendix A.2 actually hold, which `tests/test_noninterference.py`
verifies mechanically):

* ``goto`` ends the cycle unconditionally; only its map updates are
  guarded.  In addition to the paper's check ``sc <= theta(target)`` for
  enforced targets, *every* goto requires ``sc <= theta(source)``: a
  fall-map entry may only be changed at a context no higher than the tag
  of the currently scheduled state.  Without this, an if on high data
  inside a low-tagged state could redirect the next cycle's low-visible
  control flow (see DESIGN.md section 4).
* ``Fcd`` of an ``if`` additionally contains the enclosing dynamic state
  when a branch performs a ``goto``/``fall`` -- so that the source-side
  goto check above can pass once the state's tag has been raised.
* ``ResetFallMap``/``ResetTagMap`` are omitted: fall maps and dynamic
  state tags persist (plain registers in hardware).  The paper's resets
  lower tags to bottom, which is an L-observable effect that is not
  confined under high contexts; persistence is sound, and designers can
  lower tags explicitly with the guarded ``setTag``.
* Dynamic-tagged arrays carry a single array-level tag; enforced arrays
  carry a per-element tag store (matching the paper's memory model).
* ``setTag`` requires ``sc <= theta(entity)`` and ``sc <= newtag`` and
  zeroes the data on non-upgrades (section 3.5).
* Division by zero yields all-ones, remainder by zero the dividend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lattice import Lattice, encode
from repro.sapper import ast
from repro.sapper.analysis import ProgramInfo
from repro.sapper.errors import SapperRuntimeError


@dataclass(frozen=True)
class Violation:
    """A dynamic check that failed (and was replaced by a secure action)."""

    cycle: int
    kind: str       # 'assign' | 'assign-arr' | 'goto' | 'fall' | 'settag'
    target: str
    context: str    # security context at the check
    required: str   # tag the check compared against


class _CycleEnd(Exception):
    """Internal control-flow signal: the current cycle is over."""

    def __init__(self, goto: tuple[str, str, str] | None = None):
        #: (source state, target state, context at the goto) or None
        self.goto = goto
        super().__init__()


def _mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def _to_signed(value: int, width: int) -> int:
    sign = 1 << (width - 1)
    return value - (sign << 1) if value & sign else value


class Interpreter:
    """Big-step-per-cycle interpreter of a Sapper program.

    Parameters
    ----------
    info:
        Analyzed program (see :func:`repro.sapper.analysis.analyze`).
    lattice:
        The security lattice the program is enforced against.
    """

    def __init__(self, info: ProgramInfo, lattice: Lattice):
        self.info = info
        self.lattice = lattice
        self.encoding = encode(lattice)
        bot = lattice.bottom

        self.sigma: dict[str, int] = {}
        self.theta_reg: dict[str, str] = {}
        for name, decl in info.regs.items():
            self.sigma[name] = _mask(decl.init, decl.width)
            self.theta_reg[name] = info.initial_reg_tag(name, lattice)

        # Arrays: sparse value stores.  Enforced arrays get sparse
        # per-element tag stores (with the declared label as default);
        # dynamic arrays get a single tag.
        self.arrays: dict[str, dict[int, int]] = {name: {} for name in info.arrays}
        self.theta_arr_default: dict[str, str] = {}
        self.theta_arr: dict[str, dict[int, str]] = {}
        self.theta_arr_single: dict[str, str] = {}
        for name, decl in info.arrays.items():
            if decl.enforced:
                self.theta_arr_default[name] = info.initial_arr_tag(name, lattice)
                self.theta_arr[name] = {}
            else:
                self.theta_arr_single[name] = bot

        self.theta_state: dict[str, str] = {
            name: info.initial_state_tag(name, lattice) for name in info.states
        }
        self.rho: dict[str, str | None] = dict(info.default_child)
        self.delta = 0
        self.stack: list[str] = []
        self.violations: list[Violation] = []
        self._inputs_tags: dict[str, str] = {}

    # -- tag store access ----------------------------------------------------------

    def arr_tag(self, name: str, index: int) -> str:
        if name in self.theta_arr_single:
            return self.theta_arr_single[name]
        return self.theta_arr[name].get(index, self.theta_arr_default[name])

    def set_arr_tag(self, name: str, index: int, tag: str) -> None:
        if name in self.theta_arr_single:
            # Dynamic arrays share one tag: writes *join* into it (a
            # strong update would unsoundly declassify sibling cells).
            self.theta_arr_single[name] = self.lattice.join(self.theta_arr_single[name], tag)
        else:
            self.theta_arr[name][index] = tag

    @property
    def sc(self) -> str:
        """Current security context (top of the stack)."""
        return self.stack[-1]

    # -- evaluation: value and phi together ----------------------------------------

    def eval(self, e: ast.Exp) -> tuple[int, str]:
        """Evaluate *e* to ``(value, phi(e))`` per Figure 6(c)."""
        lat = self.lattice
        width = self.info.width_of(e, self.encoding.width)
        if isinstance(e, ast.Const):
            return _mask(e.value, width), lat.bottom
        if isinstance(e, ast.RegRef):
            return self.sigma[e.name], self.theta_reg[e.name]
        if isinstance(e, ast.ArrIndex):
            idx, t_idx = self.eval(e.index)
            idx %= self.info.arrays[e.name].size
            value = self.arrays[e.name].get(idx, 0)
            return value, lat.join(t_idx, self.arr_tag(e.name, idx))
        if isinstance(e, ast.BinOp):
            lv, lt = self.eval(e.left)
            rv, rt = self.eval(e.right)
            return _mask(self._binop(e, lv, rv), width), lat.join(lt, rt)
        if isinstance(e, ast.UnOp):
            v, t = self.eval(e.operand)
            if e.op == "~":
                return _mask(~v, width), t
            if e.op == "-":
                return _mask(-v, width), t
            return (0 if v else 1), t
        if isinstance(e, ast.Cond):
            cv, ct = self.eval(e.cond)
            tv, tt = self.eval(e.if_true)
            fv, ft = self.eval(e.if_false)
            return (tv if cv else fv), lat.join(ct, tt, ft)
        if isinstance(e, ast.Slice):
            v, t = self.eval(e.base)
            return _mask(v >> e.lo, width), t
        if isinstance(e, ast.Cat):
            value = 0
            tags = []
            for part in e.parts:
                pw = self.info.width_of(part, self.encoding.width)
                pv, pt = self.eval(part)
                value = (value << pw) | pv
                tags.append(pt)
            return value, lat.join(*tags)
        if isinstance(e, ast.Ext):
            v, t = self.eval(e.operand)
            ow = self.info.width_of(e.operand, self.encoding.width)
            if e.signed:
                v = _mask(_to_signed(v, ow), e.width)
            return _mask(v, e.width), t
        if isinstance(e, ast.TagOf):
            return self._entity_tag_value(e.entity)
        if isinstance(e, ast.LabelLit):
            return self.encoding.encode(self.lattice.check(e.label)), lat.bottom
        raise SapperRuntimeError(f"cannot evaluate {e!r}")

    def _binop(self, e: ast.BinOp, lv: int, rv: int) -> int:
        op = e.op
        tw = self.encoding.width
        lw = self.info.width_of(e.left, tw)
        rw = self.info.width_of(e.right, tw)
        if op == "+":
            return lv + rv
        if op == "-":
            return lv - rv
        if op == "*":
            return lv * rv
        if op == "/":
            return lv // rv if rv else (1 << lw) - 1
        if op == "%":
            return lv % rv if rv else lv
        if op == "&":
            return lv & rv
        if op == "|":
            return lv | rv
        if op == "^":
            return lv ^ rv
        if op == "<<":
            return 0 if rv >= lw + rw + 64 else lv << min(rv, lw + 64)
        if op == ">>":
            return lv >> min(rv, lw)
        if op == "asr":
            return _to_signed(lv, lw) >> min(rv, lw)
        if op == "==":
            return int(lv == rv)
        if op == "!=":
            return int(lv != rv)
        if op == "<":
            return int(lv < rv)
        if op == "<=":
            return int(lv <= rv)
        if op == ">":
            return int(lv > rv)
        if op == ">=":
            return int(lv >= rv)
        if op == "lts":
            return int(_to_signed(lv, lw) < _to_signed(rv, rw))
        if op == "les":
            return int(_to_signed(lv, lw) <= _to_signed(rv, rw))
        if op == "gts":
            return int(_to_signed(lv, lw) > _to_signed(rv, rw))
        if op == "ges":
            return int(_to_signed(lv, lw) >= _to_signed(rv, rw))
        if op == "&&":
            return int(bool(lv) and bool(rv))
        if op == "||":
            return int(bool(lv) or bool(rv))
        raise SapperRuntimeError(f"unknown operator {op!r}")

    def _entity_tag_value(self, ent: ast.TaggedEntity) -> tuple[int, str]:
        """Value of ``tag(entity)`` -- the tag's hardware encoding; tags
        are public so phi is bottom, except the array-index contribution."""
        lat = self.lattice
        if isinstance(ent, ast.EntReg):
            return self.encoding.encode(self.theta_reg[ent.name]), lat.bottom
        if isinstance(ent, ast.EntState):
            return self.encoding.encode(self.theta_state[ent.name]), lat.bottom
        if isinstance(ent, ast.EntArr):
            idx, t_idx = self.eval(ent.index)
            idx %= self.info.arrays[ent.name].size
            return self.encoding.encode(self.arr_tag(ent.name, idx)), t_idx
        raise SapperRuntimeError(f"bad entity {ent!r}")

    def eval_tagexp(self, te: ast.TagExp) -> tuple[str, str]:
        """Evaluate a tag expression to ``(label, phi)`` (Figure 6(b))."""
        lat = self.lattice
        if isinstance(te, ast.TagConst):
            return lat.check(te.label), lat.bottom
        if isinstance(te, ast.TagOfEntity):
            ent = te.entity
            if isinstance(ent, ast.EntReg):
                return self.theta_reg[ent.name], lat.bottom
            if isinstance(ent, ast.EntState):
                return self.theta_state[ent.name], lat.bottom
            if isinstance(ent, ast.EntArr):
                idx, t_idx = self.eval(ent.index)
                idx %= self.info.arrays[ent.name].size
                return self.arr_tag(ent.name, idx), t_idx
        if isinstance(te, ast.TagJoin):
            lt, lp = self.eval_tagexp(te.left)
            rt, rp = self.eval_tagexp(te.right)
            return lat.join(lt, rt), lat.join(lp, rp)
        if isinstance(te, ast.TagFromBits):
            bits, phi = self.eval(te.bits)
            return self.encoding.clamp(bits), phi
        raise SapperRuntimeError(f"bad tag expression {te!r}")

    # -- commands --------------------------------------------------------------------

    def exec_cmd(self, c: ast.Cmd, state: str) -> None:
        lat = self.lattice
        if isinstance(c, ast.Skip):
            return
        if isinstance(c, ast.Seq):
            for sub in c.commands:
                self.exec_cmd(sub, state)
            return
        if isinstance(c, ast.If):
            cv, ct = self.eval(c.cond)
            new_sc = lat.join(self.sc, ct)
            # Fcd upgrades for implicit flows (branches not taken).
            for reg in self.info.fcd_regs[c.label]:
                self.theta_reg[reg] = lat.join(self.theta_reg[reg], new_sc)
            for arr in self.info.fcd_arrays[c.label]:
                self.theta_arr_single[arr] = lat.join(self.theta_arr_single[arr], new_sc)
            for st in self.info.fcd_states[c.label]:
                self.theta_state[st] = lat.join(self.theta_state[st], new_sc)
            self.stack.append(new_sc)
            try:
                self.exec_cmd(c.then if cv else c.els, state)
            finally:
                if self.stack and self.stack[-1] == new_sc:
                    self.stack.pop()
            return
        if isinstance(c, ast.Otherwise):
            if self._try_enforceable(c.primary, state):
                return
            self.exec_cmd(c.handler, state)
            return
        if not self._try_enforceable(c, state):
            # Default secure action: the violating operation becomes a
            # no-op (section 3.6); a blocked goto still ends the cycle,
            # a blocked fall ends the cycle without running the child.
            if isinstance(c, ast.Goto):
                raise _CycleEnd()
            if isinstance(c, ast.Fall):
                raise _CycleEnd()
        return

    def _try_enforceable(self, c: ast.Cmd, state: str) -> bool:
        """Execute an enforceable command; return False if its dynamic
        check failed (so the caller can run an ``otherwise`` handler)."""
        lat = self.lattice
        sc = self.sc
        if isinstance(c, ast.AssignReg):
            value, t = self.eval(c.value)
            decl = self.info.regs[c.target]
            tag = lat.join(t, sc)
            value = _mask(value, decl.width)
            if decl.enforced:
                if not lat.leq(tag, self.theta_reg[c.target]):
                    self.violations.append(
                        Violation(self.delta, "assign", c.target, tag, self.theta_reg[c.target])
                    )
                    return False
                self.sigma[c.target] = value
            else:
                self.sigma[c.target] = value
                self.theta_reg[c.target] = tag
            return True
        if isinstance(c, ast.AssignArr):
            idx, t_idx = self.eval(c.index)
            value, t_val = self.eval(c.value)
            decl = self.info.arrays[c.target]
            idx %= decl.size
            tag = lat.join(t_idx, t_val, sc)
            value = _mask(value, decl.width)
            if decl.enforced:
                cell = self.arr_tag(c.target, idx)
                if not lat.leq(tag, cell):
                    self.violations.append(
                        Violation(self.delta, "assign-arr", f"{c.target}[{idx}]", tag, cell)
                    )
                    return False
                self.arrays[c.target][idx] = value
            else:
                self.arrays[c.target][idx] = value
                self.set_arr_tag(c.target, idx, tag)
            return True
        if isinstance(c, ast.Goto):
            src_tag = self.theta_state[state]
            if not lat.leq(sc, src_tag):
                self.violations.append(Violation(self.delta, "goto", c.target, sc, src_tag))
                return False
            if self.info.is_enforced_state(c.target):
                tgt_tag = self.theta_state[c.target]
                if not lat.leq(sc, tgt_tag):
                    self.violations.append(Violation(self.delta, "goto", c.target, sc, tgt_tag))
                    return False
            else:
                self.theta_state[c.target] = sc
            raise _CycleEnd(goto=(state, c.target, sc))
        if isinstance(c, ast.Fall):
            child = self.rho[state]
            if child is None:
                raise SapperRuntimeError(f"fall in leaf state {state!r}")
            if self.info.is_enforced_state(child):
                if not lat.leq(sc, self.theta_state[child]):
                    self.violations.append(
                        Violation(self.delta, "fall", child, sc, self.theta_state[child])
                    )
                    return False
                child_sc = self.theta_state[child]
            else:
                child_sc = lat.join(sc, self.theta_state[child])
                self.theta_state[child] = child_sc
            self.stack.append(child_sc)
            self.exec_cmd(self.info.states[child].body, child)
            # All paths end in goto or fall, so reaching here means a
            # nested blocked fall already ended the cycle via _CycleEnd.
            raise _CycleEnd()
        if isinstance(c, ast.SetTag):
            new_tag, t_phi = self.eval_tagexp(c.tag)
            write_sc = lat.join(sc, t_phi)
            ent = c.entity
            if isinstance(ent, ast.EntReg):
                cur = self.theta_reg[ent.name]
                if not (lat.leq(write_sc, cur) and lat.leq(write_sc, new_tag)):
                    self.violations.append(Violation(self.delta, "settag", ent.name, write_sc, cur))
                    return False
                if not lat.leq(cur, new_tag):
                    self.sigma[ent.name] = 0  # zero on downgrade
                self.theta_reg[ent.name] = new_tag
                return True
            if isinstance(ent, ast.EntState):
                cur = self.theta_state[ent.name]
                if not (lat.leq(write_sc, cur) and lat.leq(write_sc, new_tag)):
                    self.violations.append(Violation(self.delta, "settag", ent.name, write_sc, cur))
                    return False
                self.theta_state[ent.name] = new_tag
                return True
            if isinstance(ent, ast.EntArr):
                idx, t_idx = self.eval(ent.index)
                idx %= self.info.arrays[ent.name].size
                write_sc = lat.join(write_sc, t_idx)
                cur = self.arr_tag(ent.name, idx)
                if not (lat.leq(write_sc, cur) and lat.leq(write_sc, new_tag)):
                    self.violations.append(
                        Violation(self.delta, "settag", f"{ent.name}[{idx}]", write_sc, cur)
                    )
                    return False
                if not lat.leq(cur, new_tag):
                    self.arrays[ent.name][idx] = 0
                self.set_arr_tag(ent.name, idx, new_tag)
                return True
        raise SapperRuntimeError(f"not an enforceable command: {c!r}")

    # -- cycles ------------------------------------------------------------------------

    def run_cycle(
        self, inputs: dict[str, int | tuple[int, str]] | None = None
    ) -> dict[str, tuple[int, str]]:
        """Execute one clock cycle.

        ``inputs`` maps input-port names to either a value (tag defaults
        to the declared label, or bottom for dynamic inputs) or a
        ``(value, label)`` pair for dynamic inputs.  Returns the output
        ports as ``{name: (value, label)}``.
        """
        lat = self.lattice
        # Wires reset every cycle; inputs latch externally supplied values.
        for name, decl in self.info.regs.items():
            if decl.kind in ("wire", "output"):
                self.sigma[name] = 0
                if not decl.enforced:
                    self.theta_reg[name] = lat.bottom
            elif decl.kind == "input":
                self.sigma[name] = 0
                if not decl.enforced:
                    self.theta_reg[name] = lat.bottom
        if inputs:
            for name, spec in inputs.items():
                decl = self.info.regs.get(name)
                if decl is None or decl.kind != "input":
                    raise SapperRuntimeError(f"{name!r} is not an input port")
                if isinstance(spec, tuple):
                    value, label = spec
                    if decl.enforced and label != decl.label:
                        raise SapperRuntimeError(
                            f"input {name!r} is enforced at {decl.label!r}; cannot supply {label!r}"
                        )
                    self.theta_reg[name] = lat.check(label)
                else:
                    value = spec
                self.sigma[name] = _mask(value, decl.width)

        self.stack = [self.theta_state[ast.ROOT]]
        pending_goto: tuple[str, str, str] | None = None
        try:
            self.exec_cmd(self.info.root.body, ast.ROOT)
        except _CycleEnd as end:
            pending_goto = end.goto
        if pending_goto is not None:
            source, target, _sc = pending_goto
            self.rho[self.info.parent[target]] = target
        self.delta += 1
        return {
            name: (self.sigma[name], self.theta_reg[name])
            for name, decl in self.info.regs.items()
            if decl.kind == "output"
        }

    def run(self, cycles: int) -> None:
        """Run *cycles* cycles with no external input."""
        for _ in range(cycles):
            self.run_cycle()

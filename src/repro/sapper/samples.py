"""Small Sapper designs from the paper, reused by tests, examples and benches.

* :data:`ADDER_CHECK` / :data:`ADDER_TRACK` -- the 8-bit combinational
  design of Figure 3, in its enforced (CHECK) and dynamic (TRACK)
  variants.
* :data:`TDMA` -- the time-division controller of Figure 4: a trusted
  low timer preempts an untrusted pipeline state, closing the timing
  channel by construction.
"""

ADDER_CHECK = """
// Figure 3, CHECK variant: register a is enforced tagged at L, so the
// assignment is guarded by a noninterference check.
reg[7:0] a : L;
reg[7:0] b, c;
input[7:0] in_b;
input[7:0] in_c;
output[7:0] out : L;

state main : L = {
    b := in_b;
    c := in_c;
    a := b & c;
    out := a;
    goto main;
}
"""

ADDER_TRACK = """
// Figure 3, TRACK variant: everything is dynamic tagged, so the
// compiler only inserts tag propagation (a_tag <= b_tag | c_tag).
reg[7:0] a, b, c;
input[7:0] in_b;
input[7:0] in_c;
output[7:0] out;

state main = {
    b := in_b;
    c := in_c;
    a := b & c;
    out := a;
    goto main;
}
"""

TDMA = """
// Figure 4: a trusted (L) timer controls the execution of a possibly
// untrusted pipeline.  The Master state arms the timer; the Slave state
// decrements it every cycle and falls into the Pipeline child until the
// timer expires, at which point control returns to Master regardless of
// what the Pipeline is doing -- noninterference by construction.
reg[31:0] timer : L;
reg[31:0] acc;
reg[31:0] lo_acc;
input[31:0] lo_in : L;
input[31:0] hi_in : H;
output[31:0] lo_out : L;

state Master : L = {
    timer := 100;
    goto Slave;
}

state Slave : L = {
    let state Pipeline = {
        acc := acc + hi_in;
        goto Pipeline;
    } in
    if (timer == 0) {
        lo_acc := lo_acc + lo_in;
        lo_out := lo_acc;
        goto Master;
    } else {
        timer := timer - 1;
        fall;
    }
}
"""

"""Conformance testing: compiled hardware vs. the formal semantics.

The Sapper compiler's output must be *cycle-by-cycle equivalent* to the
reference interpreter of Figure 6 -- same register values, same tags,
same fall maps, same outputs, same violation events.  This module runs
both on the same input trace and compares the complete architectural
state at every cycle boundary.  The test-suite uses it on hand-written
programs and on randomized programs; a mismatch pinpoints the first
divergent entity.

Validation is *three-way* by default: the interpreter, the raw
(unoptimized) hardware simulation, and the simulation of the module
after the :mod:`repro.hdl.passes` pipeline all run in lockstep.  The
optimized engine must match the interpreter on every architectural
entity and every violation event -- this is the optimizer's
correctness oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.hdl import Simulator
from repro.lattice import Lattice
from repro.sapper.analysis import ProgramInfo, analyze
from repro.sapper.compiler import CompiledDesign, compile_program
from repro.sapper.parser import parse_program
from repro.sapper.semantics import Interpreter

InputSpec = dict[str, int | tuple[int, str]]


def encode_inputs(design: CompiledDesign, inputs: InputSpec) -> dict[str, int]:
    """Translate ``port: value`` / ``port: (value, label)`` stimulus into
    the compiled module's value and ``__tag`` input ports."""
    enc = design.encoding
    out: dict[str, int] = {}
    for port, spec in inputs.items():
        if isinstance(spec, tuple):
            value, label = spec
            out[port] = value
            out[f"{port}__tag"] = enc.encode(label)
        else:
            out[port] = spec
    return out


@dataclass
class Mismatch:
    cycle: int
    entity: str
    interp_value: object
    hdl_value: object

    def __str__(self) -> str:
        return (
            f"cycle {self.cycle}: {self.entity}: interpreter={self.interp_value!r} "
            f"hdl={self.hdl_value!r}"
        )


@dataclass
class CrossValidation:
    """Lockstep execution of the interpreter and the hardware engines.

    ``sim`` runs the raw compiler output; ``opt_sim`` (unless disabled)
    runs the same module after the optimization pipeline.  Both are
    held to the interpreter's architectural state each cycle.
    """

    interp: Interpreter
    design: CompiledDesign
    sim: Simulator
    opt_sim: Simulator | None = None
    mismatches: list[Mismatch] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        source: str | ProgramInfo,
        lattice: Lattice,
        name: str = "design",
        optimized: bool = True,
    ) -> CrossValidation:
        info = (
            source
            if isinstance(source, ProgramInfo)
            else analyze(parse_program(source, name), lattice)
        )
        design = compile_program(info, lattice, secure=True, name=name)
        opt_sim = Simulator(design.module) if optimized else None
        return cls(
            Interpreter(info, lattice), design, Simulator(design.module, optimize=False), opt_sim
        )

    @property
    def engines(self) -> list[tuple[str, Simulator]]:
        out: list[tuple[str, Simulator]] = [("", self.sim)]
        if self.opt_sim is not None:
            out.append(("opt:", self.opt_sim))
        return out

    # -- input translation ------------------------------------------------------

    def _sim_inputs(self, inputs: InputSpec) -> dict[str, int]:
        return encode_inputs(self.design, inputs)

    # -- state comparison ----------------------------------------------------------

    def compare_state(self, cycle: int, sim: Simulator | None = None, tag: str = "") -> None:
        it, design = self.interp, self.design
        sim = sim if sim is not None else self.sim
        enc = design.encoding
        for name, decl in it.info.regs.items():
            if decl.kind != "reg":
                continue
            if sim.regs[name] != it.sigma[name]:
                self.mismatches.append(
                    Mismatch(cycle, f"{tag}reg {name}", it.sigma[name], sim.regs[name])
                )
        for name, tag_reg in design.reg_tag.items():
            want = enc.encode(it.theta_reg[name])
            if sim.regs[tag_reg] != want:
                self.mismatches.append(
                    Mismatch(
                        cycle,
                        f"{tag}tag({name})",
                        it.theta_reg[name],
                        enc.decode(sim.regs[tag_reg]),
                    )
                )
        for sname, tag_reg in design.state_tag.items():
            want = enc.encode(it.theta_state[sname])
            if sim.regs[tag_reg] != want:
                self.mismatches.append(
                    Mismatch(
                        cycle,
                        f"{tag}tag(state {sname})",
                        it.theta_state[sname],
                        enc.decode(sim.regs[tag_reg]),
                    )
                )
        for sname, fall_reg in design.fall_reg.items():
            child = it.rho[sname]
            want = design.state_code[child] if child is not None else 0
            if sim.regs[fall_reg] != want:
                self.mismatches.append(
                    Mismatch(cycle, f"{tag}rho({sname})", child, sim.regs[fall_reg])
                )
        for name, decl in it.info.arrays.items():
            sim_arr = sim.arrays[name]
            for idx in set(it.arrays[name]) | set(sim_arr):
                want = it.arrays[name].get(idx, 0)
                got = sim_arr.get(idx, 0)
                if want != got:
                    self.mismatches.append(Mismatch(cycle, f"{tag}{name}[{idx}]", want, got))
            if decl.enforced:
                tag_arr = design.arr_tag[name]
                sim_tags = sim.arrays[tag_arr]
                default = it.theta_arr_default[name]
                for idx in set(it.theta_arr[name]) | set(sim_tags):
                    want_t = it.arr_tag(name, idx)
                    got_t = enc.decode(sim_tags.get(idx, enc.encode(default)))
                    if want_t != got_t:
                        self.mismatches.append(
                            Mismatch(cycle, f"{tag}tag({name}[{idx}])", want_t, got_t)
                        )
            else:
                tag_reg = design.arr_tag[name]
                want_t = it.theta_arr_single[name]
                got_bits = sim.regs[tag_reg]
                if enc.encode(want_t) != got_bits:
                    self.mismatches.append(
                        Mismatch(cycle, f"{tag}tag({name})", want_t, enc.decode(got_bits))
                    )

    def run_cycle(self, inputs: InputSpec | None = None) -> None:
        inputs = inputs or {}
        viol_before = len(self.interp.violations)
        it_out = self.interp.run_cycle(inputs)
        sim_inputs = self._sim_inputs(inputs)
        cycle = self.interp.delta
        violated = len(self.interp.violations) > viol_before
        for tag, sim in self.engines:
            sim_out = sim.step(sim_inputs)
            for port, (value, label) in it_out.items():
                if sim_out.get(port) != value:
                    self.mismatches.append(
                        Mismatch(cycle, f"{tag}output {port}", value, sim_out.get(port))
                    )
                tag_port = f"{port}__tag"
                if tag_port in sim_out and sim_out[tag_port] != self.design.encoding.encode(label):
                    self.mismatches.append(
                        Mismatch(cycle, f"{tag}output tag {port}", label, sim_out[tag_port])
                    )
            got_violation = bool(sim_out.get("violation", 0))
            if got_violation != violated:
                self.mismatches.append(
                    Mismatch(cycle, f"{tag}violation flag", violated, got_violation)
                )
            self.compare_state(cycle, sim, tag)

    def run(
        self,
        cycles: int,
        stimulus: Callable[[int], InputSpec] | None = None,
        stop_on_mismatch: bool = True,
    ) -> list[Mismatch]:
        for cycle in range(cycles):
            self.run_cycle(stimulus(cycle) if stimulus else None)
            if stop_on_mismatch and self.mismatches:
                break
        return self.mismatches


def assert_equivalent(
    source: str,
    lattice: Lattice,
    cycles: int,
    stimulus: Callable[[int], InputSpec] | None = None,
) -> CrossValidation:
    """Run all three engines (interpreter, raw hardware, optimized
    hardware) and raise ``AssertionError`` on the first divergence."""
    cv = CrossValidation.build(source, lattice)
    mismatches = cv.run(cycles, stimulus)
    if mismatches:
        detail = "\n".join(str(m) for m in mismatches[:12])
        raise AssertionError(f"compiler/semantics divergence:\n{detail}")
    return cv


class BatchCrossValidation:
    """Many stimulus traces of one program as lanes of a batched machine.

    Each lane is held to its own reference interpreter every cycle --
    the full architectural state (registers, tags, fall maps, arrays,
    outputs, violation events), exactly as :class:`CrossValidation` does
    for a single trace.  One :class:`~repro.hdl.batch.BatchSimulator`
    over the optimized module advances every trace together, so the
    batched engine itself is the device under test.
    """

    def __init__(
        self,
        source: str | ProgramInfo,
        lattice: Lattice,
        lanes: int,
        name: str = "design",
        majority_fraction: float | None = None,
        engine: str = "swar",
    ):
        """*majority_fraction* (0..1) overrides the batched engine's
        majority-cohort dispatch threshold, so conformance suites can
        force the split-step fast path (specialized majority cohort +
        generic minority, mask-merged write-back) under the same
        cycle-by-cycle architectural oracle as the generic engine.
        *engine* picks the batched generation under test (``"batch"``,
        ``"swar"``, or ``"vector"``)."""
        from repro.hdl import BatchSimulator

        info = (
            source if isinstance(source, ProgramInfo)
            else analyze(parse_program(source, name), lattice)
        )
        self.design = compile_program(info, lattice, secure=True, name=name)
        self.lanes = lanes
        if engine == "vector":
            from repro.hdl import VectorSimulator

            self.batch = VectorSimulator(self.design.module, lanes)
        else:
            self.batch = BatchSimulator(
                self.design.module, lanes, swar=engine == "swar"
            )
        if majority_fraction is not None:
            self.batch.majority_fraction = majority_fraction
        self.interps = [Interpreter(info, lattice) for _ in range(lanes)]
        self.mismatches: list[Mismatch] = []
        # per-lane comparison harness: the lane views are live, so one
        # CrossValidation holder per lane serves every cycle
        self._lane_cv = [
            CrossValidation(
                self.interps[lane], self.design, self.batch.lane_view(lane),
                mismatches=self.mismatches,
            )
            for lane in range(lanes)
        ]

    def run_cycle(self, lane_inputs: Sequence[InputSpec | None]) -> None:
        """One cycle of every lane against its interpreter."""
        before = [len(it.violations) for it in self.interps]
        outs = self.batch.step(
            [encode_inputs(self.design, inputs or {}) for inputs in lane_inputs]
        )
        for lane in range(self.lanes):
            it = self.interps[lane]
            it_out = it.run_cycle(lane_inputs[lane] or {})
            cycle = it.delta
            violated = len(it.violations) > before[lane]
            cv = self._lane_cv[lane]
            view = cv.sim
            sim_out = outs[lane]
            tag = f"lane{lane}:"
            for port, (value, label) in it_out.items():
                if sim_out.get(port) != value:
                    self.mismatches.append(
                        Mismatch(cycle, f"{tag}output {port}", value, sim_out.get(port))
                    )
                tag_port = f"{port}__tag"
                if tag_port in sim_out and sim_out[tag_port] != self.design.encoding.encode(label):
                    self.mismatches.append(
                        Mismatch(cycle, f"{tag}output tag {port}", label, sim_out[tag_port])
                    )
            if bool(sim_out.get("violation", 0)) != violated:
                self.mismatches.append(
                    Mismatch(cycle, f"{tag}violation flag", violated,
                             bool(sim_out.get("violation", 0)))
                )
            cv.compare_state(cycle, view, tag)

    def run(
        self,
        cycles: int,
        stimulus: Callable[[int, int], InputSpec] | None = None,
        stop_on_mismatch: bool = True,
    ) -> list[Mismatch]:
        """*stimulus* maps ``(lane, cycle)`` to that lane's inputs."""
        for cycle in range(cycles):
            self.run_cycle(
                [stimulus(lane, cycle) if stimulus else None for lane in range(self.lanes)]
            )
            if stop_on_mismatch and self.mismatches:
                break
        return self.mismatches


def assert_equivalent_suite(
    source: str,
    lattice: Lattice,
    cycles: int,
    stimuli: Sequence[Callable[[int], InputSpec]],
    name: str = "design",
    majority_fraction: float | None = None,
    engine: str = "swar",
) -> BatchCrossValidation:
    """Run a suite of stimulus traces as lanes of one batched machine,
    each held to its own interpreter, and raise on any divergence."""
    bcv = BatchCrossValidation(source, lattice, len(stimuli), name,
                               majority_fraction=majority_fraction,
                               engine=engine)
    mismatches = bcv.run(cycles, lambda lane, cycle: stimuli[lane](cycle))
    if mismatches:
        detail = "\n".join(str(m) for m in mismatches[:12])
        raise AssertionError(f"batched compiler/semantics divergence:\n{detail}")
    return bcv

"""Static analysis of Sapper programs.

This module implements everything the compiler and the formal semantics
need to know statically:

* name resolution (registers vs. register arrays vs. states), including
  desugaring of ``x[e]`` into a bit-select when ``x`` is a scalar;
* the state tree: ``Fpnt`` (parent), ``Fcmd`` (command), sibling groups,
  default (initial) children, and the implicit fixed root state;
* the control-dependence map ``Fcd``: for each ``if`` label, the set of
  registers / array names assigned under it plus the dynamic states whose
  reachability (via ``goto`` or ``fall``) is control-dependent on it
  (section 3.7 of the paper);
* width inference for expressions;
* the well-formedness conditions of Appendix A.1 (falls only in non-leaf
  states, gotos stay within a sibling group, branch arms agree on
  terminators, every path through a state ends in ``goto`` or ``fall``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lattice import Lattice
from repro.sapper import ast
from repro.sapper.errors import SapperTypeError


@dataclass
class ProgramInfo:
    """The result of :func:`analyze`: a resolved program plus derived maps."""

    program: ast.Program
    regs: dict[str, ast.RegDecl]
    arrays: dict[str, ast.ArrDecl]
    states: dict[str, ast.StateDef]
    parent: dict[str, str | None]          # Fpnt
    children: dict[str, tuple[str, ...]]      # sibling groups, in source order
    default_child: dict[str, str | None]   # initial FallMap
    depth: dict[str, int]
    #: Fcd: if-label -> (dynamic reg names, dynamic array names, dynamic state names)
    fcd_regs: dict[str, frozenset[str]]
    fcd_arrays: dict[str, frozenset[str]]
    fcd_states: dict[str, frozenset[str]]
    #: state name -> enclosing state of each goto/fall (filled during checks)
    goto_sites: dict[str, list[str]] = field(default_factory=dict)

    # -- convenience queries -------------------------------------------------

    @property
    def root(self) -> ast.StateDef:
        return self.states[ast.ROOT]

    def is_state(self, name: str) -> bool:
        return name in self.states

    def is_enforced_state(self, name: str) -> bool:
        if name == ast.ROOT:
            return True
        return self.states[name].enforced

    def initial_state_tag(self, name: str, lattice: Lattice) -> str:
        """Initial tag of a state: declared label for enforced states,
        bottom for dynamic states and for the implicit root."""
        if name == ast.ROOT:
            return lattice.bottom
        state = self.states[name]
        return lattice.check(state.label) if state.label is not None else lattice.bottom

    def initial_reg_tag(self, name: str, lattice: Lattice) -> str:
        decl = self.regs[name]
        return lattice.check(decl.label) if decl.label is not None else lattice.bottom

    def initial_arr_tag(self, name: str, lattice: Lattice) -> str:
        decl = self.arrays[name]
        return lattice.check(decl.label) if decl.label is not None else lattice.bottom

    def descendants(self, name: str) -> tuple[str, ...]:
        """All strict descendants of *name* in the state tree."""
        out: list[str] = []
        for child in self.children.get(name, ()):
            out.append(child)
            out.extend(self.descendants(child))
        return tuple(out)

    def width_of(self, exp: ast.Exp, tag_width: int = 1) -> int:
        """Inferred bit width of *exp* (tags and label literals are
        *tag_width* bits wide)."""
        return _width_of(exp, self, tag_width)

    def labels_used(self) -> frozenset[str]:
        """All label names mentioned anywhere in the program."""
        out: set[str] = set()
        for decl in self.program.decls:
            if decl.label is not None:
                out.add(decl.label)
        for state in self.states.values():
            if state.label is not None:
                out.add(state.label)
            for cmd in state.body.walk():
                for exp in cmd.expressions():
                    for sub in exp.walk():
                        if isinstance(sub, ast.LabelLit):
                            out.add(sub.label)
                if isinstance(cmd, ast.SetTag):
                    out.update(_tagexp_labels(cmd.tag))
        return frozenset(out)


def _tagexp_labels(te: ast.TagExp) -> set[str]:
    if isinstance(te, ast.TagConst):
        return {te.label}
    if isinstance(te, ast.TagJoin):
        return _tagexp_labels(te.left) | _tagexp_labels(te.right)
    return set()


# -- width inference -----------------------------------------------------------


def _width_of(exp: ast.Exp, info: ProgramInfo, tw: int) -> int:
    if isinstance(exp, ast.Const):
        if exp.width is not None:
            return exp.width
        return max(1, exp.value.bit_length())
    if isinstance(exp, ast.RegRef):
        return info.regs[exp.name].width
    if isinstance(exp, ast.ArrIndex):
        return info.arrays[exp.name].width
    if isinstance(exp, ast.BinOp):
        lw = _width_of(exp.left, info, tw)
        rw = _width_of(exp.right, info, tw)
        if exp.op in ast.BOOL_OPS:
            return 1
        if exp.op in ("+", "-"):
            return max(lw, rw) + 1
        if exp.op == "*":
            return lw + rw
        if exp.op in ("/", "%", "<<", ">>", "asr"):
            return lw
        return max(lw, rw)
    if isinstance(exp, ast.UnOp):
        return 1 if exp.op == "!" else _width_of(exp.operand, info, tw)
    if isinstance(exp, ast.Cond):
        return max(_width_of(exp.if_true, info, tw), _width_of(exp.if_false, info, tw))
    if isinstance(exp, ast.Slice):
        return exp.hi - exp.lo + 1
    if isinstance(exp, ast.Cat):
        return sum(_width_of(p, info, tw) for p in exp.parts)
    if isinstance(exp, ast.Ext):
        return exp.width
    if isinstance(exp, (ast.TagOf, ast.LabelLit)):
        return tw
    raise SapperTypeError(f"cannot infer width of {exp!r}")


# -- name resolution ------------------------------------------------------------


class _Resolver:
    def __init__(
        self, regs: dict[str, ast.RegDecl], arrays: dict[str, ast.ArrDecl], states: set[str]
    ):
        self.regs = regs
        self.arrays = arrays
        self.states = states

    def exp(self, e: ast.Exp) -> ast.Exp:
        if isinstance(e, ast.Const):
            return e
        if isinstance(e, ast.RegRef):
            if e.name not in self.regs:
                raise SapperTypeError(f"undeclared variable {e.name!r}")
            return e
        if isinstance(e, ast.ArrIndex):
            index = self.exp(e.index)
            if e.name in self.arrays:
                return ast.ArrIndex(e.name, index)
            if e.name in self.regs:
                # scalar bit-select desugars to shift-and-mask
                return ast.BinOp("&", ast.BinOp(">>", ast.RegRef(e.name), index), ast.Const(1, 1))
            raise SapperTypeError(f"undeclared array or register {e.name!r}")
        if isinstance(e, ast.BinOp):
            return ast.BinOp(e.op, self.exp(e.left), self.exp(e.right))
        if isinstance(e, ast.UnOp):
            return ast.UnOp(e.op, self.exp(e.operand))
        if isinstance(e, ast.Cond):
            return ast.Cond(self.exp(e.cond), self.exp(e.if_true), self.exp(e.if_false))
        if isinstance(e, ast.Slice):
            return ast.Slice(self.exp(e.base), e.hi, e.lo)
        if isinstance(e, ast.Cat):
            return ast.Cat(tuple(self.exp(p) for p in e.parts))
        if isinstance(e, ast.Ext):
            return ast.Ext(self.exp(e.operand), e.width, e.signed)
        if isinstance(e, ast.TagOf):
            return ast.TagOf(self.entity(e.entity))
        if isinstance(e, ast.LabelLit):
            return e
        raise SapperTypeError(f"unknown expression node {e!r}")

    def entity(self, ent: ast.TaggedEntity) -> ast.TaggedEntity:
        if isinstance(ent, ast.EntReg):
            if ent.name in self.states:
                return ast.EntState(ent.name)
            if ent.name in self.regs:
                return ent
            raise SapperTypeError(f"undeclared tagged entity {ent.name!r}")
        if isinstance(ent, ast.EntState):
            if ent.name not in self.states:
                raise SapperTypeError(f"undeclared state {ent.name!r}")
            return ent
        if isinstance(ent, ast.EntArr):
            if ent.name not in self.arrays:
                raise SapperTypeError(f"undeclared array {ent.name!r}")
            return ast.EntArr(ent.name, self.exp(ent.index))
        raise SapperTypeError(f"unknown entity {ent!r}")

    def tagexp(self, te: ast.TagExp) -> ast.TagExp:
        if isinstance(te, ast.TagConst):
            return te
        if isinstance(te, ast.TagOfEntity):
            return ast.TagOfEntity(self.entity(te.entity))
        if isinstance(te, ast.TagJoin):
            return ast.TagJoin(self.tagexp(te.left), self.tagexp(te.right))
        if isinstance(te, ast.TagFromBits):
            return ast.TagFromBits(self.exp(te.bits))
        raise SapperTypeError(f"unknown tag expression {te!r}")

    def cmd(self, c: ast.Cmd) -> ast.Cmd:
        if isinstance(c, ast.Skip):
            return c
        if isinstance(c, ast.AssignReg):
            if c.target in self.arrays:
                raise SapperTypeError(f"array {c.target!r} needs an index to be assigned")
            if c.target not in self.regs:
                raise SapperTypeError(f"assignment to undeclared variable {c.target!r}")
            if self.regs[c.target].kind == "input":
                raise SapperTypeError(f"cannot assign to input port {c.target!r}")
            return ast.AssignReg(c.target, self.exp(c.value))
        if isinstance(c, ast.AssignArr):
            if c.target not in self.arrays:
                raise SapperTypeError(f"indexed assignment to non-array {c.target!r}")
            return ast.AssignArr(c.target, self.exp(c.index), self.exp(c.value))
        if isinstance(c, ast.Seq):
            return ast.Seq(tuple(self.cmd(x) for x in c.commands))
        if isinstance(c, ast.If):
            return ast.If(c.label, self.exp(c.cond), self.cmd(c.then), self.cmd(c.els))
        if isinstance(c, ast.Goto):
            if c.target not in self.states:
                raise SapperTypeError(f"goto to undeclared state {c.target!r}")
            return c
        if isinstance(c, ast.Fall):
            return c
        if isinstance(c, ast.SetTag):
            entity = self.entity(c.entity)
            if isinstance(entity, ast.EntArr) and not self.arrays[entity.name].enforced:
                raise SapperTypeError(
                    f"setTag on dynamic array {entity.name!r}: dynamic arrays share one "
                    "tag and cannot be zeroed per-element on downgrade; declare the "
                    "array with an initial label to make it enforced"
                )
            if isinstance(entity, ast.EntReg) and self.regs[entity.name].kind != "reg":
                raise SapperTypeError(
                    f"setTag target {entity.name!r} must be a persistent reg, a state, "
                    "or an enforced array element"
                )
            return ast.SetTag(entity, self.tagexp(c.tag))
        if isinstance(c, ast.Otherwise):
            primary = self.cmd(c.primary)
            if not isinstance(
                primary, (ast.AssignReg, ast.AssignArr, ast.Goto, ast.Fall, ast.SetTag)
            ):
                raise SapperTypeError("otherwise must guard a single enforceable command")
            return ast.Otherwise(primary, self.cmd(c.handler))
        raise SapperTypeError(f"unknown command node {c!r}")


# -- terminator discipline (Appendix A.1) -------------------------------------------


def _terminator(c: ast.Cmd, where: str) -> bool:
    """True iff *c* always ends in goto/fall; raises on inconsistent arms
    or on statements following a terminator."""
    if isinstance(c, (ast.Goto, ast.Fall)):
        return True
    if isinstance(c, ast.Otherwise):
        prim = _terminator(c.primary, where)
        hand = _terminator(c.handler, where)
        if prim != hand:
            raise SapperTypeError(
                f"in state {where!r}: otherwise arms disagree on ending with goto/fall"
            )
        return prim
    if isinstance(c, ast.If):
        then_t = _terminator(c.then, where)
        els_t = _terminator(c.els, where)
        if then_t != els_t:
            raise SapperTypeError(
                f"in state {where!r}: both branches of an if must execute a goto/fall "
                "or neither may (Appendix A.1)"
            )
        return then_t
    if isinstance(c, ast.Seq):
        for i, sub in enumerate(c.commands):
            if _terminator(sub, where) and i != len(c.commands) - 1:
                raise SapperTypeError(f"in state {where!r}: unreachable code after goto/fall")
        return _terminator(c.commands[-1], where)
    return False


# -- Fcd -----------------------------------------------------------------------------


def _assigned_regs(c: ast.Cmd) -> set[str]:
    return {x.target for x in c.walk() if isinstance(x, ast.AssignReg)}


def _assigned_arrays(c: ast.Cmd) -> set[str]:
    return {x.target for x in c.walk() if isinstance(x, ast.AssignArr)}


def _collect_fcd(
    state: ast.StateDef,
    info: ProgramInfo,
) -> None:
    """Populate Fcd for every if inside *state*'s body.

    Beyond the registers assigned directly under the ``if``, a branch
    that performs a ``goto`` or ``fall`` makes the *schedule* of an
    entire region of the state tree control-dependent: which sibling (or
    child) runs next, and transitively everything those states can
    schedule.  The paper's GOTO-DYNAMIC prose requires "the security
    tags of all dynamic registers that are assigned in all
    goto-reachable states" to be raised, and notes that this rule "is
    the major cause of label creep in most designs" with nested states
    as the containment mechanism.  Since gotos cannot leave a sibling
    group (Appendix A.1), the sound closure is:

    * if a branch contains a ``goto``: every dynamic register, dynamic
      array, and dynamic state in the subtree of the enclosing state's
      *parent* (the sibling group and everything below it);
    * if a branch only ``fall``s: the subtree of the enclosing state.

    Parent states remain unaffected -- exactly the containment property
    Figure 4's TDMA design relies on.
    """

    def scope_sets(root_name: str) -> tuple[set[str], set[str], set[str]]:
        regs: set[str] = set()
        arrays: set[str] = set()
        states: set[str] = set()
        for member in info.descendants(root_name):
            body = info.states[member].body
            regs |= {r for r in _assigned_regs(body) if info.regs[r].label is None}
            arrays |= {a for a in _assigned_arrays(body) if info.arrays[a].label is None}
            if not info.is_enforced_state(member):
                states.add(member)
        return regs, arrays, states

    def visit(c: ast.Cmd) -> None:
        if isinstance(c, ast.If):
            branch = ast.seq(c.then, c.els)
            regs = {r for r in _assigned_regs(branch) if info.regs[r].label is None}
            arrays = {a for a in _assigned_arrays(branch) if info.arrays[a].label is None}
            states: set[str] = set()
            has_goto = any(isinstance(sub, ast.Goto) for sub in branch.walk())
            has_fall = any(isinstance(sub, ast.Fall) for sub in branch.walk())
            if has_goto:
                parent = info.parent[state.name]
                assert parent is not None
                s_regs, s_arrays, s_states = scope_sets(parent)
                regs |= s_regs
                arrays |= s_arrays
                states |= s_states
            elif has_fall:
                s_regs, s_arrays, s_states = scope_sets(state.name)
                regs |= s_regs
                arrays |= s_arrays
                states |= s_states
            info.fcd_regs[c.label] = frozenset(regs)
            info.fcd_arrays[c.label] = frozenset(arrays)
            info.fcd_states[c.label] = frozenset(states)
            visit(c.then)
            visit(c.els)
        elif isinstance(c, ast.Seq):
            for sub in c.commands:
                visit(sub)
        elif isinstance(c, ast.Otherwise):
            visit(c.primary)
            visit(c.handler)

    visit(state.body)


# -- top level ------------------------------------------------------------------------


def analyze(program: ast.Program, lattice: Lattice | None = None) -> ProgramInfo:
    """Resolve and validate *program*; return the derived :class:`ProgramInfo`.

    When *lattice* is given, every label mentioned in the program is
    checked for membership.
    """
    regs = program.reg_decls()
    arrays = program.arr_decls()
    if set(regs) & set(arrays):
        raise SapperTypeError("register and array names must be distinct")

    # Build the state tree with the implicit root.
    states: dict[str, ast.StateDef] = {}
    parent: dict[str, str | None] = {ast.ROOT: None}
    children: dict[str, tuple[str, ...]] = {}
    default_child: dict[str, str | None] = {}
    depth: dict[str, int] = {ast.ROOT: 0}

    def add_state(s: ast.StateDef, par: str, d: int) -> None:
        if s.name in states or s.name == ast.ROOT:
            raise SapperTypeError(f"duplicate state name {s.name!r}")
        if s.name in regs or s.name in arrays:
            raise SapperTypeError(f"state {s.name!r} clashes with a variable name")
        states[s.name] = s
        parent[s.name] = par
        depth[s.name] = d
        for child in s.children:
            add_state(child, s.name, d + 1)
        children[s.name] = tuple(c.name for c in s.children)
        default_child[s.name] = s.children[0].name if s.children else None

    root = ast.StateDef(ast.ROOT, ast.Fall(), label=None, children=program.states)
    states[ast.ROOT] = root
    for top in program.states:
        add_state(top, ast.ROOT, 1)
    children[ast.ROOT] = tuple(s.name for s in program.states)
    default_child[ast.ROOT] = program.states[0].name

    info = ProgramInfo(
        program=program,
        regs=regs,
        arrays=arrays,
        states=states,
        parent=parent,
        children=children,
        default_child=default_child,
        depth=depth,
        fcd_regs={},
        fcd_arrays={},
        fcd_states={},
    )

    # Resolve every state body (rewrites the AST in place of the old one).
    resolver = _Resolver(regs, arrays, set(states))

    def resolve_state(s: ast.StateDef) -> ast.StateDef:
        body = resolver.cmd(s.body)
        kids = tuple(resolve_state(c) for c in s.children)
        return ast.StateDef(s.name, body, s.label, kids)

    new_tops = tuple(resolve_state(s) for s in program.states)
    program = ast.Program(program.decls, new_tops, program.name)
    info.program = program
    # Rebuild the state map over the resolved tree.
    info.states = {ast.ROOT: ast.StateDef(ast.ROOT, ast.Fall(), None, new_tops)}
    for top in new_tops:
        for s in top.walk():
            info.states[s.name] = s

    # Well-formedness checks (Appendix A.1).
    for s in info.states.values():
        if s.name == ast.ROOT:
            continue
        has_children = bool(info.children[s.name])
        for c in s.body.walk():
            if isinstance(c, ast.Fall) and not has_children:
                raise SapperTypeError(f"leaf state {s.name!r} cannot contain fall")
            if isinstance(c, ast.Goto):
                if info.parent[c.target] != info.parent[s.name]:
                    raise SapperTypeError(
                        f"goto {c.target!r} from {s.name!r} leaves its sibling group "
                        "(Appendix A.1: gotos stay at the same depth and group)"
                    )
        if not _terminator(s.body, s.name):
            raise SapperTypeError(
                f"state {s.name!r} has a path that ends in neither goto nor fall"
            )
        _collect_fcd(s, info)

    # Optional label validation.
    if lattice is not None:
        for label in info.labels_used():
            lattice.check(label)

    return info

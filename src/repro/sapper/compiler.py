"""The Sapper compiler: Sapper AST -> HDL IR with security logic.

This implements sections 3.3-3.6 of the paper.  The compiler performs a
symbolic execution of the (statically analyzed) program, producing SSA
combinational logic plus one synchronous write-back per register -- the
"single combinational block + generated synchronous block" structure of
section 3.1.  Along the way it *automatically* inserts:

* tag storage: an n-bit tag flip-flop per dynamic register, per dynamic
  state, and one per dynamic array; a tag memory next to every enforced
  array (1 tag per word -- the paper's 3% memory overhead); enforced
  scalars whose tags are never the target of a ``setTag`` get constant
  tags and cost nothing;
* tracking logic: tag joins mirroring every expression and the ``Fcd``
  upgrades for implicit flows at every ``if``;
* enforcement checks: every assignment to an enforced target, every
  ``goto``/``fall`` involving enforced states, and every ``setTag``
  compiles to a guard in front of the state-changing effect, exactly the
  ``if (derived condition) command else default/otherwise`` shape of
  Figure 5;
* a 1-bit ``violation`` output that pulses whenever any check fails
  (used by the validation experiments).

Compiling with ``secure=False`` strips every tag and check and yields
the insecure Base design from the same source -- the paper's "Base
Processor" methodology.

Read-after-write of registers within a cycle follows the software-like
semantics of Figure 6 via SSA renaming; array reads are bypassed against
earlier in-cycle writes with forwarding muxes (real hardware cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lattice import BitEncoding, Lattice, LutEncoding, encode
from repro.sapper import ast
from repro.sapper.analysis import ProgramInfo, analyze
from repro.sapper.errors import SapperTypeError


@dataclass
class _ArrayWriteRec:
    addr: HRef
    data: HRef
    enable: HRef


from repro.hdl.ir import HConst, HExpr, HOp, HRef, Module  # noqa: E402


@dataclass
class CompiledDesign:
    """Result of compilation: the module plus naming metadata."""

    module: Module
    info: ProgramInfo
    lattice: Lattice
    encoding: BitEncoding | LutEncoding
    secure: bool
    reg_tag: dict[str, str] = field(default_factory=dict)     # reg -> tag signal/reg name
    state_tag: dict[str, str] = field(default_factory=dict)   # dynamic state -> tag reg
    fall_reg: dict[str, str] = field(default_factory=dict)    # state -> fall-map reg
    state_code: dict[str, int] = field(default_factory=dict)  # state -> encoding in parent's fall reg
    arr_tag: dict[str, str] = field(default_factory=dict)     # array -> tag array / tag reg

    @property
    def name(self) -> str:
        return self.module.name


class _Compiler:
    def __init__(self, info: ProgramInfo, lattice: Lattice, secure: bool, name: str):
        self.info = info
        self.lattice = lattice
        self.secure = secure
        self.enc = encode(lattice)
        self.tw = self.enc.width
        self.m = Module(name)
        self.design = CompiledDesign(self.m, info, lattice, self.enc, secure)
        self.bot = HConst(self.enc.encode(lattice.bottom), self.tw)
        # mutable environment: name -> HExpr for values, tags, fall regs
        self.env: dict[str, HExpr] = {}
        self.writes: dict[str, list[_ArrayWriteRec]] = {}
        self.tag_writes: dict[str, list[_ArrayWriteRec]] = {}
        self.settag_regs, self.settag_states = self._settag_targets()

    # -- static prep -----------------------------------------------------------

    def _settag_targets(self) -> tuple[set[str], set[str]]:
        regs: set[str] = set()
        states: set[str] = set()
        for state in self.info.states.values():
            for cmd in state.body.walk():
                if isinstance(cmd, ast.SetTag):
                    if isinstance(cmd.entity, ast.EntReg):
                        regs.add(cmd.entity.name)
                    elif isinstance(cmd.entity, ast.EntState):
                        states.add(cmd.entity.name)
        return regs, states

    # -- lattice ops in hardware --------------------------------------------------

    def join(self, a: HExpr, b: HExpr) -> HExpr:
        if not self.secure:
            return self.bot
        if a == self.bot or (isinstance(a, HConst) and a.value == self.bot.value):
            return b
        if b == self.bot or (isinstance(b, HConst) and b.value == self.bot.value):
            return a
        if isinstance(self.enc, BitEncoding):
            return HOp("or", (a, b), self.tw)
        # LUT lattice: nested mux over the join table
        result: HExpr = self.bot
        for i, ei in enumerate(self.lattice.elements):
            row: HExpr = self.bot
            for j, ej in enumerate(self.lattice.elements):
                val = HConst(self.enc.encode(self.lattice.join(ei, ej)), self.tw)
                row = HOp("mux", (HOp("eq", (b, HConst(j, self.tw)), 1), val, row), self.tw)
            result = HOp("mux", (HOp("eq", (a, HConst(i, self.tw)), 1), row, result), self.tw)
        return result

    def joins(self, *tags: HExpr) -> HExpr:
        out: HExpr = self.bot
        for t in tags:
            out = self.join(out, t)
        return out

    def leq(self, a: HExpr, b: HExpr) -> HExpr:
        """1-bit flow check ``a <= b``."""
        if not self.secure:
            return HConst(1, 1)
        if isinstance(self.enc, BitEncoding):
            # subset test: (a & ~b) == 0
            notb = HOp("not", (b,), self.tw)
            return HOp("eq", (HOp("and", (a, notb), self.tw), HConst(0, self.tw)), 1)
        result: HExpr = HConst(0, 1)
        for i, ei in enumerate(self.lattice.elements):
            row: HExpr = HConst(0, 1)
            for j, ej in enumerate(self.lattice.elements):
                val = HConst(int(self.lattice.leq(ei, ej)), 1)
                row = HOp("mux", (HOp("eq", (b, HConst(j, self.tw)), 1), val, row), 1)
            result = HOp("mux", (HOp("eq", (a, HConst(i, self.tw)), 1), row, result), 1)
        return result

    # -- helpers ---------------------------------------------------------------------

    def wire(self, expr: HExpr, hint: str = "t") -> HRef:
        if isinstance(expr, (HRef, HConst)):
            return expr  # type: ignore[return-value]
        return self.m.fresh(expr, hint)

    def bool_of(self, e: HExpr) -> HExpr:
        if e.width == 1:
            return e
        return HOp("ne", (e, HConst(0, e.width)), 1)

    def mux(self, c: HExpr, a: HExpr, b: HExpr) -> HExpr:
        if a == b:
            return a
        width = max(a.width, b.width)
        a = self.fit(a, width)
        b = self.fit(b, width)
        return HOp("mux", (self.bool_of(c), a, b), width)

    def fit(self, e: HExpr, width: int) -> HExpr:
        if e.width == width:
            return e
        if e.width > width:
            return HOp("slice", (e,), width, hi=width - 1, lo=0)
        return HOp("zext", (e,), width)

    # -- environment ------------------------------------------------------------------

    def val(self, name: str) -> HExpr:
        return self.env[name]

    def tagof(self, name: str) -> HExpr:
        return self.env[f"{name}.tag"] if self.secure else self.bot

    def set_val(self, name: str, e: HExpr, hint: str = "v") -> None:
        self.env[name] = self.wire(e, hint)

    def set_tag(self, name: str, e: HExpr) -> None:
        if self.secure:
            self.env[f"{name}.tag"] = self.wire(e, "tg")

    # -- expression compilation: value and tag together ----------------------------------

    def exp(self, e: ast.Exp, ctx: HExpr, path: HRef) -> tuple[HExpr, HExpr]:
        info = self.info
        if isinstance(e, ast.Const):
            width = e.width or max(1, e.value.bit_length())
            return HConst(e.value, width), self.bot
        if isinstance(e, ast.RegRef):
            return self.val(e.name), self.tagof(e.name)
        if isinstance(e, ast.ArrIndex):
            return self.array_read(e.name, e.index, ctx, path)
        if isinstance(e, ast.BinOp):
            lv, lt = self.exp(e.left, ctx, path)
            rv, rt = self.exp(e.right, ctx, path)
            return self.binop(e.op, lv, rv, info.width_of(e, self.tw)), self.join(lt, rt)
        if isinstance(e, ast.UnOp):
            v, t = self.exp(e.operand, ctx, path)
            width = info.width_of(e, self.tw)
            op = {"~": "not", "-": "neg", "!": "lnot"}[e.op]
            return HOp(op, (self.fit(v, width) if e.op != "!" else v,), width), t
        if isinstance(e, ast.Cond):
            cv, ct = self.exp(e.cond, ctx, path)
            tv, tt = self.exp(e.if_true, ctx, path)
            fv, ft = self.exp(e.if_false, ctx, path)
            return self.mux(cv, tv, fv), self.joins(ct, tt, ft)
        if isinstance(e, ast.Slice):
            v, t = self.exp(e.base, ctx, path)
            width = e.hi - e.lo + 1
            return HOp("slice", (self.fit(v, max(v.width, e.hi + 1)),), width, hi=e.hi, lo=e.lo), t
        if isinstance(e, ast.Cat):
            parts = [self.exp(p, ctx, path) for p in e.parts]
            width = sum(v.width for v, _ in parts)
            value = HOp("cat", tuple(v for v, _ in parts), width)
            return value, self.joins(*(t for _, t in parts))
        if isinstance(e, ast.Ext):
            v, t = self.exp(e.operand, ctx, path)
            op = "sext" if e.signed else "zext"
            if v.width >= e.width:
                return self.fit(v, e.width), t
            return HOp(op, (v,), e.width), t
        if isinstance(e, ast.TagOf):
            return self.entity_tag(e.entity, ctx, path)
        if isinstance(e, ast.LabelLit):
            return HConst(self.enc.encode(self.lattice.check(e.label)), self.tw), self.bot
        raise SapperTypeError(f"cannot compile expression {e!r}")

    def binop(self, op: str, lv: HExpr, rv: HExpr, width: int) -> HExpr:
        ir_op = {
            "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
            "&": "and", "|": "or", "^": "xor",
            "<<": "shl", ">>": "shr", "asr": "asr",
            "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
            "lts": "lts", "les": "les", "gts": "gts", "ges": "ges",
            "&&": "land", "||": "lor",
        }[op]
        if ir_op in ("and", "or", "xor"):
            lv, rv = self.fit(lv, width), self.fit(rv, width)
        if ir_op in ("add", "sub"):
            lv, rv = self.fit(lv, width), self.fit(rv, width)
        if ir_op in ("div", "mod", "shl", "shr", "asr") and lv.width != width:
            lv = self.fit(lv, width)
        if ir_op in ("eq", "ne", "lt", "le", "gt", "ge"):
            w = max(lv.width, rv.width)
            lv, rv = self.fit(lv, w), self.fit(rv, w)
        return HOp(ir_op, (lv, rv), width)

    def entity_tag(self, ent: ast.TaggedEntity, ctx: HExpr, path: HRef) -> tuple[HExpr, HExpr]:
        """Compile ``tag(entity)`` to (encoded tag value, phi)."""
        if not self.secure:
            return self.bot, self.bot
        if isinstance(ent, ast.EntReg):
            return self.tagof(ent.name), self.bot
        if isinstance(ent, ast.EntState):
            return self.state_tag_expr(ent.name), self.bot
        if isinstance(ent, ast.EntArr):
            _, cell_tag, idx_tag = self.array_read_with_tag(ent.name, ent.index, ctx, path)
            return cell_tag, idx_tag
        raise SapperTypeError(f"bad entity {ent!r}")

    def state_tag_expr(self, name: str) -> HExpr:
        return self.env[f"state:{name}.tag"]

    # -- arrays with in-cycle forwarding ---------------------------------------------------

    def array_read(self, name: str, index: ast.Exp, ctx: HExpr, path: HRef) -> tuple[HExpr, HExpr]:
        value, cell_tag, idx_tag = self.array_read_with_tag(name, index, ctx, path)
        return value, self.join(cell_tag, idx_tag)

    def _addr(self, iv: HExpr, size: int) -> HExpr:
        """Reduce an index expression to a canonical address so that the
        in-cycle forwarding comparisons agree with the memory's own
        wrap-around behaviour."""
        bits = max(1, (size - 1).bit_length())
        if size & (size - 1) == 0:
            return self.fit(iv, bits)
        modded = HOp("mod", (iv, HConst(size, max(iv.width, bits))), iv.width)
        return self.fit(modded, bits)

    def array_read_with_tag(
        self, name: str, index: ast.Exp, ctx: HExpr, path: HRef
    ) -> tuple[HExpr, HExpr, HExpr]:
        decl = self.info.arrays[name]
        iv, it = self.exp(index, ctx, path)
        addr = self.wire(self._addr(iv, decl.size), "addr")
        value: HExpr = HOp("read", (addr,), decl.width, array=name)
        for rec in self.writes.get(name, ()):  # forwarding network
            hit = HOp(
                "land", (rec.enable, HOp("eq", (rec.addr, self.fit(addr, rec.addr.width)), 1)), 1
            )
            value = self.mux(hit, rec.data, value)
        if not self.secure:
            return self.wire(value, "rd"), self.bot, self.bot
        if decl.enforced:
            tag: HExpr = HOp("read", (addr,), self.tw, array=self.design.arr_tag[name])
            for rec in self.tag_writes.get(name, ()):
                hit = HOp(
                    "land",
                    (rec.enable, HOp("eq", (rec.addr, self.fit(addr, rec.addr.width)), 1)),
                    1,
                )
                tag = self.mux(hit, rec.data, tag)
        else:
            tag = self.env[f"arr:{name}.tag"]
        return self.wire(value, "rd"), self.wire(tag, "rdt"), it

    def array_write(self, name: str, addr: HExpr, data: HExpr, enable: HExpr) -> None:
        decl = self.info.arrays[name]
        rec = _ArrayWriteRec(
            addr=self.wire(self._addr(addr, decl.size), "wa"),
            data=self.wire(self.fit(data, decl.width), "wd"),
            enable=self.wire(enable, "we"),
        )
        self.writes.setdefault(name, []).append(rec)

    def array_tag_write(self, name: str, addr: HExpr, tag: HExpr, enable: HExpr) -> None:
        decl = self.info.arrays[name]
        rec = _ArrayWriteRec(
            addr=self.wire(self._addr(addr, decl.size), "wta"),
            data=self.wire(self.fit(tag, self.tw), "wtd"),
            enable=self.wire(enable, "wte"),
        )
        self.tag_writes.setdefault(name, []).append(rec)

    # -- commands ---------------------------------------------------------------------------

    def cmd(self, c: ast.Cmd, state: str, ctx: HRef, path: HRef) -> None:
        if isinstance(c, ast.Skip):
            return
        if isinstance(c, ast.Seq):
            for sub in c.commands:
                self.cmd(sub, state, ctx, path)
            return
        if isinstance(c, ast.If):
            self.compile_if(c, state, ctx, path)
            return
        if isinstance(c, ast.Otherwise):
            ok = self.enforceable(c.primary, state, ctx, path)
            snapshot = dict(self.env)
            # handler runs when the primary's check failed
            not_ok = self.wire(HOp("lnot", (ok,), 1), "nok")
            handler_path = self.wire(HOp("land", (path, not_ok), 1), "pth")
            self.cmd(c.handler, state, ctx, handler_path)
            self.merge(ok, snapshot_then=snapshot, label="otw")
            return
        self.enforceable(c, state, ctx, path)
        return

    def merge(self, cond: HExpr, snapshot_then: dict[str, HExpr], label: str) -> None:
        """Merge current env (else/handler side) with *snapshot_then*
        under *cond*: env := cond ? snapshot : env."""
        for key, then_val in snapshot_then.items():
            cur = self.env.get(key)
            if cur is not None and cur is not then_val and cur != then_val:
                self.env[key] = self.wire(self.mux(cond, then_val, cur), label)

    def compile_if(self, c: ast.If, state: str, ctx: HRef, path: HRef) -> None:
        cv, ct = self.exp(c.cond, ctx, path)
        cond = self.wire(self.bool_of(cv), f"c_{c.label}")
        new_ctx = self.wire(self.join(ctx, ct), f"ctx_{c.label}")
        if self.secure:
            # Fcd upgrades: implicit flows from branches not taken.
            for reg in sorted(self.info.fcd_regs[c.label]):
                self.set_tag(reg, self.join(self.tagof(reg), new_ctx))
            for arr in sorted(self.info.fcd_arrays[c.label]):
                key = f"arr:{arr}.tag"
                self.env[key] = self.wire(self.join(self.env[key], new_ctx), "fcd")
            for st in sorted(self.info.fcd_states[c.label]):
                key = f"state:{st}.tag"
                self.env[key] = self.wire(self.join(self.env[key], new_ctx), "fcd")
        before = dict(self.env)
        then_path = self.wire(HOp("land", (path, cond), 1), "pt")
        self.cmd(c.then, state, new_ctx, then_path)
        after_then = self.env
        self.env = before
        else_path = self.wire(HOp("land", (path, HOp("lnot", (cond,), 1)), 1), "pe")
        self.cmd(c.els, state, new_ctx, else_path)
        self.merge(cond, snapshot_then=after_then, label=f"m_{c.label}")

    # -- enforceable commands: return the 1-bit "check passed" signal -------------------------

    def enforceable(self, c: ast.Cmd, state: str, ctx: HRef, path: HRef) -> HExpr:
        if isinstance(c, ast.AssignReg):
            return self.assign_reg(c, ctx, path)
        if isinstance(c, ast.AssignArr):
            return self.assign_arr(c, ctx, path)
        if isinstance(c, ast.Goto):
            return self.compile_goto(c, state, ctx, path)
        if isinstance(c, ast.Fall):
            return self.compile_fall(state, ctx, path)
        if isinstance(c, ast.SetTag):
            return self.compile_settag(c, ctx, path)
        raise SapperTypeError(f"not an enforceable command: {c!r}")

    def note_violation(self, ok: HExpr, path: HRef) -> None:
        if not self.secure:
            return
        failed = HOp("land", (path, HOp("lnot", (ok,), 1)), 1)
        self.env["violation"] = self.wire(HOp("lor", (self.env["violation"], failed), 1), "vio")

    def assign_reg(self, c: ast.AssignReg, ctx: HRef, path: HRef) -> HExpr:
        value, vt = self.exp(c.value, ctx, path)
        decl = self.info.regs[c.target]
        value = self.fit(value, decl.width)
        tag = self.join(vt, ctx)
        if decl.enforced and self.secure:
            ok = self.wire(self.leq(tag, self.tagof(c.target)), "chk")
            self.set_val(c.target, self.mux(ok, value, self.val(c.target)), f"v_{c.target}")
            self.note_violation(ok, path)
            return ok
        self.set_val(c.target, value, f"v_{c.target}")
        if not decl.enforced:
            self.set_tag(c.target, tag)
        return HConst(1, 1)

    def assign_arr(self, c: ast.AssignArr, ctx: HRef, path: HRef) -> HExpr:
        decl = self.info.arrays[c.target]
        iv, it = self.exp(c.index, ctx, path)
        vv, vt = self.exp(c.value, ctx, path)
        tag = self.joins(it, vt, ctx)
        if decl.enforced and self.secure:
            # current tag of the target cell (with forwarding)
            addr = self.wire(self._addr(iv, decl.size), "ca")
            cur: HExpr = HOp("read", (addr,), self.tw, array=self.design.arr_tag[c.target])
            for rec in self.tag_writes.get(c.target, ()):
                hit = HOp("land", (rec.enable, HOp("eq", (rec.addr, addr), 1)), 1)
                cur = self.mux(hit, rec.data, cur)
            ok = self.wire(self.leq(tag, cur), "chk")
            enable = self.wire(HOp("land", (path, ok), 1), "en")
            self.array_write(c.target, iv, vv, enable)
            self.note_violation(ok, path)
            return ok
        self.array_write(c.target, iv, vv, path)
        if self.secure:
            key = f"arr:{c.target}.tag"
            joined = self.join(self.env[key], tag)
            self.env[key] = self.wire(self.mux(path, joined, self.env[key]), "at")
        return HConst(1, 1)

    def compile_goto(self, c: ast.Goto, state: str, ctx: HRef, path: HRef) -> HExpr:
        parent = self.info.parent[c.target]
        assert parent is not None
        src_tag = self.state_tag_expr(state) if self.secure else self.bot
        ok: HExpr = self.leq(ctx, src_tag)
        if self.secure and self.info.is_enforced_state(c.target):
            ok = HOp("land", (ok, self.leq(ctx, self.state_tag_expr(c.target))), 1)
        ok = self.wire(ok, "gok")
        take = self.wire(HOp("land", (path, ok), 1), "gtk")
        fall_key = f"fall:{parent}"
        if fall_key in self.env:
            code = HConst(self.design.state_code[c.target], self.env[fall_key].width)
            self.env[fall_key] = self.wire(self.mux(take, code, self.env[fall_key]), "fm")
        if self.secure and not self.info.is_enforced_state(c.target):
            key = f"state:{c.target}.tag"
            self.env[key] = self.wire(self.mux(take, ctx, self.env[key]), "stg")
        self.note_violation(ok, path)
        return ok

    def compile_fall(self, state: str, ctx: HRef, path: HRef) -> HExpr:
        children = self.info.children[state]
        fall_key = f"fall:{state}"
        sel = self.env.get(fall_key)
        overall_ok: HExpr = HConst(0, 1)
        for child in children:
            if sel is None:
                match: HExpr = HConst(1, 1)
            else:
                match = HOp("eq", (sel, HConst(self.design.state_code[child], sel.width)), 1)
            if self.secure:
                child_tag = self.state_tag_expr(child)
                if self.info.is_enforced_state(child):
                    ok = self.wire(self.leq(ctx, child_tag), "fok")
                    child_ctx = self.wire(child_tag, f"cctx_{child}")
                else:
                    ok = HConst(1, 1)
                    child_ctx = self.wire(self.join(ctx, child_tag), f"cctx_{child}")
            else:
                ok = HConst(1, 1)
                child_ctx = ctx
            active = self.wire(HOp("land", (path, HOp("land", (match, ok), 1)), 1), f"act_{child}")
            if self.secure and not self.info.is_enforced_state(child):
                key = f"state:{child}.tag"
                self.env[key] = self.wire(self.mux(active, child_ctx, self.env[key]), "stg")
            snapshot = dict(self.env)
            self.cmd(self.info.states[child].body, child, child_ctx, active)
            # merge: child effects apply only when this arm is active
            after_child = self.env
            self.env = snapshot
            self.merge(active, snapshot_then=after_child, label=f"f_{child}")
            arm_ok = HOp("land", (match, ok), 1)
            overall_ok = HOp("lor", (overall_ok, arm_ok), 1)
        overall_ok = self.wire(overall_ok, "fall_ok")
        self.note_violation(overall_ok, path)
        return overall_ok

    def compile_settag(self, c: ast.SetTag, ctx: HRef, path: HRef) -> HExpr:
        if not self.secure:
            return HConst(1, 1)
        new_tag, phi = self.tagexp(c.tag, ctx, path)
        write_ctx = self.wire(self.join(ctx, phi), "sctx")
        ent = c.entity
        if isinstance(ent, ast.EntReg):
            cur = self.tagof(ent.name)
            ok = self.wire(
                HOp("land", (self.leq(write_ctx, cur), self.leq(write_ctx, new_tag)), 1), "sok"
            )
            upgrade = self.leq(cur, new_tag)
            zeroed = self.mux(
                upgrade, self.val(ent.name), HConst(0, self.info.regs[ent.name].width)
            )
            self.set_val(ent.name, self.mux(ok, zeroed, self.val(ent.name)), f"v_{ent.name}")
            self.set_tag(ent.name, self.mux(ok, new_tag, cur))
            self.note_violation(ok, path)
            return ok
        if isinstance(ent, ast.EntState):
            key = f"state:{ent.name}.tag"
            cur = self.env[key]
            ok = self.wire(
                HOp("land", (self.leq(write_ctx, cur), self.leq(write_ctx, new_tag)), 1), "sok"
            )
            self.env[key] = self.wire(self.mux(ok, new_tag, cur), "stg")
            self.note_violation(ok, path)
            return ok
        if isinstance(ent, ast.EntArr):
            decl = self.info.arrays[ent.name]
            iv, it = self.exp(ent.index, ctx, path)
            write_ctx = self.wire(self.join(write_ctx, it), "sctx")
            addr = self.wire(self._addr(iv, decl.size), "sa")
            cur = HOp("read", (addr,), self.tw, array=self.design.arr_tag[ent.name])
            for rec in self.tag_writes.get(ent.name, ()):
                hit = HOp("land", (rec.enable, HOp("eq", (rec.addr, addr), 1)), 1)
                cur = self.mux(hit, rec.data, cur)
            cur = self.wire(cur, "sct")
            ok = self.wire(
                HOp("land", (self.leq(write_ctx, cur), self.leq(write_ctx, new_tag)), 1), "sok"
            )
            enable = self.wire(HOp("land", (path, ok), 1), "sen")
            self.array_tag_write(ent.name, iv, new_tag, enable)
            # zero the word on non-upgrade
            downgrade = HOp("lnot", (self.leq(cur, new_tag),), 1)
            zero_en = self.wire(HOp("land", (enable, downgrade), 1), "szn")
            self.array_write(ent.name, iv, HConst(0, decl.width), zero_en)
            self.note_violation(ok, path)
            return ok
        raise SapperTypeError(f"bad setTag entity {ent!r}")

    def tagexp(self, te: ast.TagExp, ctx: HRef, path: HRef) -> tuple[HExpr, HExpr]:
        if isinstance(te, ast.TagConst):
            return HConst(self.enc.encode(self.lattice.check(te.label)), self.tw), self.bot
        if isinstance(te, ast.TagOfEntity):
            return self.entity_tag(te.entity, ctx, path)
        if isinstance(te, ast.TagJoin):
            lv, lp = self.tagexp(te.left, ctx, path)
            rv, rp = self.tagexp(te.right, ctx, path)
            return self.join(lv, rv), self.join(lp, rp)
        if isinstance(te, ast.TagFromBits):
            bits, phi = self.exp(te.bits, ctx, path)
            return self.clamp_bits(bits), phi
        raise SapperTypeError(f"bad tag expression {te!r}")

    def clamp_bits(self, bits: HExpr) -> HExpr:
        """Hardware upward-closure of raw tag bits (see TagFromBits)."""
        if isinstance(self.enc, BitEncoding):
            result: HExpr = self.bot
            for i, basis in enumerate(self.enc.basis()):
                bit = HOp("slice", (self.fit(bits, max(bits.width, i + 1)),), 1, hi=i, lo=i)
                mask = HConst(self.enc.encode(basis), self.tw)
                result = self.join(result, HOp("mux", (bit, mask, HConst(0, self.tw)), self.tw))
            return self.wire(result, "tb")
        top = HConst(self.enc.encode(self.lattice.top), self.tw)
        result = top
        cmp_w = max(bits.width, self.tw)
        for i, label in enumerate(self.lattice.elements):
            sel = HOp("eq", (self.fit(bits, cmp_w), HConst(i, cmp_w)), 1)
            result = HOp("mux", (sel, HConst(self.enc.encode(label), self.tw), result), self.tw)
        return self.wire(result, "tb")

    # -- top level -------------------------------------------------------------------------------

    def compile(self) -> CompiledDesign:
        info, m = self.info, self.m
        # 1. ports and registers
        for name, decl in info.regs.items():
            if decl.kind == "input":
                self.env[name] = m.add_input(name, decl.width)
                if self.secure:
                    if decl.enforced:
                        self.env[f"{name}.tag"] = HConst(
                            self.enc.encode(self.lattice.check(decl.label)), self.tw
                        )
                    else:
                        self.env[f"{name}.tag"] = m.add_input(f"{name}__tag", self.tw)
            elif decl.kind == "reg":
                self.env[name] = m.add_reg(name, decl.width, decl.init)
                if self.secure:
                    init_tag = self.enc.encode(info.initial_reg_tag(name, self.lattice))
                    if decl.enforced and name not in self.settag_regs:
                        self.env[f"{name}.tag"] = HConst(init_tag, self.tw)
                    else:
                        tag_reg = f"{name}__tag"
                        self.design.reg_tag[name] = tag_reg
                        self.env[f"{name}.tag"] = m.add_reg(tag_reg, self.tw, init_tag)
            else:  # wire / output: per-cycle temporaries
                self.env[name] = HConst(0, decl.width)
                if self.secure:
                    if decl.enforced:
                        self.env[f"{name}.tag"] = HConst(
                            self.enc.encode(self.lattice.check(decl.label)), self.tw
                        )
                    else:
                        self.env[f"{name}.tag"] = self.bot

        # 2. arrays (+ tag stores)
        for name, decl in info.arrays.items():
            m.add_array(name, decl.width, decl.size)
            if self.secure:
                if decl.enforced:
                    tag_arr = f"{name}__tags"
                    default = self.enc.encode(info.initial_arr_tag(name, self.lattice))
                    m.add_array(tag_arr, self.tw, decl.size, default=default)
                    self.design.arr_tag[name] = tag_arr
                else:
                    tag_reg = f"{name}__tag"
                    self.design.arr_tag[name] = tag_reg
                    self.env[f"arr:{name}.tag"] = m.add_reg(
                        tag_reg, self.tw, self.enc.encode(self.lattice.bottom)
                    )

        # 3. state machine storage: fall-map regs and dynamic state tags
        for sname in info.states:
            kids = info.children[sname]
            if len(kids) > 1:
                width = max(1, (len(kids) - 1).bit_length())
                reg = f"fall__{sname.lstrip('_')}"
                self.design.fall_reg[sname] = reg
                default = info.default_child[sname]
                init = kids.index(default) if default in kids else 0
                self.env[f"fall:{sname}"] = m.add_reg(reg, width, init)
            for i, kid in enumerate(kids):
                self.design.state_code[kid] = i
        if self.secure:
            for sname in info.states:
                init = self.enc.encode(info.initial_state_tag(sname, self.lattice))
                key = f"state:{sname}.tag"
                if info.is_enforced_state(sname) and sname not in self.settag_states:
                    self.env[key] = HConst(init, self.tw)
                else:
                    reg = f"stag__{sname.lstrip('_')}"
                    self.design.state_tag[sname] = reg
                    self.env[key] = m.add_reg(reg, self.tw, init)
            self.env["violation"] = HConst(0, 1)

        # 4. compile the implicit root (which just falls into the FSM)
        path = self.wire(HConst(1, 1), "p0")
        root_ctx = self.wire(
            self.state_tag_expr(ast.ROOT) if self.secure else self.bot, "ctx0"
        )
        self.compile_fall(ast.ROOT, root_ctx, path)

        # 5. write-back: every register loads its final env value
        for name, decl in info.regs.items():
            if decl.kind == "reg":
                final = self.wire(self.fit(self.env[name], decl.width), f"nx_{name}")
                m.set_reg_next(name, self._as_ref(final, f"nx_{name}"))
        if self.secure:
            for name, tag_reg in self.design.reg_tag.items():
                final = self.wire(self.env[f"{name}.tag"], f"nxt_{name}")
                m.set_reg_next(tag_reg, self._as_ref(final, f"nxt_{name}"))
            for name, decl in info.arrays.items():
                if not decl.enforced:
                    final = self.wire(self.env[f"arr:{name}.tag"], f"nxa_{name}")
                    m.set_reg_next(f"{name}__tag", self._as_ref(final, f"nxa_{name}"))
            for sname, reg in self.design.state_tag.items():
                final = self.wire(self.env[f"state:{sname}.tag"], f"nxs_{sname}")
                m.set_reg_next(reg, self._as_ref(final, f"nxs_{sname}"))
        for sname, reg in self.design.fall_reg.items():
            final = self.wire(self.env[f"fall:{sname}"], f"nxf_{sname}")
            m.set_reg_next(reg, self._as_ref(final, f"nxf_{sname}"))

        # 6. array write ports
        for name, recs in self.writes.items():
            for rec in recs:
                m.write_array(name, rec.addr, rec.data, rec.enable)
        for name, recs in self.tag_writes.items():
            for rec in recs:
                m.write_array(self.design.arr_tag[name], rec.addr, rec.data, rec.enable)

        # 7. outputs
        for name, decl in info.regs.items():
            if decl.kind == "output":
                sig = self._as_ref(self.wire(self.fit(self.env[name], decl.width)), f"o_{name}")
                m.set_output(name, sig)
                if self.secure:
                    tag_sig = self._as_ref(self.wire(self.env[f"{name}.tag"]), f"ot_{name}")
                    m.set_output(f"{name}__tag", tag_sig)
        if self.secure:
            m.set_output("violation", self._as_ref(self.wire(self.env["violation"]), "viol"))

        m.validate()
        return self.design

    def _as_ref(self, e: HExpr, hint: str) -> HRef:
        if isinstance(e, HRef):
            return e
        return self.m.fresh(e if not isinstance(e, HConst) else HOp("zext", (e,), e.width), hint)


def compile_program(
    source: str | ast.Program | ProgramInfo,
    lattice: Lattice,
    secure: bool = True,
    name: str | None = None,
) -> CompiledDesign:
    """Compile Sapper source (text, AST, or analyzed info) to hardware.

    ``secure=True`` inserts the full tracking/enforcement logic;
    ``secure=False`` produces the insecure Base design from the same
    source (no tags, no checks) -- the paper's baseline methodology.
    """
    from repro.sapper.parser import parse_program

    if isinstance(source, str):
        info = analyze(parse_program(source, name or "design"), lattice)
    elif isinstance(source, ast.Program):
        info = analyze(source, lattice)
    else:
        info = source
    compiler = _Compiler(info, lattice, secure, name or info.program.name)
    return compiler.compile()

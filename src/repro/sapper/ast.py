"""Abstract syntax of Sapper (Figure 1 of the paper).

The grammar domains map to Python classes as follows::

    Prog          -> Program
    Def           -> RegDecl (reg / wire / input / output) | ArrDecl (mem)
    State         -> StateDef   (enforced if .label is not None and .enforced)
    Exp           -> Const | RegRef | ArrRef-as-expression (ArrIndex) |
                     BinOp | UnOp | Cond | Slice | Cat | TagOf | LabelLit
    TagExp        -> TagConst | TagOfEntity | TagJoin
    TaggedEntity  -> EntReg | EntState | EntArr
    Cmd           -> Skip | AssignReg | AssignArr | Seq | If | Goto | Fall |
                     SetTag | Otherwise

Values are fixed-width unsigned bit vectors; signedness is explicit in
the operator (``lts`` vs ``lt`` etc.).  Division and remainder by zero
are defined (all-ones and the dividend respectively), matching the HDL
simulator, so that Sapper programs are deterministic total functions of
their inputs -- a prerequisite for the noninterference theorem.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

# -- expressions ------------------------------------------------------------

#: Binary operators.  Comparison and logical operators produce 1-bit results.
#: ``lts/les/gts/ges`` are signed comparisons; ``asr`` is arithmetic shift.
BINARY_OPS = frozenset(
    [
        "+", "-", "*", "/", "%",
        "&", "|", "^",
        "<<", ">>", "asr",
        "==", "!=", "<", "<=", ">", ">=",
        "lts", "les", "gts", "ges",
        "&&", "||",
    ]
)

#: Operators that always produce a single bit.
BOOL_OPS = frozenset(["==", "!=", "<", "<=", ">", ">=", "lts", "les", "gts", "ges", "&&", "||"])

UNARY_OPS = frozenset(["~", "!", "-"])


@dataclass(frozen=True)
class Exp:
    """Base class for expressions."""

    def children(self) -> tuple["Exp", ...]:
        return ()

    def walk(self) -> Iterator["Exp"]:
        """Yield this node and all sub-expressions, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Const(Exp):
    """Integer literal; ``width`` pins the bit width when given."""

    value: int
    width: int | None = None


@dataclass(frozen=True)
class RegRef(Exp):
    """Read of a register, wire, input, or output by name."""

    name: str


@dataclass(frozen=True)
class ArrIndex(Exp):
    """Read of one element of a register array (``a[e]``)."""

    name: str
    index: Exp

    def children(self) -> tuple[Exp, ...]:
        return (self.index,)


@dataclass(frozen=True)
class BinOp(Exp):
    op: str
    left: Exp
    right: Exp

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def children(self) -> tuple[Exp, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnOp(Exp):
    op: str
    operand: Exp

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {self.op!r}")

    def children(self) -> tuple[Exp, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Cond(Exp):
    """Ternary mux ``cond ? if_true : if_false``."""

    cond: Exp
    if_true: Exp
    if_false: Exp

    def children(self) -> tuple[Exp, ...]:
        return (self.cond, self.if_true, self.if_false)


@dataclass(frozen=True)
class Slice(Exp):
    """Constant bit slice ``base[hi:lo]`` (``hi >= lo``, width hi-lo+1)."""

    base: Exp
    hi: int
    lo: int

    def __post_init__(self) -> None:
        if self.hi < self.lo or self.lo < 0:
            raise ValueError(f"bad slice bounds [{self.hi}:{self.lo}]")

    def children(self) -> tuple[Exp, ...]:
        return (self.base,)


@dataclass(frozen=True)
class Cat(Exp):
    """Concatenation; ``parts[0]`` is the most significant part."""

    parts: tuple[Exp, ...]

    def children(self) -> tuple[Exp, ...]:
        return self.parts


@dataclass(frozen=True)
class Ext(Exp):
    """Zero- or sign-extension to an explicit width."""

    operand: Exp
    width: int
    signed: bool

    def children(self) -> tuple[Exp, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class TagOf(Exp):
    """The tag of an entity read *as a value* (tags are public, so the
    value carries the bottom label -- section 3.2 of the paper)."""

    entity: TaggedEntity

    def children(self) -> tuple[Exp, ...]:
        if isinstance(self.entity, EntArr):
            return (self.entity.index,)
        return ()


@dataclass(frozen=True)
class LabelLit(Exp):
    """A security-label literal used as a value (its hardware encoding)."""

    label: str


# -- tagged entities and tag expressions -------------------------------------


@dataclass(frozen=True)
class TaggedEntity:
    """Base class for things that carry a security tag."""


@dataclass(frozen=True)
class EntReg(TaggedEntity):
    name: str


@dataclass(frozen=True)
class EntState(TaggedEntity):
    name: str


@dataclass(frozen=True)
class EntArr(TaggedEntity):
    name: str
    index: Exp


@dataclass(frozen=True)
class TagExp:
    """Base class for tag expressions (Figure 1's TagExp)."""


@dataclass(frozen=True)
class TagConst(TagExp):
    label: str


@dataclass(frozen=True)
class TagOfEntity(TagExp):
    entity: TaggedEntity


@dataclass(frozen=True)
class TagJoin(TagExp):
    left: TagExp
    right: TagExp


@dataclass(frozen=True)
class TagFromBits(TagExp):
    """A tag computed from a runtime bit pattern (``tagbits(e)``).

    Lets hardware *react to* labels supplied by software -- the paper's
    set-tag ISA instruction passes the desired label in a register.  The
    bits are interpreted in the lattice's hardware encoding and clamped
    upward to the nearest valid label (never downward, which would
    declassify).  The expression's own tag joins into the context guard
    of the enclosing ``setTag``.
    """

    bits: Exp


# -- commands -----------------------------------------------------------------


@dataclass(frozen=True)
class Cmd:
    """Base class for commands."""

    def walk(self) -> Iterator["Cmd"]:
        yield self

    def expressions(self) -> Iterator[Exp]:
        """All expressions read directly by this command (not recursive)."""
        return iter(())


@dataclass(frozen=True)
class Skip(Cmd):
    pass


@dataclass(frozen=True)
class AssignReg(Cmd):
    """``r := e`` -- checked if ``r`` is enforced, tracked if dynamic."""

    target: str
    value: Exp

    def expressions(self) -> Iterator[Exp]:
        yield self.value


@dataclass(frozen=True)
class AssignArr(Cmd):
    """``a[e1] := e2`` with per-element tags."""

    target: str
    index: Exp
    value: Exp

    def expressions(self) -> Iterator[Exp]:
        yield self.index
        yield self.value


@dataclass(frozen=True)
class Seq(Cmd):
    commands: tuple[Cmd, ...]

    def walk(self) -> Iterator[Cmd]:
        yield self
        for c in self.commands:
            yield from c.walk()


@dataclass(frozen=True)
class If(Cmd):
    """``if (e) c1 else c2``; ``label`` is the unique ProgramLabel used by
    the static analysis (``Fcd``) and assigned by the parser."""

    label: str
    cond: Exp
    then: Cmd
    els: Cmd

    def walk(self) -> Iterator[Cmd]:
        yield self
        yield from self.then.walk()
        yield from self.els.walk()

    def expressions(self) -> Iterator[Exp]:
        yield self.cond


@dataclass(frozen=True)
class Goto(Cmd):
    """State transition; takes effect at the clock edge."""

    target: str


@dataclass(frozen=True)
class Fall(Cmd):
    """Transfer control to the current child state (nested states)."""


@dataclass(frozen=True)
class SetTag(Cmd):
    """``setTag(entity, tagexp)`` -- explicit tag manipulation (section 3.5)."""

    entity: TaggedEntity
    tag: TagExp

    def expressions(self) -> Iterator[Exp]:
        if isinstance(self.entity, EntArr):
            yield self.entity.index


@dataclass(frozen=True)
class Otherwise(Cmd):
    """``c1 otherwise c2`` -- designer-specified violation handler
    (section 3.6).  ``primary`` must be a single enforceable command."""

    primary: Cmd
    handler: Cmd

    def walk(self) -> Iterator[Cmd]:
        yield self
        yield from self.primary.walk()
        yield from self.handler.walk()


def seq(*commands: Cmd) -> Cmd:
    """Smart sequence constructor: flattens and drops skips."""
    flat: list[Cmd] = []
    for c in commands:
        if isinstance(c, Seq):
            flat.extend(c.commands)
        elif not isinstance(c, Skip):
            flat.append(c)
    if not flat:
        return Skip()
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


# -- declarations and program --------------------------------------------------

#: Declaration kinds.  ``reg`` persists across cycles; ``wire`` is a
#: per-cycle temporary; ``input``/``output`` are ports.
REG_KINDS = ("reg", "wire", "input", "output")


@dataclass(frozen=True)
class RegDecl:
    """Scalar variable declaration.

    ``label`` not None makes the variable *enforced tagged* with that
    initial label; otherwise it is *dynamic tagged* (section 3.3).
    """

    name: str
    width: int
    kind: str = "reg"
    label: str | None = None
    init: int = 0

    def __post_init__(self) -> None:
        if self.kind not in REG_KINDS:
            raise ValueError(f"bad declaration kind {self.kind!r}")
        if self.width <= 0:
            raise ValueError(f"bad width {self.width} for {self.name!r}")

    @property
    def enforced(self) -> bool:
        return self.label is not None


@dataclass(frozen=True)
class ArrDecl:
    """Register array (``mem``) with a tag per element."""

    name: str
    width: int
    size: int
    label: str | None = None

    def __post_init__(self) -> None:
        if self.width <= 0 or self.size <= 0:
            raise ValueError(f"bad array geometry for {self.name!r}")

    @property
    def enforced(self) -> bool:
        return self.label is not None


@dataclass(frozen=True)
class StateDef:
    """A state of the explicit finite state machine (section 3.4).

    ``label`` not None means *enforced tagged* with that initial label;
    None means *dynamic tagged* (tag tracked at run time, starts at
    bottom).  Children are declared via ``let state ... in`` and execute
    only when the parent ``fall``s into them.
    """

    name: str
    body: Cmd
    label: str | None = None
    children: tuple["StateDef", ...] = ()

    @property
    def enforced(self) -> bool:
        return self.label is not None

    def walk(self) -> Iterator["StateDef"]:
        yield self
        for child in self.children:
            yield from child.walk()


#: Name of the implicit root state (fixed, per Appendix A.1).
ROOT = "_root"


@dataclass(frozen=True)
class Program:
    """A complete Sapper program: declarations plus top-level states.

    The implicit root state (named :data:`ROOT`) is enforced at bottom
    and simply ``fall``s into the current top-level state; the first
    top-level state is the initial one.
    """

    decls: tuple[RegDecl | ArrDecl, ...]
    states: tuple[StateDef, ...]
    name: str = "design"

    def reg_decls(self) -> dict[str, RegDecl]:
        return {d.name: d for d in self.decls if isinstance(d, RegDecl)}

    def arr_decls(self) -> dict[str, ArrDecl]:
        return {d.name: d for d in self.decls if isinstance(d, ArrDecl)}

    def all_states(self) -> Iterator[StateDef]:
        for s in self.states:
            yield from s.walk()

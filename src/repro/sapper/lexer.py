"""Lexer for the concrete ``.sap`` syntax.

The surface syntax is Verilog-flavoured, matching the paper's listings
(Figures 3 and 4): ``reg[7:0] a : L;``, ``state Master:L = { ... }``,
``goto Slave;``, ``timer := timer - 1;`` and so on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sapper.errors import SapperSyntaxError

KEYWORDS = frozenset(
    [
        "reg", "wire", "input", "output", "mem",
        "state", "let", "in",
        "if", "else", "case", "default",
        "goto", "fall", "skip",
        "setTag", "otherwise",
        "tag", "cat", "sext", "zext", "asr", "lts", "les", "gts", "ges",
    ]
)

#: Multi-character punctuation, longest first so maximal munch works.
PUNCT = [
    ":=", "==", "!=", "<=", ">=", "<<", ">>", "&&", "||",
    "{", "}", "(", ")", "[", "]",
    ";", ":", ",", "?",
    "+", "-", "*", "/", "%",
    "&", "|", "^", "~", "!", "<", ">", "=", "`",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'int' | 'punct' | 'keyword' | 'eof'
    text: str
    value: int | None
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line={self.line})"


def _scan_number(src: str, i: int, line: int, col: int) -> tuple[Token, int]:
    start = i
    n = len(src)
    # Verilog-style sized literal: 8'hFF, 4'b1010, 32'd17
    j = i
    while j < n and src[j].isdigit():
        j += 1
    if j < n and src[j] == "'" and j > i:
        base_ch = src[j + 1 : j + 2].lower()
        bases = {"h": 16, "b": 2, "d": 10, "o": 8}
        if base_ch not in bases:
            raise SapperSyntaxError(f"bad literal base {base_ch!r}", line, col)
        k = j + 2
        digits = []
        while k < n and (src[k].isalnum() or src[k] == "_"):
            digits.append(src[k])
            k += 1
        text = src[start:k]
        try:
            value = int("".join(digits).replace("_", ""), bases[base_ch])
        except ValueError as exc:
            raise SapperSyntaxError(f"bad literal {text!r}", line, col) from exc
        return Token("int", text, value, line, col), k
    if src.startswith(("0x", "0X"), i):
        j = i + 2
        while j < n and (src[j] in "0123456789abcdefABCDEF_"):
            j += 1
        return Token("int", src[start:j], int(src[start:j].replace("_", ""), 16), line, col), j
    if src.startswith(("0b", "0B"), i):
        j = i + 2
        while j < n and src[j] in "01_":
            j += 1
        return Token("int", src[start:j], int(src[start:j].replace("_", ""), 2), line, col), j
    j = i
    while j < n and (src[j].isdigit() or src[j] == "_"):
        j += 1
    return Token("int", src[start:j], int(src[start:j].replace("_", "")), line, col), j


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, raising :class:`SapperSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        col = i - line_start + 1
        if source.startswith("//", i):
            j = source.find("\n", i)
            i = n if j < 0 else j
            continue
        if source.startswith("/*", i):
            j = source.find("*/", i + 2)
            if j < 0:
                raise SapperSyntaxError("unterminated block comment", line, col)
            line += source.count("\n", i, j)
            nl = source.rfind("\n", i, j)
            if nl >= 0:
                line_start = nl + 1
            i = j + 2
            continue
        if ch.isdigit():
            tok, i = _scan_number(source, i, line, col)
            tokens.append(tok)
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, None, line, col))
            i = j
            continue
        for p in PUNCT:
            if source.startswith(p, i):
                tokens.append(Token("punct", p, None, line, col))
                i += len(p)
                break
        else:
            raise SapperSyntaxError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", None, line, 0))
    return tokens

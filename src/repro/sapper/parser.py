"""Recursive-descent parser for the ``.sap`` concrete syntax.

Grammar sketch (see tests/test_parser.py for worked examples)::

    program   := decl* state+
    decl      := ('reg'|'wire'|'input'|'output') width? names (':' LABEL)? ';'
               | 'mem' width? NAME '[' INT ']' (':' LABEL)? ';'
    width     := '[' INT ':' INT ']'
    state     := 'state' NAME (':' LABEL)? '=' '{' body '}'
    body      := ('let' 'state' NAME (':' LABEL)? '=' '{' body '}' 'in')* stmt*
    stmt      := 'skip' ';'
               | 'if' '(' exp ')' block ('else' (block | if_stmt))?
               | 'case' '(' exp ')' '{' (INT ':' block)* ('default' ':' block)? '}'
               | block
               | simple ('otherwise' stmt | ';')
    simple    := lval ':=' exp | 'goto' NAME | 'fall'
               | 'setTag' '(' entity ',' tagexp ')'
    tagexp    := LABEL | 'tag' '(' entity ')' | tagexp '|' tagexp

Expressions use C-like precedence and include the ternary ``?:``,
constant slices ``x[hi:lo]``, dynamic single-bit select ``x[e]`` (for
scalars; for ``mem`` names it is an array read), ``cat(...)``,
``sext(e, w)`` / ``zext(e, w)``, signed comparison functions
``lts/les/gts/ges``, arithmetic shift ``asr(a, b)``, tag reads
``tag(x)``, and label literals ``` `L ```.

Every ``if`` receives a unique ProgramLabel (``if0``, ``if1``, ...);
``case`` desugars into a chain of labelled ``if``s.
"""

from __future__ import annotations


from repro.sapper import ast
from repro.sapper.errors import SapperSyntaxError
from repro.sapper.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: list[Token], name: str):
        self.tokens = tokens
        self.pos = 0
        self.name = name
        self.if_counter = 0

    # -- token plumbing -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        tok = self.peek()
        return tok.text == text and tok.kind in ("punct", "keyword")

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if not self.at(text):
            raise SapperSyntaxError(f"expected {text!r}, found {tok.text!r}", tok.line, tok.col)
        return self.advance()

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind != "ident":
            raise SapperSyntaxError(f"expected identifier, found {tok.text!r}", tok.line, tok.col)
        self.advance()
        return tok.text

    def expect_int(self) -> int:
        tok = self.peek()
        if tok.kind != "int":
            raise SapperSyntaxError(f"expected integer, found {tok.text!r}", tok.line, tok.col)
        self.advance()
        assert tok.value is not None
        return tok.value

    def fresh_if_label(self) -> str:
        label = f"if{self.if_counter}"
        self.if_counter += 1
        return label

    # -- program ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        decls: list[ast.RegDecl | ast.ArrDecl] = []
        while self.peek().text in ("reg", "wire", "input", "output", "mem"):
            decls.extend(self.parse_decl())
        states: list[ast.StateDef] = []
        while self.at("state"):
            states.append(self.parse_state())
        tok = self.peek()
        if tok.kind != "eof":
            raise SapperSyntaxError(f"unexpected {tok.text!r}", tok.line, tok.col)
        if not states:
            raise SapperSyntaxError("a Sapper program needs at least one state")
        return ast.Program(tuple(decls), tuple(states), name=self.name)

    def parse_decl(self) -> list[ast.RegDecl | ast.ArrDecl]:
        kind = self.advance().text
        width = self.parse_width()
        if kind == "mem":
            name = self.expect_ident()
            self.expect("[")
            size = self.expect_int()
            self.expect("]")
            label = self.parse_opt_label()
            self.expect(";")
            return [ast.ArrDecl(name, width, size, label)]
        names = [self.expect_ident()]
        while self.accept(","):
            names.append(self.expect_ident())
        label = self.parse_opt_label()
        self.expect(";")
        return [ast.RegDecl(n, width, kind, label) for n in names]

    def parse_width(self) -> int:
        if not self.accept("["):
            return 1
        hi = self.expect_int()
        self.expect(":")
        lo = self.expect_int()
        self.expect("]")
        if lo != 0 or hi < 0:
            raise SapperSyntaxError(f"declaration widths must be [N:0], got [{hi}:{lo}]")
        return hi + 1

    def parse_opt_label(self) -> str | None:
        if self.accept(":"):
            return self.expect_ident()
        return None

    # -- states ---------------------------------------------------------------

    def parse_state(self) -> ast.StateDef:
        self.expect("state")
        return self.parse_state_tail()

    def parse_state_tail(self) -> ast.StateDef:
        name = self.expect_ident()
        label = self.parse_opt_label()
        self.expect("=")
        self.expect("{")
        children, body = self.parse_state_body()
        self.expect("}")
        return ast.StateDef(name, body, label, tuple(children))

    def parse_state_body(self) -> tuple[list[ast.StateDef], ast.Cmd]:
        children: list[ast.StateDef] = []
        while self.at("let"):
            self.advance()
            self.expect("state")
            children.append(self.parse_state_tail())
            self.expect("in")
        stmts: list[ast.Cmd] = []
        while not self.at("}"):
            stmts.append(self.parse_stmt())
        return children, ast.seq(*stmts)

    # -- statements -------------------------------------------------------------

    def parse_block(self) -> ast.Cmd:
        self.expect("{")
        stmts: list[ast.Cmd] = []
        while not self.at("}"):
            stmts.append(self.parse_stmt())
        self.expect("}")
        return ast.seq(*stmts)

    def parse_stmt(self) -> ast.Cmd:
        if self.at("skip"):
            self.advance()
            self.expect(";")
            return ast.Skip()
        if self.at("if"):
            return self.parse_if()
        if self.at("case"):
            return self.parse_case()
        if self.at("{"):
            return self.parse_block()
        simple = self.parse_simple()
        if self.accept("otherwise"):
            handler = self.parse_stmt()
            return ast.Otherwise(simple, handler)
        self.expect(";")
        return simple

    def parse_if(self) -> ast.Cmd:
        self.expect("if")
        label = self.fresh_if_label()
        self.expect("(")
        cond = self.parse_exp()
        self.expect(")")
        then = self.parse_block()
        els: ast.Cmd = ast.Skip()
        if self.accept("else"):
            els = self.parse_if() if self.at("if") else self.parse_block()
        return ast.If(label, cond, then, els)

    def parse_case(self) -> ast.Cmd:
        self.expect("case")
        self.expect("(")
        scrutinee = self.parse_exp()
        self.expect(")")
        self.expect("{")
        arms: list[tuple[int, ast.Cmd]] = []
        default: ast.Cmd = ast.Skip()
        while not self.at("}"):
            if self.accept("default"):
                self.expect(":")
                default = self.parse_block()
                continue
            value = self.expect_int()
            self.expect(":")
            arms.append((value, self.parse_block()))
        self.expect("}")
        # Desugar to a labelled if-chain (the paper treats case/switch as
        # expressible in the core syntax).
        result = default
        for value, body in reversed(arms):
            result = ast.If(
                self.fresh_if_label(),
                ast.BinOp("==", scrutinee, ast.Const(value)),
                body,
                result,
            )
        return result

    def parse_simple(self) -> ast.Cmd:
        if self.at("goto"):
            self.advance()
            return ast.Goto(self.expect_ident())
        if self.at("fall"):
            self.advance()
            return ast.Fall()
        if self.at("setTag"):
            self.advance()
            self.expect("(")
            entity = self.parse_entity()
            self.expect(",")
            tag = self.parse_tagexp()
            self.expect(")")
            return ast.SetTag(entity, tag)
        # assignment
        name = self.expect_ident()
        if self.accept("["):
            index = self.parse_exp()
            self.expect("]")
            self.expect(":=")
            return ast.AssignArr(name, index, self.parse_exp())
        self.expect(":=")
        return ast.AssignReg(name, self.parse_exp())

    # -- tag expressions -----------------------------------------------------------

    def parse_entity(self) -> ast.TaggedEntity:
        """Entity inside ``tag(...)`` / ``setTag(...)``.

        Plain names are returned as :class:`~repro.sapper.ast.EntReg`;
        the analysis re-resolves names that denote states into
        :class:`~repro.sapper.ast.EntState`.
        """
        name = self.expect_ident()
        if self.accept("["):
            index = self.parse_exp()
            self.expect("]")
            return ast.EntArr(name, index)
        return ast.EntReg(name)

    def parse_tagexp(self) -> ast.TagExp:
        left = self.parse_tagexp_atom()
        while self.accept("|"):
            left = ast.TagJoin(left, self.parse_tagexp_atom())
        return left

    def parse_tagexp_atom(self) -> ast.TagExp:
        if self.at("tag"):
            self.advance()
            self.expect("(")
            entity = self.parse_entity()
            self.expect(")")
            return ast.TagOfEntity(entity)
        if self.peek().text == "tagbits":
            self.advance()
            self.expect("(")
            bits = self.parse_exp()
            self.expect(")")
            return ast.TagFromBits(bits)
        if self.accept("`"):
            return ast.TagConst(self.expect_ident())
        return ast.TagConst(self.expect_ident())

    # -- expressions ------------------------------------------------------------------

    def parse_exp(self) -> ast.Exp:
        return self.parse_ternary()

    def parse_ternary(self) -> ast.Exp:
        cond = self.parse_binary(0)
        if self.accept("?"):
            if_true = self.parse_exp()
            self.expect(":")
            if_false = self.parse_exp()
            return ast.Cond(cond, if_true, if_false)
        return cond

    #: Binary precedence levels, loosest first.
    _LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def parse_binary(self, level: int) -> ast.Exp:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        ops = self._LEVELS[level]
        left = self.parse_binary(level + 1)
        while self.peek().kind == "punct" and self.peek().text in ops:
            op = self.advance().text
            right = self.parse_binary(level + 1)
            left = ast.BinOp(op, left, right)
        return left

    def parse_unary(self) -> ast.Exp:
        tok = self.peek()
        if tok.kind == "punct" and tok.text in ("~", "!", "-"):
            self.advance()
            return ast.UnOp(tok.text, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Exp:
        base = self.parse_atom()
        while self.at("["):
            # Only name-rooted indexing is allowed syntactically; the
            # analysis decides array-read vs bit-select by declaration.
            self.advance()
            first = self.parse_exp()
            if self.accept(":"):
                lo = self.expect_int()
                self.expect("]")
                if not isinstance(first, ast.Const):
                    raise SapperSyntaxError("slice bounds must be constants")
                base = ast.Slice(base, first.value, lo)
                continue
            self.expect("]")
            if isinstance(base, ast.RegRef):
                base = ast.ArrIndex(base.name, first)  # may become bit-select in analysis
            else:
                # x[e] on a non-name expression is a dynamic bit select.
                base = ast.BinOp("&", ast.BinOp(">>", base, first), ast.Const(1))
        return base

    def parse_atom(self) -> ast.Exp:
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            assert tok.value is not None
            width = None
            if "'" in tok.text:
                width = int(tok.text.split("'")[0])
            return ast.Const(tok.value, width)
        if self.accept("("):
            e = self.parse_exp()
            self.expect(")")
            return e
        if self.accept("`"):
            return ast.LabelLit(self.expect_ident())
        if tok.text == "tag":
            self.advance()
            self.expect("(")
            entity = self.parse_entity()
            self.expect(")")
            return ast.TagOf(entity)
        if tok.text == "cat":
            self.advance()
            self.expect("(")
            parts = [self.parse_exp()]
            while self.accept(","):
                parts.append(self.parse_exp())
            self.expect(")")
            return ast.Cat(tuple(parts))
        if tok.text in ("sext", "zext"):
            self.advance()
            self.expect("(")
            operand = self.parse_exp()
            self.expect(",")
            width = self.expect_int()
            self.expect(")")
            return ast.Ext(operand, width, signed=tok.text == "sext")
        if tok.text in ("lts", "les", "gts", "ges", "asr"):
            self.advance()
            self.expect("(")
            left = self.parse_exp()
            self.expect(",")
            right = self.parse_exp()
            self.expect(")")
            return ast.BinOp(tok.text, left, right)
        if tok.kind == "ident":
            self.advance()
            return ast.RegRef(tok.text)
        raise SapperSyntaxError(f"unexpected {tok.text!r} in expression", tok.line, tok.col)


def parse_program(source: str, name: str = "design") -> ast.Program:
    """Parse ``.sap`` source text into a :class:`~repro.sapper.ast.Program`."""
    return _Parser(tokenize(source), name).parse_program()


def parse_expression(source: str) -> ast.Exp:
    """Parse a single expression (used by tests and tooling)."""
    parser = _Parser(tokenize(source), "exp")
    exp = parser.parse_exp()
    tok = parser.peek()
    if tok.kind != "eof":
        raise SapperSyntaxError(f"trailing input {tok.text!r}", tok.line, tok.col)
    return exp

"""Exception hierarchy for the Sapper toolchain."""

from __future__ import annotations


class SapperError(Exception):
    """Base class for all Sapper front-end and compiler errors."""


class SapperSyntaxError(SapperError):
    """Lexical or syntactic error in a ``.sap`` source file."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        where = f" at line {line}:{col}" if line else ""
        super().__init__(f"{message}{where}")


class SapperTypeError(SapperError):
    """Static well-formedness violation (Appendix A.1, widths, names)."""


class SapperRuntimeError(SapperError):
    """Raised by the semantics interpreter on malformed configurations."""

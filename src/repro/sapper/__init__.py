"""The Sapper hardware-description language (the paper's contribution).

Pipeline:

* :mod:`repro.sapper.ast` -- the abstract syntax of Figure 1.
* :mod:`repro.sapper.lexer` / :mod:`repro.sapper.parser` -- the concrete
  ``.sap`` syntax (a Verilog-flavoured surface language).
* :mod:`repro.sapper.analysis` -- static analysis: the state tree
  (``Fpnt``/``Fcmd``), control-dependence sets ``Fcd``, goto
  reachability, and the well-formedness conditions of Appendix A.1.
* :mod:`repro.sapper.semantics` -- an executable version of the formal
  semantics of Figure 6 (the specification interpreter).
* :mod:`repro.sapper.noninterference` -- the L-equivalence relations of
  Appendix A.2, used to test Theorem 1 mechanically.
* :mod:`repro.sapper.compiler` -- translation to the HDL IR with
  automatically inserted tracking and enforcement logic (sections 3.3-3.6).
"""

from repro.sapper.ast import (
    ArrDecl,
    AssignArr,
    AssignReg,
    BinOp,
    Cat,
    Cond,
    Const,
    EntArr,
    EntReg,
    EntState,
    Fall,
    Goto,
    If,
    LabelLit,
    Otherwise,
    Program,
    RegDecl,
    RegRef,
    Seq,
    SetTag,
    Skip,
    Slice,
    StateDef,
    TagConst,
    TagJoin,
    TagOf,
    TagOfEntity,
    UnOp,
)
from repro.sapper.errors import SapperError, SapperSyntaxError, SapperTypeError
from repro.sapper.parser import parse_program
from repro.sapper.analysis import analyze, ProgramInfo
from repro.sapper.compiler import compile_program

__all__ = [
    "parse_program",
    "analyze",
    "compile_program",
    "ProgramInfo",
    "Program",
    "StateDef",
    "RegDecl",
    "ArrDecl",
    "Const",
    "RegRef",
    "BinOp",
    "UnOp",
    "Cond",
    "Slice",
    "Cat",
    "TagOf",
    "LabelLit",
    "Skip",
    "AssignReg",
    "AssignArr",
    "Seq",
    "If",
    "Goto",
    "Fall",
    "SetTag",
    "Otherwise",
    "TagConst",
    "TagOfEntity",
    "TagJoin",
    "EntReg",
    "EntState",
    "EntArr",
    "SapperError",
    "SapperSyntaxError",
    "SapperTypeError",
]

"""L-equivalence of Sapper configurations (Appendix A.2 of the paper).

Two configurations are L-equivalent for an observer at level ``t`` when
the observer cannot distinguish them:

* **Store** -- every register whose tag is in ``L = downset(t)`` has the
  same value in both stores (and likewise every array element);
* **TagMap** -- an entity is L-tagged in one configuration iff it is
  L-tagged in the other;
* **FallMap** -- if either configuration's fall map sends a state to an
  L-tagged child, both maps send it to the *same* child;
* the cycle counters agree (the theorem is timing-sensitive).

Theorem 1 (noninterference) then states that running two L-equivalent
configurations for one cycle yields L-equivalent configurations.  The
test-suite checks this property mechanically on randomized programs
(``tests/test_noninterference.py``) -- the executable counterpart of the
paper's proof sketch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lattice import Lattice
from repro.sapper.semantics import Interpreter


@dataclass
class EquivalenceReport:
    """Outcome of an L-equivalence check, with human-readable mismatches."""

    equivalent: bool
    mismatches: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent


def _observable(lattice: Lattice, observer: str, tag: str) -> bool:
    return lattice.leq(tag, observer)


def stores_equivalent(a: Interpreter, b: Interpreter, observer: str) -> EquivalenceReport:
    """Store L-equivalence over persistent registers and array elements."""
    lat = a.lattice
    report = EquivalenceReport(True)
    for name, decl in a.info.regs.items():
        if decl.kind != "reg":
            continue  # wires/ports do not survive to the cycle boundary
        ta, tb = a.theta_reg[name], b.theta_reg[name]
        if _observable(lat, observer, ta) or _observable(lat, observer, tb):
            if a.sigma[name] != b.sigma[name]:
                report.equivalent = False
                report.mismatches.append(
                    f"store: reg {name} = {a.sigma[name]} vs {b.sigma[name]} "
                    f"(tags {ta}/{tb})"
                )
    for name in a.info.arrays:
        indices = set(a.arrays[name]) | set(b.arrays[name])
        for idx in indices:
            ta, tb = a.arr_tag(name, idx), b.arr_tag(name, idx)
            if _observable(lat, observer, ta) or _observable(lat, observer, tb):
                va = a.arrays[name].get(idx, 0)
                vb = b.arrays[name].get(idx, 0)
                if va != vb:
                    report.equivalent = False
                    report.mismatches.append(
                        f"store: {name}[{idx}] = {va} vs {vb} (tags {ta}/{tb})"
                    )
    return report


def tagmaps_equivalent(a: Interpreter, b: Interpreter, observer: str) -> EquivalenceReport:
    """TagMap L-equivalence: L-membership of every entity's tag agrees."""
    lat = a.lattice
    report = EquivalenceReport(True)

    def check(kind: str, name: str, ta: str, tb: str) -> None:
        if _observable(lat, observer, ta) != _observable(lat, observer, tb):
            report.equivalent = False
            report.mismatches.append(f"tagmap: {kind} {name} tagged {ta} vs {tb}")

    for name, decl in a.info.regs.items():
        if decl.kind != "reg":
            continue
        check("reg", name, a.theta_reg[name], b.theta_reg[name])
    for name in a.info.states:
        check("state", name, a.theta_state[name], b.theta_state[name])
    for name in a.info.arrays:
        if name in a.theta_arr_single:
            check("array", name, a.theta_arr_single[name], b.theta_arr_single[name])
        else:
            indices = set(a.theta_arr[name]) | set(b.theta_arr[name])
            for idx in indices:
                check("array-cell", f"{name}[{idx}]", a.arr_tag(name, idx), b.arr_tag(name, idx))
    return report


def fallmaps_equivalent(a: Interpreter, b: Interpreter, observer: str) -> EquivalenceReport:
    """FallMap L-equivalence per Appendix A.2."""
    lat = a.lattice
    report = EquivalenceReport(True)
    for state in a.rho:
        ca, cb = a.rho[state], b.rho[state]
        if ca is None and cb is None:
            continue
        vis_a = ca is not None and _observable(lat, observer, a.theta_state[ca])
        vis_b = cb is not None and _observable(lat, observer, b.theta_state[cb])
        if (vis_a or vis_b) and ca != cb:
            report.equivalent = False
            report.mismatches.append(f"fallmap: rho({state}) = {ca} vs {cb}")
    return report


def configs_equivalent(a: Interpreter, b: Interpreter, observer: str) -> EquivalenceReport:
    """Full configuration L-equivalence (checked at cycle boundaries)."""
    report = EquivalenceReport(True)
    if a.delta != b.delta:
        report.equivalent = False
        report.mismatches.append(f"delta: {a.delta} vs {b.delta}")
    for sub in (
        stores_equivalent(a, b, observer),
        tagmaps_equivalent(a, b, observer),
        fallmaps_equivalent(a, b, observer),
    ):
        if not sub:
            report.equivalent = False
            report.mismatches.extend(sub.mismatches)
    return report

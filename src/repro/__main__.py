"""``python -m repro`` -- the Sapper toolchain CLI."""

from repro.cli import main

raise SystemExit(main())

"""GLIFT: Gate-Level Information Flow Tracking (Tiwari et al., ASPLOS'09).

The first-generation baseline the paper compares against.  Every gate in
a design gets *shadow logic* computing the taint of its output from the
taints **and values** of its inputs (precise tracking: an AND gate with
a low 0 input produces a low 0 regardless of the other input).

Two implementations:

* :mod:`repro.glift.shadow` -- an executable netlist transform: takes a
  gate-level netlist (see :mod:`repro.hdl.netlist`) and inserts real
  shadow gates, so GLIFT tracking can be simulated and verified on
  small designs.
* :mod:`repro.glift.analytical` -- the processor-scale path: augments a
  synthesis gate census with the same per-gate shadow costs without
  materializing millions of gates (the ratios are identical by
  construction).

Note GLIFT provides *tracking only*, no enforcement (the paper makes the
same caveat when comparing overheads).
"""

from repro.glift.shadow import glift_transform, GliftSimulator
from repro.glift.analytical import glift_augment, GLIFT_SHADOW_COST

__all__ = ["glift_transform", "GliftSimulator", "glift_augment", "GLIFT_SHADOW_COST"]

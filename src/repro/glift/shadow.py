"""Executable GLIFT: insert precise shadow-tracking gates into a netlist.

For each gate with inputs ``a, b`` carrying taints ``at, bt`` the shadow
output taint is (Tiwari et al.):

* AND:  ``(at & bt) | (at & b) | (bt & a)`` -- a tainted input only
  taints the output if the *other* input does not force the output
  (i.e. is not a controlling 0);
* OR:   ``(at & bt) | (at & ~b) | (bt & ~a)`` (dually, controlling 1);
* XOR:  ``at | bt`` (no controlling values);
* INV / wire: taint passes through;
* DFF:  a shadow flip-flop carries the taint across the clock edge.

The transform returns a *new* netlist containing the original gates plus
the shadow network, with a ``<port>__taint`` input per original input
and a ``<port>__taint`` output per original output.
"""

from __future__ import annotations

from repro.hdl.netlist import (
    AND,
    CONST0,
    CONST1,
    DFF,
    INPUT,
    INV,
    OR,
    XOR,
    Gate,
    Netlist,
    NetlistSimulator,
)


def glift_transform(base: Netlist) -> Netlist:
    """Return a copy of *base* augmented with precise shadow logic."""
    out = Netlist(base.name + "_glift")
    # 1. copy original gates verbatim (ids preserved)
    for gate in base.gates:
        out.gates.append(Gate(gate.kind, gate.a, gate.b, init=gate.init, name=gate.name))
    out.inputs = {name: list(nets) for name, nets in base.inputs.items()}
    out.outputs = {name: list(nets) for name, nets in base.outputs.items()}
    out.dff_d = dict(base.dff_d)
    out._const0 = base._const0
    out._const1 = base._const1

    shadow: dict[int, int] = {}

    # 2. taint inputs
    for name, nets in base.inputs.items():
        taint_nets = [out.new(INPUT, name=f"{name}__taint") for _ in nets]
        out.inputs[f"{name}__taint"] = taint_nets
        for net, taint in zip(nets, taint_nets):
            shadow[net] = taint

    # 3. shadow DFFs first (their outputs are sources, like the originals)
    for i, gate in enumerate(base.gates):
        if gate.kind == DFF:
            shadow[i] = out.new(DFF, init=0)

    # 4. shadow combinational logic, in original topological order
    for i, gate in enumerate(base.gates):
        if gate.kind in (CONST0, CONST1):
            shadow[i] = out.const(0)
        elif gate.kind == INPUT or gate.kind == DFF:
            continue  # already done
        elif gate.kind == INV:
            shadow[i] = shadow[gate.a]
        elif gate.kind == XOR:
            shadow[i] = out.g_or(shadow[gate.a], shadow[gate.b])
        elif gate.kind == AND:
            at, bt = shadow[gate.a], shadow[gate.b]
            both = out.g_and(at, bt)
            a_leaks = out.g_and(at, gate.b)
            b_leaks = out.g_and(bt, gate.a)
            shadow[i] = out.g_or(both, out.g_or(a_leaks, b_leaks))
        elif gate.kind == OR:
            at, bt = shadow[gate.a], shadow[gate.b]
            both = out.g_and(at, bt)
            a_leaks = out.g_and(at, out.g_inv(gate.b))
            b_leaks = out.g_and(bt, out.g_inv(gate.a))
            shadow[i] = out.g_or(both, out.g_or(a_leaks, b_leaks))
        else:
            raise ValueError(f"unknown gate kind {gate.kind!r}")

    # 5. shadow DFF data inputs
    for dff, d in base.dff_d.items():
        out.dff_d[shadow[dff]] = shadow[d]

    # 6. taint outputs
    for name, nets in base.outputs.items():
        out.outputs[f"{name}__taint"] = [shadow[n] for n in nets]
    return out


class GliftSimulator(NetlistSimulator):
    """Convenience wrapper: drives value and taint inputs together.

    ``step(inputs, taints)`` takes per-port integer values and per-port
    taint masks; returns ``(outputs, output_taints)``.
    """

    def __init__(self, base: Netlist):
        super().__init__(glift_transform(base))

    def step_tainted(
        self, inputs: dict[str, int], taints: dict[str, int] | None = None
    ) -> tuple[dict[str, int], dict[str, int]]:
        stimulus = dict(inputs)
        for name, mask in (taints or {}).items():
            stimulus[f"{name}__taint"] = mask
        raw = self.step(stimulus)
        values = {k: v for k, v in raw.items() if not k.endswith("__taint")}
        out_taints = {
            k[: -len("__taint")]: v for k, v in raw.items() if k.endswith("__taint")
        }
        return values, out_taints

"""Processor-scale GLIFT cost: augment a gate census with shadow costs.

The shadow construction of :mod:`repro.glift.shadow` adds, per original
gate:

=========  =======================================  =================
orig gate  shadow network                           added cells
=========  =======================================  =================
and2       3 x and2 + 2 x or2                       5
or2        3 x and2 + 2 x or2 + 2 x inv             7
xor2       1 x or2                                  1
inv        (wire)                                   0
dff        1 x dff                                  1
=========  =======================================  =================

plus one taint bit per SRAM bit (memory must be shadowed bit-for-bit).
Because the shadow of level *n* logic depends on both the values and the
taints of level *n* inputs, the taint network roughly doubles the
critical path; we model ``levels' = 2 * levels + 2``.

Applying these per-gate costs to a full processor census is exactly
equivalent to materializing the shadow netlist and counting -- which is
how the paper's GLIFT flow works ("the processor is augmented with
GLIFT logic by associating information flow tracking logic with each
gate") -- without building a multi-million-gate structure in Python.
"""

from __future__ import annotations

from repro.hdl.synth import CostReport
from repro.hdl.techlib import GateCounts

#: added (and2, or2, inv, dff) per original gate of each type
GLIFT_SHADOW_COST: dict[str, tuple[int, int, int, int]] = {
    "and2": (3, 2, 0, 0),
    "or2": (3, 2, 2, 0),
    "xor2": (0, 1, 0, 0),
    "inv": (0, 0, 0, 0),
    "dff": (0, 0, 0, 1),
}


def glift_augment(base: CostReport, name: str | None = None) -> CostReport:
    """Return the cost report of *base* with GLIFT shadow logic added."""
    g = GateCounts()
    g.add(base.counts)
    for kind, population in (
        ("and2", base.counts.and2),
        ("or2", base.counts.or2),
        ("xor2", base.counts.xor2),
        ("inv", base.counts.inv),
        ("dff", base.counts.dff),
    ):
        d_and, d_or, d_inv, d_dff = GLIFT_SHADOW_COST[kind]
        g.and2 += d_and * population
        g.or2 += d_or * population
        g.inv += d_inv * population
        g.dff += d_dff * population
    g.sram_bits += base.counts.sram_bits  # one taint bit per data bit
    levels = 2 * base.levels + 2
    return CostReport(name or base.name + "_glift", g, levels)

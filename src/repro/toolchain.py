"""The unified Sapper toolchain facade.

One object owns the whole flow::

    parse -> analyze -> compile -> optimize -> { simulate | synthesize | emit }

with keyed artifact caching at every stage, replacing the ad-hoc
``lru_cache`` wrappers that used to live in ``repro.proc.design`` and
``repro.proc.machine``.  Cache keys are explicit and structural (source
digest, lattice order, compile flags), so distinct configurations never
collide and the cache can be inspected or cleared as a unit.

Typical use::

    from repro.toolchain import get_toolchain

    tc = get_toolchain()
    design = tc.compile(source, two_level(), name="tdma")
    sim = tc.simulator(design)       # optimized module, fresh state
    report = tc.synthesize(design)   # cached cost report
    text = tc.verilog(design)        # cached Verilog text

Every backend consumes the *same* optimized module object (the pass
pipeline is memoized per module), so simulation, synthesis, and Verilog
agree exactly on what hardware they describe.
"""

from __future__ import annotations

import hashlib
import os
import sys
import threading
from collections import OrderedDict
from collections.abc import Callable
from typing import TypeVar

from repro.analyze import (
    ANALYSIS_VERSION,
    AnalysisReport,
    analyze_design,
    analyze_module,
)
from repro.hdl import (
    BatchSimulator,
    Simulator,
    emit_verilog as _emit_verilog,
    synthesize as _synthesize,
)
from repro.hdl.ir import Module
from repro.hdl.passes import MAX_OPT_LEVEL, optimize as _optimize
from repro.hdl.synth import CostReport
from repro.lattice import Lattice
from repro.sapper import ast
from repro.sapper.analysis import ProgramInfo, analyze
from repro.sapper.compiler import CompiledDesign, compile_program
from repro.sapper.parser import parse_program
from repro.store import MISS, ArtifactStore, StoreError, UnstableKey, persistable_key

T = TypeVar("T")

Source = str | ast.Program | ProgramInfo
Design = CompiledDesign | Module

#: Lane count from which automatic engine selection prefers the NumPy
#: vector tier: measured on the secure processor, the ufunc-amortized
#: engine overtakes SWAR lane packing between 32 and 128 lanes.
VECTOR_AUTO_LANES = 64


def auto_engine(lanes: int) -> str:
    """The batched engine automatic selection picks for *lanes* lanes:
    ``"vector"`` from :data:`VECTOR_AUTO_LANES` up when NumPy is
    importable, ``"swar"`` otherwise.  Every engine is bit-identical
    per lane, so this is purely a throughput choice."""
    if lanes >= VECTOR_AUTO_LANES:
        from repro.hdl.vector import HAVE_NUMPY

        if HAVE_NUMPY:
            return "vector"
    return "swar"


def lattice_key(lattice: Lattice) -> tuple:
    """A hashable, order-independent identity for a lattice."""
    pairs = tuple(
        sorted(
            (a, b)
            for a in lattice.elements
            for b in lattice.elements
            if lattice.leq(a, b) and a != b
        )
    )
    return (tuple(lattice.elements), pairs)


def source_key(source: Source) -> tuple:
    """A hashable identity for program source in any of its forms.

    Text and AST sources key structurally (a digest of the text, or of
    the AST's canonical dataclass repr), so they are stable across
    processes and eligible for the persistent store tier.  Analyzed
    ``ProgramInfo`` objects carry open-ended derived state and are
    identity-keyed via :class:`~repro.store.UnstableKey`; the object is
    pinned by the cache entry so the id cannot be reused while the
    entry lives, and the store tier refuses the key.
    """
    if isinstance(source, str):
        return ("text", hashlib.sha256(source.encode()).hexdigest())
    if isinstance(source, ast.Program):
        return ("ast", hashlib.sha256(repr(source).encode()).hexdigest())
    return ("object", UnstableKey(source))


class Toolchain:
    """Facade over the full Sapper flow with keyed artifact caching.

    The cache is LRU-bounded (*max_entries*, default 128 -- generous
    next to the ``lru_cache(maxsize=8)`` wrappers it replaced) so a
    process sweeping many configurations cannot grow without bound;
    evicting an entry also drops its pin, letting the artifact be
    collected.

    With *store* (an :class:`~repro.store.ArtifactStore`), stages whose
    keys are stable across processes (text/AST sources) gain a
    write-through / read-through persistent tier under the in-memory
    LRU: a fresh process warm-starts from disk instead of recompiling,
    and corrupt or stale entries fall back to recompute.  ``counters``
    tracks per-stage memory hits/misses, store hits/misses, and
    request coalescing (bumped by the server's single-flight layer).
    """

    def __init__(
        self,
        opt_level: int = MAX_OPT_LEVEL,
        max_entries: int = 128,
        store: ArtifactStore | None = None,
    ):
        self.opt_level = opt_level
        self.max_entries = max_entries
        self.store = store
        self._cache: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        self.counters: dict[str, int] = {}

    # -- generic keyed cache ------------------------------------------------

    @staticmethod
    def _stage(key: tuple) -> str:
        return key[0] if isinstance(key, tuple) and key else str(key)

    def bump(self, counter: str, by: int = 1) -> None:
        """Increment a named counter (thread-safe)."""
        with self._lock:
            self.counters[counter] = self.counters.get(counter, 0) + by

    def counter_snapshot(self) -> dict[str, int]:
        """A consistent copy of the hit/miss/coalesce counters."""
        with self._lock:
            return dict(self.counters)

    def cached(
        self,
        key: tuple,
        producer: Callable[[], T],
        pin: object = None,
        persist: bool = False,
    ) -> T:
        """Return the artifact for *key*, producing it on first use.

        *pin* keeps an auxiliary object alive alongside the artifact
        (used when the key embeds an identity).  *persist* additionally
        routes misses through the on-disk store tier (when a store is
        configured and the key is stable): read-through on miss,
        write-through after produce.

        Thread-safe: the memory cache is consulted and updated under a
        lock, but producers run outside it so distinct keys compile
        concurrently under the server's worker pool.  If two threads
        race on one key, the first published value wins -- identity of
        cached artifacts stays stable.
        """
        stage = self._stage(key)
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                self.counters[f"hit:{stage}"] = self.counters.get(f"hit:{stage}", 0) + 1
                return entry[1]
            self.counters[f"miss:{stage}"] = self.counters.get(f"miss:{stage}", 0) + 1

        value = MISS
        use_store = persist and self.store is not None and persistable_key(key)
        if use_store:
            value = self.store.get(key, default=MISS)
            self.bump(f"store_hit:{stage}" if value is not MISS else f"store_miss:{stage}")
        if value is MISS:
            value = producer()
            if use_store:
                self.store.put(key, value)

        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:  # another thread won the race: keep first
                self._cache.move_to_end(key)
                return entry[1]
            self._cache[key] = (pin, value)
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
        return value

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def cache_info(self) -> dict[str, int]:
        """Entry counts per stage (the first key component)."""
        info: dict[str, int] = {}
        for key in self._cache:
            stage = key[0] if isinstance(key, tuple) else str(key)
            info[stage] = info.get(stage, 0) + 1
        return info

    # -- front-end stages ----------------------------------------------------

    def parse(self, source: str, name: str = "design") -> ast.Program:
        return self.cached(
            ("parse", source_key(source), name),
            lambda: parse_program(source, name),
        )

    def analyze(
        self,
        source: Source | Design,
        lattice: Lattice | None = None,
        name: str = "design",
    ) -> ProgramInfo | AnalysisReport:
        """Two analysis stages share this entry point.

        Given program source (text/AST) and a lattice: the front-end
        name/state-tree analysis, returning a
        :class:`~repro.sapper.analysis.ProgramInfo` (as before).

        Given a compiled design or raw module: the static back-end
        analysis of :mod:`repro.analyze` -- lint rules plus the taint
        certificate -- returning an
        :class:`~repro.analyze.AnalysisReport`.  Cached like every
        other stage and persisted in the artifact store under the
        design's structural key (``analyze`` counters beside
        compile/optimize).
        """
        if isinstance(source, (CompiledDesign, Module)):
            return self._analyze_design(source)
        if lattice is None:
            raise TypeError("analyze() of program source requires a lattice")
        if isinstance(source, ProgramInfo):
            return source
        key = ("analyze", source_key(source), lattice_key(lattice), name)
        if isinstance(source, str):
            return self.cached(key, lambda: analyze(self.parse(source, name), lattice))
        return self.cached(key, lambda: analyze(source, lattice), pin=source)

    def _analyze_design(self, design: Design) -> AnalysisReport:
        module = self._module(design)
        if isinstance(design, CompiledDesign):
            producer = lambda: analyze_design(design)
        else:
            producer = lambda: analyze_module(module)
        tail = self._structural_tail(design)
        if tail is None:
            key = ("check", UnstableKey(module), ANALYSIS_VERSION)
        else:
            key = ("check", *tail, ANALYSIS_VERSION)
        return self.cached(key, producer, pin=module, persist=True)

    def compile(
        self,
        source: Source,
        lattice: Lattice,
        secure: bool = True,
        name: str = "design",
    ) -> CompiledDesign:
        tail = (source_key(source), lattice_key(lattice), secure, name)
        design = self.cached(
            ("compile", *tail),
            lambda: compile_program(
                self.analyze(source, lattice, name), lattice, secure=secure, name=name
            ),
            pin=source if not isinstance(source, str) else None,
            persist=True,
        )
        # remember the structural identity so downstream artifacts
        # (optimized module, synthesis report, Verilog) can join the
        # persistent tier under the same key family
        design._structural_key = tail  # type: ignore[attr-defined]
        return design

    # -- mid-end -------------------------------------------------------------

    @staticmethod
    def _module(design: Design) -> Module:
        return design.module if isinstance(design, CompiledDesign) else design

    @staticmethod
    def _structural_tail(design: Design) -> tuple | None:
        """The persistable key tail of a toolchain-compiled design."""
        tail = getattr(design, "_structural_key", None)
        if tail is not None and persistable_key(tail):
            return tail
        return None

    def optimize(self, design: Design) -> Module:
        """The optimized module for *design* (memoized per module object,
        persisted under the design's structural key when a store is
        configured -- a warm start skips the whole pass pipeline)."""
        module = self._module(design)
        tail = self._structural_tail(design)
        if tail is None or self.store is None:
            return _optimize(module, self.opt_level)
        return self.cached(
            ("optimize", *tail, self.opt_level),
            lambda: _optimize(module, self.opt_level),
            pin=module,
            persist=True,
        )

    # -- backends ------------------------------------------------------------

    def simulator(self, design: Design) -> Simulator:
        """A fresh-state simulator over the (shared) optimized module."""
        return Simulator(self.optimize(design), optimize=False)

    def batch_simulator(
        self,
        design: Design,
        lanes: int,
        swar: bool = True,
        retire_when: Callable[[BatchSimulator, int], bool] | None = None,
        majority: bool = True,
        engine: str | None = None,
    ) -> BatchSimulator:
        """A fresh-state *lane-batched* simulator over the (shared)
        optimized module: one vectorized step advances *lanes* independent
        machine states, each bit-identical to :meth:`simulator`.

        *engine* names the generation directly: ``"batch"`` (two-tier
        packed/per-lane), ``"swar"`` (guard-banded wide-word lane
        packing), ``"vector"`` (NumPy uint64 lane arrays; needs
        NumPy), or ``"auto"`` (:func:`auto_engine`: vector from
        :data:`VECTOR_AUTO_LANES` lanes when NumPy is importable, swar
        below).  When *engine* is None the legacy *swar* flag selects
        between the first two.  *retire_when* installs a lane-retirement
        predicate (``(sim, lane) -> bool``) driving automatic lane
        compaction in :meth:`BatchSimulator.run`; *majority* toggles
        majority-cohort dispatch (split the batch by dominant
        control-register binding, specialized body for the majority).
        The batched step function, its per-lane-count factories, and any
        state-specialized fast-path bodies are cached per (module
        object, engine) pair -- the same structural key every other
        artifact here hangs off -- so repeated calls (randomized suites,
        the eval driver) compile once per engine, and compacted widths
        re-enter the same per-lane-count cache.
        """
        if engine is not None and engine not in ("auto", "batch", "swar", "vector"):
            raise ValueError(f"unknown batch engine {engine!r}")
        if engine == "auto":
            engine = auto_engine(lanes)
        if engine == "vector":
            from repro.hdl.vector import VectorSimulator

            return VectorSimulator(
                self.optimize(design), lanes, optimize=False,
                retire_when=retire_when, majority=majority,
            )
        if engine is not None:
            swar = engine == "swar"
        return BatchSimulator(
            self.optimize(design), lanes, optimize=False, swar=swar,
            retire_when=retire_when, majority=majority,
        )

    def _backend_key(self, stage: str, design: Design) -> tuple:
        """Structural backend key when the design carries one, else the
        legacy identity key (raw modules handed in directly)."""
        tail = self._structural_tail(design)
        if tail is not None:
            return (stage, *tail, self.opt_level)
        # identity-keyed fallback for raw modules: UnstableKey keeps the
        # store tier out (an id() must never cross a process boundary)
        return (stage, UnstableKey(self._module(design)), self.opt_level)

    def synthesize(self, design: Design) -> CostReport:
        """Gate census / area / delay / power of the optimized module (cached)."""
        return self.cached(
            self._backend_key("synth", design),
            lambda: _synthesize(self.optimize(design), optimize=False),
            pin=self._module(design),
            persist=True,
        )

    def verilog(self, design: Design) -> str:
        """Synthesizable Verilog text of the optimized module (cached)."""
        return self.cached(
            self._backend_key("verilog", design),
            lambda: _emit_verilog(self.optimize(design), optimize=False),
            pin=self._module(design),
            persist=True,
        )


#: Process-wide default toolchain instance.
_DEFAULT: Toolchain | None = None


def get_toolchain() -> Toolchain:
    """The shared default :class:`Toolchain` (created on first use).

    If ``REPRO_STORE`` names a directory, the default instance gains a
    persistent artifact-store tier rooted there -- the zero-code way to
    warm-start scripts and notebooks.  An unusable directory degrades
    to the in-memory tier with a warning rather than failing the run.
    """
    global _DEFAULT
    if _DEFAULT is None:
        store = None
        store_dir = os.environ.get("REPRO_STORE")
        if store_dir:
            try:
                store = ArtifactStore(store_dir)
            except StoreError as exc:
                print(f"warning: REPRO_STORE disabled: {exc}", file=sys.stderr)
        _DEFAULT = Toolchain(store=store)
    return _DEFAULT


def set_toolchain(toolchain: Toolchain | None) -> None:
    """Replace the process-wide default (``None`` resets to a fresh one)."""
    global _DEFAULT
    _DEFAULT = toolchain

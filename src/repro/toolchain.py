"""The unified Sapper toolchain facade.

One object owns the whole flow::

    parse -> analyze -> compile -> optimize -> { simulate | synthesize | emit }

with keyed artifact caching at every stage, replacing the ad-hoc
``lru_cache`` wrappers that used to live in ``repro.proc.design`` and
``repro.proc.machine``.  Cache keys are explicit and structural (source
digest, lattice order, compile flags), so distinct configurations never
collide and the cache can be inspected or cleared as a unit.

Typical use::

    from repro.toolchain import get_toolchain

    tc = get_toolchain()
    design = tc.compile(source, two_level(), name="tdma")
    sim = tc.simulator(design)       # optimized module, fresh state
    report = tc.synthesize(design)   # cached cost report
    text = tc.verilog(design)        # cached Verilog text

Every backend consumes the *same* optimized module object (the pass
pipeline is memoized per module), so simulation, synthesis, and Verilog
agree exactly on what hardware they describe.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Optional, TypeVar, Union

from repro.hdl import (
    BatchSimulator,
    Simulator,
    emit_verilog as _emit_verilog,
    synthesize as _synthesize,
)
from repro.hdl.ir import Module
from repro.hdl.passes import MAX_OPT_LEVEL, optimize as _optimize
from repro.hdl.synth import CostReport
from repro.lattice import Lattice
from repro.sapper import ast
from repro.sapper.analysis import ProgramInfo, analyze
from repro.sapper.compiler import CompiledDesign, compile_program
from repro.sapper.parser import parse_program

T = TypeVar("T")

Source = Union[str, ast.Program, ProgramInfo]
Design = Union[CompiledDesign, Module]


def lattice_key(lattice: Lattice) -> tuple:
    """A hashable, order-independent identity for a lattice."""
    pairs = tuple(
        sorted(
            (a, b)
            for a in lattice.elements
            for b in lattice.elements
            if lattice.leq(a, b) and a != b
        )
    )
    return (tuple(lattice.elements), pairs)


def source_key(source: Source) -> tuple:
    """A hashable identity for program source in any of its forms."""
    if isinstance(source, str):
        return ("text", hashlib.sha256(source.encode()).hexdigest())
    # AST / analyzed info: identity-keyed; the object is pinned by the
    # cache entry so the id cannot be reused while the entry lives.
    return ("object", id(source))


class Toolchain:
    """Facade over the full Sapper flow with keyed artifact caching.

    The cache is LRU-bounded (*max_entries*, default 128 -- generous
    next to the ``lru_cache(maxsize=8)`` wrappers it replaced) so a
    process sweeping many configurations cannot grow without bound;
    evicting an entry also drops its pin, letting the artifact be
    collected.
    """

    def __init__(self, opt_level: int = MAX_OPT_LEVEL, max_entries: int = 128):
        self.opt_level = opt_level
        self.max_entries = max_entries
        self._cache: OrderedDict = OrderedDict()

    # -- generic keyed cache ------------------------------------------------

    def cached(self, key: tuple, producer: Callable[[], T], pin: object = None) -> T:
        """Return the artifact for *key*, producing it on first use.

        *pin* keeps an auxiliary object alive alongside the artifact
        (used when the key embeds an ``id()``).
        """
        try:
            value = self._cache[key][1]
            self._cache.move_to_end(key)
            return value
        except KeyError:
            value = producer()
            self._cache[key] = (pin, value)
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
            return value

    def clear_cache(self) -> None:
        self._cache.clear()

    def cache_info(self) -> dict[str, int]:
        """Entry counts per stage (the first key component)."""
        info: dict[str, int] = {}
        for key in self._cache:
            stage = key[0] if isinstance(key, tuple) else str(key)
            info[stage] = info.get(stage, 0) + 1
        return info

    # -- front-end stages ----------------------------------------------------

    def parse(self, source: str, name: str = "design") -> ast.Program:
        return self.cached(
            ("parse", source_key(source), name),
            lambda: parse_program(source, name),
        )

    def analyze(self, source: Source, lattice: Lattice, name: str = "design") -> ProgramInfo:
        if isinstance(source, ProgramInfo):
            return source
        key = ("analyze", source_key(source), lattice_key(lattice), name)
        if isinstance(source, str):
            return self.cached(key, lambda: analyze(self.parse(source, name), lattice))
        return self.cached(key, lambda: analyze(source, lattice), pin=source)

    def compile(
        self,
        source: Source,
        lattice: Lattice,
        secure: bool = True,
        name: str = "design",
    ) -> CompiledDesign:
        key = ("compile", source_key(source), lattice_key(lattice), secure, name)
        return self.cached(
            key,
            lambda: compile_program(
                self.analyze(source, lattice, name), lattice, secure=secure, name=name
            ),
            pin=source if not isinstance(source, str) else None,
        )

    # -- mid-end -------------------------------------------------------------

    @staticmethod
    def _module(design: Design) -> Module:
        return design.module if isinstance(design, CompiledDesign) else design

    def optimize(self, design: Design) -> Module:
        """The optimized module for *design* (memoized per module object)."""
        return _optimize(self._module(design), self.opt_level)

    # -- backends ------------------------------------------------------------

    def simulator(self, design: Design) -> Simulator:
        """A fresh-state simulator over the (shared) optimized module."""
        return Simulator(self.optimize(design), optimize=False)

    def batch_simulator(
        self,
        design: Design,
        lanes: int,
        swar: bool = True,
        retire_when: Optional[Callable[[BatchSimulator, int], bool]] = None,
        majority: bool = True,
        engine: Optional[str] = None,
    ) -> BatchSimulator:
        """A fresh-state *lane-batched* simulator over the (shared)
        optimized module: one vectorized step advances *lanes* independent
        machine states, each bit-identical to :meth:`simulator`.

        *engine* names the generation directly: ``"batch"`` (two-tier
        packed/per-lane), ``"swar"`` (guard-banded wide-word lane
        packing), or ``"vector"`` (NumPy uint64 lane arrays; needs
        NumPy).  When *engine* is None the legacy *swar* flag selects
        between the first two.  *retire_when* installs a lane-retirement
        predicate (``(sim, lane) -> bool``) driving automatic lane
        compaction in :meth:`BatchSimulator.run`; *majority* toggles
        majority-cohort dispatch (split the batch by dominant
        control-register binding, specialized body for the majority).
        The batched step function, its per-lane-count factories, and any
        state-specialized fast-path bodies are cached per (module
        object, engine) pair -- the same structural key every other
        artifact here hangs off -- so repeated calls (randomized suites,
        the eval driver) compile once per engine, and compacted widths
        re-enter the same per-lane-count cache.
        """
        if engine is not None and engine not in ("batch", "swar", "vector"):
            raise ValueError(f"unknown batch engine {engine!r}")
        if engine == "vector":
            from repro.hdl.vector import VectorSimulator

            return VectorSimulator(
                self.optimize(design), lanes, optimize=False,
                retire_when=retire_when, majority=majority,
            )
        if engine is not None:
            swar = engine == "swar"
        return BatchSimulator(
            self.optimize(design), lanes, optimize=False, swar=swar,
            retire_when=retire_when, majority=majority,
        )

    def synthesize(self, design: Design) -> CostReport:
        """Gate census / area / delay / power of the optimized module (cached)."""
        module = self._module(design)
        return self.cached(
            ("synth", id(module), self.opt_level),
            lambda: _synthesize(self.optimize(design), optimize=False),
            pin=module,
        )

    def verilog(self, design: Design) -> str:
        """Synthesizable Verilog text of the optimized module (cached)."""
        module = self._module(design)
        return self.cached(
            ("verilog", id(module), self.opt_level),
            lambda: _emit_verilog(self.optimize(design), optimize=False),
            pin=module,
        )


#: Process-wide default toolchain instance.
_DEFAULT: Optional[Toolchain] = None


def get_toolchain() -> Toolchain:
    """The shared default :class:`Toolchain` (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Toolchain()
    return _DEFAULT


def set_toolchain(toolchain: Optional[Toolchain]) -> None:
    """Replace the process-wide default (``None`` resets to a fresh one)."""
    global _DEFAULT
    _DEFAULT = toolchain

"""Multiprocess fleet scheduler for workload suites.

:class:`FleetRunner` shards a suite of workloads across N worker
processes, each hosting its own lane-batched simulator (engine
auto-selected per shard width) over a shared read-through
:class:`~repro.store.ArtifactStore`: the parent compiles the design
exactly once and publishes it, every worker warm-starts from the store
(``store_hit:compile`` in the per-shard counters is the proof).

Scheduling is occupancy-aware re-batching rather than static sharding:
each worker runs one wide batched *wave* and, whenever a lane halts or
exhausts its budget, resets that lane in place (registers to their
init values, arrays cleared) and reloads it with the next workload
pulled from the global queue -- the lane mask stays full as long as the
queue has work.  Only when the queue runs dry are starved lanes
compacted away.  Workers advertise free capacity with ``need``
messages; the parent records every assignment *before* handing tasks
over, so a worker that dies mid-wave cannot lose work.

Robustness:

* worker crash detection (``Process.is_alive``/exitcode) with bounded
  requeue of that shard's unfinished workloads (``requeue_limit``
  attempts per task, then the task runs in-process);
* stall detection: workers heartbeat during long waves, and a worker
  silent past ``worker_timeout`` with tasks assigned is killed and its
  tasks requeued;
* graceful degradation: if no multiprocessing start method is usable
  (or worker startup fails), the whole suite runs in-process -- same
  results, ``stats.degraded`` set;
* deterministic output: results are returned in submission order
  regardless of which worker finished what when, and duplicated
  results (a worker that died after sending) are deduplicated
  first-wins.  Every engine is bit-identical per lane, so fleet output
  equals single-process :func:`~repro.proc.machine.run_workloads`
  output bit for bit.

Entry points: :class:`FleetRunner` (persistent workers, cheapest for
repeated suites), ``run_workloads(shards=N)`` (one-shot convenience),
``python -m repro simulate --shards N`` and the NDJSON server's
``fleet`` op (both built on :func:`simulate_sharded` / the runner).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import signal
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

from repro.lattice import Lattice, two_level
from repro.mips.assembler import Executable
from repro.proc.machine import (
    RunResult,
    SapperMachine,
    check_budgets,
    compile_processor,
)
from repro.store import ArtifactStore, coerce_store
from repro.toolchain import Toolchain, auto_engine

__all__ = [
    "FleetError",
    "FleetRunner",
    "FleetStats",
    "FleetWorkloadResult",
    "simulate_sharded",
]

#: start methods tried in order when none is pinned; fork is cheapest
#: (workers inherit the warm parent image), spawn is the portable
#: fallback, forkserver covers platforms where only it survives.
_START_METHODS = ("fork", "spawn", "forkserver")


class FleetError(RuntimeError):
    """A fleet-level scheduling failure (not a workload failure)."""


@dataclass
class FleetWorkloadResult(RunResult):
    """A :class:`RunResult` plus the lane's final architectural state.

    Captured when the runner was built with ``capture_state=True``:
    *regs* maps every register (tags included) to its final value,
    *arrays* maps each array to its sparse ``{index: value}`` contents.
    Array snapshots drop default-valued entries; compare through
    ``get(i, default)`` over the key union.
    """

    regs: dict[str, int] | None = None
    arrays: dict[str, dict[int, int]] | None = None


@dataclass
class FleetStats:
    """Fleet-level scheduling counters merged from per-shard reports."""

    shards: int
    start_method: str | None = None
    degraded: bool = False
    requeues: int = 0
    deaths: int = 0
    fallback_tasks: int = 0
    completed: int = 0
    #: wid -> that worker's last counter snapshot (lane_cycles, steps,
    #: waves, completed, width_cycles, toolchain/store counters)
    shard: dict[int, dict[str, Any]] = field(default_factory=dict)

    def merged(self) -> dict[str, Any]:
        """One fleet-wide rollup: summed shard counters, weighted
        occupancy, and summed toolchain/store counters."""
        total = {k: 0 for k in ("lane_cycles", "steps", "waves", "completed", "width_cycles")}
        toolchain: dict[str, int] = {}
        for counters in self.shard.values():
            for key in total:
                total[key] += counters.get(key, 0)
            for key, value in counters.get("toolchain", {}).items():
                toolchain[key] = toolchain.get(key, 0) + value
        width = total.pop("width_cycles")
        occupancy = total["lane_cycles"] / width if width else 0.0
        return {
            **total,
            "occupancy": round(occupancy, 4),
            "toolchain": toolchain,
            "shards": self.shards,
            "start_method": self.start_method,
            "degraded": self.degraded,
            "requeues": self.requeues,
            "deaths": self.deaths,
            "fallback_tasks": self.fallback_tasks,
        }


# --------------------------------------------------------------- jobs
#
# A job describes what the fleet is running: how the parent publishes
# shared artifacts, what spec the workers need, and how a task runs
# in-process when the fleet degrades or a task exhausts its requeues.


class _ProcJob:
    """Workload suites on the secure processor (the default job)."""

    mode = "proc"

    def __init__(self, lattice: Lattice | None, secure: bool, capture_state: bool):
        self.lattice = lattice or two_level()
        self.secure = secure
        self.capture_state = capture_state

    def prepare(self, tc: Toolchain) -> None:
        # publish the compiled and optimized design so every worker
        # warm-starts from the store instead of recompiling
        design = compile_processor(self.lattice, self.secure, toolchain=tc)
        tc.optimize(design)

    def worker_spec(self) -> dict[str, Any]:
        return {
            "mode": "proc",
            "lattice": self.lattice,
            "secure": self.secure,
            "capture_state": self.capture_state,
        }

    def run_local(self, payload: tuple) -> dict[str, Any]:
        exe, budget = payload
        machine = SapperMachine(self.lattice, self.secure)
        machine.load(exe)
        res = machine.run(budget)
        raw = {
            "outputs": res.outputs,
            "cycles": res.cycles,
            "violations": res.violations,
            "halted": res.halted,
        }
        if self.capture_state:
            raw["regs"] = dict(machine.sim.regs)
            raw["arrays"] = {name: dict(vals) for name, vals in machine.sim.arrays.items()}
        return raw

    def decode(self, raw: dict[str, Any]) -> RunResult:
        if self.capture_state:
            return FleetWorkloadResult(
                outputs=raw["outputs"],
                cycles=raw["cycles"],
                violations=raw["violations"],
                halted=raw["halted"],
                regs=raw.get("regs"),
                arrays=raw.get("arrays"),
            )
        return RunResult(raw["outputs"], raw["cycles"], raw["violations"], raw["halted"])


def _run_design_slice(tc, design, payload, *, cycles, inputs, compact, engine, tick=None):
    """One lane-slice of a generic design, mirroring the CLI simulate
    loop exactly (violation counting, final outputs, halted-lane
    compaction with stimulus realignment, all-halted early stop)."""
    lane_ids, stim = payload
    k = len(lane_ids)
    sim = tc.batch_simulator(design, k, engine=engine or auto_engine(k))
    violations = [0] * k
    final: list[dict[str, int]] = [{} for _ in range(k)]
    lane_stim = list(stim) if stim is not None else None
    for _ in range(cycles):
        if tick is not None:
            tick()
        outs = sim.step(lane_stim if lane_stim is not None else inputs)
        for pos, out in enumerate(outs):
            lane = sim.active_lanes[pos]
            violations[lane] += int(bool(out.get("violation", 0)))
            final[lane] = out
        if compact:
            retire = [pos for pos, out in enumerate(outs) if out.get("halted")]
            if retire and len(retire) == sim.lanes:
                break
            if retire:
                gone = set(retire)
                sim.compact(retire)
                if lane_stim is not None:
                    lane_stim = [d for pos, d in enumerate(lane_stim) if pos not in gone]
    return {
        "lanes": list(lane_ids),
        "violations": violations,
        "final": final,
        "steps": sim.cycles,
        "lane_cycles": sim.lane_cycles,
    }


class _DesignJob:
    """Lane slices of one generic design (``simulate --shards``)."""

    mode = "design"

    def __init__(self, source, lattice, secure, name, cycles, inputs, compact, engine):
        self.source = source
        self.lattice = lattice or two_level()
        self.secure = secure
        self.name = name
        self.cycles = cycles
        self.inputs = dict(inputs or {})
        self.compact = compact
        self.engine = engine
        self._tc: Toolchain | None = None
        self._design = None

    def prepare(self, tc: Toolchain) -> None:
        self._tc = tc
        self._design = tc.compile(self.source, self.lattice, secure=self.secure, name=self.name)
        tc.optimize(self._design)

    def worker_spec(self) -> dict[str, Any]:
        return {
            "mode": "design",
            "source": self.source,
            "lattice": self.lattice,
            "secure": self.secure,
            "name": self.name,
            "cycles": self.cycles,
            "inputs": self.inputs,
            "compact": self.compact,
        }

    def run_local(self, payload: tuple) -> dict[str, Any]:
        return _run_design_slice(
            self._tc, self._design, payload,
            cycles=self.cycles, inputs=self.inputs,
            compact=self.compact, engine=self.engine,
        )

    def decode(self, raw: dict[str, Any]) -> dict[str, Any]:
        return raw


# ------------------------------------------------------------- workers


class _StopWorker(Exception):
    """Internal: the stop event fired mid-wave; unwind quietly."""


class _Slot:
    """One live lane: which task occupies it and its progress."""

    __slots__ = ("gen", "idx", "budget", "cycle", "outputs", "violations")

    def __init__(self, gen: int, idx: int, budget: int):
        self.gen = gen
        self.idx = idx
        self.budget = budget
        self.cycle = 0
        self.outputs: list[int] = []
        self.violations = 0


class _WorkerBase:
    """Shared worker-side protocol: capacity advertisement, task
    buffering, result emission, heartbeats, stats reports.

    Protocol (all over the shared result queue, tagged with this
    worker's id): ``("need", wid, k)`` advertises free capacity,
    ``("result", wid, gen, idx, payload)`` completes one task,
    ``("hb", wid)`` proves liveness mid-wave, ``("stats", wid, dict)``
    reports counters at wave boundaries, ``("error", wid, text)`` is a
    last gasp before a crash exit.
    """

    def __init__(self, wid, spec, task_q, result_q, stop_evt):
        self.wid = wid
        self.spec = spec
        self.task_q = task_q
        self.result_q = result_q
        self.stop_evt = stop_evt
        self.capacity: int = spec["capacity"]
        self.engine: str | None = spec["engine"]
        self.heartbeat_every: int = spec["heartbeat_every"]
        self.self_destruct: int | None = spec.get("self_destruct")
        self._sent = 0
        self._advertised = 0
        self._beat = 0
        # a fresh store-backed toolchain: under fork *and* spawn the
        # worker reads the parent-published artifacts through the store
        # (store_hit:compile), never through inherited memory caches
        self.tc = Toolchain(store=coerce_store(spec["store_root"]))
        self.counters = {
            "lane_cycles": 0,
            "steps": 0,
            "waves": 0,
            "completed": 0,
            "width_cycles": 0,
        }

    # -- protocol helpers ---------------------------------------------------

    def _send(self, msg: tuple) -> None:
        self.result_q.put(msg)

    def _advertise(self, capacity: int) -> None:
        """Tell the parent how many more tasks fit, but only when the
        number grew -- the parent tracks what it still owes us, so
        repeating an unchanged figure would double-assign nothing and
        spam the queue."""
        if capacity > self._advertised:
            self._send(("need", self.wid, capacity))
            self._advertised = capacity

    def _receive(self, batch: list, buffer: list) -> None:
        buffer.extend(batch)
        self._advertised = max(0, self._advertised - len(batch))

    def _drain(self, buffer: list) -> None:
        while True:
            try:
                batch = self.task_q.get_nowait()
            except queue.Empty:
                return
            self._receive(batch, buffer)

    def _gather(self, buffer: list) -> list | None:
        """Block until at least one task is buffered (or stop fires),
        then take up to one wave's worth."""
        while not buffer:
            if self.stop_evt.is_set():
                return None
            self._advertise(self.capacity)
            try:
                batch = self.task_q.get(timeout=0.2)
            except queue.Empty:
                continue
            self._receive(batch, buffer)
        self._drain(buffer)
        wave = buffer[: self.capacity]
        del buffer[: self.capacity]
        return wave

    def _tick(self) -> None:
        if self.stop_evt.is_set():
            raise _StopWorker
        self._beat += 1
        if self._beat >= self.heartbeat_every:
            self._beat = 0
            self._send(("hb", self.wid))

    def _emit_result(self, gen: int, idx: int, payload: dict) -> None:
        self._send(("result", self.wid, gen, idx, payload))
        self.counters["completed"] += 1
        self._sent += 1
        if self.self_destruct is not None and self._sent >= self.self_destruct:
            # fault-injection hook: die by real SIGKILL mid-suite (the
            # brief sleep lets the queue feeder flush the last result,
            # keeping the test deterministic either way)
            time.sleep(0.05)
            os.kill(os.getpid(), signal.SIGKILL)

    def _send_stats(self) -> None:
        snap: dict[str, Any] = dict(self.counters)
        snap["toolchain"] = self.tc.counter_snapshot()
        if self.tc.store is not None:
            snap["store"] = dict(self.tc.store.counters)
        self._send(("stats", self.wid, snap))

    # -- main loop ----------------------------------------------------------

    def serve(self) -> None:
        self.prepare()
        self._send_stats()  # post-warmup snapshot: store hits visible early
        buffer: list = []
        while True:
            wave = self._gather(buffer)
            if wave is None:
                break
            self.counters["waves"] += 1
            self.run_wave(wave, buffer)
            self._send_stats()

    def prepare(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def run_wave(self, wave: list, buffer: list) -> None:  # pragma: no cover
        raise NotImplementedError


class _ProcWorker(_WorkerBase):
    """Secure-processor workloads with occupancy-aware lane refill."""

    HALT_REG = "halted_r"

    def prepare(self) -> None:
        self.lattice = self.spec["lattice"] or two_level()
        self.secure = self.spec["secure"]
        self.capture = self.spec["capture_state"]
        self.design = compile_processor(self.lattice, self.secure, toolchain=self.tc)
        self.module = self.tc.optimize(self.design)

    def run_wave(self, wave: list, buffer: list) -> None:
        slots: list[_Slot | None] = []
        loads: list[tuple] = []
        for task in wave:
            if self._finish_trivial(task):
                continue
            loads.append(task)
        if not loads:
            return
        sim = self.tc.batch_simulator(
            self.design, len(loads), engine=self.engine or auto_engine(len(loads))
        )
        for pos, (gen, idx, payload) in enumerate(loads):
            exe, budget = payload
            sim.load_array(pos, "memory", exe.as_memory())
            slots.append(_Slot(gen, idx, budget))
        live = len(slots)
        while live:
            self.counters["lane_cycles"] += live
            self.counters["width_cycles"] += sim.lanes
            self.counters["steps"] += 1
            self._tick()
            outs = sim.step()
            freed: list[int] = []
            for pos, slot in enumerate(slots):
                if slot is None:
                    continue
                out = outs[pos]
                slot.cycle += 1
                if out.get("out_valid"):
                    slot.outputs.append(out["out_port"])
                if out.get("violation"):
                    slot.violations += 1
                halted = bool(sim.get_reg(pos, self.HALT_REG))
                if halted or slot.cycle >= slot.budget:
                    self._emit_result(slot.gen, slot.idx, self._payload(sim, pos, slot, halted))
                    slots[pos] = None
                    freed.append(pos)
                    live -= 1
            if not freed:
                continue
            # occupancy-aware re-batching: freed lanes are reset in
            # place and reloaded from the global queue before we ever
            # consider shrinking the batch
            self._drain(buffer)
            if not buffer:
                self._advertise(len(freed))
                self._drain(buffer)
            for pos in list(freed):
                task = self._next_task(buffer)
                if task is None:
                    break
                gen, idx, (exe, budget) = task
                self._reset_lane(sim, pos)
                sim.load_array(pos, "memory", exe.as_memory())
                slots[pos] = _Slot(gen, idx, budget)
                freed.remove(pos)
                live += 1
            if freed and live:
                # queue ran dry: compact the starved lanes away
                gone = set(freed)
                sim.compact(sorted(gone))
                slots = [s for p, s in enumerate(slots) if p not in gone]

    def _next_task(self, buffer: list) -> tuple | None:
        while buffer:
            task = buffer.pop(0)
            if not self._finish_trivial(task):
                return task
        return None

    def _finish_trivial(self, task: tuple) -> bool:
        """Zero-budget workloads never occupy a lane: emit the
        0-cycle result (initial state) immediately."""
        gen, idx, (exe, budget) = task
        if budget > 0:
            return False
        raw: dict[str, Any] = {"outputs": [], "cycles": 0, "violations": 0, "halted": False}
        if self.capture:
            raw["regs"] = {
                name: reg.init & ((1 << reg.width) - 1)
                for name, reg in self.module.regs.items()
            }
            arrays: dict[str, dict[int, int]] = {name: {} for name in self.module.arrays}
            mem = self.module.arrays["memory"]
            mask = (1 << mem.width) - 1
            arrays["memory"] = {
                i: v & mask for i, v in exe.as_memory().items() if (v & mask) != mem.default
            }
            raw["arrays"] = arrays
        self._emit_result(gen, idx, raw)
        return True

    def _reset_lane(self, sim, pos: int) -> None:
        """Return lane *pos* to construction state: every register to
        its init value, every array cleared.  With the new program
        memory loaded on top this is exactly a freshly built lane."""
        for name, reg in self.module.regs.items():
            sim.set_reg(pos, name, reg.init)
        for name in self.module.arrays:
            sim.load_array(pos, name, {})

    def _payload(self, sim, pos: int, slot: _Slot, halted: bool) -> dict[str, Any]:
        raw: dict[str, Any] = {
            "outputs": slot.outputs,
            "cycles": slot.cycle,
            "violations": slot.violations,
            "halted": halted,
        }
        if self.capture:
            raw["regs"] = sim.lane_regs(pos)
            raw["arrays"] = {
                name: dict(sim.arrays[name][pos]) for name in self.module.arrays
            }
        return raw


class _DesignWorker(_WorkerBase):
    """Generic-design lane slices: one task is one independent batch."""

    def prepare(self) -> None:
        self.capacity = 1  # a slice is already a full batch
        self.design = self.tc.compile(
            self.spec["source"],
            self.spec["lattice"] or two_level(),
            secure=self.spec["secure"],
            name=self.spec["name"],
        )
        self.tc.optimize(self.design)

    def run_wave(self, wave: list, buffer: list) -> None:
        for gen, idx, payload in wave:
            raw = _run_design_slice(
                self.tc, self.design, payload,
                cycles=self.spec["cycles"], inputs=self.spec["inputs"],
                compact=self.spec["compact"], engine=self.engine,
                tick=self._tick,
            )
            self.counters["lane_cycles"] += raw["lane_cycles"]
            self.counters["steps"] += raw["steps"]
            self.counters["width_cycles"] += raw["steps"] * len(payload[0])
            self._emit_result(gen, idx, raw)


_WORKER_MODES = {"proc": _ProcWorker, "design": _DesignWorker}


def _worker_main(wid, spec, task_q, result_q, stop_evt):
    """Worker process entry point (top-level for spawn picklability)."""
    try:
        worker = _WORKER_MODES[spec["mode"]](wid, spec, task_q, result_q, stop_evt)
        worker.serve()
        worker._send_stats()
    except _StopWorker:
        pass
    except BaseException as exc:  # noqa: BLE001 - last-gasp crash report
        try:
            result_q.put(("error", wid, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise SystemExit(1)


# -------------------------------------------------------------- runner


class FleetRunner:
    """N persistent worker processes running workload suites over one
    shared artifact store.

    Context-managed::

        with FleetRunner(shards=4, store="/tmp/artifacts") as fleet:
            results = fleet.run(executables, max_cycles=budgets)
            again = fleet.run(more_executables)   # workers stay warm

    Workers persist across :meth:`run` calls, so the per-process
    warm-up (store read + batched codegen) is paid once.  *store*
    accepts an :class:`ArtifactStore`, a directory path, or ``None``
    (a private temporary store).  *lanes_per_worker* bounds each
    worker's wave width; *engine* pins the batched engine (default:
    automatic per wave width).  ``capture_state=True`` returns
    :class:`FleetWorkloadResult` with final registers and arrays.

    ``_self_destruct={wid: n}`` is a fault-injection hook: that worker
    SIGKILLs itself after *n* results (tests use it for deterministic
    crash/requeue coverage).
    """

    def __init__(
        self,
        shards: int = 2,
        lattice: Lattice | None = None,
        secure: bool = True,
        lanes_per_worker: int = 128,
        store: ArtifactStore | str | None = None,
        engine: str | None = None,
        start_method: str | None = None,
        requeue_limit: int = 2,
        worker_timeout: float | None = 120.0,
        capture_state: bool = False,
        heartbeat_every: int = 200,
        _job=None,
        _self_destruct: dict[int, int] | None = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if lanes_per_worker < 1:
            raise ValueError(f"lanes_per_worker must be >= 1, got {lanes_per_worker}")
        if engine not in (None, "batch", "swar", "vector"):
            raise ValueError(f"unknown batch engine {engine!r}")
        self.shards = shards
        self.lanes_per_worker = lanes_per_worker
        self.engine = engine
        self.start_method = start_method
        self.requeue_limit = requeue_limit
        self.worker_timeout = worker_timeout
        self.heartbeat_every = heartbeat_every
        self._tmp: tempfile.TemporaryDirectory | None = None
        self.store = coerce_store(store)
        if self.store is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-fleet-")
            self.store = ArtifactStore(self._tmp.name)
        self._job = _job if _job is not None else _ProcJob(lattice, secure, capture_state)
        self._self_destruct = dict(_self_destruct or {})
        self._started = False
        self._closed = False
        self._gen = 0
        self._workers: dict[int, Any] = {}
        self._task_qs: dict[int, Any] = {}
        self._dead: set[int] = set()
        self._want: dict[int, int] = {}
        self._last: dict[int, float] = {}
        self._result_q = None
        self._stop_evt = None
        self.errors: list[str] = []
        self.stats = FleetStats(shards=shards)

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> FleetRunner:
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def start(self) -> None:
        """Publish shared artifacts and launch the workers.  Any
        multiprocessing failure degrades to in-process execution
        instead of raising."""
        if self._started:
            return
        if self._closed:
            raise FleetError("FleetRunner is closed")
        self._started = True
        self._job.prepare(Toolchain(store=self.store))
        ctx = None
        methods = (self.start_method,) if self.start_method else _START_METHODS
        for method in methods:
            try:
                ctx = mp.get_context(method)
                break
            except ValueError:
                continue
        if ctx is None:
            self._degrade("no usable multiprocessing start method")
            return
        try:
            self._result_q = ctx.Queue()
            self._stop_evt = ctx.Event()
            spec = {
                "store_root": str(self.store.root),
                "capacity": self.lanes_per_worker,
                "engine": self.engine,
                "heartbeat_every": self.heartbeat_every,
                **self._job.worker_spec(),
            }
            for wid in range(self.shards):
                task_q = ctx.Queue()
                wspec = dict(spec)
                wspec["self_destruct"] = self._self_destruct.get(wid)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(wid, wspec, task_q, self._result_q, self._stop_evt),
                    daemon=True,
                    name=f"repro-fleet-{wid}",
                )
                proc.start()
                self._workers[wid] = proc
                self._task_qs[wid] = task_q
            self.stats.start_method = ctx.get_start_method()
        except (OSError, ValueError, AttributeError) as exc:
            self._degrade(f"worker startup failed: {exc}")

    def _degrade(self, reason: str) -> None:
        self.errors.append(reason)
        self.stats.degraded = True
        self._teardown_workers()

    def worker_pids(self) -> dict[int, int | None]:
        """Live worker pids (fault-injection tests kill these)."""
        return {
            wid: proc.pid
            for wid, proc in self._workers.items()
            if wid not in self._dead and proc.is_alive()
        }

    def close(self) -> None:
        """Stop the workers and release the queues."""
        if self._closed:
            return
        self._closed = True
        if self._stop_evt is not None:
            try:
                self._stop_evt.set()
            except Exception:
                pass
        self._teardown_workers()
        for q in ([self._result_q] if self._result_q is not None else []) + list(
            self._task_qs.values()
        ):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def _teardown_workers(self) -> None:
        for proc in self._workers.values():
            try:
                proc.join(timeout=1.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=1.0)
            except Exception:
                pass
        self._dead.update(self._workers)

    # -- running ------------------------------------------------------------

    def run(
        self,
        executables: Sequence[Executable],
        max_cycles: int | Sequence[int] = 2_000_000,
    ) -> list[RunResult]:
        """Run the suite; one result per executable, submission order."""
        budgets = check_budgets(max_cycles, len(executables))
        payloads = list(zip(executables, budgets))
        return [self._job.decode(raw) for raw in self._run_payloads(payloads)]

    def _alive_ids(self) -> list[int]:
        return [
            wid
            for wid, proc in self._workers.items()
            if wid not in self._dead and proc.is_alive()
        ]

    def _run_payloads(self, payloads: list) -> list:
        self.start()
        n = len(payloads)
        if n == 0:
            return []
        results: list = [None] * n
        if self.stats.degraded or not self._alive_ids():
            self.stats.fallback_tasks += n
            self._run_local(payloads, range(n), results)
            self.stats.completed += n
            return results
        gen = self._gen = self._gen + 1
        done = 0
        pending: deque[int] = deque(range(n))
        attempts = [0] * n
        lost: list[int] = []
        assigned: dict[int, set[int]] = {wid: set() for wid in self._workers}
        participants: set[int] = set()
        stale_stats: set[int] = set()
        now = time.monotonic()
        for wid in self._workers:
            self._last[wid] = now
        self._dispatch(pending, payloads, assigned, gen)
        while done + len(lost) < n:
            if not self._alive_ids():
                break
            try:
                msg = self._result_q.get(timeout=0.1)
            except queue.Empty:
                self._reap(pending, assigned, attempts, lost)
                self._check_stalls(assigned)
                self._dispatch(pending, payloads, assigned, gen)
                continue
            kind, wid = msg[0], msg[1]
            self._last[wid] = time.monotonic()
            if kind == "need":
                self._want[wid] = msg[2]
                self._dispatch(pending, payloads, assigned, gen)
            elif kind == "result":
                _, _, rgen, idx, payload = msg
                if rgen != gen:
                    continue  # stale duplicate from a previous suite
                participants.add(wid)
                stale_stats.add(wid)
                assigned.get(wid, set()).discard(idx)
                if results[idx] is None:
                    results[idx] = payload
                    done += 1
            elif kind == "stats":
                self.stats.shard[wid] = msg[2]
                stale_stats.discard(wid)
            elif kind == "error":
                self.errors.append(f"worker {wid}: {msg[2]}")
        # each participant reports its counters right after its wave
        # ends; a brief bounded drain keeps the merged snapshot current
        deadline = time.monotonic() + 0.5
        while stale_stats & set(self._alive_ids()) and time.monotonic() < deadline:
            try:
                msg = self._result_q.get(timeout=0.05)
            except queue.Empty:
                continue
            kind, wid = msg[0], msg[1]
            self._last[wid] = time.monotonic()
            if kind == "need":
                self._want[wid] = msg[2]
            elif kind == "stats":
                self.stats.shard[wid] = msg[2]
                stale_stats.discard(wid)
            elif kind == "error":
                self.errors.append(f"worker {wid}: {msg[2]}")
        missing = [i for i in range(n) if results[i] is None]
        if missing:
            # dead fleet, exhausted requeues, or lost tasks: finish
            # in-process so the suite always completes
            self.stats.fallback_tasks += len(missing)
            self._run_local(payloads, missing, results)
        self.stats.completed += n
        return results

    def _run_local(self, payloads: list, indices, results: list) -> None:
        for idx in indices:
            results[idx] = self._job.run_local(payloads[idx])

    def _dispatch(self, pending: deque, payloads: list, assigned: dict, gen: int) -> None:
        """Hand queued tasks to workers with advertised free capacity.
        The assignment is recorded parent-side *before* the tasks hit
        the worker's queue: a worker death can then never lose a task,
        only trigger its requeue."""
        if not pending:
            return
        for wid in list(self._want):
            if not pending:
                return
            if wid in self._dead:
                continue
            want = self._want[wid]
            if want <= 0:
                continue
            give = min(want, len(pending))
            batch = []
            for _ in range(give):
                idx = pending.popleft()
                assigned[wid].add(idx)
                batch.append((gen, idx, payloads[idx]))
            self._want[wid] = want - give
            try:
                self._task_qs[wid].put(batch)
            except (OSError, ValueError):
                for _, idx, _payload in batch:
                    assigned[wid].discard(idx)
                    pending.append(idx)

    def _reap(self, pending: deque, assigned: dict, attempts: list, lost: list) -> None:
        """Detect dead workers and requeue their assigned-but-undone
        tasks, bounded by ``requeue_limit`` attempts per task."""
        for wid, proc in self._workers.items():
            if wid in self._dead or proc.is_alive():
                continue
            self._dead.add(wid)
            self.stats.deaths += 1
            self._want.pop(wid, None)
            orphans = sorted(assigned[wid])
            assigned[wid] = set()
            for idx in orphans:
                attempts[idx] += 1
                if attempts[idx] > self.requeue_limit:
                    lost.append(idx)
                else:
                    pending.append(idx)
            self.stats.requeues += len(orphans)

    def _check_stalls(self, assigned: dict) -> None:
        """Kill workers that went silent past *worker_timeout* while
        holding tasks; the next reap pass requeues their work."""
        if not self.worker_timeout:
            return
        now = time.monotonic()
        for wid, proc in self._workers.items():
            if wid in self._dead or not assigned.get(wid):
                continue
            if now - self._last.get(wid, now) > self.worker_timeout:
                try:
                    proc.kill()
                except Exception:
                    pass


# ------------------------------------------------- generic design entry


def simulate_sharded(
    source: str,
    lattice: Lattice | None = None,
    *,
    cycles: int,
    lanes: int,
    shards: int = 2,
    name: str = "design",
    secure: bool = True,
    inputs: dict[str, int] | None = None,
    lane_stim: list[dict[str, int]] | None = None,
    engine: str | None = None,
    compact: bool = True,
    store: ArtifactStore | str | None = None,
    start_method: str | None = None,
    slice_lanes: int | None = None,
) -> dict[str, Any]:
    """Shard a generic design's lane batch across fleet workers.

    The stimulus lanes split into contiguous slices (about two per
    worker, override with *slice_lanes*); each worker compiles the
    design once from the shared store and runs its slices exactly as
    the CLI simulate loop would, so per-lane violations and final
    outputs are bit-identical to the single-process run.  Returns
    ``{"violations", "final", "lane_cycles", "steps", "stats"}`` with
    per-lane lists indexed by original lane id.
    """
    if lane_stim is not None and len(lane_stim) != lanes:
        raise ValueError(f"lane_stim has {len(lane_stim)} entries for {lanes} lanes")
    slice_lanes = slice_lanes or max(1, -(-lanes // max(1, shards * 2)))
    payloads = []
    for lo in range(0, lanes, slice_lanes):
        ids = list(range(lo, min(lo + slice_lanes, lanes)))
        stim = [lane_stim[i] for i in ids] if lane_stim is not None else None
        payloads.append((ids, stim))
    job = _DesignJob(source, lattice, secure, name, cycles, inputs, compact, engine)
    runner = FleetRunner(
        shards=shards,
        store=store,
        engine=engine,
        start_method=start_method,
        _job=job,
    )
    with runner:
        parts = runner._run_payloads(payloads)
    violations = [0] * lanes
    final: list[dict[str, int]] = [{} for _ in range(lanes)]
    lane_cycles = 0
    steps = 0
    for part in parts:
        for off, lane in enumerate(part["lanes"]):
            violations[lane] = part["violations"][off]
            final[lane] = part["final"][off]
        lane_cycles += part["lane_cycles"]
        steps = max(steps, part["steps"])
    return {
        "violations": violations,
        "final": final,
        "lane_cycles": lane_cycles,
        "steps": steps,
        "stats": runner.stats,
    }

"""The lane-batched simulator vs N scalar simulators: bit-identical.

The contract under test: a :class:`~repro.hdl.batch.BatchSimulator`
with N lanes produces, per lane and per cycle, exactly the register
contents (architectural registers *and* the compiler's shadow-tag
registers), array contents (including ``__tags`` shadow stores), and
output-port values of N scalar :class:`~repro.hdl.sim.Simulator` runs
over the same module -- for random programs, random lane counts, and
random per-lane stimulus, on both the generic engine and the
uniform-state specialized fast path.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hdl import BatchSimulator, Simulator
from repro.lattice import two_level
from repro.sapper import samples
from repro.sapper.analysis import analyze
from repro.sapper.compiler import compile_program
from repro.sapper.crossval import encode_inputs

from tests import strategies


def assert_lanes_match_scalars(module, batch, sims, cycle):
    """Full-state equality between each batch lane and its scalar twin."""
    for lane, sim in enumerate(sims):
        for name in module.regs:
            want = sim.regs[name]
            got = batch.get_reg(lane, name)
            assert want == got, f"cycle {cycle} lane {lane} reg {name}: {want} != {got}"
        for name, arr in module.arrays.items():
            sim_arr = sim.arrays[name]
            lane_arr = batch.arrays[name][lane]
            for idx in set(sim_arr) | set(lane_arr):
                want = sim_arr.get(idx, arr.default)
                got = lane_arr.get(idx, arr.default)
                assert want == got, (
                    f"cycle {cycle} lane {lane} {name}[{idx}]: {want} != {got}"
                )


def run_lockstep(design, traces, cycles, swar=True, majority_fraction=None):
    """Drive a batch and per-lane scalar sims with identical stimulus."""
    module = design.module
    lanes = len(traces)
    batch = BatchSimulator(module, lanes, swar=swar)
    if majority_fraction is not None:
        batch.majority_fraction = majority_fraction
    sims = [Simulator(module) for _ in range(lanes)]
    for cycle in range(cycles):
        lane_inputs = [
            encode_inputs(design, traces[lane][cycle % len(traces[lane])])
            for lane in range(lanes)
        ]
        scalar_outs = [sim.step(inp) for sim, inp in zip(sims, lane_inputs)]
        batch_outs = batch.step(lane_inputs)
        assert batch_outs == scalar_outs, f"cycle {cycle}: outputs diverge"
        assert_lanes_match_scalars(module, batch, sims, cycle)
    return batch


class TestRandomizedBatchEquivalence:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        strategies.programs(),
        st.integers(1, 5),
        st.data(),
    )
    def test_batch_matches_scalar_lanes(self, program, lanes, data):
        """N random traces on a random program: every lane bit-identical
        to a scalar run, including shadow-tag registers and tag arrays."""
        lat = two_level()
        info = analyze(program, lat)
        design = compile_program(info, lat, secure=True, name="rand_batch")
        traces = [
            data.draw(strategies.stimulus_traces(cycles=5), label=f"lane{lane}")
            for lane in range(lanes)
        ]
        run_lockstep(design, traces, cycles=5)

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(strategies.programs(), st.data())
    def test_uniform_lanes_stay_identical(self, program, data):
        """Identical stimulus on every lane keeps lanes in lockstep --
        the uniform-state fast path must not diverge from scalar."""
        lat = two_level()
        info = analyze(program, lat)
        design = compile_program(info, lat, secure=True, name="rand_uniform")
        trace = data.draw(strategies.stimulus_traces(cycles=6))
        run_lockstep(design, [trace, trace, trace], cycles=6)


class TestSwarTier:
    """The wide-word SWAR tier: mixed register widths across the 33-bit
    packing boundary, non-uniform FSM states, and explicit tier
    assignment (no silent fallback to per-lane loops)."""

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(strategies.wide_programs(), st.integers(2, 5), st.data())
    def test_swar_path_matches_scalar_lanes(self, program, lanes, data):
        """Random programs with 1/2-bit and 32/33/34-bit registers:
        per-lane traces diverge the FSM states, and every lane must stay
        bit-identical to its scalar twin through the SWAR engine."""
        lat = two_level()
        info = analyze(program, lat)
        design = compile_program(info, lat, secure=True, name="rand_swar")
        traces = [
            data.draw(strategies.stimulus_traces(cycles=5), label=f"lane{lane}")
            for lane in range(lanes)
        ]
        batch = run_lockstep(design, traces, cycles=5)
        # the two engines must classify identically on the engine flag
        assert batch.swar and "w" not in BatchSimulator(
            design.module, lanes, swar=False
        ).signal_tiers.values()

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(strategies.wide_programs(), st.data())
    def test_pre_swar_engine_still_bit_identical(self, program, data):
        """The swar=False engine (the regression-benchmark baseline)
        stays bit-identical on the same mixed-width programs."""
        lat = two_level()
        design = compile_program(analyze(program, lat), lat, secure=True, name="rand_plain")
        trace = data.draw(strategies.stimulus_traces(cycles=4))
        run_lockstep(design, [trace, trace], cycles=4, swar=False)

    ADDER = """
    reg[31:0] a; reg[31:0] b; reg[32:0] sum; reg[0:0] flag;
    input[7:0] x;
    state s : L = {
        a := a + x;
        b := b ^ (a << 2);
        sum := a + b;
        flag := a < b;
        goto s;
    }
    """

    def test_datapath_lands_in_swar_tier(self):
        """On a pure add/xor/shift/compare datapath every multi-bit
        signal must be assigned to the SWAR tier -- a per-lane fallback
        here is a performance regression, not a preference."""
        design = compile_program(self.ADDER, two_level(), name="swar_adder")
        batch = BatchSimulator(design.module, 4)
        tiers = batch.signal_tiers
        assert set(tiers.values()) <= {"p", "w"}, (
            f"unexpected per-lane fallback: "
            f"{[n for n, k in tiers.items() if k == 's']}"
        )
        assert "w" in tiers.values(), "SWAR tier unused on a wide datapath"
        # 33-bit sum register: packed storage at the boundary width
        assert "sum" in batch.sregs and batch.pitch >= 34

    VARSHIFT = """
    reg[15:0] v; input[3:0] k;
    state s : L = { v := v >> k; goto s; }
    """

    def test_variable_shift_falls_back_per_lane(self):
        """Variable shifts have no SWAR form: they must land in the
        scalar tier (and still simulate bit-identically)."""
        design = compile_program(self.VARSHIFT, two_level(), name="varshift")
        batch = BatchSimulator(design.module, 3)
        tiers = batch.signal_tiers
        shift_sigs = [
            n for n, k in tiers.items()
            if k == "s" and batch.module.width_of(n) > 1
        ]
        assert shift_sigs, "variable-shift cone should be scalar-tier"
        sims = [Simulator(design.module) for _ in range(3)]
        for cycle in range(40):
            inputs = [{"v": 0, "k": (cycle + lane) % 16} for lane in range(3)]
            want = [s.step(i) for s, i in zip(sims, inputs)]
            assert batch.step(inputs) == want, cycle
            assert_lanes_match_scalars(design.module, batch, sims, cycle)

    def test_out_of_width_bitwise_ir_is_rejected(self):
        """Bitwise/mux nodes with operands wider than the node violate
        the width discipline every backend trusts (no engine masks
        them; the packed tag world would silently corrupt neighbouring
        lanes).  validate() rejects them up front, so the batched
        engines never see such IR (regression: a width-1 mux over 8-bit
        arms used to classify as SWAR and crash the generated step)."""
        from repro.hdl import HOp, HRef, Module

        def degenerate(op, args, width):
            m = Module("t")
            m.add_input("sel", 1)
            m.add_input("a", 8)
            m.add_input("b", 8)
            m.add_reg("r", width)
            m.assign("t", HOp(op, args, width))
            m.set_reg_next("r", HRef("t", width))
            m.set_output("o", HRef("t", width))
            return m

        for op, args, width in [
            ("mux", (HRef("sel", 1), HRef("a", 8), HRef("b", 8)), 1),
            ("or", (HRef("a", 8), HRef("sel", 1)), 1),
            ("and", (HRef("a", 8), HRef("b", 8)), 4),
        ]:
            m = degenerate(op, args, width)
            with pytest.raises(ValueError, match="wider operand"):
                m.validate()
            with pytest.raises(ValueError, match="wider operand"):
                BatchSimulator(m, 3, optimize=False)

        # 1-bit ops over 1-bit operands of course stay legal
        ok = degenerate("mux", (HRef("sel", 1), HRef("sel", 1), HRef("sel", 1)), 1)
        ok.validate()
        assert BatchSimulator(ok, 2, optimize=False).step()

    def test_narrowed_slice_does_not_leak_across_lanes(self):
        """The narrowing pass legally shrinks a signal under a slice
        whose lo/hi were sized for the old padded width; the SWAR slice
        emitter must clamp against the operand width instead of
        shifting the neighbouring lane's slot into view (regression:
        lane 0 used to read lanes 3-4's bits)."""
        from repro.hdl import HOp, HRef, Module
        from repro.hdl.passes import run_pipeline

        m = Module("t")
        x = m.add_input("x", 8)
        y = m.add_input("y", 8)
        m.assign("s", HOp("add", (HOp("zext", (x,), 64), HOp("zext", (y,), 64)), 64))
        m.assign("hifield", HOp("slice", (HRef("s", 64),), 6, hi=40, lo=35))
        m.assign("lofield", HOp("slice", (HRef("s", 64),), 6, hi=8, lo=3))
        m.assign("bit", HOp("slice", (HRef("s", 64),), 1, hi=35, lo=35))
        r = m.add_reg("acc", 6)
        m.assign("nxt", HOp("or", (HRef("hifield", 6), HRef("lofield", 6)), 6))
        m.set_reg_next("acc", HRef("nxt", 6))
        m.set_output("o", HRef("nxt", 6))
        m.set_output("b", HRef("bit", 1))
        opt = run_pipeline(m).module
        batch = BatchSimulator(opt, 4, optimize=False)
        sims = [Simulator(opt, optimize=False) for _ in range(4)]
        for cycle in range(24):
            inputs = [
                {"x": (37 * lane + cycle) & 255, "y": (91 * lane + 3 * cycle) & 255}
                for lane in range(4)
            ]
            want = [s.step(i) for s, i in zip(sims, inputs)]
            assert batch.step(inputs) == want, cycle
            assert_lanes_match_scalars(opt, batch, sims, cycle)

    def test_nested_slice_keeps_every_truncation(self):
        """An outer slice reaching past an inner slice's top must see
        zeros, exactly like the scalar engine (regression: the SWAR
        slice flattening clamped only against the innermost operand and
        read the underlying bits instead)."""
        from repro.hdl import HOp, HRef, Module

        m = Module("t")
        x = m.add_input("x", 16)
        m.assign("s1", HOp("slice", (x,), 4, hi=7, lo=4))
        m.assign("s2", HOp("slice", (HRef("s1", 4),), 8, hi=7, lo=0))
        m.assign("deep", HOp("slice", (HOp("slice", (x,), 6, hi=13, lo=8),), 3, hi=4, lo=2))
        r = m.add_reg("acc", 8)
        m.assign("nxt", HOp("or", (HRef("s2", 8), HOp("zext", (HRef("deep", 3),), 8)), 8))
        m.set_reg_next("acc", HRef("nxt", 8))
        m.set_output("o", HRef("nxt", 8))
        m.validate()
        batch = BatchSimulator(m, 4, optimize=False)
        assert batch.signal_tiers["nxt"] == "w"
        sims = [Simulator(m, optimize=False) for _ in range(4)]
        for cycle in range(24):
            inputs = [{"x": (0xFFF0 ^ (2477 * lane + 301 * cycle)) & 0xFFFF}
                      for lane in range(4)]
            want = [s.step(i) for s, i in zip(sims, inputs)]
            assert batch.step(inputs) == want, cycle
            assert_lanes_match_scalars(m, batch, sims, cycle)

    def test_folded_bodies_respect_entry_pitch(self):
        """A narrow-slot module whose scalar cone hides wider
        intermediates: state-folded bodies re-optimize the module and
        must not pack anything wider than the entry's slot pitch."""
        src = """
        reg[7:0] acc; reg[7:0] aux; reg[31:0] wide; input[7:0] x;
        state top : L = {
            let state p = {
                acc := acc + x;
                wide := (wide * 3) + acc;
                if (acc > 200) { goto q; } else { goto p; }
            } in
            let state q = { aux := aux + 1; acc := 0; goto p; } in
            fall;
        }
        state other : L = { acc := acc - 1; goto other; }
        """
        design = compile_program(src, two_level(), name="pitch_fold")
        batch = BatchSimulator(design.module, 4)
        sims = [Simulator(design.module) for _ in range(4)]
        for cycle in range(150):
            inp = {"x": 7, "x__tag": 0}
            assert batch.step(inp) == [s.step(inp) for s in sims], cycle
            assert_lanes_match_scalars(batch.module, batch, sims, cycle)
        assert any(b is not None for b in batch._entry.bodies.values()), (
            "expected at least one specialized body to compile"
        )
        assert batch._entry.pitch == batch.pitch == 33  # 32-bit reg + guard

    def test_one_bit_constant_shifts(self):
        """Width-1 constant shifts are SWAR-eligible and must compile
        and run bit-identically (regression: the flag emitter had no
        shift case and codegen raised ValueError on valid designs)."""
        src = """
        reg[0:0] f; reg[0:0] g; reg[0:0] h; input[0:0] x;
        state s : L = {
            f := (f >> 1) | x;
            g := g >> 0;
            h := x;
            goto s;
        }
        """
        design = compile_program(src, two_level(), name="bitshift")
        for optimize in (True, False):
            batch = BatchSimulator(design.module, 3, optimize=optimize)
            sims = [Simulator(design.module, optimize=optimize) for _ in range(3)]
            for cycle in range(20):
                inputs = [
                    {"x": (cycle >> lane) & 1, "x__tag": 0} for lane in range(3)
                ]
                want = [s.step(i) for s, i in zip(sims, inputs)]
                assert batch.step(inputs) == want, (optimize, cycle)
                assert_lanes_match_scalars(batch.module, batch, sims, cycle)

    def test_engines_cached_per_flag(self):
        design = compile_program(self.ADDER, two_level(), name="swar_cache")
        module = design.module
        b_swar = BatchSimulator(module, 2)
        b_plain = BatchSimulator(module, 2, swar=False)
        assert b_swar._entry is not b_plain._entry
        assert b_swar._entry is BatchSimulator(module, 4)._entry
        assert b_plain._entry is BatchSimulator(module, 4, swar=False)._entry
        assert "w" in b_swar.signal_tiers.values()
        assert "w" not in b_plain.signal_tiers.values()
        # packed state accessors agree across engines
        b_swar.set_reg(1, "sum", 0x1_2345_6789 & ((1 << 33) - 1))
        assert b_swar.get_reg(1, "sum") == 0x1_2345_6789 & ((1 << 33) - 1)
        assert b_swar.get_reg(0, "sum") == 0


FSM_SRC = """
reg[7:0] acc; reg[7:0] aux; input[7:0] x;
state top : L = {
    let state p = {
        acc := acc + x;
        if (acc > 200) { goto q; } else { goto p; }
    } in
    let state q = {
        aux := aux + 1;
        acc := 0;
        goto p;
    } in
    fall;
}
state other : L = { acc := acc - 1; goto other; }
"""


class TestLaneCompaction:
    """compact() must keep every surviving lane bit-identical to the
    scalar run it replaces -- packed tag words, slot-packed sregs,
    per-lane lists, and array state all repack in lane order, down to a
    single lane, with retired lanes mapped through active_lanes."""

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(strategies.programs(), st.integers(2, 5), st.data())
    def test_compaction_matches_scalar_lanes(self, program, lanes, data):
        """Random programs and stimuli under a randomized retirement
        schedule: after every compaction the surviving lanes' complete
        state (regs, shadow tags, arrays) equals their scalar twins'."""
        lat = two_level()
        info = analyze(program, lat)
        design = compile_program(info, lat, secure=True, name="rand_compact")
        module = design.module
        cycles = 6
        traces = [
            data.draw(strategies.stimulus_traces(cycles=cycles), label=f"lane{lane}")
            for lane in range(lanes)
        ]
        batch = BatchSimulator(module, lanes)
        sims = {lane: Simulator(module) for lane in range(lanes)}
        for cycle in range(cycles):
            active = list(batch.active_lanes)
            lane_inputs = [
                encode_inputs(design, traces[orig][cycle]) for orig in active
            ]
            want = [sims[orig].step(inp) for orig, inp in zip(active, lane_inputs)]
            got = batch.step(lane_inputs)
            assert got == want, f"cycle {cycle}: outputs diverge"
            assert_lanes_match_scalars(
                module, batch, [sims[orig] for orig in active], cycle
            )
            if batch.lanes > 1:
                retired = data.draw(
                    st.lists(
                        st.integers(0, batch.lanes - 1),
                        unique=True,
                        max_size=batch.lanes - 1,
                    ),
                    label=f"retire@{cycle}",
                )
                if retired:
                    gone = batch.compact(retired)
                    for orig in gone:
                        del sims[orig]
                    survivors = [sims[orig] for orig in batch.active_lanes]
                    assert_lanes_match_scalars(module, batch, survivors, cycle)

    def test_compact_down_to_one_lane(self):
        design = compile_program(samples.TDMA, two_level(), name="c1")
        module = design.module
        batch = BatchSimulator(module, 4)
        sims = [Simulator(module) for _ in range(4)]
        inp = {"hi_in": 9, "hi_in__tag": 1, "lo_in": 4, "lo_in__tag": 0}
        for _ in range(20):
            want = [s.step(inp) for s in sims]
            assert batch.step(inp) == want
        assert batch.compact([0, 1, 3]) == [0, 1, 3]
        assert batch.active_lanes == [2] and batch.lanes == 1
        sims = [sims[2]]
        for cycle in range(30):
            want = [s.step(inp) for s in sims]
            assert batch.step(inp) == want
            assert_lanes_match_scalars(module, batch, sims, cycle)

    def test_compact_immediately_after_specialized_step(self):
        """Compaction right after a specialized-body step must repack
        the state the folded body just wrote (including held registers
        it never touched) without losing a bit."""
        design = compile_program(FSM_SRC, two_level(), name="fsm_compact")
        module = design.module
        batch = BatchSimulator(module, 4)
        sims = [Simulator(module) for _ in range(4)]
        inp = {"x": 7, "x__tag": 0}
        for _ in range(120):
            want = [s.step(inp) for s in sims]
            assert batch.step(inp) == want
        assert batch.uniform_steps > 0, "fast path never fired before compaction"
        batch.compact([0, 2])
        assert batch.active_lanes == [1, 3]
        sims = [sims[1], sims[3]]
        for cycle in range(120):
            want = [s.step(inp) for s in sims]
            assert batch.step(inp) == want
            assert_lanes_match_scalars(module, batch, sims, cycle)

    def test_retire_when_drives_run_compaction(self):
        design = compile_program(samples.TDMA, two_level(), name="ret")
        module = design.module
        batch = BatchSimulator(
            module, 3,
            retire_when=lambda sim, lane: sim.active_lanes[lane] == 1
            and sim.cycles >= 5,
        )
        outs = batch.run(10)
        assert batch.active_lanes == [0, 2]
        assert batch.lanes == 2 == len(outs)
        assert batch.compactions == 1 and batch.cycles == 10
        # identical to an uncompacted twin on the surviving lanes
        twin = BatchSimulator(module, 3)
        twin.run(10)
        for pos, orig in enumerate(batch.active_lanes):
            assert batch.lane_regs(pos) == twin.lane_regs(orig)

    def test_run_reslices_per_lane_inputs_across_compaction(self):
        """run() with a per-lane stimulus list must keep the list
        aligned with the surviving positions after each compaction
        (regression: the original list length tripped _lane_inputs'
        count check on the first post-compaction step)."""
        design = compile_program(FSM_SRC, two_level(), name="ret_inputs")
        module = design.module
        lane_inputs = [{"x": 3 + 50 * lane, "x__tag": 0} for lane in range(3)]
        batch = BatchSimulator(
            module, 3,
            retire_when=lambda sim, lane: sim.active_lanes[lane] == 1
            and sim.cycles >= 4,
        )
        out = batch.run(12, lane_inputs)
        assert batch.active_lanes == [0, 2] and len(out) == 2
        # surviving lanes saw their own stimulus throughout
        sims = [Simulator(module) for _ in range(3)]
        for _cycle in range(12):
            for lane, sim in enumerate(sims):
                sim.step(lane_inputs[lane])
        for pos, orig in enumerate(batch.active_lanes):
            for name in module.regs:
                assert batch.get_reg(pos, name) == sims[orig].regs[name], (orig, name)

    def test_run_stops_when_every_lane_retires(self):
        design = compile_program(samples.TDMA, two_level(), name="ret_all")
        batch = BatchSimulator(design.module, 2, retire_when=lambda sim, lane: True)
        batch.run(10)
        assert batch.cycles == 1 and batch.lanes == 2  # stopped, not compacted

    def test_compact_without_predicate_or_lanes_rejected(self):
        design = compile_program(samples.TDMA, two_level(), name="noretire")
        batch = BatchSimulator(design.module, 2)
        with pytest.raises(ValueError, match="retire_when"):
            batch.compact()
        assert batch.compact([]) == []


class TestMajorityDispatch:
    """Cohort split + mask-merged write-back must equal the generic
    step bit-for-bit for adversarially split lane populations."""

    def _lockstep(self, lanes, lane_x, cycles=160, fraction=0.5):
        design = compile_program(FSM_SRC, two_level(), name=f"fsm_maj{lanes}")
        module = design.module
        batch = BatchSimulator(module, lanes)
        batch.majority_fraction = fraction
        sims = [Simulator(module) for _ in range(lanes)]
        for cycle in range(cycles):
            lane_inputs = [{"x": lane_x[lane], "x__tag": 0} for lane in range(lanes)]
            want = [s.step(i) for s, i in zip(sims, lane_inputs)]
            got = batch.step(lane_inputs)
            assert got == want, f"cycle {cycle}"
            assert_lanes_match_scalars(module, batch, sims, cycle)
        return batch

    def test_half_and_half_split(self):
        batch = self._lockstep(6, [3, 3, 3, 103, 103, 103])
        assert batch.split_steps > 0, "50/50 population never split"

    def test_n_minus_one_vs_one_split(self):
        batch = self._lockstep(5, [3, 3, 3, 3, 103])
        assert batch.split_steps > 0, "N-1/1 population never split"

    def test_three_way_state_mix(self):
        batch = self._lockstep(6, [3, 3, 53, 53, 103, 103], fraction=0.3)
        assert batch.split_steps > 0, "three-way population never split"

    def test_large_cohort_uses_log_step_schedule(self):
        """Cohorts above the positions-loop threshold repack through
        the generalized compress/expand schedule (lane and slot space)
        and must stay bit-identical like the small-cohort loop path."""
        batch = self._lockstep(8, [3] * 6 + [103] * 2)
        assert batch.split_steps > 0
        assert any(maj._steps is not None for maj, _ in batch._plans.values()), (
            "no cohort ever took the log-step schedule"
        )
        assert batch._entry.marshal.reads_s, "slot-space marshalling unexercised"

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(strategies.programs(), st.integers(3, 6), st.data())
    def test_majority_dispatch_matches_scalars(self, program, lanes, data):
        """Random programs with per-lane stimulus under an eager split
        threshold: every lane stays bit-identical to its scalar twin
        whichever cohort it lands in."""
        lat = two_level()
        info = analyze(program, lat)
        design = compile_program(info, lat, secure=True, name="rand_majority")
        traces = [
            data.draw(strategies.stimulus_traces(cycles=5), label=f"lane{lane}")
            for lane in range(lanes)
        ]
        run_lockstep(design, traces, cycles=5, majority_fraction=0.34)

    def test_bodies_shared_across_cohort_widths(self):
        """One folded body serves every lane width: the full batch, a
        compacted batch, and majority cohorts all re-enter the same
        cached entry at their own width."""
        design = compile_program(FSM_SRC, two_level(), name="fsm_widths")
        module = design.module
        batch = BatchSimulator(module, 6)
        inp = {"x": 7, "x__tag": 0}
        for _ in range(120):
            batch.step(inp)
        entry = batch._entry
        assert any(b is not None and 6 in b.steps for b in entry.bodies.values())
        batch.compact([4, 5])
        for _ in range(120):
            batch.step(inp)
        shared = [
            b for b in entry.bodies.values()
            if b is not None and {4, 6} <= set(b.steps)
        ]
        assert shared, "specialized bodies must be shared across lane widths"
        # a second simulator over the same module reuses the same bodies
        assert BatchSimulator(module, 3)._entry.bodies is entry.bodies

    def test_split_disabled_by_flag(self):
        design = compile_program(FSM_SRC, two_level(), name="fsm_nomaj")
        module = design.module
        batch = BatchSimulator(module, 6, majority=False)
        ref = BatchSimulator(module, 6)
        ref.majority_fraction = 0.3
        for cycle in range(160):
            lane_inputs = [{"x": 3 + 50 * (lane % 3), "x__tag": 0} for lane in range(6)]
            assert batch.step(lane_inputs) == ref.step(lane_inputs), cycle
        assert batch.split_steps == 0
        assert ref.split_steps > 0


class TestLaneIndexValidation:
    """Per-lane accessors must reject duplicate and out-of-range lane
    indices instead of silently wrapping (negative list indexing) or
    reading zeros past the packed words."""

    def _batch(self, lanes=3):
        design = compile_program(samples.TDMA, two_level(), name="val")
        return BatchSimulator(design.module, lanes)

    def test_duplicate_retired_lanes_rejected(self):
        batch = self._batch()
        with pytest.raises(ValueError, match="duplicate lane"):
            batch.compact([1, 1])
        # the failed call must not have touched any state
        assert batch.lanes == 3 and batch.active_lanes == [0, 1, 2]
        assert batch.compactions == 0

    def test_out_of_range_lanes_rejected(self):
        batch = self._batch()
        for lane in (-1, 3, 17):
            with pytest.raises(ValueError, match="out of range"):
                batch.get_reg(lane, "acc")
            with pytest.raises(ValueError, match="out of range"):
                batch.set_reg(lane, "acc", 1)
            with pytest.raises(ValueError, match="out of range"):
                batch.lane_view(lane)
            with pytest.raises(ValueError, match="out of range"):
                batch.lane_regs(lane)
            with pytest.raises(ValueError, match="out of range"):
                batch.compact([lane])
        with pytest.raises(ValueError, match="out of range"):
            batch.compact([0, 1, -1])

    def test_compacted_batch_rejects_stale_positions(self):
        batch = self._batch(4)
        batch.compact([1, 2])
        with pytest.raises(ValueError, match="out of range"):
            batch.get_reg(2, "acc")
        with pytest.raises(ValueError, match="cannot retire every lane"):
            batch.compact([0, 1])

    def test_load_array_validates_lane(self):
        src = """
        mem[7:0] buf[16]; reg[7:0] a; input[3:0] i;
        state s : L = { a := buf[i]; goto s; }
        """
        design = compile_program(src, two_level(), name="val_mem")
        batch = BatchSimulator(design.module, 2)
        with pytest.raises(ValueError, match="out of range"):
            batch.load_array(2, "buf", [1, 2, 3])


class TestSpecializedFastPath:
    SRC = """
    reg[7:0] acc; reg[7:0] aux; input[7:0] x;
    state top : L = {
        let state p = {
            acc := acc + x;
            if (acc > 200) { goto q; } else { goto p; }
        } in
        let state q = {
            aux := aux + 1;
            acc := 0;
            goto p;
        } in
        fall;
    }
    state other : L = { acc := acc - 1; goto other; }
    """

    def test_fast_path_bodies_bit_identical(self):
        lat = two_level()
        design = compile_program(self.SRC, lat, name="fsm")
        module = design.module
        lanes = 4
        batch = BatchSimulator(module, lanes)
        sims = [Simulator(module) for _ in range(lanes)]
        # identical inputs keep the fall registers uniform: the
        # specialized bodies run, and must match scalar state exactly
        for cycle in range(120):
            inp = {"x": 7, "x__tag": 0}
            scalar_outs = [s.step(inp) for s in sims]
            batch_outs = batch.step(inp)
            assert batch_outs == scalar_outs
            assert_lanes_match_scalars(module, batch, sims, cycle)
        assert batch._entry.dispatch, "expected narrow FSM dispatch registers"
        assert any(body is not None for body in batch._entry.bodies.values()), (
            "uniform lanes never reached a specialized body"
        )

    def test_mixed_states_fall_back_to_generic(self):
        lat = two_level()
        design = compile_program(self.SRC, lat, name="fsm_mixed")
        module = design.module
        lanes = 3
        batch = BatchSimulator(module, lanes)
        sims = [Simulator(module) for _ in range(lanes)]
        for cycle in range(100):
            lane_inputs = [{"x": 3 + 50 * lane, "x__tag": 0} for lane in range(lanes)]
            scalar_outs = [s.step(i) for s, i in zip(sims, lane_inputs)]
            batch_outs = batch.step(lane_inputs)
            assert batch_outs == scalar_outs
            assert_lanes_match_scalars(module, batch, sims, cycle)


class TestBatchSimulatorApi:
    def test_lane_count_validation(self):
        design = compile_program(samples.ADDER_CHECK, two_level(), name="api")
        with pytest.raises(ValueError, match="lane count"):
            BatchSimulator(design.module, 0)
        with pytest.raises(ValueError, match="lane count"):
            BatchSimulator(design.module, -3)

    def test_broadcast_and_per_lane_inputs(self):
        design = compile_program(samples.ADDER_TRACK, two_level(), name="bcast")
        batch = BatchSimulator(design.module, 3)
        outs = batch.step({"in_b": 1, "in_c": 2})
        assert len(outs) == 3 and outs[0] == outs[1] == outs[2]
        outs = batch.step([{"in_b": 1}, {"in_c": 4}, None])
        assert len(outs) == 3
        with pytest.raises(ValueError, match="per-lane"):
            batch.step([{}, {}])

    def test_lane_state_accessors(self):
        design = compile_program(samples.TDMA, two_level(), name="acc")
        batch = BatchSimulator(design.module, 2)
        batch.set_reg(1, "acc", 42)
        assert batch.get_reg(1, "acc") == 42
        assert batch.get_reg(0, "acc") == 0
        view = batch.lane_view(1)
        assert view.regs["acc"] == 42
        assert batch.lane_regs(1)["acc"] == 42
        view.regs["acc"] = 7
        assert batch.get_reg(1, "acc") == 7

    def test_load_array_per_lane(self):
        src = """
        mem[7:0] buf[16]; reg[7:0] a; input[3:0] i;
        state s : L = { a := buf[i]; goto s; }
        """
        design = compile_program(src, two_level(), name="mem")
        batch = BatchSimulator(design.module, 2)
        batch.load_array(0, "buf", [10, 20, 30])
        batch.load_array(1, "buf", {2: 99})
        batch.step({"i": 2})
        out = batch.step({"i": 2})
        assert batch.get_reg(0, "a") == 30
        assert batch.get_reg(1, "a") == 99
        assert len(out) == 2

    def test_run_counts_cycles(self):
        design = compile_program(samples.TDMA, two_level(), name="run")
        batch = BatchSimulator(design.module, 2)
        batch.run(10)
        assert batch.cycles == 10


class TestToolchainBatchCaching:
    def test_shared_compilation_per_module(self):
        from repro.toolchain import Toolchain

        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tc_batch")
        b1 = tc.batch_simulator(design, 4)
        b2 = tc.batch_simulator(design, 4)
        b3 = tc.batch_simulator(design, 2)
        # one entry per module: same factory, same per-lane-count step
        assert b1._entry is b2._entry is b3._entry
        assert b1._step is b2._step
        assert b1._step is not b3._step  # different lane count
        # batched and scalar engines run the same optimized module
        assert b1.module is tc.simulator(design).module

    def test_batch_matches_toolchain_scalar(self):
        from repro.toolchain import Toolchain

        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tc_eq")
        batch = tc.batch_simulator(design, 2)
        scalar = tc.simulator(design)
        inp = {"hi_in": 9, "hi_in__tag": 1, "lo_in": 4, "lo_in__tag": 0}
        for _ in range(50):
            want = scalar.step(inp)
            got = batch.step(inp)
            assert got[0] == want and got[1] == want

"""The lane-batched simulator vs N scalar simulators: bit-identical.

The contract under test: a :class:`~repro.hdl.batch.BatchSimulator`
with N lanes produces, per lane and per cycle, exactly the register
contents (architectural registers *and* the compiler's shadow-tag
registers), array contents (including ``__tags`` shadow stores), and
output-port values of N scalar :class:`~repro.hdl.sim.Simulator` runs
over the same module -- for random programs, random lane counts, and
random per-lane stimulus, on both the generic engine and the
uniform-state specialized fast path.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hdl import BatchSimulator, Simulator
from repro.lattice import two_level
from repro.sapper import samples
from repro.sapper.analysis import analyze
from repro.sapper.compiler import compile_program
from repro.sapper.crossval import encode_inputs

from tests import strategies


def assert_lanes_match_scalars(module, batch, sims, cycle):
    """Full-state equality between each batch lane and its scalar twin."""
    for lane, sim in enumerate(sims):
        for name in module.regs:
            want = sim.regs[name]
            got = batch.get_reg(lane, name)
            assert want == got, f"cycle {cycle} lane {lane} reg {name}: {want} != {got}"
        for name, arr in module.arrays.items():
            sim_arr = sim.arrays[name]
            lane_arr = batch.arrays[name][lane]
            for idx in set(sim_arr) | set(lane_arr):
                want = sim_arr.get(idx, arr.default)
                got = lane_arr.get(idx, arr.default)
                assert want == got, (
                    f"cycle {cycle} lane {lane} {name}[{idx}]: {want} != {got}"
                )


def run_lockstep(design, traces, cycles):
    """Drive a batch and per-lane scalar sims with identical stimulus."""
    module = design.module
    lanes = len(traces)
    batch = BatchSimulator(module, lanes)
    sims = [Simulator(module) for _ in range(lanes)]
    for cycle in range(cycles):
        lane_inputs = [
            encode_inputs(design, traces[lane][cycle % len(traces[lane])])
            for lane in range(lanes)
        ]
        scalar_outs = [sim.step(inp) for sim, inp in zip(sims, lane_inputs)]
        batch_outs = batch.step(lane_inputs)
        assert batch_outs == scalar_outs, f"cycle {cycle}: outputs diverge"
        assert_lanes_match_scalars(module, batch, sims, cycle)
    return batch


class TestRandomizedBatchEquivalence:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        strategies.programs(),
        st.integers(1, 5),
        st.data(),
    )
    def test_batch_matches_scalar_lanes(self, program, lanes, data):
        """N random traces on a random program: every lane bit-identical
        to a scalar run, including shadow-tag registers and tag arrays."""
        lat = two_level()
        info = analyze(program, lat)
        design = compile_program(info, lat, secure=True, name="rand_batch")
        traces = [
            data.draw(strategies.stimulus_traces(cycles=5), label=f"lane{lane}")
            for lane in range(lanes)
        ]
        run_lockstep(design, traces, cycles=5)

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(strategies.programs(), st.data())
    def test_uniform_lanes_stay_identical(self, program, data):
        """Identical stimulus on every lane keeps lanes in lockstep --
        the uniform-state fast path must not diverge from scalar."""
        lat = two_level()
        info = analyze(program, lat)
        design = compile_program(info, lat, secure=True, name="rand_uniform")
        trace = data.draw(strategies.stimulus_traces(cycles=6))
        run_lockstep(design, [trace, trace, trace], cycles=6)


class TestSpecializedFastPath:
    SRC = """
    reg[7:0] acc; reg[7:0] aux; input[7:0] x;
    state top : L = {
        let state p = {
            acc := acc + x;
            if (acc > 200) { goto q; } else { goto p; }
        } in
        let state q = {
            aux := aux + 1;
            acc := 0;
            goto p;
        } in
        fall;
    }
    state other : L = { acc := acc - 1; goto other; }
    """

    def test_fast_path_bodies_bit_identical(self):
        lat = two_level()
        design = compile_program(self.SRC, lat, name="fsm")
        module = design.module
        lanes = 4
        batch = BatchSimulator(module, lanes)
        sims = [Simulator(module) for _ in range(lanes)]
        # identical inputs keep the fall registers uniform: the
        # specialized bodies run, and must match scalar state exactly
        for cycle in range(120):
            inp = {"x": 7, "x__tag": 0}
            scalar_outs = [s.step(inp) for s in sims]
            batch_outs = batch.step(inp)
            assert batch_outs == scalar_outs
            assert_lanes_match_scalars(module, batch, sims, cycle)
        assert batch._entry.dispatch, "expected narrow FSM dispatch registers"
        assert any(body is not None for body in batch._entry.bodies.values()), (
            "uniform lanes never reached a specialized body"
        )

    def test_mixed_states_fall_back_to_generic(self):
        lat = two_level()
        design = compile_program(self.SRC, lat, name="fsm_mixed")
        module = design.module
        lanes = 3
        batch = BatchSimulator(module, lanes)
        sims = [Simulator(module) for _ in range(lanes)]
        for cycle in range(100):
            lane_inputs = [{"x": 3 + 50 * lane, "x__tag": 0} for lane in range(lanes)]
            scalar_outs = [s.step(i) for s, i in zip(sims, lane_inputs)]
            batch_outs = batch.step(lane_inputs)
            assert batch_outs == scalar_outs
            assert_lanes_match_scalars(module, batch, sims, cycle)


class TestBatchSimulatorApi:
    def test_lane_count_validation(self):
        design = compile_program(samples.ADDER_CHECK, two_level(), name="api")
        with pytest.raises(ValueError, match="lane count"):
            BatchSimulator(design.module, 0)
        with pytest.raises(ValueError, match="lane count"):
            BatchSimulator(design.module, -3)

    def test_broadcast_and_per_lane_inputs(self):
        design = compile_program(samples.ADDER_TRACK, two_level(), name="bcast")
        batch = BatchSimulator(design.module, 3)
        outs = batch.step({"in_b": 1, "in_c": 2})
        assert len(outs) == 3 and outs[0] == outs[1] == outs[2]
        outs = batch.step([{"in_b": 1}, {"in_c": 4}, None])
        assert len(outs) == 3
        with pytest.raises(ValueError, match="per-lane"):
            batch.step([{}, {}])

    def test_lane_state_accessors(self):
        design = compile_program(samples.TDMA, two_level(), name="acc")
        batch = BatchSimulator(design.module, 2)
        batch.set_reg(1, "acc", 42)
        assert batch.get_reg(1, "acc") == 42
        assert batch.get_reg(0, "acc") == 0
        view = batch.lane_view(1)
        assert view.regs["acc"] == 42
        assert batch.lane_regs(1)["acc"] == 42
        view.regs["acc"] = 7
        assert batch.get_reg(1, "acc") == 7

    def test_load_array_per_lane(self):
        src = """
        mem[7:0] buf[16]; reg[7:0] a; input[3:0] i;
        state s : L = { a := buf[i]; goto s; }
        """
        design = compile_program(src, two_level(), name="mem")
        batch = BatchSimulator(design.module, 2)
        batch.load_array(0, "buf", [10, 20, 30])
        batch.load_array(1, "buf", {2: 99})
        batch.step({"i": 2})
        out = batch.step({"i": 2})
        assert batch.get_reg(0, "a") == 30
        assert batch.get_reg(1, "a") == 99
        assert len(out) == 2

    def test_run_counts_cycles(self):
        design = compile_program(samples.TDMA, two_level(), name="run")
        batch = BatchSimulator(design.module, 2)
        batch.run(10)
        assert batch.cycles == 10


class TestToolchainBatchCaching:
    def test_shared_compilation_per_module(self):
        from repro.toolchain import Toolchain

        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tc_batch")
        b1 = tc.batch_simulator(design, 4)
        b2 = tc.batch_simulator(design, 4)
        b3 = tc.batch_simulator(design, 2)
        # one entry per module: same factory, same per-lane-count step
        assert b1._entry is b2._entry is b3._entry
        assert b1._step is b2._step
        assert b1._step is not b3._step  # different lane count
        # batched and scalar engines run the same optimized module
        assert b1.module is tc.simulator(design).module

    def test_batch_matches_toolchain_scalar(self):
        from repro.toolchain import Toolchain

        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tc_eq")
        batch = tc.batch_simulator(design, 2)
        scalar = tc.simulator(design)
        inp = {"hi_in": 9, "hi_in__tag": 1, "lo_in": 4, "lo_in__tag": 0}
        for _ in range(50):
            want = scalar.step(inp)
            got = batch.step(inp)
            assert got[0] == want and got[1] == want

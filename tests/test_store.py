"""The persistent artifact store: addressing, round trips, durability.

Three contracts are pinned here:

* **Addressing** -- structural keys canonicalize to stable digests
  across store instances; identity-keyed components are refused, so an
  ``id()`` can never leak into a file name another process would trust.
* **Round trip** (Hypothesis) -- a design persisted by one toolchain
  and reloaded by a *fresh* toolchain over a fresh store instance (the
  in-process stand-in for a new process) simulates bit-identically to a
  never-persisted toolchain, shadow-tag state included -- the lockstep
  pattern of tests/test_vector.py applied across the persistence
  boundary.
* **Durability** (fault injection) -- truncated, bit-flipped,
  version-bumped, and garbage entries are never served and never raise:
  the toolchain recomputes, the poisoned file is quarantined and then
  rewritten with a fresh, loadable entry.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hdl import Simulator
from repro.lattice import two_level
from repro.sapper import samples
from repro.sapper.analysis import analyze
from repro.sapper.parser import parse_program
from repro.sapper.crossval import encode_inputs
from repro.store import (
    MISS,
    STORE_MAGIC,
    STORE_VERSION,
    ArtifactStore,
    StoreError,
    UnstableKey,
    digest_key,
    persistable_key,
)
from repro.toolchain import Toolchain, source_key

from tests import strategies


class TestAddressing:
    def test_digest_is_stable_across_instances(self, tmp_path):
        key = ("compile", ("text", "ab" * 32), (("L", "H"), (("L", "H"),)), True, "x")
        a = ArtifactStore(tmp_path / "a")
        b = ArtifactStore(tmp_path / "b")
        assert digest_key(key) == digest_key(key)
        assert a.path_for(key).name == b.path_for(key).name
        assert a.path_for(key).parent.parent.name == "compile"

    def test_distinct_keys_get_distinct_paths(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.path_for(("a", 1)) != store.path_for(("a", 2))
        # canonical encoding is injective: these must not collide
        assert digest_key(("s", "ab")) != digest_key(("s", "a", "b"))
        assert digest_key(("i", 12)) != digest_key(("i", 1, 2))
        assert digest_key((True,)) != digest_key((1,))

    def test_persistable_key_accepts_structural_atoms(self):
        assert persistable_key(("compile", ("text", "d" * 64), 3, True, None))

    def test_persistable_key_refuses_identity_components(self):
        info = analyze(parse_program(samples.TDMA, "tdma"), two_level())
        key = ("compile", source_key(info), True)
        assert isinstance(key[1][1], UnstableKey)
        assert not persistable_key(key)
        with pytest.raises(TypeError):
            digest_key(key)

    def test_ast_sources_key_structurally(self):
        p1 = parse_program(samples.TDMA, "tdma")
        p2 = parse_program(samples.TDMA, "tdma")
        assert p1 is not p2
        assert source_key(p1) == source_key(p2)
        assert persistable_key(source_key(p1))


class TestStoreBasics:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = ("stage", "payload", 7)
        assert store.get(key, MISS) is MISS
        assert store.put(key, {"a": [1, 2, 3]})
        assert store.get(key) == {"a": [1, 2, 3]}
        assert store.counters["writes"] == 1
        assert store.counters["hits"] == 1
        assert store.counters["misses"] == 1

    def test_stored_none_is_distinguishable_from_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(("s", 1), None)
        assert store.get(("s", 1), MISS) is None
        assert store.get(("s", 2), MISS) is MISS

    def test_overwrite_replaces_atomically(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(("s", 1), "old")
        store.put(("s", 1), "new")
        assert store.get(("s", 1)) == "new"
        assert store.entry_count() == 1

    def test_unusable_root_raises_store_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        with pytest.raises(StoreError, match="not usable"):
            ArtifactStore(blocker / "store")

    def test_permission_denied_raises_store_error(self, tmp_path, monkeypatch):
        # root ignores mode bits, so simulate the EACCES probe failure
        def deny(*args, **kwargs):
            raise PermissionError(13, "Permission denied")

        monkeypatch.setattr("repro.store.tempfile.mkstemp", deny)
        with pytest.raises(StoreError, match="not usable"):
            ArtifactStore(tmp_path / "denied")

    def test_put_failure_degrades_gracefully(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)

        def fail(*args, **kwargs):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr("repro.store.tempfile.mkstemp", fail)
        assert store.put(("s", 1), "value") is False
        assert store.counters["write_errors"] == 1
        assert store.get(("s", 1), MISS) is MISS


def _fresh_toolchain(tmp_path) -> Toolchain:
    """A toolchain over a *new* store instance on the same directory --
    the in-process simulation of a separate process warm-starting."""
    return Toolchain(store=ArtifactStore(tmp_path / "store"))


def _lockstep(module_a, module_b, design, traces, cycles):
    """Two optimized modules must agree cycle-for-cycle on every output
    port, register (architectural and shadow-tag), and array."""
    sim_a = Simulator(module_a, optimize=False)
    sim_b = Simulator(module_b, optimize=False)
    lanes = len(traces)
    for cycle in range(cycles):
        for lane in range(lanes):
            inputs = encode_inputs(design, traces[lane][cycle % len(traces[lane])])
            assert sim_a.step(inputs) == sim_b.step(inputs), f"cycle {cycle} diverged"
    assert sim_a.regs == sim_b.regs
    assert sim_a.arrays == sim_b.arrays


class TestRoundTripProperty:
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(program=strategies.programs(), data=st.data())
    def test_persisted_design_simulates_bit_identically(self, program, data, tmp_path_factory):
        """Random design -> persist -> reload via a fresh store -> the
        reloaded module simulates bit-identically to a never-persisted
        compile of the same program."""
        tmp_path = tmp_path_factory.mktemp("roundtrip")
        lat = two_level()
        trace = data.draw(strategies.stimulus_traces(cycles=4), label="trace")

        writer = _fresh_toolchain(tmp_path)
        design_w = writer.compile(program, lat, name="rt")
        module_w = writer.optimize(design_w)
        assert writer.counter_snapshot().get("store_miss:compile") == 1

        reader = _fresh_toolchain(tmp_path)
        design_r = reader.compile(program, lat, name="rt")
        module_r = reader.optimize(design_r)
        counters = reader.counter_snapshot()
        assert counters.get("store_hit:compile") == 1, counters
        assert counters.get("store_hit:optimize") == 1, counters
        assert design_r is not design_w  # genuinely reloaded, not aliased

        never_persisted = Toolchain()
        module_n = never_persisted.optimize(never_persisted.compile(program, lat, name="rt"))

        _lockstep(module_r, module_w, design_r, [trace], cycles=4)
        _lockstep(module_r, module_n, design_r, [trace], cycles=4)

    def test_backend_artifacts_round_trip(self, tmp_path):
        writer = _fresh_toolchain(tmp_path)
        design = writer.compile(samples.TDMA, two_level(), name="tdma")
        rpt = writer.synthesize(design)
        text = writer.verilog(design)

        reader = _fresh_toolchain(tmp_path)
        design_r = reader.compile(samples.TDMA, two_level(), name="tdma")
        assert reader.synthesize(design_r).summary() == rpt.summary()
        assert reader.verilog(design_r) == text
        counters = reader.counter_snapshot()
        assert counters.get("store_hit:synth") == 1
        assert counters.get("store_hit:verilog") == 1

    def test_object_keyed_sources_stay_out_of_the_store(self, tmp_path):
        tc = _fresh_toolchain(tmp_path)
        info = analyze(parse_program(samples.TDMA, "tdma"), two_level())
        design = tc.compile(info, two_level(), name="tdma")
        assert design.reg_tag
        # the ProgramInfo source cannot cross a process boundary: the
        # compile stage must not have written anything for it
        assert not list((tmp_path / "store").glob("compile/**/*.art"))


def _populate(tmp_path):
    """Compile + optimize TDMA through a stored toolchain; return the
    store directory and the reference (never-persisted) module."""
    tc = _fresh_toolchain(tmp_path)
    design = tc.compile(samples.TDMA, two_level(), name="tdma")
    tc.optimize(design)
    reference = Toolchain()
    ref_module = reference.optimize(reference.compile(samples.TDMA, two_level(), name="tdma"))
    return tmp_path / "store", ref_module


def _entries(store_dir):
    files = sorted(store_dir.glob("*/*/*.art"))
    assert files, "expected persisted artifacts"
    return files


def _assert_recovers(tmp_path, corrupt_counter="corrupt"):
    """A fresh toolchain over the damaged store must recompute (never
    raise, never serve poison), quarantine the bad entries, and rewrite
    them so a third toolchain loads clean artifacts again."""
    store = ArtifactStore(tmp_path / "store")
    tc = Toolchain(store=store)
    design = tc.compile(samples.TDMA, two_level(), name="tdma")
    module = tc.optimize(design)
    counters = tc.counter_snapshot()
    assert counters.get("store_hit:compile") is None, "poisoned entry was served"
    assert store.counters[corrupt_counter] >= 1, store.counters

    # the rewritten entries serve a clean third process
    tc3 = _fresh_toolchain(tmp_path)
    design3 = tc3.compile(samples.TDMA, two_level(), name="tdma")
    module3 = tc3.optimize(design3)
    assert tc3.counter_snapshot().get("store_hit:compile") == 1
    return design, module, module3


class TestDurabilityFaultInjection:
    def test_truncated_entries_recompute(self, tmp_path):
        store_dir, ref = _populate(tmp_path)
        for path in _entries(store_dir):
            blob = path.read_bytes()
            path.write_bytes(blob[: len(blob) // 2])
        design, module, module3 = _assert_recovers(tmp_path)
        _lockstep(module, ref, design, [[]], cycles=0)  # construction sanity
        sim_a, sim_b = Simulator(module, optimize=False), Simulator(ref, optimize=False)
        for _ in range(16):
            assert sim_a.step({"hi_in": 3}) == sim_b.step({"hi_in": 3})

    def test_zero_length_entries_recompute(self, tmp_path):
        store_dir, _ = _populate(tmp_path)
        for path in _entries(store_dir):
            path.write_bytes(b"")
        _assert_recovers(tmp_path)

    def test_bit_flip_in_payload_recomputes(self, tmp_path):
        store_dir, ref = _populate(tmp_path)
        for path in _entries(store_dir):
            blob = bytearray(path.read_bytes())
            blob[len(blob) // 2] ^= 0x40  # flip one payload bit
            path.write_bytes(bytes(blob))
        design, module, _ = _assert_recovers(tmp_path)
        sim_a, sim_b = Simulator(module, optimize=False), Simulator(ref, optimize=False)
        for _ in range(16):
            assert sim_a.step({"hi_in": 3}) == sim_b.step({"hi_in": 3})

    def test_bit_flip_in_header_digest_recomputes(self, tmp_path):
        store_dir, _ = _populate(tmp_path)
        for path in _entries(store_dir):
            blob = bytearray(path.read_bytes())
            blob[8] ^= 0x01  # inside the stored SHA-256 field
            path.write_bytes(bytes(blob))
        _assert_recovers(tmp_path)

    def test_version_bump_is_stale_not_crash(self, tmp_path):
        store_dir, _ = _populate(tmp_path)
        import struct

        for path in _entries(store_dir):
            blob = bytearray(path.read_bytes())
            struct.pack_into(">H", blob, len(STORE_MAGIC), STORE_VERSION + 1)
            path.write_bytes(bytes(blob))
        _assert_recovers(tmp_path, corrupt_counter="stale")

    def test_garbage_magic_recomputes(self, tmp_path):
        store_dir, _ = _populate(tmp_path)
        for path in _entries(store_dir):
            path.write_bytes(b"GARBAGE-NOT-AN-ARTIFACT" * 100)
        _assert_recovers(tmp_path)

    def test_quarantine_leaves_postmortem_copy(self, tmp_path):
        store_dir, _ = _populate(tmp_path)
        paths = _entries(store_dir)
        for path in paths:
            path.write_bytes(b"broken")
        _assert_recovers(tmp_path)
        for path in paths:
            assert path.with_suffix(".corrupt").exists()
            assert path.exists()  # rewritten live entry alongside

    def test_server_survives_corrupt_store(self, tmp_path):
        """The serving layer on top of a damaged store answers requests
        normally (recompute path), never a traceback/teardown."""
        import asyncio

        store_dir, _ = _populate(tmp_path)
        for path in _entries(store_dir):
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))

        from repro.server import ReproServer

        async def run():
            server = ReproServer(toolchain=_fresh_toolchain(tmp_path), max_workers=2)
            resp = await server.handle_request(
                {"id": 1, "op": "simulate", "source": samples.TDMA,
                 "name": "tdma", "cycles": 8, "inputs": {"hi_in": 3}}
            )
            assert resp["ok"], resp
            assert resp["result"]["cycles"] == 8
            stats = await server.handle_request({"id": 2, "op": "stats"})
            assert stats["result"]["store"]["corrupt"] >= 1
            return resp

        asyncio.run(run())


class TestStoreHygiene:
    def test_quarantined_entries_not_counted_live(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(("s", 1), "v")
        path = next(iter(store.entries()))
        path.write_bytes(b"junk")
        assert store.get(("s", 1), MISS) is MISS
        assert store.entry_count() == 0
        assert os.path.exists(path.with_suffix(".corrupt"))

    def test_stats_snapshot(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(("s", 1), "v")
        store.get(("s", 1))
        store.get(("s", 2))
        stats = store.stats()
        assert stats["writes"] == 1 and stats["hits"] == 1
        assert stats["misses"] == 1 and stats["entries"] == 1


# ---------------------------------------------------------------------------
# Concurrent multi-process access (the fleet's operating regime: one
# store directory shared by a parent and N worker processes).


def _race_put(root, payload, barrier, rounds):
    store = ArtifactStore(root)
    barrier.wait()
    for _ in range(rounds):
        store.put(("race", "entry"), payload)


def _race_compile(root, q):
    try:
        tc = Toolchain(store=ArtifactStore(root))
        design = tc.compile(samples.TDMA, two_level(), name="tdma")
        tc.optimize(design)
        q.put(("ok", tc.counter_snapshot()))
    except Exception as exc:  # pragma: no cover - failure reporting
        q.put(("err", repr(exc)))


class TestConcurrentAccess:
    """Two processes racing on the same digest must never produce a
    torn read: the atomic temp-file + rename publish means a reader
    sees a complete entry from one writer or the other (or a miss),
    and the corrupt counter stays at zero."""

    def test_racing_writers_never_tear(self, tmp_path):
        import multiprocessing as mp

        root = str(tmp_path / "store")
        payload_a = {"who": "a", "blob": "A" * 65536}
        payload_b = {"who": "b", "blob": "B" * 65536}
        ctx = mp.get_context("fork")
        barrier = ctx.Barrier(3)
        writers = [
            ctx.Process(target=_race_put, args=(root, payload_a, barrier, 25)),
            ctx.Process(target=_race_put, args=(root, payload_b, barrier, 25)),
        ]
        for p in writers:
            p.start()
        reader = ArtifactStore(root)
        barrier.wait()
        seen = 0
        while any(p.is_alive() for p in writers) or seen == 0:
            value = reader.get(("race", "entry"), MISS)
            if value is not MISS:
                seen += 1
                # a torn read would mix writers or truncate the blob
                assert value in (payload_a, payload_b), value.get("who")
        for p in writers:
            p.join(timeout=30)
            assert p.exitcode == 0
        final = reader.get(("race", "entry"))
        assert final in (payload_a, payload_b)
        assert reader.counters["corrupt"] == 0
        assert seen >= 1

    def test_concurrent_toolchains_publish_same_design(self, tmp_path):
        """Two fresh processes compile + optimize the same design over
        one cold store at the same time.  Both must succeed (the race
        is benign: last atomic publish wins) and a third process then
        warm-starts purely from the store."""
        import multiprocessing as mp

        root = str(tmp_path / "store")
        ctx = mp.get_context("fork")
        q = ctx.Queue()
        procs = [
            ctx.Process(target=_race_compile, args=(root, q)) for _ in range(2)
        ]
        for p in procs:
            p.start()
        outcomes = [q.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=30)
        assert [kind for kind, _ in outcomes] == ["ok", "ok"], outcomes

        tc3 = Toolchain(store=ArtifactStore(root))
        design = tc3.compile(samples.TDMA, two_level(), name="tdma")
        tc3.optimize(design)
        counters = tc3.counter_snapshot()
        assert counters.get("store_hit:compile") == 1, counters
        assert counters.get("store_hit:optimize") == 1, counters
        assert tc3.store.counters["corrupt"] == 0

"""Tests for the GLIFT and Caisson baselines."""

from repro.caisson import caisson_transform
from repro.glift import GliftSimulator, glift_augment, glift_transform
from repro.hdl import HOp, Module, Simulator, synthesize
from repro.hdl.netlist import bit_blast
from repro.lattice import diamond, two_level


def and_module() -> Module:
    m = Module("and8")
    a = m.add_input("a", 8)
    b = m.add_input("b", 8)
    m.set_output("y", m.fresh(HOp("and", (a, b), 8), "y"))
    return m


def adder_module() -> Module:
    m = Module("add8")
    a = m.add_input("a", 8)
    b = m.add_input("b", 8)
    r = m.add_reg("acc", 8)
    s = m.fresh(HOp("add", (a, HOp("add", (b, r), 8)), 8), "s")
    m.set_reg_next("acc", s)
    m.set_output("y", s)
    return m


class TestGliftShadow:
    def test_untainted_stays_untainted(self):
        sim = GliftSimulator(bit_blast(and_module()))
        values, taints = sim.step_tainted({"a": 0xF0, "b": 0x3C}, {})
        assert values["y"] == 0x30
        assert taints["y"] == 0

    def test_taint_propagates_through_and(self):
        sim = GliftSimulator(bit_blast(and_module()))
        # bit 4: both inputs 1, a tainted -> output tainted
        values, taints = sim.step_tainted({"a": 0x10, "b": 0x10}, {"a": 0x10})
        assert values["y"] == 0x10
        assert taints["y"] & 0x10

    def test_precision_controlling_zero(self):
        # GLIFT's hallmark: a LOW 0 on one AND input makes the output
        # untainted even when the other input is tainted.
        sim = GliftSimulator(bit_blast(and_module()))
        _, taints = sim.step_tainted({"a": 0xFF, "b": 0x00}, {"a": 0xFF})
        assert taints["y"] == 0

    def test_taint_through_register(self):
        sim = GliftSimulator(bit_blast(adder_module()))
        _, taints = sim.step_tainted({"a": 1, "b": 0}, {"a": 0xFF})
        # taint appears at the output combinationally and is latched
        _, taints2 = sim.step_tainted({"a": 0, "b": 0}, {})
        assert taints2["y"] != 0  # the accumulator remembers the taint

    def test_shadow_netlist_is_larger(self):
        base = bit_blast(adder_module())
        shadowed = glift_transform(base)
        assert len(shadowed.gates) > 2 * len(base.gates)

    def test_soundness_against_exhaustive_flip(self):
        """Flip a tainted input bit; any output bit that changes must be
        tainted (tracking is conservative/complete)."""
        base = bit_blast(and_module())
        for taint_bit in range(8):
            mask = 1 << taint_bit
            for a in (0x00, 0x5A, 0xFF):
                for b in (0x0F, 0xA5, 0xFF):
                    y0 = a & b
                    y1 = (a ^ mask) & b
                    sim = GliftSimulator(base)
                    _, taints = sim.step_tainted({"a": a, "b": b}, {"a": mask})
                    changed = y0 ^ y1
                    assert changed & ~taints["y"] == 0

    def test_analytical_matches_shadow_structure(self):
        """The analytical per-gate augmentation must agree with the real
        shadow netlist's census on gate-for-gate designs."""
        base = bit_blast(and_module())
        shadowed = glift_transform(base)
        base_counts = base.counts()
        shadow_counts = shadowed.counts()
        # 8 AND gates -> 8*(3 and + 2 or) shadow cells
        assert shadow_counts["and"] - base_counts["and"] == 8 * 3
        assert shadow_counts.get("or", 0) == 8 * 2


class TestGliftAnalytical:
    def test_area_blowup_in_expected_range(self):
        rpt = synthesize(adder_module())
        aug = glift_augment(rpt)
        ratio = aug.area_um2 / rpt.area_um2
        assert 2.0 < ratio < 12.0  # the paper reports 7.6x on a full processor

    def test_delay_doubles(self):
        rpt = synthesize(adder_module())
        aug = glift_augment(rpt)
        assert aug.levels == 2 * rpt.levels + 2

    def test_memory_doubles(self):
        m = Module("mem")
        addr = m.add_input("addr", 16)
        m.add_array("ram", 32, 65536)
        m.set_output("q", m.fresh(HOp("read", (addr,), 32, array="ram"), "q"))
        rpt = synthesize(m)
        aug = glift_augment(rpt)
        assert aug.counts.sram_bits == 2 * rpt.counts.sram_bits


class TestCaisson:
    def test_two_level_duplicates_registers(self):
        base = adder_module()
        part = caisson_transform(base, two_level())
        assert "acc__p0" in part.regs and "acc__p1" in part.regs
        assert "ctx" in part.inputs

    def test_partition_isolation(self):
        base = adder_module()
        part = caisson_transform(base, two_level())
        sim = Simulator(part)
        sim.step({"ctx": 0, "a": 5, "b": 0})
        sim.step({"ctx": 1, "a": 7, "b": 0})
        # each partition accumulated only its own context's additions
        assert sim.regs["acc__p0"] == 5
        assert sim.regs["acc__p1"] == 7

    def test_output_follows_context(self):
        base = adder_module()
        part = caisson_transform(base, two_level())
        sim = Simulator(part)
        sim.step({"ctx": 0, "a": 5, "b": 0})
        out = sim.step({"ctx": 1, "a": 7, "b": 0})
        assert out["y"] == 7  # partition 1's view

    def test_matches_base_when_single_context(self):
        base = adder_module()
        part = caisson_transform(base, two_level())
        ref = Simulator(base)
        sim = Simulator(part)
        for a, b in [(1, 2), (3, 4), (250, 10)]:
            want = ref.step({"a": a, "b": b})["y"]
            got = sim.step({"ctx": 0, "a": a, "b": b})["y"]
            assert want == got

    def test_area_scales_with_levels(self):
        base = adder_module()
        cost_base = synthesize(base).area_um2
        cost_2 = synthesize(caisson_transform(base, two_level())).area_um2
        cost_4 = synthesize(caisson_transform(base, diamond())).area_um2
        assert cost_2 > 1.7 * cost_base
        assert cost_4 > 1.7 * cost_2

    def test_arrays_duplicated(self):
        m = Module("mem")
        addr = m.add_input("addr", 4)
        data = m.add_input("data", 8)
        we = m.add_input("we", 1)
        m.add_array("ram", 8, 16)
        m.write_array("ram", addr, data, we)
        m.set_output("q", m.fresh(HOp("read", (addr,), 8, array="ram"), "q"))
        part = caisson_transform(m, two_level())
        assert "ram__p0" in part.arrays and "ram__p1" in part.arrays
        sim = Simulator(part)
        sim.step({"ctx": 0, "addr": 2, "data": 11, "we": 1})
        sim.step({"ctx": 1, "addr": 2, "data": 22, "we": 1})
        assert sim.arrays["ram__p0"][2] == 11
        assert sim.arrays["ram__p1"][2] == 22

"""Unit and property tests for the HDL optimization pipeline.

Covers each pass in isolation (constant folding, mux/boolean
simplification, CSE, dead-signal elimination), the pipeline's
architectural-equivalence contract on sample designs, the memoization
of :func:`repro.hdl.passes.optimize`, and the GLIFT shadow-taint
invariance property: bit-blasting an optimized module must yield the
same value *and* taint behaviour as the raw module on the evaluation
designs.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.glift import GliftSimulator
from repro.hdl import HConst, HOp, HRef, Module, Simulator
from repro.hdl.netlist import bit_blast
from repro.hdl.passes import (
    CommonSubexpr,
    ConstantFold,
    DeadSignalElim,
    NarrowWidths,
    PassManager,
    SimplifyLogic,
    default_passes,
    optimize,
    run_pipeline,
)
from repro.lattice import two_level
from repro.sapper import samples
from repro.sapper.compiler import compile_program


def find(module: Module, name: str):
    for sig, expr in module.comb:
        if sig == name:
            return expr
    raise KeyError(name)


class TestConstantFold:
    def test_folds_constant_arith(self):
        m = Module("t")
        m.assign("a", HOp("add", (HConst(3, 8), HConst(4, 8)), 8))
        m.set_output("y", HRef("a", 8))
        out, changed = ConstantFold().run(m)
        assert changed and find(out, "a") == HConst(7, 8)

    def test_propagates_through_refs(self):
        m = Module("t")
        m.assign("a", HOp("add", (HConst(1, 8), HConst(1, 8)), 8))
        m.assign("b", HOp("mul", (HRef("a", 8), HConst(3, 8)), 8))
        m.set_output("y", HRef("b", 8))
        out, _ = ConstantFold().run(m)
        assert find(out, "b") == HConst(6, 8)

    def test_division_by_zero_convention(self):
        m = Module("t")
        m.assign("q", HOp("div", (HConst(9, 8), HConst(0, 8)), 8))
        m.assign("r", HOp("mod", (HConst(9, 8), HConst(0, 8)), 8))
        m.set_output("q", HRef("q", 8))
        m.set_output("r", HRef("r", 8))
        out, _ = ConstantFold().run(m)
        assert find(out, "q") == HConst(0xFF, 8)  # all-ones, like the sim
        assert find(out, "r") == HConst(9, 8)     # the dividend

    def test_constant_mux_guard(self):
        m = Module("t")
        x = m.add_input("x", 8)
        m.assign("a", HOp("mux", (HConst(1, 1), x, HConst(0, 8)), 8))
        m.set_output("y", HRef("a", 8))
        out, _ = ConstantFold().run(m)
        assert find(out, "a") == x

    def test_never_folds_array_reads(self):
        m = Module("t")
        m.add_array("ram", 8, 16)
        m.assign("a", HOp("read", (HConst(3, 4),), 8, array="ram"))
        m.set_output("y", HRef("a", 8))
        out, _ = ConstantFold().run(m)
        assert isinstance(find(out, "a"), HOp)


class TestSimplify:
    def simplify(self, m):
        out, _ = SimplifyLogic().run(m)
        return out

    def test_mux_same_arms(self):
        m = Module("t")
        c = m.add_input("c", 1)
        x = m.add_input("x", 8)
        m.assign("a", HOp("mux", (c, x, x), 8))
        m.set_output("y", HRef("a", 8))
        assert find(self.simplify(m), "a") == x

    def test_mux_bool_identity(self):
        m = Module("t")
        c = m.add_input("c", 1)
        m.assign("a", HOp("mux", (c, HConst(1, 1), HConst(0, 1)), 1))
        m.set_output("y", HRef("a", 1))
        assert find(self.simplify(m), "a") == c

    def test_and_with_zero_and_ones(self):
        m = Module("t")
        x = m.add_input("x", 8)
        m.assign("a", HOp("and", (x, HConst(0, 8)), 8))
        m.assign("b", HOp("and", (x, HConst(0xFF, 8)), 8))
        m.assign("c", HOp("or", (x, HConst(0, 8)), 8))
        for sig in "abc":
            m.set_output(sig, HRef(sig, 8))
        out = self.simplify(m)
        assert find(out, "a") == HConst(0, 8)
        assert find(out, "b") == x
        assert find(out, "c") == x

    def test_self_comparison(self):
        m = Module("t")
        x = m.add_input("x", 8)
        m.assign("a", HOp("eq", (x, x), 1))
        m.assign("b", HOp("ne", (x, x), 1))
        m.set_output("a", HRef("a", 1))
        m.set_output("b", HRef("b", 1))
        out = self.simplify(m)
        assert find(out, "a") == HConst(1, 1)
        assert find(out, "b") == HConst(0, 1)

    def test_add_zero_and_shift_zero(self):
        m = Module("t")
        x = m.add_input("x", 8)
        m.assign("a", HOp("add", (x, HConst(0, 8)), 8))
        m.assign("b", HOp("shl", (x, HConst(0, 3)), 8))
        m.set_output("a", HRef("a", 8))
        m.set_output("b", HRef("b", 8))
        out = self.simplify(m)
        assert find(out, "a") == x
        assert find(out, "b") == x

    def test_redundant_zext_slice(self):
        m = Module("t")
        x = m.add_input("x", 8)
        m.assign("a", HOp("zext", (x,), 8))
        m.assign("b", HOp("slice", (x,), 8, hi=7, lo=0))
        m.set_output("a", HRef("a", 8))
        m.set_output("b", HRef("b", 8))
        out = self.simplify(m)
        assert find(out, "a") == x
        assert find(out, "b") == x

    def test_same_condition_mux_nesting(self):
        m = Module("t")
        c = m.add_input("c", 1)
        x = m.add_input("x", 8)
        y = m.add_input("y", 8)
        z = m.add_input("z", 8)
        m.assign("inner", HOp("mux", (c, y, z), 8))
        m.assign("a", HOp("mux", (c, x, HRef("inner", 8)), 8))
        m.set_output("a", HRef("a", 8))
        out = self.simplify(m)
        got = find(out, "a")
        assert got == HOp("mux", (c, x, z), 8)


class TestCse:
    def test_dedupes_whole_assignments(self):
        m = Module("t")
        x = m.add_input("x", 8)
        y = m.add_input("y", 8)
        m.assign("a", HOp("add", (x, y), 8))
        m.assign("b", HOp("add", (x, y), 8))
        m.assign("c", HOp("mul", (HRef("a", 8), HRef("b", 8)), 8))
        m.set_output("y0", HRef("c", 8))
        out, changed = CommonSubexpr().run(m)
        assert changed
        assert find(out, "b") == HRef("a", 8)
        # uses of b are redirected to a
        assert find(out, "c") == HOp("mul", (HRef("a", 8), HRef("a", 8)), 8)

    def test_dedupes_nested_subtrees(self):
        m = Module("t")
        x = m.add_input("x", 8)
        y = m.add_input("y", 8)
        m.assign("a", HOp("add", (x, y), 8))
        m.assign("b", HOp("mul", (HOp("add", (x, y), 8), x), 8))
        m.set_output("y0", HRef("b", 8))
        m.set_output("y1", HRef("a", 8))
        out, _ = CommonSubexpr().run(m)
        assert find(out, "b") == HOp("mul", (HRef("a", 8), x), 8)


class TestNarrowWidths:
    """The SWAR-enabling narrowing pre-pass: oversized operators shrink
    to their significant-bit bound, shrinkable signals lose their zext
    padding outright, and everything stays bit-exact."""

    def padded_module(self):
        m = Module("t")
        x = m.add_input("x", 8)
        y = m.add_input("y", 8)
        m.assign("wx", HOp("zext", (x,), 64))
        m.assign("wy", HOp("zext", (y,), 64))
        m.assign("s", HOp("add", (HRef("wx", 64), HRef("wy", 64)), 64))
        m.assign("hit", HOp("eq", (HRef("s", 64), HConst(300, 64)), 1))
        m.set_output("hit", HRef("hit", 1))
        return m

    def test_narrows_padded_add_and_compare(self):
        out, changed = NarrowWidths().run(self.padded_module())
        assert changed
        widths = {n: e.width for n, e in out.comb}
        # the 64-bit add now computes at its 9-bit bound
        assert widths["s"] <= 33
        # idempotent: a second run is a no-op
        out2, changed2 = NarrowWidths().run(out)
        assert not changed2 and out2 is out

    def test_signal_shrinking_is_bit_exact(self):
        import random

        m = self.padded_module()
        opt = run_pipeline(m).module
        assert all(e.width <= 33 for _, e in opt.comb)
        raw, new = Simulator(m, optimize=False), Simulator(opt, optimize=False)
        rng = random.Random(5)
        for _ in range(256):
            inp = {"x": rng.randrange(256), "y": rng.randrange(256)}
            assert raw.step(inp) == new.step(inp)

    def test_protected_signals_keep_declared_widths(self):
        m = Module("t")
        x = m.add_input("x", 8)
        r = m.add_reg("r", 64)
        m.assign("wide", HOp("zext", (x,), 64))
        m.set_reg_next("r", HRef("wide", 64))
        m.set_output("o", HRef("wide", 64))
        out, _ = NarrowWidths().run(m)
        out.validate()
        assert dict(out.comb)["wide"].width == 64

    def test_leaves_genuinely_wide_values_alone(self):
        m = Module("t")
        x = m.add_input("x", 40)
        y = m.add_input("y", 40)
        m.assign("s", HOp("add", (x, y), 40))  # bound 41 > limit
        m.set_output("o", HRef("s", 40))
        out, changed = NarrowWidths().run(m)
        assert not changed and out is m

    def test_width_sensitive_consumers_get_rewrapped(self):
        import random

        m = Module("t")
        x = m.add_input("x", 8)
        m.assign("w", HOp("zext", (x,), 64))
        # sext reads the declared argument width: must stay wrapped
        m.assign("sx", HOp("sext", (HOp("slice", (HRef("w", 64),), 8, hi=7, lo=0),), 16))
        m.assign("out", HOp("add", (HRef("sx", 16), HConst(1, 16)), 16))
        m.set_output("o", HRef("out", 16))
        opt = run_pipeline(m).module
        raw, new = Simulator(m, optimize=False), Simulator(opt, optimize=False)
        rng = random.Random(9)
        for _ in range(256):
            inp = {"x": rng.randrange(256)}
            assert raw.step(inp) == new.step(inp)


class TestDce:
    def test_drops_dead_keeps_live(self):
        m = Module("t")
        x = m.add_input("x", 8)
        m.assign("live", HOp("add", (x, HConst(1, 8)), 8))
        m.assign("dead", HOp("mul", (x, HConst(7, 8)), 8))
        m.set_output("y", HRef("live", 8))
        out, changed = DeadSignalElim().run(m)
        assert changed
        names = [n for n, _ in out.comb]
        assert names == ["live"]

    def test_keeps_register_feeders_and_arch_state(self):
        m = Module("t")
        r = m.add_reg("r", 8)
        m.assign("nxt", HOp("add", (r, HConst(1, 8)), 8))
        m.set_reg_next("r", HRef("nxt", 8))
        m.add_array("ram", 8, 4)
        out, _ = DeadSignalElim().run(m)
        assert "r" in out.regs and "ram" in out.arrays
        assert [n for n, _ in out.comb] == ["nxt"]

    def test_drops_never_firing_write_port(self):
        m = Module("t")
        x = m.add_input("x", 8)
        m.add_array("ram", 8, 4)
        m.write_array("ram", HConst(0, 2), x, HConst(0, 1))
        m.write_array("ram", HConst(1, 2), x, HConst(1, 1))
        out, changed = DeadSignalElim().run(m)
        assert changed and len(out.array_writes) == 1
        assert out.array_writes[0].enable == HConst(1, 1)

    def test_retargets_alias_chains(self):
        m = Module("t")
        x = m.add_input("x", 8)
        m.assign("a", HOp("add", (x, HConst(2, 8)), 8))
        m.assign("b", HRef("a", 8))
        m.assign("c", HRef("b", 8))
        m.set_output("y", HRef("c", 8))
        out, _ = DeadSignalElim().run(m)
        assert out.outputs["y"] == "a"
        assert [n for n, _ in out.comb] == ["a"]


class TestPipeline:
    SAMPLE_SOURCES = [samples.ADDER_CHECK, samples.ADDER_TRACK, samples.TDMA]

    @pytest.mark.parametrize("secure", [True, False])
    @pytest.mark.parametrize("idx", range(len(SAMPLE_SOURCES)))
    def test_architectural_equivalence(self, idx, secure):
        lat = two_level()
        design = compile_program(self.SAMPLE_SOURCES[idx], lat, secure=secure, name="p")
        raw = Simulator(design.module, optimize=False)
        opt = Simulator(design.module)
        inputs = {name: 0 for name in design.module.inputs}
        for cycle in range(64):
            for i, name in enumerate(inputs):
                inputs[name] = (cycle * 37 + i * 11) & 0xFF
            assert raw.step(inputs) == opt.step(inputs), cycle
            assert raw.regs == opt.regs, cycle
            assert raw.arrays == opt.arrays, cycle

    def test_pipeline_shrinks_the_tdma_design(self):
        lat = two_level()
        design = compile_program(samples.TDMA, lat, name="tdma")
        result = run_pipeline(design.module)
        assert len(result.module.comb) < len(design.module.comb)
        assert result.signals_removed > 0
        assert {s.name for s in result.stats} == {
            "constfold", "narrow", "simplify", "cse", "dce"
        }

    def test_optimize_is_memoized_and_idempotent(self):
        lat = two_level()
        design = compile_program(samples.TDMA, lat, name="tdma")
        a = optimize(design.module)
        b = optimize(design.module)
        assert a is b
        assert optimize(a) is a  # already-optimized modules pass through

    def test_levels(self):
        assert default_passes(0) == []
        assert len(default_passes(1)) == 2
        assert len(default_passes(2)) == 5

    def test_validates_output(self):
        lat = two_level()
        design = compile_program(samples.ADDER_CHECK, lat, name="a")
        out = PassManager(default_passes()).run(design.module).module
        out.validate()  # must not raise


class TestGliftInvariance:
    """Shadow taint tracking must not be perturbed by optimization on
    the evaluation designs: bit-blasting the optimized module yields the
    same per-port values *and* taints as the raw module, cycle by cycle.
    """

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 255), st.integers(0, 255), st.integers(0, 255), st.integers(0, 255)
            ),
            min_size=1,
            max_size=8,
        ),
        st.sampled_from(["ADDER_TRACK", "ADDER_CHECK"]),
    )
    def test_shadow_taint_unchanged_by_optimization(self, trace, sample_name):
        lat = two_level()
        src = getattr(samples, sample_name)
        design = compile_program(src, lat, secure=False, name="g")
        raw = GliftSimulator(bit_blast(design.module))
        opt = GliftSimulator(bit_blast(optimize(design.module)))
        ports = list(design.module.inputs)
        for vb, vc, tb, tc in trace:
            values = dict(zip(ports, (vb, vc)))
            taints = dict(zip(ports, (tb, tc)))
            v1, t1 = raw.step_tainted(values, taints)
            v2, t2 = opt.step_tainted(values, taints)
            assert v1 == v2
            assert t1 == t2

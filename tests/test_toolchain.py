"""Tests for the Toolchain facade and the ``python -m repro`` CLI."""

import gc
import weakref
from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.hdl.synth import CostReport
from repro.lattice import diamond, two_level
from repro.sapper import samples
from repro.toolchain import Toolchain, get_toolchain, lattice_key, set_toolchain


class TestToolchain:
    def test_compile_is_cached_by_key(self):
        tc = Toolchain()
        lat = two_level()
        d1 = tc.compile(samples.TDMA, lat, name="tdma")
        d2 = tc.compile(samples.TDMA, lat, name="tdma")
        assert d1 is d2

    def test_distinct_configs_do_not_collide(self):
        tc = Toolchain()
        lat = two_level()
        secure = tc.compile(samples.TDMA, lat, name="tdma")
        base = tc.compile(samples.TDMA, lat, secure=False, name="tdma")
        other = tc.compile(samples.TDMA, diamond(), name="tdma")
        assert secure is not base and secure is not other
        assert not base.reg_tag          # insecure: tags stripped
        assert secure.reg_tag

    def test_backends_share_one_optimized_module(self):
        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tdma")
        opt = tc.optimize(design)
        sim = tc.simulator(design)
        assert sim.module is opt
        assert tc.optimize(design) is opt

    def test_simulators_get_fresh_state(self):
        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tdma")
        s1 = tc.simulator(design)
        s1.run(10, {"hi_in": 3})
        s2 = tc.simulator(design)
        assert s2.cycles == 0
        assert s2.regs == {r.name: r.init for r in s2.module.regs.values()}

    def test_synth_and_verilog_artifacts_cached(self):
        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tdma")
        rpt = tc.synthesize(design)
        assert isinstance(rpt, CostReport)
        assert tc.synthesize(design) is rpt
        text = tc.verilog(design)
        assert "module tdma(" in text
        assert tc.verilog(design) is text

    def test_cache_info_and_clear(self):
        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tdma")
        tc.synthesize(design)
        info = tc.cache_info()
        assert info.get("compile") == 1 and info.get("synth") == 1
        tc.clear_cache()
        assert tc.cache_info() == {}

    def test_lattice_key_is_structural(self):
        assert lattice_key(two_level()) == lattice_key(two_level())
        assert lattice_key(two_level()) != lattice_key(diamond())

    def test_default_toolchain_is_shared_and_replaceable(self):
        first = get_toolchain()
        assert get_toolchain() is first
        fresh = Toolchain()
        set_toolchain(fresh)
        try:
            assert get_toolchain() is fresh
        finally:
            set_toolchain(first)

    def test_processor_build_path_reuses_design(self):
        from repro.proc.machine import SapperMachine, compile_processor

        design = compile_processor(two_level(), secure=True)
        assert compile_processor(two_level(), secure=True) is design
        machine = SapperMachine()
        assert machine.design is design


class TestCacheLRU:
    """The generic keyed cache behind every stage, pinned against an
    executable model: an OrderedDict with move-to-end on hit, append on
    miss, and front eviction past ``max_entries``."""

    @settings(max_examples=200, deadline=None)
    @given(
        max_entries=st.integers(min_value=1, max_value=6),
        accesses=st.lists(st.integers(min_value=0, max_value=9), max_size=60),
    )
    def test_cached_matches_lru_model(self, max_entries, accesses):
        tc = Toolchain(max_entries=max_entries)
        model: OrderedDict = OrderedDict()
        produced = 0
        model_produced = 0

        for n in accesses:
            key = ("stage", n)

            def produce(n=n):
                nonlocal produced
                produced += 1
                return ("artifact", n)

            value = tc.cached(key, produce)
            assert value == ("artifact", n)
            if key in model:
                model.move_to_end(key)
            else:
                model_produced += 1
                model[key] = ("artifact", n)
                while len(model) > max_entries:
                    model.popitem(last=False)

            # the real cache tracks the model exactly: same keys, same
            # recency order (eviction order), same bound
            assert list(tc._cache) == list(model)
            assert len(tc._cache) <= max_entries

        assert produced == model_produced
        counters = tc.counter_snapshot()
        assert counters.get("miss:stage", 0) == model_produced
        assert counters.get("hit:stage", 0) == len(accesses) - model_produced

    def test_hits_return_the_identical_object(self):
        tc = Toolchain(max_entries=4)
        first = tc.cached(("s", 1), lambda: object())
        again = tc.cached(("s", 1), lambda: object())
        assert again is first

    def test_reinsertion_after_eviction_reproduces(self):
        tc = Toolchain(max_entries=2)
        calls = []
        for n in (1, 2, 3, 1):  # 1 evicted by 3, then re-produced
            tc.cached(("s", n), lambda n=n: calls.append(n))
        assert calls == [1, 2, 3, 1]

    def test_pin_lives_with_the_entry_and_dies_on_eviction(self):
        class Pinned:
            pass

        tc = Toolchain(max_entries=2)
        pin = Pinned()
        ref = weakref.ref(pin)
        tc.cached(("s", 0), lambda: "v", pin=pin)
        del pin
        gc.collect()
        assert ref() is not None, "pin must stay alive while its entry is cached"

        tc.cached(("s", 1), lambda: "v")
        tc.cached(("s", 2), lambda: "v")  # evicts ("s", 0)
        gc.collect()
        assert ref() is None, "eviction must drop the pin"

    def test_clear_cache_drops_pins(self):
        class Pinned:
            pass

        tc = Toolchain(max_entries=4)
        pin = Pinned()
        ref = weakref.ref(pin)
        tc.cached(("s", 0), lambda: "v", pin=pin)
        del pin
        tc.clear_cache()
        gc.collect()
        assert ref() is None

    def test_max_entries_bounds_real_compiles(self):
        tc = Toolchain(max_entries=3)
        lat = two_level()
        designs = [
            tc.compile(f"// v{i}\n" + samples.TDMA, lat, name="tdma")
            for i in range(5)
        ]
        assert len(tc._cache) <= 3
        # the newest design is still cached (identical object on re-compile)
        assert tc.compile("// v4\n" + samples.TDMA, lat, name="tdma") is designs[4]

    def test_env_store_configures_default_toolchain(self, tmp_path, monkeypatch, capsys):
        previous = get_toolchain()
        try:
            monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
            set_toolchain(None)
            assert get_toolchain().store is not None
            # an unusable directory degrades with a warning, not a crash
            blocker = tmp_path / "file"
            blocker.write_text("in the way")
            monkeypatch.setenv("REPRO_STORE", str(blocker / "store"))
            set_toolchain(None)
            assert get_toolchain().store is None
            assert "REPRO_STORE disabled" in capsys.readouterr().err
        finally:
            set_toolchain(previous)


class TestCli:
    @pytest.fixture()
    def tdma_file(self, tmp_path):
        path = tmp_path / "tdma.sapper"
        path.write_text(samples.TDMA)
        return str(path)

    def test_compile_emits_verilog(self, tdma_file, capsys):
        assert main(["compile", tdma_file]) == 0
        out = capsys.readouterr().out
        assert "module tdma(" in out and out.strip().endswith("endmodule")

    def test_simulate_reports_summary(self, tdma_file, capsys):
        assert main(["simulate", tdma_file, "-n", "8", "-i", "hi_in=3", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "8 cycles" in out and "violation" in out

    HALTING = """
    reg[7:0] cnt; input[7:0] k; output halted : L; output[7:0] v : L;
    state s : L = { cnt := cnt + k; halted := cnt > 9; v := cnt; goto s; }
    """

    def test_simulate_compact_stops_when_all_lanes_halt(self, tmp_path, capsys):
        path = tmp_path / "halting.sapper"
        path.write_text(self.HALTING)
        args = ["simulate", str(path), "-n", "50", "--lanes", "4",
                "-i", "k=3", "--quiet"]
        assert main(args) == 0
        out = capsys.readouterr().out
        # every lane halts at cycle 4; --compact (default) stops there
        assert "# 4 cycles x 4 lanes" in out and "16 active lane-cycles" in out
        assert main([*args, "--no-compact"]) == 0
        out = capsys.readouterr().out
        assert "# 50 cycles x 4 lanes" in out and "200 active lane-cycles" in out

    def test_simulate_per_lane_inputs_compact_partial_retirement(
        self, tmp_path, capsys
    ):
        """Per-lane stimulus (PORT=V0,V1,...) skews the halt times, so
        lanes retire one by one: the partial-compaction branch runs and
        the summary still reports by original lane id."""
        path = tmp_path / "halting.sapper"
        path.write_text(self.HALTING)
        assert main(["simulate", str(path), "-n", "50", "--lanes", "4",
                     "-i", "k=1,2,5,20", "--quiet"]) == 0
        out = capsys.readouterr().out
        # halts at cycles 10/5/2/1: three partial compactions, then the
        # last lane stops the run at cycle 10
        assert "# 10 cycles x 4 lanes" in out
        assert "18 active lane-cycles" in out and "final occupancy 1/4" in out
        assert "# lane 3" in out and "'v': 20" in out  # original-lane mapping

    def test_simulate_per_lane_inputs_need_lanes(self, tmp_path):
        path = tmp_path / "halting.sapper"
        path.write_text(self.HALTING)
        with pytest.raises(SystemExit, match="batched engine"):
            main(["simulate", str(path), "-n", "5", "-i", "k=1,2", "--quiet"])
        with pytest.raises(SystemExit, match="drives 2 lanes"):
            main(["simulate", str(path), "-n", "5", "--lanes", "3",
                  "-i", "k=1,2", "--quiet"])

    def test_synth_reports_census(self, tdma_file, capsys):
        assert main(["synth", tdma_file]) == 0
        out = capsys.readouterr().out
        assert "gates" in out and "area_um2" in out

    def test_stats_reports_pass_effects(self, tdma_file, capsys):
        assert main(["stats", tdma_file]) == 0
        out = capsys.readouterr().out
        assert "constfold" in out and "removed" in out

    def test_insecure_and_diamond_options(self, tdma_file, capsys):
        assert main(["compile", tdma_file, "--insecure", "--lattice", "diamond"]) == 0
        out = capsys.readouterr().out
        assert "violation" not in out  # Base design has no checks

    def test_missing_file_is_reported(self, capsys):
        assert main(["compile", "/nonexistent/x.sapper"]) == 2
        assert "error" in capsys.readouterr().err

    def test_syntax_error_is_reported_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.sapper"
        bad.write_text("reg[7:0 broken x;\nstate s : L = { goto s; }")
        assert main(["compile", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "error" in err and "line 1" in err

    def test_module_entry_point(self, tdma_file):
        # `python -m repro` must resolve to the CLI
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "synth", tdma_file],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parent.parent),
        )
        assert proc.returncode == 0, proc.stderr
        assert "gates" in proc.stdout

"""Tests for the Toolchain facade and the ``python -m repro`` CLI."""

import pytest

from repro.cli import main
from repro.hdl.synth import CostReport
from repro.lattice import diamond, two_level
from repro.sapper import samples
from repro.toolchain import Toolchain, get_toolchain, lattice_key, set_toolchain


class TestToolchain:
    def test_compile_is_cached_by_key(self):
        tc = Toolchain()
        lat = two_level()
        d1 = tc.compile(samples.TDMA, lat, name="tdma")
        d2 = tc.compile(samples.TDMA, lat, name="tdma")
        assert d1 is d2

    def test_distinct_configs_do_not_collide(self):
        tc = Toolchain()
        lat = two_level()
        secure = tc.compile(samples.TDMA, lat, name="tdma")
        base = tc.compile(samples.TDMA, lat, secure=False, name="tdma")
        other = tc.compile(samples.TDMA, diamond(), name="tdma")
        assert secure is not base and secure is not other
        assert not base.reg_tag          # insecure: tags stripped
        assert secure.reg_tag

    def test_backends_share_one_optimized_module(self):
        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tdma")
        opt = tc.optimize(design)
        sim = tc.simulator(design)
        assert sim.module is opt
        assert tc.optimize(design) is opt

    def test_simulators_get_fresh_state(self):
        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tdma")
        s1 = tc.simulator(design)
        s1.run(10, {"hi_in": 3})
        s2 = tc.simulator(design)
        assert s2.cycles == 0
        assert s2.regs == {r.name: r.init for r in s2.module.regs.values()}

    def test_synth_and_verilog_artifacts_cached(self):
        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tdma")
        rpt = tc.synthesize(design)
        assert isinstance(rpt, CostReport)
        assert tc.synthesize(design) is rpt
        text = tc.verilog(design)
        assert "module tdma(" in text
        assert tc.verilog(design) is text

    def test_cache_info_and_clear(self):
        tc = Toolchain()
        design = tc.compile(samples.TDMA, two_level(), name="tdma")
        tc.synthesize(design)
        info = tc.cache_info()
        assert info.get("compile") == 1 and info.get("synth") == 1
        tc.clear_cache()
        assert tc.cache_info() == {}

    def test_lattice_key_is_structural(self):
        assert lattice_key(two_level()) == lattice_key(two_level())
        assert lattice_key(two_level()) != lattice_key(diamond())

    def test_default_toolchain_is_shared_and_replaceable(self):
        first = get_toolchain()
        assert get_toolchain() is first
        fresh = Toolchain()
        set_toolchain(fresh)
        try:
            assert get_toolchain() is fresh
        finally:
            set_toolchain(first)

    def test_processor_build_path_reuses_design(self):
        from repro.proc.machine import SapperMachine, compile_processor

        design = compile_processor(two_level(), secure=True)
        assert compile_processor(two_level(), secure=True) is design
        machine = SapperMachine()
        assert machine.design is design


class TestCli:
    @pytest.fixture()
    def tdma_file(self, tmp_path):
        path = tmp_path / "tdma.sapper"
        path.write_text(samples.TDMA)
        return str(path)

    def test_compile_emits_verilog(self, tdma_file, capsys):
        assert main(["compile", tdma_file]) == 0
        out = capsys.readouterr().out
        assert "module tdma(" in out and out.strip().endswith("endmodule")

    def test_simulate_reports_summary(self, tdma_file, capsys):
        assert main(["simulate", tdma_file, "-n", "8", "-i", "hi_in=3", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "8 cycles" in out and "violation" in out

    HALTING = """
    reg[7:0] cnt; input[7:0] k; output halted : L; output[7:0] v : L;
    state s : L = { cnt := cnt + k; halted := cnt > 9; v := cnt; goto s; }
    """

    def test_simulate_compact_stops_when_all_lanes_halt(self, tmp_path, capsys):
        path = tmp_path / "halting.sapper"
        path.write_text(self.HALTING)
        args = ["simulate", str(path), "-n", "50", "--lanes", "4",
                "-i", "k=3", "--quiet"]
        assert main(args) == 0
        out = capsys.readouterr().out
        # every lane halts at cycle 4; --compact (default) stops there
        assert "# 4 cycles x 4 lanes" in out and "16 active lane-cycles" in out
        assert main([*args, "--no-compact"]) == 0
        out = capsys.readouterr().out
        assert "# 50 cycles x 4 lanes" in out and "200 active lane-cycles" in out

    def test_simulate_per_lane_inputs_compact_partial_retirement(
        self, tmp_path, capsys
    ):
        """Per-lane stimulus (PORT=V0,V1,...) skews the halt times, so
        lanes retire one by one: the partial-compaction branch runs and
        the summary still reports by original lane id."""
        path = tmp_path / "halting.sapper"
        path.write_text(self.HALTING)
        assert main(["simulate", str(path), "-n", "50", "--lanes", "4",
                     "-i", "k=1,2,5,20", "--quiet"]) == 0
        out = capsys.readouterr().out
        # halts at cycles 10/5/2/1: three partial compactions, then the
        # last lane stops the run at cycle 10
        assert "# 10 cycles x 4 lanes" in out
        assert "18 active lane-cycles" in out and "final occupancy 1/4" in out
        assert "# lane 3" in out and "'v': 20" in out  # original-lane mapping

    def test_simulate_per_lane_inputs_need_lanes(self, tmp_path):
        path = tmp_path / "halting.sapper"
        path.write_text(self.HALTING)
        with pytest.raises(SystemExit, match="batched engine"):
            main(["simulate", str(path), "-n", "5", "-i", "k=1,2", "--quiet"])
        with pytest.raises(SystemExit, match="drives 2 lanes"):
            main(["simulate", str(path), "-n", "5", "--lanes", "3",
                  "-i", "k=1,2", "--quiet"])

    def test_synth_reports_census(self, tdma_file, capsys):
        assert main(["synth", tdma_file]) == 0
        out = capsys.readouterr().out
        assert "gates" in out and "area_um2" in out

    def test_stats_reports_pass_effects(self, tdma_file, capsys):
        assert main(["stats", tdma_file]) == 0
        out = capsys.readouterr().out
        assert "constfold" in out and "removed" in out

    def test_insecure_and_diamond_options(self, tdma_file, capsys):
        assert main(["compile", tdma_file, "--insecure", "--lattice", "diamond"]) == 0
        out = capsys.readouterr().out
        assert "violation" not in out  # Base design has no checks

    def test_missing_file_is_reported(self, capsys):
        assert main(["compile", "/nonexistent/x.sapper"]) == 2
        assert "error" in capsys.readouterr().err

    def test_syntax_error_is_reported_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.sapper"
        bad.write_text("reg[7:0 broken x;\nstate s : L = { goto s; }")
        assert main(["compile", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "error" in err and "line 1" in err

    def test_module_entry_point(self, tdma_file):
        # `python -m repro` must resolve to the CLI
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "synth", tdma_file],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__).resolve().parent.parent),
        )
        assert proc.returncode == 0, proc.stderr
        assert "gates" in proc.stdout

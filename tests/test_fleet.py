"""The multiprocess fleet scheduler, pinned by differential testing.

Three contracts are pinned here:

* **Differential equivalence** (Hypothesis) -- random program suites x
  random per-lane cycle budgets (the budgets force retirements at
  different cycles, so lanes are reset and refilled mid-wave) produce
  results bit-identical to single-process execution: outputs, cycle
  counts, violation counts, halt flags, *and* the final architectural
  state (every register including shadow tags, every array) of each
  lane.  Including the 1-workload and fewer-workloads-than-shards edge
  cases.
* **Fault injection** -- a worker SIGKILLed mid-suite (deterministic
  via the ``_self_destruct`` hook) triggers crash detection and bounded
  requeue, and the suite still completes with correct results; with
  requeues exhausted the lost tasks finish in-process; a corrupted
  artifact store under the fleet is quarantined and recomputed, never
  served; an unusable start method degrades to in-process execution.
  Every fault test runs under a hard alarm so a scheduling hang fails
  fast instead of wedging the suite.
* **Budget validation** -- a per-lane ``max_cycles`` sequence that is
  shorter or longer than the suite raises ``ValueError`` naming the
  mispaired lane indices, on every path (scalar, batched, fleet).

The fleets are module-scoped and persist across Hypothesis examples:
each worker pays its store warm-start and batched codegen once.
"""

import contextlib
import os
import signal

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fleet import FleetRunner, FleetWorkloadResult
from repro.mips.assembler import assemble
from repro.proc.machine import (
    BatchedMachines,
    SapperMachine,
    check_budgets,
    compile_processor,
    run_workloads,
)
from repro.store import ArtifactStore
from repro.toolchain import get_toolchain


@contextlib.contextmanager
def deadline(seconds: int):
    """Hard wall-clock guard: a hang in the fleet driver loop fails the
    test instead of wedging the whole suite."""

    def fire(signum, frame):
        raise TimeoutError(f"fleet test exceeded {seconds}s deadline")

    old = signal.signal(signal.SIGALRM, fire)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


def program(k: int, n: int) -> str:
    """Spin *n* loop iterations, emit *k* on the output port, halt."""
    return f"""
.org 0x400
    li   $s0, {n}
loop:
    addiu $s0, $s0, -1
    bgt  $s0, $zero, loop
    li   $t9, 0x40000000
    li   $t1, {k}
    sw   $t1, 0($t9)
    li   $t9, 0x40000004
    sw   $zero, 0($t9)
"""


def executables(specs):
    return [assemble(program(k, n)) for k, n in specs]


# ------------------------------------------------------------ fixtures


@pytest.fixture(scope="module")
def module():
    """The optimized processor module (register widths, array defaults)
    used to normalize state snapshots for comparison."""
    tc = get_toolchain()
    return tc.optimize(compile_processor())


@pytest.fixture(scope="module")
def fleet_store(tmp_path_factory):
    return ArtifactStore(tmp_path_factory.mktemp("fleet-store"))


@pytest.fixture(scope="module")
def fleet2(fleet_store):
    """Persistent 2-shard fleet with deliberately narrow lanes (wave
    width 3) so suites larger than 6 exercise lane refill mid-wave."""
    with FleetRunner(
        shards=2, lanes_per_worker=3, store=fleet_store, capture_state=True
    ) as fleet:
        yield fleet


@pytest.fixture(scope="module")
def fleet3(fleet_store):
    with FleetRunner(
        shards=3, lanes_per_worker=2, store=fleet_store, capture_state=True
    ) as fleet:
        yield fleet


# ------------------------------------------------- state normalization


def norm_regs(regs, module):
    return {name: regs[name] & ((1 << reg.width) - 1) for name, reg in module.regs.items()}


def norm_arrays(arrays, module):
    """Sparse array snapshots with default-valued entries dropped --
    the canonical form both the scalar simulator state and the fleet's
    captured lane state reduce to."""
    out = {}
    for name, arr in module.arrays.items():
        mask = (1 << arr.width) - 1
        out[name] = {
            i: v & mask
            for i, v in arrays.get(name, {}).items()
            if (v & mask) != arr.default
        }
    return out


def scalar_reference(specs, budgets):
    """One scalar machine per workload: the golden single-process run,
    final state included."""
    ref = []
    for (k, n), budget in zip(specs, budgets):
        machine = SapperMachine()
        machine.load(assemble(program(k, n)))
        res = machine.run(budget)
        ref.append((res, dict(machine.sim.regs), {
            name: dict(vals) for name, vals in machine.sim.arrays.items()
        }))
    return ref


def assert_matches_reference(results, specs, budgets, module):
    ref = scalar_reference(specs, budgets)
    assert len(results) == len(ref)
    for lane, (got, (want, want_regs, want_arrays)) in enumerate(zip(results, ref)):
        assert isinstance(got, FleetWorkloadResult), lane
        assert got.outputs == want.outputs, f"lane {lane} outputs"
        assert got.cycles == want.cycles, f"lane {lane} cycles"
        assert got.violations == want.violations, f"lane {lane} violations"
        assert got.halted == want.halted, f"lane {lane} halted"
        assert norm_regs(got.regs, module) == norm_regs(want_regs, module), f"lane {lane} regs"
        assert norm_arrays(got.arrays, module) == norm_arrays(want_arrays, module), (
            f"lane {lane} arrays"
        )


# ------------------------------------------------------- differential


@st.composite
def suites(draw, max_programs=8):
    """(specs, budgets): random programs x a retirement schedule.

    The three budget bands pin the three lane lifecycles: 0 never
    occupies a lane, the middle band always exhausts before the halt
    store fires (the processor spends ~290 boot cycles before user
    code), and the top band comfortably halts -- mixing them inside one
    suite forces staggered retirement and lane refill.
    """
    specs = draw(
        st.lists(
            st.tuples(st.integers(0, 255), st.integers(0, 10)),
            min_size=1,
            max_size=max_programs,
        )
    )
    budget = st.one_of(st.just(0), st.integers(1, 250), st.integers(400, 700))
    budgets = [draw(budget) for _ in specs]
    return specs, budgets


class TestDifferential:
    @settings(
        max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(suite=suites())
    def test_fleet_matches_scalar_bit_for_bit(self, suite, fleet2, module):
        specs, budgets = suite
        results = fleet2.run(executables(specs), max_cycles=budgets)
        assert_matches_reference(results, specs, budgets, module)

    @settings(
        max_examples=3, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(suite=suites(max_programs=2))
    def test_fewer_workloads_than_shards(self, suite, fleet3, module):
        specs, budgets = suite
        results = fleet3.run(executables(specs), max_cycles=budgets)
        assert_matches_reference(results, specs, budgets, module)

    def test_single_workload(self, fleet3, module):
        specs, budgets = [(42, 3)], [600]
        results = fleet3.run(executables(specs), max_cycles=budgets)
        assert_matches_reference(results, specs, budgets, module)
        assert results[0].outputs == [42] and results[0].halted

    def test_empty_suite(self, fleet2):
        assert fleet2.run([], max_cycles=100) == []

    def test_zero_budget_is_initial_state(self, fleet2, module):
        specs, budgets = [(9, 2)], [0]
        results = fleet2.run(executables(specs), max_cycles=budgets)
        assert_matches_reference(results, specs, budgets, module)
        assert results[0].cycles == 0 and not results[0].halted

    def test_matches_batched_single_process(self, fleet2):
        """Against run_workloads' batched path (>= MIN_LANES lanes)."""
        specs = [(i, i % 7) for i in range(20)]
        exes = executables(specs)
        single = run_workloads(exes, max_cycles=600)
        results = fleet2.run(exes, max_cycles=600)
        assert [(r.outputs, r.cycles, r.violations, r.halted) for r in results] == [
            (r.outputs, r.cycles, r.violations, r.halted) for r in single
        ]

    def test_run_workloads_shards_entry_point(self, fleet_store):
        """run_workloads(shards=N) is the one-shot convenience wrapper
        around the fleet and matches the in-process run exactly."""
        specs = [(i * 3, i % 5) for i in range(8)]
        exes = executables(specs)
        single = run_workloads(exes, max_cycles=600)
        sharded = run_workloads(exes, max_cycles=600, shards=2, store=fleet_store)
        assert [(r.outputs, r.cycles, r.halted) for r in sharded] == [
            (r.outputs, r.cycles, r.halted) for r in single
        ]


class TestSchedulingStats:
    def test_warm_start_and_occupancy_visible(self, fleet2):
        """After any suite, at least one shard proves it read the
        parent-published design through the store, and the merged
        rollup carries a sane occupancy."""
        specs = [(i, 2 + i % 4) for i in range(9)]
        fleet2.run(executables(specs), max_cycles=200)
        assert fleet2.stats.shard, "no shard ever reported stats"
        hits = sum(
            snap.get("toolchain", {}).get("store_hit:compile", 0)
            for snap in fleet2.stats.shard.values()
        )
        assert hits >= 1, fleet2.stats.shard
        merged = fleet2.stats.merged()
        assert merged["shards"] == 2
        assert 0.0 < merged["occupancy"] <= 1.0
        assert merged["lane_cycles"] > 0
        assert not merged["degraded"]
        assert fleet2.errors == []

    def test_results_arrive_in_submission_order(self, fleet2):
        """Skewed suite: the longest workload is submitted first and
        must come back first, regardless of finishing last."""
        specs = [(1, 10)] + [(i, 0) for i in range(2, 8)]
        results = fleet2.run(executables(specs), max_cycles=800)
        assert [r.outputs[0] for r in results] == [1, 2, 3, 4, 5, 6, 7]


# ---------------------------------------------------- fault injection


class TestFaultInjection:
    def test_sigkill_mid_suite_requeues_and_completes(self, fleet_store, module):
        """Worker 0 SIGKILLs itself after its first result while still
        holding assigned tasks; the parent detects the death, requeues
        the orphans, and the suite completes bit-identically."""
        specs = [(i, 3 + i % 5) for i in range(12)]
        budgets = [250] * len(specs)
        with deadline(120):
            with FleetRunner(
                shards=2,
                lanes_per_worker=2,
                store=fleet_store,
                capture_state=True,
                requeue_limit=3,
                _self_destruct={0: 1},
            ) as fleet:
                results = fleet.run(executables(specs), max_cycles=budgets)
                assert fleet.stats.deaths == 1
                assert fleet.stats.requeues >= 1
        assert_matches_reference(results, specs, budgets, module)

    def test_requeues_exhausted_falls_back_in_process(self, fleet_store, module):
        """With the only worker suiciding and zero requeue budget, the
        orphaned tasks finish in-process -- the suite never fails."""
        specs = [(i, 2) for i in range(6)]
        budgets = [200] * len(specs)
        with deadline(120):
            with FleetRunner(
                shards=1,
                lanes_per_worker=2,
                store=fleet_store,
                capture_state=True,
                requeue_limit=0,
                _self_destruct={0: 1},
            ) as fleet:
                results = fleet.run(executables(specs), max_cycles=budgets)
                assert fleet.stats.deaths == 1
                assert fleet.stats.fallback_tasks >= 1
        assert_matches_reference(results, specs, budgets, module)

    def test_all_workers_dead_suite_still_completes(self, fleet_store, module):
        """Every worker dies immediately after one result: everything
        left finishes in-process, in order, correct."""
        specs = [(i, 1) for i in range(8)]
        budgets = [200] * len(specs)
        with deadline(120):
            with FleetRunner(
                shards=2,
                lanes_per_worker=2,
                store=fleet_store,
                capture_state=True,
                requeue_limit=1,
                _self_destruct={0: 1, 1: 1},
            ) as fleet:
                results = fleet.run(executables(specs), max_cycles=budgets)
                assert fleet.stats.deaths == 2
        assert_matches_reference(results, specs, budgets, module)

    def test_corrupt_store_under_fleet_recomputes(self, tmp_path, module):
        """Every persisted artifact is bit-flipped between two fleet
        runs over the same store: the poison is quarantined and
        recomputed (never served), and the second fleet's results are
        still bit-identical."""
        store_dir = tmp_path / "store"
        specs = [(i, 2) for i in range(5)]
        budgets = [200] * len(specs)
        with deadline(180):
            with FleetRunner(shards=2, store=ArtifactStore(store_dir)) as fleet:
                fleet.run(executables(specs), max_cycles=budgets)
            entries = sorted(store_dir.glob("*/*/*.art"))
            assert entries, "fleet run persisted nothing"
            for path in entries:
                blob = bytearray(path.read_bytes())
                blob[len(blob) // 2] ^= 0x40
                path.write_bytes(bytes(blob))
            store = ArtifactStore(store_dir)
            with FleetRunner(
                shards=2, store=store, capture_state=True
            ) as fleet:
                results = fleet.run(executables(specs), max_cycles=budgets)
            assert store.counters["corrupt"] >= 1, store.counters
        assert_matches_reference(results, specs, budgets, module)

    def test_unusable_start_method_degrades_in_process(self, fleet_store, module):
        specs = [(7, 2), (8, 3)]
        budgets = [200, 200]
        with FleetRunner(
            shards=2,
            store=fleet_store,
            capture_state=True,
            start_method="not-a-start-method",
        ) as fleet:
            results = fleet.run(executables(specs), max_cycles=budgets)
            assert fleet.stats.degraded
            assert fleet.stats.fallback_tasks == len(specs)
            assert fleet.errors
        assert_matches_reference(results, specs, budgets, module)

    def test_closed_runner_refuses_restart(self, fleet_store):
        fleet = FleetRunner(shards=1, store=fleet_store)
        fleet.close()
        with pytest.raises(Exception, match="closed"):
            fleet.start()


# ------------------------------------------------- budget validation


class TestBudgetValidation:
    def test_short_sequence_names_orphan_lanes(self):
        with pytest.raises(ValueError, match=r"lanes 2\.\.4 have no budget"):
            check_budgets([10, 20], 5)

    def test_long_sequence_names_extra_indices(self):
        with pytest.raises(ValueError, match=r"budget indices 2\.\.3 name no lane"):
            check_budgets([10, 20, 30, 40], 2)

    def test_int_replicates_and_exact_sequence_passes(self):
        assert check_budgets(7, 3) == [7, 7, 7]
        assert check_budgets([1, 2, 3], 3) == [1, 2, 3]

    def test_run_workloads_scalar_path_validates(self):
        exes = executables([(1, 1), (2, 1), (3, 1)])
        with pytest.raises(ValueError, match="3 executable"):
            run_workloads(exes, max_cycles=[100])

    def test_batched_machines_validate(self):
        exes = executables([(1, 1), (2, 1)])
        with pytest.raises(ValueError, match="no budget"):
            BatchedMachines(exes).run([100])

    def test_fleet_path_validates_before_spawning(self, fleet_store):
        """The mismatch raises out of run_workloads before any worker
        process is ever created."""
        exes = executables([(1, 1), (2, 1)])
        with pytest.raises(ValueError, match="name no lane"):
            run_workloads(exes, max_cycles=[1, 2, 3], shards=2, store=fleet_store)

    def test_fleet_runner_validates(self, fleet2):
        exes = executables([(1, 1), (2, 1)])
        with pytest.raises(ValueError, match="no budget"):
            fleet2.run(exes, max_cycles=[5])


class TestConstruction:
    def test_bad_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            FleetRunner(shards=0)

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            FleetRunner(engine="quantum")

    def test_private_store_is_cleaned_up(self):
        fleet = FleetRunner(shards=1)
        root = fleet.store.root
        fleet.close()
        assert not os.path.exists(root)


# ------------------------------------------------------------- CLI


class TestCli:
    HALTING = """
    reg[7:0] cnt; input[7:0] k; output halted : L; output[7:0] v : L;
    state s : L = { cnt := cnt + k; halted := cnt > 9; v := cnt; goto s; }
    """

    def test_simulate_shards_matches_in_process(self, tmp_path, capsys):
        """`simulate --shards 2` reports the same per-lane verdicts as
        the in-process run, plus the fleet scheduling summary."""
        from repro.cli import main

        path = tmp_path / "halting.sapper"
        path.write_text(self.HALTING)
        args = ["simulate", str(path), "-n", "50", "--lanes", "4",
                "-i", "k=1,2,5,20", "--quiet",
                "--store", str(tmp_path / "store")]
        assert main(args) == 0
        single = capsys.readouterr().out
        assert main([*args, "--shards", "2"]) == 0
        sharded = capsys.readouterr().out

        assert "# 10 cycles x 4 lanes" in sharded
        assert "18 active lane-cycles" in sharded
        assert "2 shard(s)" in sharded
        assert "# fleet: start_method=" in sharded

        lane_lines = [ln for ln in single.splitlines() if ln.startswith("# lane")]
        assert lane_lines == [
            ln for ln in sharded.splitlines() if ln.startswith("# lane")
        ]

    def test_shards_reject_scalar_engine_and_no_opt(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "halting.sapper"
        path.write_text(self.HALTING)
        with pytest.raises(SystemExit, match="batched engine"):
            main(["simulate", str(path), "-n", "5", "--shards", "2", "--quiet"])
        with pytest.raises(SystemExit, match="no-opt"):
            main(["simulate", str(path), "-n", "5", "--lanes", "4", "--no-opt",
                  "--shards", "2", "--quiet"])

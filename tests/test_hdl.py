"""Unit tests for the HDL substrate: IR, simulator, synthesis, Verilog, netlist."""

import pytest

from repro.hdl import HConst, HOp, HRef, Module, Simulator, emit_verilog, synthesize
from repro.hdl.netlist import NetlistError, NetlistSimulator, bit_blast


def counter_module(width=8) -> Module:
    m = Module("counter")
    count = m.add_reg("count", width)
    one = HConst(1, width)
    nxt = m.fresh(HOp("add", (count, one), width), "nxt")
    m.set_reg_next("count", nxt)
    m.set_output("value", nxt)
    return m


def alu_module() -> Module:
    m = Module("alu")
    a = m.add_input("a", 8)
    b = m.add_input("b", 8)
    op = m.add_input("op", 2)
    r0 = m.fresh(HOp("add", (a, b), 8), "sum")
    r1 = m.fresh(HOp("sub", (a, b), 8), "diff")
    r2 = m.fresh(HOp("and", (a, b), 8), "conj")
    r3 = m.fresh(HOp("or", (a, b), 8), "disj")
    sel01 = m.fresh(HOp("mux", (HOp("eq", (op, HConst(0, 2)), 1), r0, r1), 8), "s01")
    sel23 = m.fresh(HOp("mux", (HOp("eq", (op, HConst(2, 2)), 1), r2, r3), 8), "s23")
    out = m.fresh(HOp("mux", (HOp("lt", (op, HConst(2, 2)), 1), sel01, sel23), 8), "out")
    m.add_reg("res", 8)
    m.set_reg_next("res", out)
    m.set_output("result", out)
    return m


class TestSimulator:
    def test_counter_counts(self):
        sim = Simulator(counter_module())
        for i in range(1, 6):
            out = sim.step()
            assert out["value"] == i

    def test_counter_wraps(self):
        sim = Simulator(counter_module(width=2))
        sim.run(4)
        assert sim.regs["count"] == 0

    def test_alu_ops(self):
        sim = Simulator(alu_module())
        assert sim.step({"a": 7, "b": 5, "op": 0})["result"] == 12
        assert sim.step({"a": 7, "b": 5, "op": 1})["result"] == 2
        assert sim.step({"a": 7, "b": 5, "op": 2})["result"] == 5
        assert sim.step({"a": 7, "b": 5, "op": 3})["result"] == 7

    def test_sub_wraps_unsigned(self):
        sim = Simulator(alu_module())
        assert sim.step({"a": 0, "b": 1, "op": 1})["result"] == 0xFF

    def test_array_read_write(self):
        m = Module("memtest")
        addr = m.add_input("addr", 4)
        data = m.add_input("data", 8)
        we = m.add_input("we", 1)
        m.add_array("ram", 8, 16)
        rd = m.fresh(HOp("read", (addr,), 8, array="ram"), "rd")
        m.write_array("ram", addr, data, we)
        m.set_output("q", rd)
        sim = Simulator(m)
        sim.step({"addr": 3, "data": 99, "we": 1})
        assert sim.step({"addr": 3, "we": 0})["q"] == 99
        assert sim.step({"addr": 4, "we": 0})["q"] == 0

    def test_array_default_value(self):
        m = Module("defaults")
        addr = m.add_input("addr", 2)
        m.add_array("tags", 2, 4, default=3)
        rd = m.fresh(HOp("read", (addr,), 2, array="tags"), "rd")
        m.set_output("q", rd)
        sim = Simulator(m)
        assert sim.step({"addr": 1})["q"] == 3

    def test_division_convention(self):
        m = Module("divtest")
        a = m.add_input("a", 8)
        b = m.add_input("b", 8)
        q = m.fresh(HOp("div", (a, b), 8), "q")
        r = m.fresh(HOp("mod", (a, b), 8), "r")
        m.set_output("q", q)
        m.set_output("r", r)
        sim = Simulator(m)
        out = sim.step({"a": 17, "b": 5})
        assert (out["q"], out["r"]) == (3, 2)
        out = sim.step({"a": 17, "b": 0})
        assert (out["q"], out["r"]) == (0xFF, 17)

    def test_validate_rejects_undefined_signal(self):
        m = Module("bad")
        m.add_reg("r", 4)
        m.set_reg_next("r", HRef("nope", 4))
        with pytest.raises(ValueError):
            m.validate()

    def test_validate_rejects_double_define(self):
        m = Module("bad2")
        m.assign("x", HConst(1, 1))
        with pytest.raises(ValueError):
            m.assign("x", HConst(0, 1))


class TestSynthesis:
    def test_counter_costs(self):
        rpt = synthesize(counter_module())
        assert rpt.counts.dff == 8
        assert rpt.counts.total_gates() > 8  # adder cells on top of the flops
        assert rpt.area_um2 > 0
        assert rpt.delay_ns > 0
        assert rpt.power_uw > 0

    def test_wider_is_bigger(self):
        small = synthesize(counter_module(8))
        big = synthesize(counter_module(32))
        assert big.area_um2 > small.area_um2
        assert big.counts.dff == 32

    def test_mul_dominates_add(self):
        def op_module(op):
            m = Module("op")
            a = m.add_input("a", 16)
            b = m.add_input("b", 16)
            m.set_output("y", m.fresh(HOp(op, (a, b), 16), "y"))
            return m

        assert synthesize(op_module("mul")).area_um2 > 5 * synthesize(op_module("add")).area_um2

    def test_sram_vs_flops(self):
        def mem_module(size):
            m = Module("mem")
            addr = m.add_input("addr", 16)
            m.add_array("ram", 32, size)
            m.set_output("q", m.fresh(HOp("read", (addr,), 32, array="ram"), "q"))
            return m

        small = synthesize(mem_module(64))
        big = synthesize(mem_module(65536))
        assert small.counts.sram_bits == 0 and small.counts.dff >= 64 * 32
        assert big.counts.sram_bits == 65536 * 32

    def test_critical_path_grows_with_chaining(self):
        def chain(n):
            m = Module("chain")
            x = m.add_input("x", 16)
            cur = x
            for i in range(n):
                cur = m.fresh(HOp("add", (cur, HConst(i + 1, 16)), 16), f"s{i}")
            m.set_output("y", cur)
            return m

        assert synthesize(chain(8)).levels > synthesize(chain(1)).levels


class TestVerilog:
    def test_counter_verilog(self):
        text = emit_verilog(counter_module())
        assert "module counter(clk, value);" in text
        assert "always @(posedge clk)" in text
        assert "count <= " in text
        assert text.strip().endswith("endmodule")

    def test_array_write_emitted(self):
        m = Module("memtest")
        addr = m.add_input("addr", 4)
        data = m.add_input("data", 8)
        we = m.add_input("we", 1)
        m.add_array("ram", 8, 16)
        m.write_array("ram", addr, data, we)
        m.set_output("q", m.fresh(HOp("read", (addr,), 8, array="ram"), "q"))
        text = emit_verilog(m)
        assert "reg [7:0] ram [0:15];" in text
        assert "if (we) ram[addr] <= data;" in text

    def test_guarded_division(self):
        m = Module("div")
        a = m.add_input("a", 8)
        b = m.add_input("b", 8)
        m.set_output("q", m.fresh(HOp("div", (a, b), 8), "q"))
        assert "== 0) ?" in emit_verilog(m)

    def test_zext_pads_explicitly_inside_concat(self):
        """Verilog concatenations are self-determined: a zext emitted
        as its bare operand would contribute only the narrow width and
        shift every more-significant part down (regression: narrowed
        signals under a cat silently mis-aligned the emitted RTL)."""
        m = Module("pad")
        x = m.add_input("x", 8)
        y = m.add_input("y", 8)
        m.assign("w", HOp("zext", (x,), 24))
        m.assign("c", HOp("cat", (y, HRef("w", 24)), 32))
        m.set_output("o", HRef("c", 32))
        text = emit_verilog(m, optimize=False)
        assert "{{16{1'b0}}, x}" in text
        # width-preserving zext stays a bare operand
        m2 = Module("nopad")
        a = m2.add_input("a", 8)
        m2.set_output("o", m2.fresh(HOp("zext", (a,), 8), "z"))
        assert "1'b0" not in emit_verilog(m2, optimize=False)


class TestNetlist:
    def test_counter_netlist_simulates(self):
        nl = bit_blast(counter_module(4))
        sim = NetlistSimulator(nl)
        for i in range(1, 6):
            out = sim.step({})
            assert out["value"] == i % 16

    def test_netlist_matches_simulator(self):
        m = alu_module()
        nl = bit_blast(m)
        gate_sim = NetlistSimulator(nl)
        word_sim = Simulator(m)
        for a, b, op in [(3, 9, 0), (200, 13, 1), (0xF0, 0x3C, 2), (5, 0x88, 3)]:
            ins = {"a": a, "b": b, "op": op}
            assert gate_sim.step(ins)["result"] == word_sim.step(ins)["result"]

    def test_gate_census(self):
        nl = bit_blast(counter_module(8))
        counts = nl.counts()
        assert counts.get("dff") == 8
        assert counts.get("xor", 0) > 0  # the ripple adder

    def test_arrays_rejected(self):
        m = Module("withmem")
        addr = m.add_input("addr", 2)
        m.add_array("ram", 4, 4)
        m.set_output("q", m.fresh(HOp("read", (addr,), 4, array="ram"), "q"))
        with pytest.raises(NetlistError):
            bit_blast(m)

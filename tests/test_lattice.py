"""Unit tests for security lattices and their hardware encodings."""

import pytest
from hypothesis import given, strategies as st

from repro.lattice import (
    BitEncoding,
    Lattice,
    LatticeError,
    LutEncoding,
    diamond,
    encode,
    from_order,
    powerset,
    product,
    total_order,
    two_level,
)


class TestTwoLevel:
    def test_order(self):
        lat = two_level()
        assert lat.leq("L", "H")
        assert not lat.leq("H", "L")
        assert lat.leq("L", "L") and lat.leq("H", "H")

    def test_join_meet(self):
        lat = two_level()
        assert lat.join("L", "H") == "H"
        assert lat.join("L", "L") == "L"
        assert lat.meet("L", "H") == "L"

    def test_extremes(self):
        lat = two_level()
        assert lat.bottom == "L"
        assert lat.top == "H"

    def test_join_of_nothing_is_bottom(self):
        assert two_level().join() == "L"

    def test_custom_names(self):
        lat = two_level("untrusted", "trusted")
        assert lat.join("untrusted", "trusted") == "trusted"


class TestDiamond:
    def test_structure(self):
        lat = diamond()
        assert lat.bottom == "L" and lat.top == "H"
        assert lat.join("M1", "M2") == "H"
        assert lat.meet("M1", "M2") == "L"
        assert not lat.leq("M1", "M2") and not lat.leq("M2", "M1")

    def test_four_elements(self):
        assert len(diamond()) == 4

    def test_distributive(self):
        assert diamond().is_distributive()

    def test_upset_downset(self):
        lat = diamond()
        assert lat.downset("M1") == {"L", "M1"}
        assert lat.upset("M1") == {"M1", "H"}
        assert lat.downset("H") == {"L", "M1", "M2", "H"}


class TestConstructors:
    def test_total_order(self):
        lat = total_order(["U", "S", "TS"])
        assert lat.leq("U", "TS")
        assert lat.join("S", "U") == "S"
        assert lat.top == "TS"

    def test_powerset(self):
        lat = powerset(["a", "b"])
        assert len(lat) == 4
        assert lat.join("{a}", "{b}") == "{a,b}"
        assert lat.bottom == "{}"
        assert lat.is_distributive()

    def test_product(self):
        lat = product(two_level(), two_level("lo", "hi"))
        assert len(lat) == 4
        assert lat.join("L*hi", "H*lo") == "H*hi"
        assert lat.bottom == "L*lo"

    def test_not_a_lattice_rejected(self):
        # two maximal elements -> no unique join
        with pytest.raises(LatticeError):
            from_order(["a", "b", "c"], [("a", "b"), ("a", "c")])

    def test_cycle_rejected(self):
        with pytest.raises(LatticeError):
            from_order(["a", "b"], [("a", "b"), ("b", "a")])

    def test_unknown_element_in_order(self):
        with pytest.raises(LatticeError):
            from_order(["a"], [("a", "zzz")])

    def test_duplicate_elements(self):
        with pytest.raises(LatticeError):
            Lattice(["a", "a"], [])

    def test_check_unknown_label(self):
        with pytest.raises(LatticeError):
            two_level().check("M")


def m3() -> Lattice:
    """The smallest non-distributive (modular) lattice."""
    return from_order(
        ["bot", "x", "y", "z", "top"],
        [("bot", "x"), ("bot", "y"), ("bot", "z"), ("x", "top"), ("y", "top"), ("z", "top")],
    )


class TestEncodings:
    def test_two_level_bit_encoding_is_one_bit(self):
        enc = encode(two_level())
        assert isinstance(enc, BitEncoding)
        assert enc.width == 1
        assert enc.encode("L") == 0 and enc.encode("H") == 1

    def test_diamond_encoding_is_two_bits(self):
        # section 4.6: "one more bit for each tag" going from 2-level to diamond
        enc = encode(diamond())
        assert isinstance(enc, BitEncoding)
        assert enc.width == 2

    def test_bit_encoding_join_is_or(self):
        lat = diamond()
        enc = BitEncoding(lat)
        for a in lat.elements:
            for b in lat.elements:
                joined = enc.decode(enc.join_bits(enc.encode(a), enc.encode(b)))
                assert joined == lat.join(a, b)

    def test_bit_encoding_leq_is_subset(self):
        lat = diamond()
        enc = BitEncoding(lat)
        for a in lat.elements:
            for b in lat.elements:
                assert enc.leq_bits(enc.encode(a), enc.encode(b)) == lat.leq(a, b)

    def test_non_distributive_falls_back_to_lut(self):
        assert not m3().is_distributive()
        enc = encode(m3())
        assert isinstance(enc, LutEncoding)

    def test_bit_encoding_rejects_non_distributive(self):
        with pytest.raises(ValueError):
            BitEncoding(m3())

    def test_lut_encoding_tables(self):
        lat = m3()
        enc = LutEncoding(lat)
        for a in lat.elements:
            for b in lat.elements:
                assert enc.decode(enc.join_bits(enc.encode(a), enc.encode(b))) == lat.join(a, b)
                assert enc.leq_bits(enc.encode(a), enc.encode(b)) == lat.leq(a, b)

    def test_powerset_encoding_roundtrip(self):
        lat = powerset(["a", "b", "c"])
        enc = encode(lat)
        for e in lat.elements:
            assert enc.decode(enc.encode(e)) == e


@st.composite
def lattice_and_elements(draw):
    lat = draw(
        st.sampled_from(
            [two_level(), diamond(), total_order(["a", "b", "c", "d"]), powerset(["p", "q"]), m3()]
        )
    )
    a = draw(st.sampled_from(lat.elements))
    b = draw(st.sampled_from(lat.elements))
    c = draw(st.sampled_from(lat.elements))
    return lat, a, b, c


class TestLatticeLaws:
    @given(lattice_and_elements())
    def test_join_commutative(self, data):
        lat, a, b, _ = data
        assert lat.join(a, b) == lat.join(b, a)

    @given(lattice_and_elements())
    def test_join_associative(self, data):
        lat, a, b, c = data
        assert lat.join(lat.join(a, b), c) == lat.join(a, lat.join(b, c))

    @given(lattice_and_elements())
    def test_join_idempotent(self, data):
        lat, a, _, _ = data
        assert lat.join(a, a) == a

    @given(lattice_and_elements())
    def test_join_is_upper_bound(self, data):
        lat, a, b, _ = data
        j = lat.join(a, b)
        assert lat.leq(a, j) and lat.leq(b, j)

    @given(lattice_and_elements())
    def test_join_is_least_upper_bound(self, data):
        lat, a, b, c = data
        if lat.leq(a, c) and lat.leq(b, c):
            assert lat.leq(lat.join(a, b), c)

    @given(lattice_and_elements())
    def test_absorption(self, data):
        lat, a, b, _ = data
        assert lat.join(a, lat.meet(a, b)) == a
        assert lat.meet(a, lat.join(a, b)) == a

    @given(lattice_and_elements())
    def test_leq_antisymmetric(self, data):
        lat, a, b, _ = data
        if lat.leq(a, b) and lat.leq(b, a):
            assert a == b

    @given(lattice_and_elements())
    def test_encoding_roundtrip_and_ops(self, data):
        lat, a, b, _ = data
        enc = encode(lat)
        assert enc.decode(enc.encode(a)) == a
        assert enc.decode(enc.join_bits(enc.encode(a), enc.encode(b))) == lat.join(a, b)
        assert enc.leq_bits(enc.encode(a), enc.encode(b)) == lat.leq(a, b)

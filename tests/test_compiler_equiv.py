"""Integration tests: compiled hardware == formal semantics, cycle by cycle.

Every test drives the Sapper compiler's generated module and the Figure 6
interpreter with identical stimulus and compares the full architectural
state (registers, tags, fall maps, arrays, outputs, violation events) at
every cycle boundary.
"""

from repro.lattice import diamond, two_level
from repro.sapper import samples
from repro.sapper.crossval import assert_equivalent, assert_equivalent_suite


def rotate_inputs(specs):
    def stim(cycle):
        return specs[cycle % len(specs)]

    return stim


class TestFigureDesigns:
    def test_adder_check(self):
        assert_equivalent(
            samples.ADDER_CHECK,
            two_level(),
            cycles=12,
            stimulus=rotate_inputs(
                [
                    {"in_b": (0x0F, "L"), "in_c": (0x33, "L")},
                    {"in_b": (0xAA, "H"), "in_c": (0x55, "L")},
                    {"in_b": (0xFF, "L"), "in_c": (0x01, "H")},
                ]
            ),
        )

    def test_adder_track(self):
        assert_equivalent(
            samples.ADDER_TRACK,
            two_level(),
            cycles=12,
            stimulus=rotate_inputs(
                [
                    {"in_b": (1, "L"), "in_c": (2, "L")},
                    {"in_b": (3, "H"), "in_c": (4, "L")},
                ]
            ),
        )

    def test_tdma(self):
        assert_equivalent(
            samples.TDMA,
            two_level(),
            cycles=250,
            stimulus=rotate_inputs(
                [
                    {"hi_in": (5, "H"), "lo_in": (1, "L")},
                    {"hi_in": (7, "H"), "lo_in": (2, "L")},
                ]
            ),
        )


class TestLanguageFeatures:
    def test_nested_ifs_and_arith(self):
        src = """
        reg[15:0] a; reg[15:0] b; reg[15:0] c; input[7:0] x;
        state s : L = {
            a := a + x;
            if (a > 100) {
                if (a % 3 == 0) { b := a * 2; } else { b := a / 3; }
            } else {
                b := a - 1;
                c := b << 2;
            }
            c := c ^ b;
            goto s;
        }
        """
        assert_equivalent(src, two_level(), 40, rotate_inputs([{"x": 13}, {"x": 7}, {"x": 255}]))

    def test_slices_cat_ext(self):
        src = """
        reg[31:0] w; reg[7:0] lo; reg[7:0] hi; reg[31:0] r; input[15:0] x;
        state s : L = {
            w := cat(x, x);
            lo := w[7:0];
            hi := w[31:24];
            r := sext(lo, 32) + zext(hi, 32);
            goto s;
        }
        """
        assert_equivalent(src, two_level(), 20, rotate_inputs([{"x": 0x8001}, {"x": 0x7FFE}]))

    def test_signed_ops_and_shifts(self):
        src = """
        reg[15:0] a; reg flag; reg[15:0] sh; input[15:0] x;
        state s : L = {
            a := 0 - x;
            flag := lts(a, x) && ges(x, a);
            sh := asr(a, 3) | (a >> 2) | (a << 1);
            goto s;
        }
        """
        assert_equivalent(src, two_level(), 20, rotate_inputs([{"x": 5}, {"x": 40000}, {"x": 0}]))

    def test_division_ops(self):
        src = """
        reg[15:0] q; reg[15:0] r; input[15:0] x; input[15:0] y;
        state s : L = { q := x / y; r := x % y; goto s; }
        """
        assert_equivalent(
            src, two_level(), 12, rotate_inputs([{"x": 100, "y": 7}, {"x": 5, "y": 0}])
        )

    def test_array_read_write_forwarding(self):
        src = """
        mem[15:0] buf[16]; reg[15:0] a; reg[15:0] b; input[3:0] i; input[15:0] v;
        state s : L = {
            buf[i] := v;
            a := buf[i];        // forwarded within the cycle
            b := buf[0];
            goto s;
        }
        """
        assert_equivalent(
            src, two_level(), 20, rotate_inputs([{"i": 0, "v": 11}, {"i": 3, "v": 99}])
        )

    def test_non_power_of_two_array(self):
        src = """
        mem[7:0] buf[10]; reg[7:0] a; input[4:0] i;
        state s : L = {
            buf[i] := i + 1;
            a := buf[i];
            goto s;
        }
        """
        assert_equivalent(
            src, two_level(), 20, rotate_inputs([{"i": 9}, {"i": 12}, {"i": 31}])
        )

    def test_case_statement(self):
        src = """
        reg[7:0] out; input[1:0] sel;
        state s : L = {
            case (sel) {
                0: { out := 10; }
                1: { out := 20; }
                2: { out := 30; }
                default: { out := 40; }
            }
            goto s;
        }
        """
        assert_equivalent(
            src, two_level(), 8, rotate_inputs([{"sel": 0}, {"sel": 1}, {"sel": 2}, {"sel": 3}])
        )

    def test_tag_reads_in_expressions(self):
        src = """
        reg[7:0] d; reg[7:0] was_high; input[7:0] x;
        state s : L = {
            d := x;
            if (tag(d) == `H) { was_high := was_high + 1; }
            goto s;
        }
        """
        assert_equivalent(
            src, two_level(), 12, rotate_inputs([{"x": (1, "H")}, {"x": (2, "L")}])
        )


class TestEnforcementEquivalence:
    def test_checked_assign_and_violation_flag(self):
        src = """
        reg[7:0] lo : L; input[7:0] x;
        state s : L = { lo := x; goto s; }
        """
        assert_equivalent(
            src, two_level(), 10, rotate_inputs([{"x": (1, "L")}, {"x": (2, "H")}])
        )

    def test_otherwise_chain(self):
        src = """
        reg[7:0] a : L; reg[7:0] b : H; reg[7:0] c; input[7:0] x;
        state s : L = {
            a := x otherwise b := x otherwise c := 1;
            goto s;
        }
        """
        assert_equivalent(
            src, two_level(), 10, rotate_inputs([{"x": (3, "L")}, {"x": (4, "H")}])
        )

    def test_settag_roundtrip(self):
        src = """
        reg[7:0] r : L; reg[2:0] phase; input[7:0] x;
        state s : L = {
            if (phase == 0) { r := x; }
            if (phase == 1) { setTag(r, H); }
            if (phase == 2) { setTag(r, L); }
            phase := phase + 1;
            goto s;
        }
        """
        assert_equivalent(src, two_level(), 16, rotate_inputs([{"x": (9, "L")}]))

    def test_settag_array(self):
        src = """
        mem[7:0] buf[8] : L; reg[2:0] phase; input[7:0] x;
        state s : L = {
            if (phase == 0) { buf[2] := x; }
            if (phase == 1) { setTag(buf[2], H); }
            if (phase == 2) { setTag(buf[2], L); }
            phase := phase + 1;
            goto s;
        }
        """
        assert_equivalent(src, two_level(), 16, rotate_inputs([{"x": (5, "L")}]))

    def test_enforced_array_checks(self):
        src = """
        mem[7:0] buf[8] : L; reg[7:0] a; input[7:0] x; input[2:0] i;
        state s : L = {
            buf[i] := x;
            a := buf[i];
            goto s;
        }
        """
        assert_equivalent(
            src,
            two_level(),
            16,
            rotate_inputs([{"x": (5, "L"), "i": 1}, {"x": (6, "H"), "i": 2}]),
        )

    def test_goto_enforcement(self):
        src = """
        input h;
        reg[7:0] c1; reg[7:0] c2;
        state a : L = {
            c1 := c1 + 1;
            if (h) { goto b; } else { goto a; }
        }
        state b : L = { c2 := c2 + 1; goto a; }
        """
        assert_equivalent(
            src, two_level(), 16, rotate_inputs([{"h": (1, "L")}, {"h": (1, "H")}, {"h": (0, "L")}])
        )

    def test_dynamic_state_divergence(self):
        src = """
        input[7:0] h;
        reg[7:0] c1; reg[7:0] c2;
        state top : L = {
            let state p = {
                if (h > 10) { goto q; } else { goto p; }
            } in
            let state q = { c2 := c2 + 1; goto p; } in
            c1 := c1 + 1;
            fall;
        }
        """
        assert_equivalent(
            src,
            two_level(),
            24,
            rotate_inputs([{"h": (20, "H")}, {"h": (3, "H")}, {"h": (15, "L")}]),
        )


class TestDiamondEquivalence:
    def test_diamond_flows(self):
        src = """
        reg[7:0] m1 : M1; reg[7:0] m2 : M2; reg[7:0] joined; reg[7:0] lo : L;
        input[7:0] x1; input[7:0] x2;
        state s : L = {
            m1 := x1;
            m2 := x2;
            joined := m1 + m2;
            lo := joined;
            goto s;
        }
        """
        assert_equivalent(
            src,
            diamond(),
            16,
            rotate_inputs(
                [
                    {"x1": (1, "M1"), "x2": (2, "M2")},
                    {"x1": (3, "L"), "x2": (4, "L")},
                    {"x1": (5, "H"), "x2": (6, "M2")},
                ]
            ),
        )


class TestBatchedSuites:
    """Suites of stimulus traces run as lanes of one batched machine,
    each lane held to its own Figure 6 interpreter -- the batched engine
    is the device under test."""

    def test_tdma_stimulus_suite(self):
        stimuli = [
            rotate_inputs([{"hi_in": (5, "H"), "lo_in": (1, "L")}]),
            rotate_inputs(
                [{"hi_in": (7, "H"), "lo_in": (2, "L")},
                 {"hi_in": (9, "H"), "lo_in": (3, "L")}]
            ),
            rotate_inputs([{"hi_in": (1, "H"), "lo_in": (8, "L")}]),
            rotate_inputs([{"hi_in": (250, "H"), "lo_in": (0, "L")}]),
        ]
        assert_equivalent_suite(samples.TDMA, two_level(), 150, stimuli, name="tdma")

    def test_adder_check_suite(self):
        stimuli = [
            rotate_inputs([{"in_b": (0x0F, "L"), "in_c": (0x33, "L")}]),
            rotate_inputs([{"in_b": (0xAA, "H"), "in_c": (0x55, "L")}]),
            rotate_inputs(
                [{"in_b": (0xFF, "L"), "in_c": (0x01, "H")},
                 {"in_b": (0x00, "L"), "in_c": (0x00, "L")}]
            ),
        ]
        assert_equivalent_suite(samples.ADDER_CHECK, two_level(), 16, stimuli)

    def test_suite_under_eager_cohort_dispatch(self):
        """The batched conformance oracle with majority-cohort dispatch
        forced eager: lanes split across FSM states run through the
        specialized-majority / generic-minority path and must still
        match their interpreters entity for entity, cycle for cycle."""
        src = """
        reg[7:0] acc; reg[7:0] aux; input[7:0] x;
        state top : L = {
            let state p = {
                acc := acc + x;
                if (acc > 200) { goto q; } else { goto p; }
            } in
            let state q = { aux := aux + 1; acc := 0; goto p; } in
            fall;
        }
        state other : L = { acc := acc - 1; goto other; }
        """
        stimuli = [
            rotate_inputs([{"x": (3, "L")}]),
            rotate_inputs([{"x": (3, "L")}]),
            rotate_inputs([{"x": (3, "L")}]),
            rotate_inputs([{"x": (103, "L")}]),
        ]
        bcv = assert_equivalent_suite(
            src, two_level(), 120, stimuli, name="fsm_suite",
            majority_fraction=0.5,
        )
        assert bcv.batch.split_steps > 0, "cohort dispatch never fired"

    def test_enforcement_suite_with_divergent_violations(self):
        # lanes violate (or not) independently; per-lane violation events
        # must match each lane's interpreter exactly
        src = """
        reg[7:0] lo : L; input[7:0] x;
        state s : L = { lo := x; goto s; }
        """
        stimuli = [
            rotate_inputs([{"x": (1, "L")}]),
            rotate_inputs([{"x": (2, "H")}]),
            rotate_inputs([{"x": (3, "L")}, {"x": (4, "H")}]),
        ]
        assert_equivalent_suite(src, two_level(), 12, stimuli)


class TestInsecureCompile:
    def test_base_design_has_no_tag_state(self):
        from repro.sapper.compiler import compile_program

        design = compile_program(samples.TDMA, two_level(), secure=False, name="tdma_base")
        assert not design.reg_tag and not design.state_tag
        assert "violation" not in design.module.outputs
        # tags gone, but the machine still works
        from repro.hdl import Simulator

        sim = Simulator(design.module)
        sim.step({"hi_in": 1})
        for _ in range(101):
            sim.step({"hi_in": 1})
        assert sim.regs["acc"] == 100


class TestTagBits:
    def test_tagbits_settag_roundtrip(self):
        # hardware reacting to software-supplied labels (the set-tag
        # instruction's mechanism): bits -> clamped label
        src = """
        mem[7:0] buf[8] : L; reg[1:0] phase; input[7:0] bits;
        state s : L = {
            if (phase == 0) { setTag(buf[1], tagbits(bits)); }
            phase := phase + 1;
            goto s;
        }
        """
        assert_equivalent(
            src, two_level(), 8,
            rotate_inputs([{"bits": (1, "L")}, {"bits": (0, "L")}]),
        )

    def test_tagbits_diamond_clamping(self):
        src = """
        mem[7:0] buf[8] : L; reg[1:0] phase; input[7:0] bits;
        state s : L = {
            if (phase == 0) { setTag(buf[2], tagbits(bits)); }
            phase := phase + 1;
            goto s;
        }
        """
        assert_equivalent(
            src, diamond(), 8,
            rotate_inputs([{"bits": (2, "L")}, {"bits": (3, "L")}, {"bits": (1, "L")}]),
        )

"""Functional validation of section 4.3: workloads vs golden vs hardware."""

import pytest

from repro.mips.assembler import assemble
from repro.proc.machine import SapperMachine, run_on_iss
from repro.workloads import ALL_WORKLOADS


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_iss_matches_golden(name):
    wl = ALL_WORKLOADS[name]
    iss = run_on_iss(assemble(wl.source))
    assert tuple(iss.outputs) == wl.expected


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_hardware_matches_golden(name):
    wl = ALL_WORKLOADS[name]
    machine = SapperMachine()
    machine.load(assemble(wl.source))
    res = machine.run(wl.max_cycles)
    assert res.halted, f"{name} did not halt in {wl.max_cycles} cycles"
    assert tuple(res.outputs) == wl.expected
    assert res.violations == 0, "benign workloads must not trip security checks"


def test_workload_set_matches_paper_classes():
    """The six classes of section 4.3: three SPEC-like, crypto x2, FP."""
    names = set(ALL_WORKLOADS)
    assert {"specrand", "sha", "rijndael_xtea", "fft", "bzip2_rle", "mcf_bellmanford"} == names
    assert ALL_WORKLOADS["fft"].uses_fpu


def test_fft_close_to_numpy():
    """The architectural FP model stays within tolerance of IEEE/NumPy."""
    import numpy as np

    from repro.mips import softfloat as sf
    from repro.workloads.programs import _fft_golden

    values = [1.0, 0.5, -0.25, 2.0, -1.5, 0.75, 0.125, -2.0]
    ours = _fft_golden(values)
    reference = np.fft.fft(np.array(values, dtype=np.float32))
    for k in range(8):
        re = sf.to_python(ours[2 * k])
        im = sf.to_python(ours[2 * k + 1])
        assert abs(re - reference[k].real) < 1e-4 + 1e-4 * abs(reference[k].real)
        assert abs(im - reference[k].imag) < 1e-4 + 1e-4 * abs(reference[k].imag)


def test_sha_against_hashlib():
    import hashlib
    import struct

    wl = ALL_WORKLOADS["sha"]
    digest = hashlib.sha1(b"Sapper @ ASPLOS14").digest()
    assert wl.expected == struct.unpack(">5I", digest)
